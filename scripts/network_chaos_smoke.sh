#!/usr/bin/env bash
# Network-fault smoke for the injectable transport (CI `network-chaos-smoke`).
#
#   1. garbage NOC_NET_FAULT_SCHEDULE / NOC_NET_FAULT_SEED must be refused
#      at boot with exit 2 (eager validation, never a silent fault-free
#      run) — before any listener binds or socket connects;
#   2. the network_chaos soak enumerates every connection op of a
#      reference client->server run and, for each (side x op x fault
#      kind) combination — connection reset, torn read/write at byte n,
#      slow trickle, accept failure, sticky partition with a paired heal —
#      injects exactly that fault on exactly that side and requires the
#      retrying client to converge to DONE with a row set byte-identical
#      to the fault-free run's;
#   3. any divergence leaves a repro file (the exact NOC_NET_FAULT_SCHEDULE
#      to replay it) in the output directory for CI to upload.
#
# Time-boxed via --max-sites (first N ops per side x 6 kinds x 2 sides)
# plus a hard timeout; override the binary with NOC_NETWORK_CHAOS_BIN,
# the output directory with OUT, the site cap with MAX_SITES.
set -euo pipefail

BIN=${NOC_NETWORK_CHAOS_BIN:-target/release/network_chaos}
OUT=${OUT:-network_chaos_out}
MAX_SITES=${MAX_SITES:-3}
TIMEOUT_S=${TIMEOUT_S:-240}

[ -x "$BIN" ] || {
  echo "FAIL: $BIN not built (cargo build --release -p noc-client --bin network_chaos)"
  exit 1
}

fail() { echo "FAIL: $*"; exit 1; }

# 1. Eager validation: garbage knobs are a boot-time configuration error.
set +e
NOC_NET_FAULT_SCHEDULE="nonsense" "$BIN" --out "$OUT.reject" >/dev/null 2>&1
[ $? -eq 2 ] || fail "garbage NOC_NET_FAULT_SCHEDULE must exit 2"
NOC_NET_FAULT_SEED="-3" "$BIN" --out "$OUT.reject" >/dev/null 2>&1
[ $? -eq 2 ] || fail "garbage NOC_NET_FAULT_SEED must exit 2"
set -e
[ ! -d "$OUT.reject" ] || fail "rejected run must not open sockets or write output"

# 2. The soak proper: every fault kind, both sides, first $MAX_SITES ops.
rm -rf "$OUT"
timeout "$TIMEOUT_S" "$BIN" --out "$OUT" --max-sites "$MAX_SITES" \
  || fail "network_chaos reported a divergence (repros in $OUT)"

# 3. The report must exist, be whole, and say pass.
[ -s "$OUT/network_chaos.json" ] || fail "missing $OUT/network_chaos.json"
grep -q '"verdict": "pass"' "$OUT/network_chaos.json" \
  || fail "report verdict is not pass: $(cat "$OUT/network_chaos.json")"
ls "$OUT"/repro_* >/dev/null 2>&1 && fail "pass verdict but repro files present"

echo "PASS: network-chaos smoke ($(grep -o '"combos": [0-9]*' "$OUT/network_chaos.json" \
  | grep -o '[0-9]*') fault combinations converged byte-identically)"
