#!/usr/bin/env bash
# Lint-wall audit: every workspace crate must opt into the shared lint
# table and forbid unsafe code, and the core certification/mechanism
# crates must deny unwrap() in production code.
#
# Run from the repo root:  bash scripts/lint_audit.sh
# Exits nonzero listing every violation; CI gates on it.

set -u
cd "$(dirname "$0")/.."

fail=0
complain() {
    echo "lint-audit: $*" >&2
    fail=1
}

# Workspace members are crates/* minus the excluded compat tree.
for manifest in crates/*/Cargo.toml; do
    crate_dir=$(dirname "$manifest")
    crate=$(basename "$crate_dir")
    [ "$crate" = "compat" ] && continue

    # 1. Every member opts into the shared [workspace.lints] table.
    if ! grep -Eq '^\[lints\]' "$manifest" || \
       ! grep -A1 '^\[lints\]' "$manifest" | grep -Eq '^workspace *= *true'; then
        complain "$crate: Cargo.toml lacks '[lints] workspace = true'"
    fi

    # 2. Every member's crate root forbids unsafe code outright (the
    #    workspace table only *denies* it, which an inner allow could undo).
    root="$crate_dir/src/lib.rs"
    [ -f "$root" ] || root="$crate_dir/src/main.rs"
    if [ ! -f "$root" ]; then
        complain "$crate: no src/lib.rs or src/main.rs to audit"
        continue
    fi
    if ! grep -q '#!\[forbid(unsafe_code)\]' "$root"; then
        complain "$crate: $root lacks #![forbid(unsafe_code)]"
    fi
done

# 3. The verification and mechanism crates additionally deny unwrap() in
#    production (non-test) code: a panic inside the certifier or the
#    deadlock-recovery path is itself a liveness bug.
for crate in noc-verify noc-protocol seec noc-model; do
    for root in crates/$crate/src/lib.rs crates/$crate/src/main.rs; do
        [ -f "$root" ] || continue
        if ! grep -q 'deny(clippy::unwrap_used)' "$root"; then
            complain "$crate: $root lacks the unwrap_used deny wall"
        fi
    done
done

# 4. The compat stand-ins are outside the workspace and its lint table,
#    so their roots must carry the forbid themselves. One exemption:
#    compat/signal-hook must call the POSIX signal(2) API, which cannot be
#    done in safe Rust. Its unsafe surface is audited instead of forbidden:
#    exactly one `unsafe` block (the registration call) plus the `SAFETY:`
#    comment justifying it, and no growth without updating this gate.
for manifest in crates/compat/*/Cargo.toml; do
    crate_dir=$(dirname "$manifest")
    crate=$(basename "$crate_dir")
    root="$crate_dir/src/lib.rs"
    [ -f "$root" ] || continue
    if [ "$crate" = "signal-hook" ]; then
        blocks=$(grep -c 'unsafe {' "$root")
        if [ "$blocks" -ne 1 ]; then
            complain "compat/signal-hook: expected exactly 1 unsafe block, found $blocks"
        fi
        if ! grep -q '// SAFETY:' "$root"; then
            complain "compat/signal-hook: unsafe block lacks a SAFETY: justification"
        fi
        continue
    fi
    if ! grep -q '#!\[forbid(unsafe_code)\]' "$root"; then
        complain "compat/$crate: lacks #![forbid(unsafe_code)]"
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "lint-audit: FAILED" >&2
    exit 1
fi
echo "lint-audit: ok"
