#!/usr/bin/env bash
# Storage-fault smoke for the injectable I/O layer (CI `storage-chaos-smoke`).
#
#   1. garbage NOC_VFS_FAULT_SCHEDULE / NOC_VFS_FAULT_SEED must be refused
#      at boot with exit 2 (eager validation, never a silent fault-free run);
#   2. the storage_chaos soak enumerates every write op of its reference
#      workload and, for each (write op x fault kind) combination — ENOSPC,
#      EIO, torn write, failed rename, crash-after-partial-write — injects
#      exactly that fault, restarts on healthy storage, and requires the
#      recovered row set to be byte-identical to an uninterrupted run's;
#   3. any divergence leaves a repro file (the exact NOC_VFS_FAULT_SCHEDULE
#      to replay it) in the output directory for CI to upload.
#
# Time-boxed via --max-sites (first N write ops x 5 kinds) plus a hard
# timeout; override the binary with NOC_STORAGE_CHAOS_BIN, the output
# directory with OUT, the site cap with MAX_SITES.
set -euo pipefail

BIN=${NOC_STORAGE_CHAOS_BIN:-target/release/storage_chaos}
OUT=${OUT:-storage_chaos_out}
MAX_SITES=${MAX_SITES:-4}
TIMEOUT_S=${TIMEOUT_S:-240}

[ -x "$BIN" ] || {
  echo "FAIL: $BIN not built (cargo build --release -p noc-experiments --bin storage_chaos)"
  exit 1
}

fail() { echo "FAIL: $*"; exit 1; }

# 1. Eager validation: garbage knobs are a boot-time configuration error.
set +e
NOC_VFS_FAULT_SCHEDULE="nonsense" "$BIN" --out "$OUT.reject" >/dev/null 2>&1
[ $? -eq 2 ] || fail "garbage NOC_VFS_FAULT_SCHEDULE must exit 2"
NOC_VFS_FAULT_SEED="-3" "$BIN" --out "$OUT.reject" >/dev/null 2>&1
[ $? -eq 2 ] || fail "garbage NOC_VFS_FAULT_SEED must exit 2"
set -e
[ ! -d "$OUT.reject" ] || fail "rejected run must not perform I/O"

# 2. The soak proper: every fault at the first $MAX_SITES write ops.
rm -rf "$OUT"
timeout "$TIMEOUT_S" "$BIN" --out "$OUT" --max-sites "$MAX_SITES" \
  || fail "storage_chaos reported a divergence (repros in $OUT)"

# 3. The report must exist, be whole, and say pass.
[ -s "$OUT/storage_chaos.json" ] || fail "missing $OUT/storage_chaos.json"
grep -q '"verdict": "pass"' "$OUT/storage_chaos.json" \
  || fail "report verdict is not pass: $(cat "$OUT/storage_chaos.json")"
ls "$OUT"/repro_* >/dev/null 2>&1 && fail "pass verdict but repro files present"

echo "PASS: storage-chaos smoke ($(grep -o '"combos": [0-9]*' "$OUT/storage_chaos.json" \
  | grep -o '[0-9]*') fault combinations recovered byte-identically)"
