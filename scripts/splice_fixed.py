#!/usr/bin/env python3
"""Replaces stale Fig 10 / Fig 11 blocks in results/full_figs.txt with the
re-measured versions (results/fig10_fixed.txt, fig11_fixed.txt), which use
the corrected metrics (per-flit energy, all-deliveries FF fraction)."""

import re
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent / "results"


def blocks(text):
    return [b for b in re.split(r"\n(?=== )", text) if b.strip()]


def main():
    full = ROOT / "full_figs.txt"
    parts = blocks(full.read_text())
    fixed = []
    for name in ["fig11_fixed.txt", "fig10_fixed.txt"]:
        f = ROOT / name
        if f.exists():
            fixed.extend(blocks(f.read_text()))
    fixed_by_key = {b.splitlines()[0][:12]: b for b in fixed}
    out = []
    for b in parts:
        key = b.splitlines()[0][:12]
        out.append(fixed_by_key.pop(key, b))
    out.extend(fixed_by_key.values())
    full.write_text("\n".join(x.rstrip("\n") + "\n\n" for x in out))
    print(f"spliced {len(fixed)} fixed blocks")


if __name__ == "__main__":
    main()
