#!/usr/bin/env bash
# Compare a fresh bench report against the committed baseline.
#
#   scripts/bench_regression.sh <fresh.json> <baseline.json> [tolerance_pct]
#
# Fails (exit 1) when any bench id present in both reports regressed its
# `per_second` rate by more than the tolerance (default 15%), or when the
# fresh report is missing an id the baseline has. Ids only the fresh
# report has are listed but not fatal (new benches don't need a baseline
# entry to land). The tolerance absorbs CI box noise; refresh the
# baseline deliberately (re-run the bench and commit the new json) when
# the hardware class or the engine's expected performance changes.
set -euo pipefail

fresh="${1:?usage: bench_regression.sh <fresh.json> <baseline.json> [tolerance_pct]}"
base="${2:?usage: bench_regression.sh <fresh.json> <baseline.json> [tolerance_pct]}"
tol="${3:-15}"

# Extract "id per_second" pairs: one bench row per line in our reports.
# (sed, not gawk match(): mawk-only hosts lack the 3-arg form.)
extract() {
  sed -n 's/.*"id": "\([^"]*\)".*"per_second": \([0-9.][0-9.]*\).*/\1 \2/p' "$1"
}

fresh_pairs=$(extract "$fresh")
base_pairs=$(extract "$base")
if [ -z "$base_pairs" ]; then
  echo "bench_regression: no per_second rows in baseline $base" >&2
  exit 1
fi

fail=0
while read -r id base_rate; do
  fresh_rate=$(printf '%s\n' "$fresh_pairs" | awk -v id="$id" '$1 == id { print $2 }')
  if [ -z "$fresh_rate" ]; then
    echo "MISSING  $id (in baseline, absent from fresh report)"
    fail=1
    continue
  fi
  awk -v id="$id" -v f="$fresh_rate" -v b="$base_rate" -v tol="$tol" '
    BEGIN {
      floor = b * (1 - tol / 100)
      delta = (f / b - 1) * 100
      if (f < floor) {
        printf "REGRESS  %-28s %.0f -> %.0f per_second (%+.1f%%, tolerance -%s%%)\n", id, b, f, delta, tol
        exit 1
      }
      printf "ok       %-28s %.0f -> %.0f per_second (%+.1f%%)\n", id, b, f, delta
    }' || fail=1
done <<<"$base_pairs"

printf '%s\n' "$fresh_pairs" | awk -v base="$base_pairs" '
  BEGIN { n = split(base, lines, "\n"); for (i = 1; i <= n; i++) { split(lines[i], p, " "); seen[p[1]] = 1 } }
  !($1 in seen) { printf "new      %-28s (no baseline entry yet)\n", $1 }'

exit "$fail"
