#!/usr/bin/env bash
# Crash-tolerance smoke for the noc-serve job service (CI `serve-smoke`).
#
#   1. garbage NOC_BATCH_WIDTH must be refused at boot with exit 2;
#   2. an uninterrupted reference run of a quick sweep job is recorded;
#   3. the same job is submitted to a fresh server which is killed with
#      SIGKILL mid-run, restarted over the same data dir, and polled to
#      DONE — the sorted checkpoint rows must equal the reference's;
#   4. the restarted server drains cleanly over POST /drain and exits 0.
#
# Requires: curl, a release build of the noc_serve binary (override with
# NOC_SERVE_BIN). Exits non-zero with a FAIL line on any violation.
set -euo pipefail

BIN=${NOC_SERVE_BIN:-target/release/noc_serve}
[ -x "$BIN" ] || { echo "FAIL: $BIN not built (cargo build --release -p noc-serve)"; exit 1; }

WORK=$(mktemp -d)
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

# The job under test: 8 second-scale points, so the kill lands mid-run.
SPEC='{"kind": "sweep", "schemes": "SEEC,mSEEC", "transients": "0.0,0.005,0.01,0.05", "cycles": "8000", "seed": "77"}'

fail() { echo "FAIL: $*"; exit 1; }

# Starts the server over $1 and sets ADDR/SERVER_PID.
start_server() {
  local dir=$1
  rm -f "$dir/addr.txt"
  "$BIN" --data-dir "$dir" --workers 1 --retry-base-ms 5 &
  SERVER_PID=$!
  for _ in $(seq 1 300); do
    if [ -s "$dir/addr.txt" ]; then
      ADDR=$(tr -d '[:space:]' < "$dir/addr.txt")
      return 0
    fi
    sleep 0.1
  done
  fail "server never published its address"
}

# Extracts "key": "value" (or bare numeric) from a flat JSON row on stdin.
json_field() {
  sed -n "s/.*\"$1\": \"\{0,1\}\([^\",}]*\).*/\1/p" | head -n 1
}

# Polls GET /jobs/<id> until the stage is terminal; echoes the status row.
await_done() {
  local id=$1 status stage
  for _ in $(seq 1 1200); do
    status=$(curl -fsS "http://$ADDR/jobs/$id")
    stage=$(printf '%s' "$status" | json_field stage)
    case "$stage" in
      done) printf '%s' "$status"; return 0 ;;
      failed|cancelled) fail "job ended $stage: $status" ;;
    esac
    sleep 0.1
  done
  fail "job never reached a terminal stage"
}

echo "== garbage NOC_BATCH_WIDTH is refused at boot (exit 2)"
mkdir -p "$WORK/env"
set +e
NOC_BATCH_WIDTH=banana "$BIN" --data-dir "$WORK/env" >/dev/null 2>"$WORK/env.err"
rc=$?
set -e
[ "$rc" -eq 2 ] || fail "expected exit 2 on garbage NOC_BATCH_WIDTH, got $rc"
grep -q NOC_BATCH_WIDTH "$WORK/env.err" || fail "exit-2 diagnostic must name NOC_BATCH_WIDTH"

echo "== reference run (uninterrupted)"
mkdir -p "$WORK/reference"
start_server "$WORK/reference"
ID=$(curl -fsS -X POST --data "$SPEC" "http://$ADDR/jobs" | json_field id)
[ -n "$ID" ] || fail "no job id in submit response"
await_done "$ID" >/dev/null
curl -fsS "http://$ADDR/jobs/$ID/rows" | sort > "$WORK/reference.rows"
[ "$(wc -l < "$WORK/reference.rows")" -eq 8 ] || fail "reference run must record 8 rows"
kill "$SERVER_PID"; wait "$SERVER_PID" 2>/dev/null || true; SERVER_PID=""

echo "== victim run: kill -9 mid-sweep, restart, resume to DONE"
mkdir -p "$WORK/victim"
start_server "$WORK/victim"
VID=$(curl -fsS -X POST --data "$SPEC" "http://$ADDR/jobs" | json_field id)
[ "$VID" = "$ID" ] || fail "same spec must content-address to the same id ($VID vs $ID)"
ROWS="$WORK/victim/jobs/$VID/rows.ckpt.jsonl"
for _ in $(seq 1 3000); do
  n=$(wc -l < "$ROWS" 2>/dev/null || echo 0)
  [ "$n" -ge 8 ] && fail "sweep finished before the kill; enlarge it"
  [ "$n" -ge 1 ] && break
  sleep 0.01
done
[ "$n" -ge 1 ] || fail "no checkpoint rows before the kill window closed"
kill -9 "$SERVER_PID"; wait "$SERVER_PID" 2>/dev/null || true; SERVER_PID=""
echo "   killed -9 with $n/8 rows checkpointed"

start_server "$WORK/victim"
STATUS=$(await_done "$VID")
DONE=$(printf '%s' "$STATUS" | json_field done)
[ "$DONE" = "8" ] || fail "resumed job reports done=$DONE, want 8: $STATUS"

echo "== resumed rows are identical (as a sorted set) to the reference"
curl -fsS "http://$ADDR/jobs/$VID/rows" | sort > "$WORK/victim.rows"
diff "$WORK/reference.rows" "$WORK/victim.rows" \
  || fail "kill -9 + resume diverged from the uninterrupted run"

echo "== graceful drain exits 0"
curl -fsS -X POST "http://$ADDR/drain" >/dev/null
for _ in $(seq 1 300); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$SERVER_PID" 2>/dev/null; then fail "server never exited after drain"; fi
wait "$SERVER_PID" || fail "drained server exited non-zero"
SERVER_PID=""

echo "serve smoke: OK (killed at $n/8 rows, resumed to byte-identical set)"
