//! Deadlock rescue demo: the paper's Fig 2 scenario at network scale.
//!
//! Fully-adaptive random routing with a single VC forms routing deadlocks
//! within a few thousand cycles of heavy uniform-random traffic. Run the
//! same configuration bare (it wedges, and the wait-for graph shows the
//! dependency cycle) and under SEEC (seekers keep draining the cycles).
//!
//! ```sh
//! cargo run --release --example deadlock_rescue
//! ```

use seec_repro::seec::SeecMechanism;
use seec_repro::sim::{watchdog, Mechanism, NoMechanism, Sim};
use seec_repro::traffic::{SyntheticWorkload, TrafficPattern};
use seec_repro::types::{BaseRouting, NetConfig, RoutingAlgo};

fn run(label: &str, mech: Box<dyn Mechanism>) {
    let cfg = NetConfig::synth(4, 1)
        .with_routing(RoutingAlgo::Uniform(BaseRouting::AdaptiveMinimal))
        .with_seed(7);
    let wl = SyntheticWorkload::new(TrafficPattern::UniformRandom, 0.30, 4, 4, cfg.warmup, 7);
    let mut sim = Sim::new(cfg, Box::new(wl), mech);

    println!("--- {label} ---");
    for block in 1..=20 {
        sim.run(1000);
        if watchdog::looks_stuck(&sim.net, watchdog::DEFAULT_STUCK_THRESHOLD) {
            println!("  WEDGED after {} cycles", sim.net.cycle);
            if let Some(cycle) = watchdog::find_deadlock_cycle(&sim.net) {
                println!("  dependency cycle through {} blocked VCs:", cycle.len());
                for w in cycle.iter().take(6) {
                    println!("    router {} port {} vc {}", w.node, w.port, w.vc);
                }
            }
            return;
        }
        if block % 5 == 0 {
            println!(
                "  cycle {:>6}: {} delivered, {} in flight",
                sim.net.cycle,
                sim.net.stats.ejected_packets_all,
                sim.net.flits_in_network()
            );
        }
    }
    let s = sim.finish();
    println!(
        "  LIVE for {} cycles: {} packets delivered, {} rescued via Free Flow",
        s.end_cycle, s.ejected_packets_all, s.ff_packets
    );
}

fn main() {
    run("no mechanism (deadlock-prone)", Box::new(NoMechanism));
    let cfg = NetConfig::synth(4, 1);
    run("SEEC", Box::new(SeecMechanism::for_net(&cfg)));
}
