//! Application traffic demo: a PARSEC-style coherence workload on a 4×4
//! mesh, comparing the 6-VNet XY baseline against SEEC running on a single
//! `VNet` at one sixth of the buffer budget.
//!
//! ```sh
//! cargo run --release --example coherent_app [app-name]
//! ```

use seec_repro::protocol::{ProtocolConfig, ProtocolWorkload};
use seec_repro::seec::SeecMechanism;
use seec_repro::sim::{Mechanism, NoMechanism, Sim};
use seec_repro::traffic::apps;
use seec_repro::types::{BaseRouting, NetConfig, RoutingAlgo};

fn run(label: &str, cfg: NetConfig, mech: Box<dyn Mechanism>, app: &apps::AppProfile) {
    let pcfg = ProtocolConfig {
        txns_per_core: Some(200),
        ..ProtocolConfig::default()
    };
    let wl = ProtocolWorkload::new(*app, pcfg, cfg.num_nodes() as u16, cfg.warmup, 99);
    let mut sim = Sim::new(cfg, Box::new(wl), mech);
    let done = sim.run_until_done(2_000_000);
    let runtime = sim.net.cycle;
    let s = sim.finish();
    println!(
        "{label:<28} runtime {:>8} cycles{}  avg pkt latency {:>6.1}  max {:>6}",
        runtime,
        if done { "" } else { " (unfinished)" },
        s.avg_total_latency(),
        s.max_total_latency
    );
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "canneal".into());
    let app = apps::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown app '{name}', using canneal");
        apps::by_name("canneal").unwrap()
    });
    println!(
        "app: {} (think {} cycles, {}% reads, fwd {}%)",
        app.name,
        app.think_time,
        (app.read_frac * 100.0) as u32,
        (app.fwd_prob * 100.0) as u32
    );

    // Baseline: 6 virtual networks, 2 VCs each — 12 VCs per port.
    let base = NetConfig::full_system(4, 6, 2)
        .with_routing(RoutingAlgo::Uniform(BaseRouting::Xy))
        .with_seed(99);
    run(
        "XY, 6 VNets (12 VCs/port)",
        base,
        Box::new(NoMechanism),
        app,
    );

    // SEEC: one VNet, 2 VCs — one sixth the buffers, same protocol.
    let seec_cfg = NetConfig::full_system(4, 1, 2)
        .with_routing(RoutingAlgo::Uniform(BaseRouting::AdaptiveMinimal))
        .with_seed(99);
    let mech = SeecMechanism::for_net(&seec_cfg);
    run("SEEC, 1 VNet (2 VCs/port)", seec_cfg, Box::new(mech), app);
}
