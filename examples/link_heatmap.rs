//! Link-utilization heat map: where the flits actually flow.
//!
//! Runs a pattern on an 8×8 mesh and prints per-router east/south link
//! utilization as an ASCII grid — transpose traffic lights up the diagonal,
//! uniform random the centre, and SEEC's FF traversals show up on otherwise
//! idle links.
//!
//! ```sh
//! cargo run --release --example link_heatmap [pattern] [rate]
//! ```

use seec_repro::seec::SeecMechanism;
use seec_repro::sim::Sim;
use seec_repro::traffic::{SyntheticWorkload, TrafficPattern};
use seec_repro::types::{BaseRouting, Coord, Direction, NetConfig, RoutingAlgo};

fn shade(frac: f64) -> char {
    match (frac * 5.0) as u32 {
        0 => '.',
        1 => '-',
        2 => '+',
        3 => '*',
        _ => '#',
    }
}

fn main() {
    let pattern = match std::env::args().nth(1).as_deref() {
        Some("uniform_random") => TrafficPattern::UniformRandom,
        Some("bit_rotation") => TrafficPattern::BitRotation,
        Some("shuffle") => TrafficPattern::Shuffle,
        _ => TrafficPattern::Transpose,
    };
    let rate: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.10);
    let k = 8u8;
    let cfg = NetConfig::synth(k, 2)
        .with_routing(RoutingAlgo::Uniform(BaseRouting::AdaptiveMinimal))
        .with_seed(7);
    let wl = SyntheticWorkload::new(pattern, rate, k, k, cfg.warmup, 7);
    let mech = SeecMechanism::for_net(&cfg);
    let mut sim = Sim::new(cfg, Box::new(wl), Box::new(mech));
    sim.run(30_000);
    let s = sim.finish();

    let max = Direction::CARDINAL
        .iter()
        .flat_map(|d| (0..k * k).map(move |n| s.link_use_at(noc_types_node(n), d.index())))
        .max()
        .unwrap_or(1)
        .max(1);

    println!(
        "{} @ {rate} on {k}x{k} under SEEC — {} packets, {:.1} avg latency",
        pattern.label(),
        s.ejected_packets,
        s.avg_total_latency()
    );
    println!("eastbound link utilization (row-major, '#' = busiest):");
    for y in 0..k {
        let row: String = (0..k)
            .map(|x| {
                let n = Coord::new(x, y).to_node(k);
                shade(s.link_use_at(n, Direction::East.index()) as f64 / max as f64)
            })
            .collect();
        println!("  {row}");
    }
    println!("southbound link utilization:");
    for y in 0..k {
        let row: String = (0..k)
            .map(|x| {
                let n = Coord::new(x, y).to_node(k);
                shade(s.link_use_at(n, Direction::South.index()) as f64 / max as f64)
            })
            .collect();
        println!("  {row}");
    }
}

fn noc_types_node(n: u8) -> seec_repro::types::NodeId {
    seec_repro::types::NodeId(n as u16)
}
