//! Quickstart: simulate SEEC on a 4×4 mesh under uniform-random traffic and
//! print the headline statistics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use seec_repro::seec::SeecMechanism;
use seec_repro::sim::Sim;
use seec_repro::traffic::{SyntheticWorkload, TrafficPattern};
use seec_repro::types::{BaseRouting, NetConfig, RoutingAlgo};

fn main() {
    // A 4×4 mesh with 2 VCs per port, fully-adaptive minimal random routing —
    // deadlock-prone by itself; SEEC provides correctness *and* bypass paths.
    let cfg = NetConfig::synth(4, 2)
        .with_routing(RoutingAlgo::Uniform(BaseRouting::AdaptiveMinimal))
        .with_seed(42);

    // 10% injection, the paper's 1-/5-flit packet mix.
    let workload = SyntheticWorkload::new(
        TrafficPattern::UniformRandom,
        0.10,
        cfg.cols,
        cfg.rows,
        cfg.warmup,
        42,
    );

    let mechanism = SeecMechanism::for_net(&cfg);
    let mut sim = Sim::new(cfg, Box::new(workload), Box::new(mechanism));

    sim.run(30_000);
    let stats = sim.finish();

    println!("SEEC on 4x4 mesh, uniform random @ 0.10 pkts/node/cycle");
    println!("  packets delivered : {}", stats.ejected_packets);
    println!(
        "  avg packet latency: {:.1} cycles",
        stats.avg_total_latency()
    );
    println!("  avg hops          : {:.2}", stats.avg_hops());
    println!(
        "  throughput        : {:.4} pkts/node/cycle",
        stats.throughput(16)
    );
    println!(
        "  Free-Flow rescues : {} packets ({:.1}% of deliveries)",
        stats.ff_packets,
        100.0 * stats.ff_fraction()
    );
    println!(
        "  seeker side-band  : {} hops (16-bit links)",
        stats.sideband_hops
    );
}
