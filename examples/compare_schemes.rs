//! Scheme shoot-out: a miniature Fig 8 panel from the public harness API —
//! every deadlock-freedom scheme on one pattern, latency and throughput per
//! injection rate.
//!
//! ```sh
//! cargo run --release --example compare_schemes [pattern] [k]
//! # pattern ∈ uniform_random | transpose | bit_rotation | shuffle
//! ```

use seec_repro::experiments::runner::{run_synth, Scheme, SynthSpec};
use seec_repro::traffic::TrafficPattern;

fn parse_pattern(s: &str) -> TrafficPattern {
    match s {
        "transpose" => TrafficPattern::Transpose,
        "bit_rotation" => TrafficPattern::BitRotation,
        "shuffle" => TrafficPattern::Shuffle,
        _ => TrafficPattern::UniformRandom,
    }
}

fn main() {
    let pattern = parse_pattern(&std::env::args().nth(1).unwrap_or_default());
    let k: u8 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let schemes = [
        Scheme::Xy,
        Scheme::WestFirst,
        Scheme::escape(),
        Scheme::MinBd,
        Scheme::Spin,
        Scheme::Swap,
        Scheme::Drain,
        Scheme::seec(),
        Scheme::mseec(),
    ];
    println!(
        "{} on {k}x{k}, 4 VCs — avg latency (throughput) per injection rate",
        pattern.label()
    );
    print!("{:>10}", "rate");
    for s in schemes {
        print!("{:>18}", s.label());
    }
    println!();
    for rate in [0.02, 0.06, 0.10, 0.14, 0.18] {
        print!("{rate:>10.2}");
        for scheme in schemes {
            let st = run_synth(SynthSpec::new(k, 4, scheme, pattern, rate).with_cycles(20_000));
            print!(
                "{:>18}",
                format!(
                    "{:>6.1} ({:.3})",
                    st.avg_total_latency(),
                    st.throughput((k as usize).pow(2))
                )
            );
        }
        println!();
    }
}
