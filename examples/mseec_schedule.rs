//! Visualize mSEEC's partition schedule (the paper's Fig 5) and watch the
//! concurrent engines at work.
//!
//! Columns are partitions, rows are groups: in phase `p`, the NICs of row
//! `p` are active; in step `s`, the NIC in column `j` seeks within column
//! `(j + s) mod k`. This example prints the schedule for a k×k mesh and then
//! runs mSEEC under load to show several simultaneous Free-Flow rescues.
//!
//! ```sh
//! cargo run --release --example mseec_schedule [k]
//! ```

use seec_repro::seec::MSeecMechanism;
use seec_repro::sim::Sim;
use seec_repro::traffic::{SyntheticWorkload, TrafficPattern};
use seec_repro::types::{BaseRouting, Coord, NetConfig, RoutingAlgo};

fn main() {
    let k: u8 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);

    println!("mSEEC schedule on a {k}x{k} mesh ({k} partitions = columns, {k} groups = rows)");
    for phase in 0..k {
        println!("\nPhase {phase} — active group: row {phase}");
        for step in 0..k {
            let assignments: Vec<String> = (0..k)
                .map(|j| {
                    let c = (j + step) % k;
                    let nic = Coord::new(j, phase).to_node(k);
                    format!("NIC {nic} (col {j}) => column {c}")
                })
                .collect();
            println!("  step {step}: {}", assignments.join(" | "));
        }
    }

    // Now run it: transpose traffic at a saturating load makes every engine
    // find work.
    println!(
        "\nRunning mSEEC under transpose @ 0.20 on {k0}x{k0}...",
        k0 = k.max(4)
    );
    let k = k.max(4);
    let cfg = NetConfig::synth(k, 2)
        .with_routing(RoutingAlgo::Uniform(BaseRouting::AdaptiveMinimal))
        .with_seed(1);
    let wl = SyntheticWorkload::new(TrafficPattern::Transpose, 0.20, k, k, cfg.warmup, 1);
    let mech = MSeecMechanism::for_net(&cfg);
    let mut sim = Sim::new(cfg, Box::new(wl), Box::new(mech));
    sim.run(30_000);
    let s = sim.finish();
    println!(
        "  delivered {} packets, {} via Free Flow ({:.1}%), avg latency {:.1} cycles",
        s.ejected_packets,
        s.ff_packets,
        100.0 * s.ff_fraction(),
        s.avg_total_latency()
    );
    println!("  no two FF packets ever shared a link-cycle (enforced by the reservation table)");
}
