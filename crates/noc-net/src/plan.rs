//! Scheduled network-fault plans.
//!
//! The network twin of `noc_store::FaultPlan`: every *connection
//! operation* (one `connect`, one `accept` of a pending connection, one
//! `read` call, one `write` call) consumes one op index from the plan's
//! counter, and the plan decides what happens at that index. Two sources
//! feed a plan, validated eagerly by binaries (exit 2):
//!
//! * `NOC_NET_FAULT_SCHEDULE="3:reset,7:torn@12,9:slow@5,2:partition,8:heal"`
//!   — explicit op-indexed events;
//! * `NOC_NET_FAULT_SEED=42` — seeded pseudo-random faults for soaks.
//!
//! When both are set, explicit events win at their op index and the seed
//! fills the rest — the same precedence as the VFS knobs.
//! [`NetFaultPlan::canonical`] renders the plan to the exact string that
//! reproduces it and [`NetFaultPlan::digest`] fingerprints it for repro
//! records.

use std::collections::BTreeMap;

/// What happens to one connection operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetFaultKind {
    /// The op fails with `ECONNRESET` (an accept drops the pending
    /// connection; a connect is refused; a read/write kills the stream).
    Reset,
    /// A read/write transfers only the first `n` bytes, then the stream is
    /// dead — every later op on it resets. At an admission op (accept /
    /// connect) this behaves like [`NetFaultKind::Reset`].
    Torn(u32),
    /// Sleep this many milliseconds, then perform the op normally — a slow
    /// trickle / congested path.
    Slow(u64),
    /// Admission failure: accepts and connects fail at this op. Reads and
    /// writes on already-established streams are unaffected.
    AcceptFail,
    /// From this op onward every connection operation fails — a sticky
    /// network partition — until a [`NetFaultKind::Heal`] event.
    Partition,
    /// Clear a [`NetFaultKind::Partition`]; this op then succeeds.
    Heal,
}

impl NetFaultKind {
    fn parse(code: &str) -> Result<NetFaultKind, String> {
        let (name, arg) = match code.split_once('@') {
            Some((n, a)) => (n, Some(a)),
            None => (code, None),
        };
        let need_no_arg = |kind: NetFaultKind| match arg {
            None => Ok(kind),
            Some(a) => Err(format!("fault kind '{name}' takes no '@{a}' argument")),
        };
        match name {
            "reset" => need_no_arg(NetFaultKind::Reset),
            "acceptfail" => need_no_arg(NetFaultKind::AcceptFail),
            "partition" => need_no_arg(NetFaultKind::Partition),
            "heal" => need_no_arg(NetFaultKind::Heal),
            "torn" => {
                let a = arg.ok_or("fault kind 'torn' needs '@<bytes>'")?;
                let n: u32 = a
                    .parse()
                    .map_err(|_| format!("bad torn byte offset '{a}'"))?;
                Ok(NetFaultKind::Torn(n))
            }
            "slow" => {
                let a = arg.ok_or("fault kind 'slow' needs '@<millis>'")?;
                let ms: u64 = a.parse().map_err(|_| format!("bad slow millis '{a}'"))?;
                Ok(NetFaultKind::Slow(ms))
            }
            other => Err(format!(
                "unknown fault kind '{other}' \
                 (expected reset|torn@N|slow@MS|acceptfail|partition|heal)"
            )),
        }
    }

    fn canonical(self) -> String {
        match self {
            NetFaultKind::Reset => "reset".to_string(),
            NetFaultKind::Torn(n) => format!("torn@{n}"),
            NetFaultKind::Slow(ms) => format!("slow@{ms}"),
            NetFaultKind::AcceptFail => "acceptfail".to_string(),
            NetFaultKind::Partition => "partition".to_string(),
            NetFaultKind::Heal => "heal".to_string(),
        }
    }
}

/// One scheduled event: at connection op `op` (0-based), do `kind`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetFaultEvent {
    /// 0-based index into the endpoint's connection-operation sequence.
    pub op: u64,
    /// What to inject there.
    pub kind: NetFaultKind,
}

/// A validated, canonicalizable network-fault plan.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NetFaultPlan {
    events: BTreeMap<u64, NetFaultKind>,
    seed: Option<u64>,
}

impl NetFaultPlan {
    /// Parses an explicit `op:kind[,op:kind...]` schedule string.
    pub fn parse_schedule(s: &str) -> Result<NetFaultPlan, String> {
        if s.trim().is_empty() {
            return Err("empty fault schedule".to_string());
        }
        let mut events = BTreeMap::new();
        for part in s.split(',') {
            let part = part.trim();
            let (op_s, code) = part
                .split_once(':')
                .ok_or_else(|| format!("bad fault event '{part}' (expected op:kind)"))?;
            let op: u64 = op_s
                .trim()
                .parse()
                .map_err(|_| format!("bad op index '{op_s}' in '{part}'"))?;
            let kind = NetFaultKind::parse(code.trim())?;
            if events.insert(op, kind).is_some() {
                return Err(format!("duplicate fault event for op {op}"));
            }
        }
        Ok(NetFaultPlan { events, seed: None })
    }

    /// Builds a plan from the two environment knobs (either may be unset).
    /// `Ok(None)` means no fault injection is configured. Errors are the
    /// messages binaries print before exiting with status 2.
    pub fn from_env(
        schedule: Option<&str>,
        seed: Option<&str>,
    ) -> Result<Option<NetFaultPlan>, String> {
        let mut plan = match schedule {
            Some(s) => Some(
                NetFaultPlan::parse_schedule(s)
                    .map_err(|e| format!("NOC_NET_FAULT_SCHEDULE: {e}"))?,
            ),
            None => None,
        };
        if let Some(s) = seed {
            let n: u64 = s
                .trim()
                .parse()
                .map_err(|_| format!("NOC_NET_FAULT_SEED: '{s}' is not an unsigned integer"))?;
            plan.get_or_insert_with(NetFaultPlan::default).seed = Some(n);
        }
        Ok(plan)
    }

    /// Adds one explicit event (test/soak construction path).
    #[must_use]
    pub fn with_event(mut self, op: u64, kind: NetFaultKind) -> NetFaultPlan {
        self.events.insert(op, kind);
        self
    }

    /// Seeded-random plan with no explicit events.
    #[must_use]
    pub fn seeded(seed: u64) -> NetFaultPlan {
        NetFaultPlan {
            events: BTreeMap::new(),
            seed: Some(seed),
        }
    }

    /// The exact string that reproduces this plan: the explicit events in
    /// op order (the `NOC_NET_FAULT_SCHEDULE` syntax), then `seed=N` if a
    /// seed participates.
    pub fn canonical(&self) -> String {
        let mut parts: Vec<String> = self
            .events
            .iter()
            .map(|(op, kind)| format!("{op}:{}", kind.canonical()))
            .collect();
        if let Some(seed) = self.seed {
            parts.push(format!("seed={seed}"));
        }
        parts.join(",")
    }

    /// FNV-1a fingerprint of [`NetFaultPlan::canonical`], for repro
    /// records.
    pub fn digest(&self) -> u64 {
        noc_store::fnv1a(self.canonical().as_bytes())
    }

    /// What this plan injects at connection op `op`, if anything. Explicit
    /// events win; otherwise the seed draws deterministically per op
    /// (≈1-in-8 fault rate over {reset, torn, slow@1, acceptfail}).
    pub fn kind_at(&self, op: u64) -> Option<NetFaultKind> {
        if let Some(&k) = self.events.get(&op) {
            return Some(k);
        }
        let seed = self.seed?;
        let r = splitmix64(seed ^ op.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        if !r.is_multiple_of(8) {
            return None;
        }
        Some(match (r >> 3) % 4 {
            0 => NetFaultKind::Reset,
            1 => NetFaultKind::Torn(u32::try_from((r >> 5) % 32).unwrap_or(0)),
            2 => NetFaultKind::Slow(1),
            _ => NetFaultKind::AcceptFail,
        })
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_parses_and_round_trips_canonically() {
        let plan = NetFaultPlan::parse_schedule("7:torn@12, 3:reset ,9:slow@5,2:partition,8:heal")
            .unwrap();
        assert_eq!(
            plan.canonical(),
            "2:partition,3:reset,7:torn@12,8:heal,9:slow@5"
        );
        let again = NetFaultPlan::parse_schedule(&plan.canonical()).unwrap();
        assert_eq!(again, plan);
        assert_eq!(again.digest(), plan.digest());
    }

    #[test]
    fn schedule_rejects_garbage() {
        for bad in [
            "",
            "x:reset",
            "3:whatever",
            "3:torn",
            "3:torn@many",
            "3:slow",
            "3:reset@5",
            "3reset",
            "3:reset,3:heal",
        ] {
            assert!(NetFaultPlan::parse_schedule(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn from_env_combines_schedule_and_seed() {
        assert_eq!(NetFaultPlan::from_env(None, None).unwrap(), None);
        let p = NetFaultPlan::from_env(Some("0:reset"), Some("9"))
            .unwrap()
            .unwrap();
        assert_eq!(p.canonical(), "0:reset,seed=9");
        assert!(NetFaultPlan::from_env(Some("nope"), None).is_err());
        assert!(NetFaultPlan::from_env(None, Some("-1")).is_err());
        assert!(NetFaultPlan::from_env(None, Some("12x")).is_err());
    }

    #[test]
    fn explicit_events_win_over_the_seed() {
        let p = NetFaultPlan::seeded(42).with_event(0, NetFaultKind::Heal);
        assert_eq!(p.kind_at(0), Some(NetFaultKind::Heal));
        // Elsewhere the seed draws exactly as a pure seeded plan would.
        let pure = NetFaultPlan::seeded(42);
        for op in 1..256 {
            assert_eq!(p.kind_at(op), pure.kind_at(op), "op {op}");
        }
    }

    #[test]
    fn seeded_draws_are_deterministic() {
        let a = NetFaultPlan::seeded(42);
        let b = NetFaultPlan::seeded(42);
        let c = NetFaultPlan::seeded(43);
        let draws_a: Vec<_> = (0..256).map(|op| a.kind_at(op)).collect();
        let draws_b: Vec<_> = (0..256).map(|op| b.kind_at(op)).collect();
        let draws_c: Vec<_> = (0..256).map(|op| c.kind_at(op)).collect();
        assert_eq!(draws_a, draws_b);
        assert_ne!(draws_a, draws_c);
        assert!(
            draws_a.iter().any(Option::is_some),
            "seed 42 injects nothing in 256 ops"
        );
        assert!(
            draws_a.iter().any(Option::is_none),
            "seed 42 faults every op"
        );
    }
}
