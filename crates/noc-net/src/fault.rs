//! The fault transport: `std::net` wrappers that replay a
//! [`NetFaultPlan`] against every connection operation.
//!
//! [`FaultNet`] owns the mutable state of one endpoint's plan — the
//! connection-op counter and the sticky partition flag. [`Transport`] is
//! what server and client code hold: either a zero-overhead passthrough
//! (no plan configured — one `Option` branch per op, no allocation, no
//! syscall difference) or a wrapper around a shared [`FaultNet`].
//!
//! A torn read/write kills its stream: the torn op transfers only the
//! scheduled prefix, the socket is shut down so the *peer* observes the
//! failure promptly (a real tear surfaces as RST/EOF, not silence), and
//! every later op on the stream fails with `ECONNRESET` without consuming
//! plan ops — dead streams are a consequence, not an injection site.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use crate::plan::{NetFaultKind, NetFaultPlan};

fn reset(op: u64) -> io::Error {
    io::Error::new(
        io::ErrorKind::ConnectionReset,
        format!("injected connection reset at net op {op}"),
    )
}

fn refused(op: u64) -> io::Error {
    io::Error::new(
        io::ErrorKind::ConnectionRefused,
        format!("injected admission failure at net op {op}"),
    )
}

fn partitioned(op: u64) -> io::Error {
    io::Error::new(
        io::ErrorKind::ConnectionReset,
        format!("injected network partition at net op {op}"),
    )
}

fn dead_stream() -> io::Error {
    io::Error::new(
        io::ErrorKind::ConnectionReset,
        "stream torn by an earlier injected fault",
    )
}

/// Shared mutable state of one endpoint's fault plan: the connection-op
/// counter and the sticky partition flag.
#[derive(Debug)]
pub struct FaultNet {
    plan: NetFaultPlan,
    ops: AtomicU64,
    parted: AtomicBool,
}

impl FaultNet {
    /// Wraps connection operations with `plan`.
    #[must_use]
    pub fn new(plan: NetFaultPlan) -> Arc<FaultNet> {
        Arc::new(FaultNet {
            plan,
            ops: AtomicU64::new(0),
            parted: AtomicBool::new(false),
        })
    }

    /// Connection operations performed so far (the next op index). A probe
    /// run reads this to enumerate the ops a workload performs.
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::SeqCst)
    }

    /// The plan this instance replays.
    pub fn plan(&self) -> &NetFaultPlan {
        &self.plan
    }

    /// Claims the next op index and resolves what to inject there,
    /// applying the sticky partition/heal transitions.
    fn next_op(&self) -> (u64, Option<NetFaultKind>) {
        let op = self.ops.fetch_add(1, Ordering::SeqCst);
        let kind = self.plan.kind_at(op);
        match kind {
            Some(NetFaultKind::Partition) => {
                self.parted.store(true, Ordering::SeqCst);
                return (op, Some(NetFaultKind::Partition));
            }
            Some(NetFaultKind::Heal) => {
                self.parted.store(false, Ordering::SeqCst);
                return (op, None); // the healing op itself succeeds
            }
            _ => {}
        }
        if self.parted.load(Ordering::SeqCst) {
            return (op, Some(NetFaultKind::Partition));
        }
        (op, kind)
    }
}

/// The transport endpoints hold: passthrough or faulted. Cloning shares
/// the underlying [`FaultNet`] (and so the op counter).
#[derive(Clone, Debug, Default)]
pub struct Transport {
    net: Option<Arc<FaultNet>>,
}

impl Transport {
    /// The zero-overhead production transport.
    #[must_use]
    pub fn passthrough() -> Transport {
        Transport { net: None }
    }

    /// A transport replaying `net`'s plan.
    #[must_use]
    pub fn faulted(net: Arc<FaultNet>) -> Transport {
        Transport { net: Some(net) }
    }

    /// The process-wide transport, chosen once from the `NOC_NET_FAULT_*`
    /// environment knobs (see [`active`]).
    #[must_use]
    pub fn from_env() -> Transport {
        active()
    }

    /// True when a fault plan is attached.
    pub fn is_faulted(&self) -> bool {
        self.net.is_some()
    }

    /// Wraps a bound listener. Accepting a pending connection consumes one
    /// op; an accept that would block consumes nothing (idle polling must
    /// not burn schedule indices).
    #[must_use]
    pub fn listener(&self, inner: TcpListener) -> FaultListener {
        FaultListener {
            inner,
            net: self.net.clone(),
        }
    }

    /// Connects to `addr`, consuming one admission op when faulted.
    pub fn connect(&self, addr: &str, timeout: Duration) -> io::Result<FaultStream> {
        let Some(net) = &self.net else {
            return Ok(FaultStream::passthrough(raw_connect(addr, timeout)?));
        };
        let (op, kind) = net.next_op();
        match kind {
            Some(NetFaultKind::Slow(ms)) => std::thread::sleep(Duration::from_millis(ms)),
            Some(NetFaultKind::AcceptFail) => return Err(refused(op)),
            Some(NetFaultKind::Partition) => return Err(partitioned(op)),
            Some(NetFaultKind::Reset | NetFaultKind::Torn(_)) => return Err(reset(op)),
            // next_op maps Heal to None; folded in to keep the match total.
            None | Some(NetFaultKind::Heal) => {}
        }
        Ok(FaultStream::faulted(
            raw_connect(addr, timeout)?,
            Arc::clone(net),
        ))
    }
}

fn raw_connect(addr: &str, timeout: Duration) -> io::Result<TcpStream> {
    let mut last = None;
    for sa in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&sa, timeout) {
            Ok(s) => return Ok(s),
            Err(e) => last = Some(e),
        }
    }
    Err(last.unwrap_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("no address for {addr}"),
        )
    }))
}

/// A listener whose accepts go through the fault plan.
pub struct FaultListener {
    inner: TcpListener,
    net: Option<Arc<FaultNet>>,
}

impl FaultListener {
    /// Accepts one pending connection through the plan. `WouldBlock` (a
    /// nonblocking listener with nothing pending) passes through without
    /// consuming an op index.
    pub fn accept(&self) -> io::Result<(FaultStream, SocketAddr)> {
        let (stream, peer) = self.inner.accept()?;
        let Some(net) = &self.net else {
            return Ok((FaultStream::passthrough(stream), peer));
        };
        let (op, kind) = net.next_op();
        match kind {
            None | Some(NetFaultKind::Heal) => {}
            Some(NetFaultKind::Slow(ms)) => std::thread::sleep(Duration::from_millis(ms)),
            Some(NetFaultKind::AcceptFail) => return Err(refused(op)),
            Some(NetFaultKind::Partition) => return Err(partitioned(op)),
            Some(NetFaultKind::Reset | NetFaultKind::Torn(_)) => {
                // The pending connection is dropped; the peer sees a reset.
                let _ = stream.shutdown(Shutdown::Both);
                return Err(reset(op));
            }
        }
        Ok((FaultStream::faulted(stream, Arc::clone(net)), peer))
    }

    /// Delegates to [`TcpListener::set_nonblocking`].
    pub fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        self.inner.set_nonblocking(nonblocking)
    }

    /// Delegates to [`TcpListener::local_addr`].
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }
}

/// A stream whose reads and writes go through the fault plan. Clones (for
/// split reader/writer use) share the plan state *and* the dead flag, so a
/// tear observed on one half kills the other.
#[derive(Debug)]
pub struct FaultStream {
    inner: TcpStream,
    net: Option<Arc<FaultNet>>,
    dead: Arc<AtomicBool>,
}

impl FaultStream {
    fn passthrough(inner: TcpStream) -> FaultStream {
        FaultStream {
            inner,
            net: None,
            dead: Arc::new(AtomicBool::new(false)),
        }
    }

    fn faulted(inner: TcpStream, net: Arc<FaultNet>) -> FaultStream {
        FaultStream {
            inner,
            net: Some(net),
            dead: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Kills the stream: later ops reset without consuming plan indices,
    /// and the socket is shut down so the peer observes the tear promptly.
    fn kill(&self) {
        self.dead.store(true, Ordering::SeqCst);
        let _ = self.inner.shutdown(Shutdown::Both);
    }

    /// Clone sharing the socket, the plan state, and the dead flag.
    pub fn try_clone(&self) -> io::Result<FaultStream> {
        Ok(FaultStream {
            inner: self.inner.try_clone()?,
            net: self.net.clone(),
            dead: Arc::clone(&self.dead),
        })
    }

    /// Delegates to [`TcpStream::set_read_timeout`].
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        self.inner.set_read_timeout(dur)
    }

    /// Delegates to [`TcpStream::set_write_timeout`].
    pub fn set_write_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        self.inner.set_write_timeout(dur)
    }

    /// Delegates to [`TcpStream::shutdown`].
    pub fn shutdown(&self, how: Shutdown) -> io::Result<()> {
        self.inner.shutdown(how)
    }

    /// Delegates to [`TcpStream::peer_addr`].
    pub fn peer_addr(&self) -> io::Result<SocketAddr> {
        self.inner.peer_addr()
    }
}

impl Read for FaultStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let Some(net) = &self.net else {
            return self.inner.read(buf);
        };
        if self.dead.load(Ordering::SeqCst) {
            return Err(dead_stream());
        }
        let (op, kind) = net.next_op();
        match kind {
            None | Some(NetFaultKind::Heal | NetFaultKind::AcceptFail) => self.inner.read(buf),
            Some(NetFaultKind::Slow(ms)) => {
                std::thread::sleep(Duration::from_millis(ms));
                self.inner.read(buf)
            }
            Some(NetFaultKind::Torn(n)) => {
                // The connection dies during this read: the caller sees at
                // most the first `n` bytes the peer sent, then resets.
                let got = self.inner.read(buf)?;
                self.kill();
                Ok(got.min(n as usize))
            }
            Some(NetFaultKind::Reset) => {
                self.kill();
                Err(reset(op))
            }
            Some(NetFaultKind::Partition) => {
                self.kill();
                Err(partitioned(op))
            }
        }
    }
}

impl Write for FaultStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let Some(net) = &self.net else {
            return self.inner.write(buf);
        };
        if self.dead.load(Ordering::SeqCst) {
            return Err(dead_stream());
        }
        let (op, kind) = net.next_op();
        match kind {
            None | Some(NetFaultKind::Heal | NetFaultKind::AcceptFail) => self.inner.write(buf),
            Some(NetFaultKind::Slow(ms)) => {
                std::thread::sleep(Duration::from_millis(ms));
                self.inner.write(buf)
            }
            Some(NetFaultKind::Torn(n)) => {
                // The torn prefix really reaches the wire; the caller sees
                // an error with bytes-sent unknown — exactly a mid-write
                // connection death.
                let cut = (n as usize).min(buf.len());
                let _ = self.inner.write(&buf[..cut]);
                self.kill();
                Err(reset(op))
            }
            Some(NetFaultKind::Reset) => {
                self.kill();
                Err(reset(op))
            }
            Some(NetFaultKind::Partition) => {
                self.kill();
                Err(partitioned(op))
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

static ACTIVE: OnceLock<Transport> = OnceLock::new();

/// The process-wide [`Transport`], chosen once from the environment:
/// faulted when `NOC_NET_FAULT_SCHEDULE` or `NOC_NET_FAULT_SEED` is set
/// (binaries validate both eagerly and exit 2 on garbage), passthrough
/// otherwise. Tests and soaks that need a specific plan construct their
/// own [`FaultNet`] and pass it explicitly instead.
#[must_use]
pub fn active() -> Transport {
    ACTIVE
        .get_or_init(|| {
            match NetFaultPlan::from_env(
                std::env::var("NOC_NET_FAULT_SCHEDULE").ok().as_deref(),
                std::env::var("NOC_NET_FAULT_SEED").ok().as_deref(),
            ) {
                Ok(Some(plan)) => Transport::faulted(FaultNet::new(plan)),
                Ok(None) => Transport::passthrough(),
                // Binaries validate eagerly at startup; reaching this panic
                // means a library consumer skipped that gate.
                Err(e) => panic!("invalid network-fault configuration: {e}"),
            }
        })
        .clone()
}

/// Eagerly validates the `NOC_NET_FAULT_SCHEDULE` / `NOC_NET_FAULT_SEED`
/// environment knobs, same contract as the VFS knobs: unset means "no
/// fault injection", garbage is an error for the caller to turn into exit
/// status 2 — never a silent fallback to fault-free networking.
pub fn validate_env() -> Result<(), String> {
    NetFaultPlan::from_env(
        std::env::var("NOC_NET_FAULT_SCHEDULE").ok().as_deref(),
        std::env::var("NOC_NET_FAULT_SEED").ok().as_deref(),
    )
    .map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One echo exchange over a loopback pair wrapped in `transport`.
    /// Returns (client result bytes, server result bytes).
    fn pair(transport: &Transport) -> (FaultListener, FaultStream) {
        let raw = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = raw.local_addr().unwrap().to_string();
        let listener = transport.listener(raw);
        let client = transport
            .connect(&addr, Duration::from_secs(5))
            .expect("connect");
        (listener, client)
    }

    #[test]
    fn passthrough_round_trips_bytes() {
        let t = Transport::passthrough();
        let (listener, mut client) = pair(&t);
        let (mut served, _) = listener.accept().unwrap();
        client.write_all(b"hello").unwrap();
        let mut buf = [0u8; 5];
        served.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        assert!(!t.is_faulted());
    }

    #[test]
    fn torn_write_sends_a_real_prefix_then_kills_the_stream() {
        // Client ops: 0 connect, 1 the torn write.
        let net = FaultNet::new(NetFaultPlan::default().with_event(1, NetFaultKind::Torn(3)));
        let t = Transport::faulted(Arc::clone(&net));
        let (raw_listener, mut client) = {
            let raw = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = raw.local_addr().unwrap().to_string();
            let client = t.connect(&addr, Duration::from_secs(5)).unwrap();
            (raw, client)
        };
        let (mut served, _) = raw_listener.accept().unwrap();
        let err = client.write_all(b"hello world").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        // The peer sees exactly the torn prefix, then EOF/reset.
        let mut got = Vec::new();
        let _ = served.read_to_end(&mut got);
        assert_eq!(&got, b"hel");
        // The dead stream resets without consuming more ops.
        let before = net.ops();
        assert!(client.write_all(b"again").is_err());
        let mut buf = [0u8; 1];
        assert!(client.read(&mut buf).is_err());
        assert_eq!(net.ops(), before, "dead streams must not burn plan ops");
    }

    #[test]
    fn torn_read_truncates_at_the_scheduled_offset() {
        // Server ops: 0 accept, 1 the torn read.
        let net = FaultNet::new(NetFaultPlan::default().with_event(1, NetFaultKind::Torn(4)));
        let t = Transport::faulted(net);
        let (listener, mut client) = pair(&Transport::passthrough());
        // Re-wrap the listener side with the faulted transport.
        let listener = FaultListener {
            inner: listener.inner,
            net: t.net.clone(),
        };
        client.write_all(b"abcdefgh").unwrap();
        let (mut served, _) = listener.accept().unwrap();
        let mut buf = [0u8; 8];
        let n = served.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"abcd");
        assert!(served.read(&mut buf).is_err(), "stream is dead after tear");
    }

    #[test]
    fn reset_at_accept_drops_the_pending_connection() {
        let net = FaultNet::new(NetFaultPlan::default().with_event(0, NetFaultKind::Reset));
        let t = Transport::faulted(net);
        let raw = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = raw.local_addr().unwrap().to_string();
        let listener = t.listener(raw);
        let _client = TcpStream::connect(&addr).unwrap();
        let err = listener.accept().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        // The next accept works: the fault was one op, not a state change.
        let _client2 = TcpStream::connect(&addr).unwrap();
        listener.accept().expect("second accept passes");
    }

    #[test]
    fn partition_is_sticky_until_heal() {
        let net = FaultNet::new(
            NetFaultPlan::default()
                .with_event(1, NetFaultKind::Partition)
                .with_event(4, NetFaultKind::Heal),
        );
        let t = Transport::faulted(net);
        let raw = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = raw.local_addr().unwrap().to_string();
        t.connect(&addr, Duration::from_secs(5))
            .expect("op 0: fine");
        for op in [1u64, 2, 3] {
            let err = t.connect(&addr, Duration::from_secs(5)).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::ConnectionReset, "op {op}");
        }
        t.connect(&addr, Duration::from_secs(5))
            .expect("op 4: heal lets the op through");
        t.connect(&addr, Duration::from_secs(5))
            .expect("op 5: healthy");
    }

    #[test]
    fn acceptfail_spares_established_streams() {
        // Server ops: 0 accept (fine), 1 read hit by acceptfail (no-op),
        // 2 write (fine).
        let net = FaultNet::new(NetFaultPlan::default().with_event(1, NetFaultKind::AcceptFail));
        let t = Transport::faulted(net);
        let raw = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = raw.local_addr().unwrap().to_string();
        let listener = t.listener(raw);
        let mut client = TcpStream::connect(&addr).unwrap();
        client.write_all(b"ping").unwrap();
        let (mut served, _) = listener.accept().unwrap();
        let mut buf = [0u8; 4];
        served.read_exact(&mut buf).expect("admission-only fault");
        assert_eq!(&buf, b"ping");
    }
}
