//! Deterministic, replayable network-fault injection over `std::net`.
//!
//! The network twin of `noc-store`'s `FaultVfs`: a [`Transport`] wraps
//! every connection operation (connect, accept, read, write) and replays a
//! [`NetFaultPlan`] against the endpoint's op counter. With no plan
//! configured the transport is a zero-overhead passthrough, so production
//! paths pay one `Option` branch per op and nothing else.
//!
//! Fault kinds: connection resets, torn reads/writes at byte offset *n*,
//! slow trickle, admission failures, and a sticky partition with heal.
//! Plans come from `NOC_NET_FAULT_SCHEDULE` (explicit `op:kind` events)
//! and/or `NOC_NET_FAULT_SEED` (splitmix64 draws), explicit-event-wins,
//! both validated eagerly by binaries (exit 2 on garbage) via
//! [`validate_env`].

#![forbid(unsafe_code)]

mod fault;
mod plan;

pub use fault::{active, validate_env, FaultListener, FaultNet, FaultStream, Transport};
pub use plan::{NetFaultEvent, NetFaultKind, NetFaultPlan};
