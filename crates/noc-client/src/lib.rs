//! `noc-client`: an idempotent, retrying client for the `noc-serve` job
//! service.
//!
//! The SEEC thesis applied to the network boundary: instead of assuming a
//! perfect transport, every call rides a cheap, always-available escape
//! channel — capped exponential backoff (`base_ms << (n-1)`, 64× cap, the
//! same discipline as the server's worker retry path) over safe
//! resubmission. Resubmitting a job is *always* safe because admission is
//! content-addressed: a retry after a torn response lands on the existing
//! job as a `200` dedupe hit, never a duplicate execution.
//!
//! Torn responses are detected two ways, both mandatory:
//!
//! * **length**: the server always sends `Content-Length`; a body that
//!   ends early is a tear, never trusted;
//! * **per-row CRC**: journal rows arrive CRC-sealed (`#c=<8hex>`), so a
//!   response cut *inside* a row line — or a row corrupted anywhere along
//!   the path — fails its seal and the fetch retries.
//!
//! All traffic flows through a `noc_net::Transport`, so the chaos soak can
//! replay scheduled faults against the client side of the conversation.

#![forbid(unsafe_code)]

pub mod soak;

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::time::Duration;

use noc_experiments::jsonio;
use noc_net::Transport;
use noc_store::LineCheck;

/// Retry/backoff knobs.
#[derive(Clone, Debug)]
pub struct ClientOpts {
    /// Base backoff; the sleep before retry `n` is `base_ms << (n-1)`,
    /// capped at 64× the base.
    pub retry_base_ms: u64,
    /// Attempts per call before giving up.
    pub max_attempts: u32,
    /// Per-operation socket timeout (connect, read, write).
    pub op_timeout_ms: u64,
}

impl Default for ClientOpts {
    fn default() -> ClientOpts {
        ClientOpts {
            retry_base_ms: 50,
            max_attempts: 8,
            op_timeout_ms: 5_000,
        }
    }
}

/// Why a call failed *after* the retry budget.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientError {
    /// The server answered with a non-retryable error status.
    Http(u16, String),
    /// A response failed torn/corrupt detection on the final attempt.
    Torn(String),
    /// Every attempt failed; the message is the last failure.
    GaveUp(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Http(code, body) => write!(f, "HTTP {code}: {body}"),
            ClientError::Torn(why) => write!(f, "torn response: {why}"),
            ClientError::GaveUp(last) => write!(f, "gave up after retries: {last}"),
        }
    }
}

/// One parsed HTTP response.
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code.
    pub code: u16,
    /// `Retry-After` header, in milliseconds, when present.
    pub retry_after_ms: Option<u64>,
    /// The (length-verified) body.
    pub body: String,
}

/// Client view of one job's status row.
#[derive(Clone, Debug)]
pub struct JobView {
    /// Content-address id.
    pub id: String,
    /// Stage label (`queued`/`running`/`checkpointed`/`done`/`failed`/
    /// `cancelled`).
    pub stage: String,
    /// Every field of the status row, for callers that need more.
    pub row: BTreeMap<String, String>,
}

impl JobView {
    fn parse(body: &str) -> Result<JobView, ClientError> {
        let row = jsonio::parse_flat(body.trim())
            .ok_or_else(|| ClientError::Torn(format!("status row is not flat JSON: {body}")))?;
        let id = row.get("id").cloned().unwrap_or_default();
        let stage = row.get("stage").cloned().unwrap_or_default();
        if id.is_empty() || stage.is_empty() {
            return Err(ClientError::Torn(format!(
                "status row missing id/stage: {body}"
            )));
        }
        Ok(JobView { id, stage, row })
    }

    /// True when the job can never change stage again.
    pub fn is_terminal(&self) -> bool {
        matches!(self.stage.as_str(), "done" | "failed" | "cancelled")
    }
}

/// The client: an address, retry knobs, and a transport.
pub struct Client {
    addr: String,
    opts: ClientOpts,
    transport: Transport,
}

impl Client {
    /// Client over the process-wide transport (passthrough unless the
    /// `NOC_NET_FAULT_*` knobs are set).
    #[must_use]
    pub fn new(addr: &str, opts: ClientOpts) -> Client {
        Client::with_transport(addr, opts, Transport::from_env())
    }

    /// Client over an explicit transport (the chaos soak injects faulted
    /// ones here).
    #[must_use]
    pub fn with_transport(addr: &str, opts: ClientOpts, transport: Transport) -> Client {
        Client {
            addr: addr.to_string(),
            opts,
            transport,
        }
    }

    /// One raw request/response over a fresh `Connection: close` socket.
    /// The error is a transport-level failure (retryable); a parsed
    /// response with any status code is `Ok`.
    fn one_request(&self, method: &str, path: &str, body: &str) -> Result<Response, String> {
        let timeout = Duration::from_millis(self.opts.op_timeout_ms.max(1));
        let mut stream = self
            .transport
            .connect(&self.addr, timeout)
            .map_err(|e| format!("connect {}: {e}", self.addr))?;
        stream
            .set_read_timeout(Some(timeout))
            .and_then(|()| stream.set_write_timeout(Some(timeout)))
            .map_err(|e| format!("socket setup: {e}"))?;
        let request = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            self.addr,
            body.len()
        );
        stream
            .write_all(request.as_bytes())
            .map_err(|e| format!("send request: {e}"))?;
        let mut raw = Vec::new();
        stream
            .read_to_end(&mut raw)
            .map_err(|e| format!("read response: {e}"))?;
        parse_response(&raw)
    }

    /// A request under the retry discipline. Retryable outcomes —
    /// transport failures, torn responses, `408`/`429`/`5xx` — back off
    /// `base_ms << (n-1)` (64× cap), stretched to any `Retry-After` the
    /// server sent (still under the cap, so soaks stay bounded). Other
    /// statuses return to the caller.
    pub fn request_with_retry(
        &self,
        method: &str,
        path: &str,
        body: &str,
    ) -> Result<Response, ClientError> {
        let mut last = String::from("no attempts made");
        for attempt in 1..=self.opts.max_attempts.max(1) {
            if attempt > 1 {
                std::thread::sleep(Duration::from_millis(self.backoff_ms(attempt - 1, &last)));
            }
            match self.one_request(method, path, body) {
                Ok(resp) if retryable_status(resp.code) => {
                    last = format!(
                        "HTTP {} (retry-after {:?} ms): {}",
                        resp.code, resp.retry_after_ms, resp.body
                    );
                    if let Some(ra) = resp.retry_after_ms {
                        last = format!("{last}|ra={ra}");
                    }
                }
                Ok(resp) => return Ok(resp),
                Err(e) => last = e,
            }
        }
        Err(ClientError::GaveUp(last))
    }

    /// The sleep before the retry following failed attempt `n` (1-based):
    /// `base << (n-1)` capped at 64× base, stretched toward the server's
    /// `Retry-After` when one was sent (the cap still wins).
    fn backoff_ms(&self, failed_attempt: u32, last: &str) -> u64 {
        let base = self.opts.retry_base_ms.max(1);
        let cap = base << 6;
        let shift = failed_attempt.saturating_sub(1).min(6);
        let mut wait = base << shift;
        if let Some(ra) = last
            .rsplit_once("|ra=")
            .and_then(|(_, v)| v.parse::<u64>().ok())
        {
            wait = wait.max(ra);
        }
        wait.min(cap)
    }

    /// Submits a job spec (a flat JSON object). `true` means newly
    /// created (`202`); `false` means the content address deduped onto an
    /// existing job (`200`) — which is exactly what a retry after a torn
    /// response should see.
    pub fn submit(&self, spec_json: &str) -> Result<(JobView, bool), ClientError> {
        let resp = self.request_with_retry("POST", "/jobs", spec_json)?;
        match resp.code {
            202 => Ok((JobView::parse(&resp.body)?, true)),
            200 => Ok((JobView::parse(&resp.body)?, false)),
            code => Err(ClientError::Http(code, resp.body)),
        }
    }

    /// One job's status row.
    pub fn status(&self, id: &str) -> Result<JobView, ClientError> {
        let resp = self.request_with_retry("GET", &format!("/jobs/{id}"), "")?;
        match resp.code {
            200 => JobView::parse(&resp.body),
            code => Err(ClientError::Http(code, resp.body)),
        }
    }

    /// Requests cancellation. `Ok` is the post-cancel status row.
    pub fn cancel(&self, id: &str) -> Result<JobView, ClientError> {
        let resp = self.request_with_retry("POST", &format!("/jobs/{id}/cancel"), "")?;
        match resp.code {
            200 => JobView::parse(&resp.body),
            code => Err(ClientError::Http(code, resp.body)),
        }
    }

    /// The service health row (includes the network counters).
    pub fn healthz(&self) -> Result<BTreeMap<String, String>, ClientError> {
        let resp = self.request_with_retry("GET", "/healthz", "")?;
        if resp.code != 200 {
            return Err(ClientError::Http(resp.code, resp.body));
        }
        jsonio::parse_flat(resp.body.trim())
            .ok_or_else(|| ClientError::Torn(format!("healthz is not flat JSON: {}", resp.body)))
    }

    /// The job's result rows, **verified**: every line must pass its CRC
    /// seal (legacy unsealed lines must at least parse as flat JSON). A
    /// response cut inside a row line or corrupted in flight fails here
    /// and is retried like any other tear; the returned payloads have the
    /// seals stripped.
    pub fn rows_verified(&self, id: &str) -> Result<Vec<String>, ClientError> {
        let path = format!("/jobs/{id}/rows");
        let mut last = String::from("no attempts made");
        for attempt in 1..=self.opts.max_attempts.max(1) {
            if attempt > 1 {
                std::thread::sleep(Duration::from_millis(self.backoff_ms(attempt - 1, &last)));
            }
            let resp = match self.one_request("GET", &path, "") {
                Ok(resp) if retryable_status(resp.code) => {
                    last = format!("HTTP {}: {}", resp.code, resp.body);
                    continue;
                }
                Ok(resp) if resp.code != 200 => {
                    return Err(ClientError::Http(resp.code, resp.body))
                }
                Ok(resp) => resp,
                Err(e) => {
                    last = e;
                    continue;
                }
            };
            match verify_rows(&resp.body) {
                Ok(rows) => return Ok(rows),
                Err(why) => last = format!("row verification failed: {why}"),
            }
        }
        Err(ClientError::GaveUp(last))
    }

    /// Polls until the job is terminal, tolerating transient failures
    /// (each poll has its own retry budget; a `GaveUp` poll just polls
    /// again) up to `budget`.
    pub fn await_terminal(
        &self,
        id: &str,
        budget: Duration,
        poll: Duration,
    ) -> Result<JobView, ClientError> {
        let deadline = std::time::Instant::now() + budget;
        let mut last = ClientError::GaveUp("no polls completed".into());
        loop {
            match self.status(id) {
                Ok(view) if view.is_terminal() => return Ok(view),
                Ok(_) => {}
                Err(e @ ClientError::Http(..)) => return Err(e),
                Err(e) => last = e,
            }
            if std::time::Instant::now() >= deadline {
                return Err(ClientError::GaveUp(format!(
                    "job {id} not terminal within {budget:?} (last: {last})"
                )));
            }
            std::thread::sleep(poll);
        }
    }
}

/// Statuses worth retrying: admission shed (`429`, `503`), request
/// deadline (`408`), and server-side errors.
fn retryable_status(code: u16) -> bool {
    code == 408 || code == 429 || code >= 500
}

/// Verifies a JSONL rows payload line by line. `Err` names the first
/// offending line.
pub fn verify_rows(body: &str) -> Result<Vec<String>, String> {
    let mut rows = Vec::new();
    for (i, line) in body.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match noc_store::open_line(line) {
            LineCheck::Sealed(payload) => rows.push(payload.to_string()),
            LineCheck::Legacy(payload) if jsonio::parse_flat(payload).is_some() => {
                rows.push(payload.to_string());
            }
            LineCheck::Legacy(_) => {
                return Err(format!("line {} is neither sealed nor parseable", i + 1))
            }
            LineCheck::Corrupt => return Err(format!("line {} failed its CRC seal", i + 1)),
        }
    }
    Ok(rows)
}

/// Parses one raw HTTP/1.1 response. Length verification happens here:
/// a body shorter than its `Content-Length` is a torn response and comes
/// back as `Err` (retryable), never as truncated data.
fn parse_response(raw: &[u8]) -> Result<Response, String> {
    let text = String::from_utf8_lossy(raw);
    let Some(head_end) = text.find("\r\n\r\n") else {
        return Err(format!(
            "torn response: no header terminator in {} byte(s)",
            raw.len()
        ));
    };
    let (head, rest) = text.split_at(head_end);
    let body = &rest["\r\n\r\n".len()..];
    let mut lines = head.lines();
    let status = lines.next().unwrap_or_default();
    let code: u16 = status
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| format!("malformed status line: {status}"))?;
    let mut content_length: Option<usize> = None;
    let mut retry_after_ms = None;
    for line in lines {
        let Some((k, v)) = line.split_once(':') else {
            continue;
        };
        let v = v.trim();
        match k.to_ascii_lowercase().as_str() {
            "content-length" => content_length = v.parse().ok(),
            "retry-after" => retry_after_ms = v.parse::<u64>().ok().map(|s| s * 1000),
            _ => {}
        }
    }
    if let Some(cl) = content_length {
        if body.len() < cl {
            return Err(format!(
                "torn response: body {} of {cl} byte(s)",
                body.len()
            ));
        }
    }
    Ok(Response {
        code,
        retry_after_ms,
        body: content_length.map_or_else(|| body.to_string(), |cl| body[..cl].to_string()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_response_accepts_whole_and_rejects_torn() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\nConnection: close\r\n\r\nhello";
        let resp = parse_response(raw).unwrap();
        assert_eq!((resp.code, resp.body.as_str()), (200, "hello"));
        // Cut anywhere: either no header terminator or a short body —
        // never a silently truncated Ok.
        for cut in 0..raw.len() {
            match parse_response(&raw[..cut]) {
                Ok(r) => assert_eq!(r.body, "hello", "cut at {cut} returned torn body"),
                Err(e) => assert!(e.contains("torn") || e.contains("malformed"), "{e}"),
            }
        }
    }

    #[test]
    fn parse_response_reads_retry_after() {
        let raw = b"HTTP/1.1 429 Too Many Requests\r\nRetry-After: 2\r\nContent-Length: 0\r\n\r\n";
        let resp = parse_response(raw).unwrap();
        assert_eq!(resp.code, 429);
        assert_eq!(resp.retry_after_ms, Some(2000));
    }

    #[test]
    fn verify_rows_catches_any_single_flip() {
        let good = format!(
            "{}\n{}\n",
            noc_store::seal_line(r#"{"point": "a", "value": 1}"#),
            noc_store::seal_line(r#"{"point": "b", "value": 2}"#),
        );
        assert_eq!(verify_rows(&good).unwrap().len(), 2);
        let bytes = good.as_bytes();
        for i in 0..bytes.len() {
            let mut bad = bytes.to_vec();
            bad[i] ^= 0x01;
            let Ok(text) = std::str::from_utf8(&bad) else {
                continue;
            };
            if text.as_bytes()[i] == b'\n' || bytes[i] == b'\n' {
                continue; // newline flips re-frame lines; covered by frame tests
            }
            assert!(
                verify_rows(text).is_err(),
                "flip at byte {i} went unnoticed"
            );
        }
    }

    #[test]
    fn backoff_follows_the_worker_discipline() {
        let client = Client::with_transport(
            "127.0.0.1:1",
            ClientOpts {
                retry_base_ms: 10,
                max_attempts: 12,
                op_timeout_ms: 100,
            },
            Transport::passthrough(),
        );
        // base << (n-1), capped at 64x.
        assert_eq!(client.backoff_ms(1, ""), 10);
        assert_eq!(client.backoff_ms(2, ""), 20);
        assert_eq!(client.backoff_ms(7, ""), 640);
        assert_eq!(client.backoff_ms(11, ""), 640);
        // Retry-After stretches the wait but never past the cap.
        assert_eq!(client.backoff_ms(1, "x|ra=300"), 300);
        assert_eq!(client.backoff_ms(1, "x|ra=5000"), 640);
    }
}
