//! The network-fault soak: every fault kind at every connection-op, on
//! both sides of the conversation.
//!
//! The network twin of the storage-chaos soak. A reference client→server
//! job run (in-process `noc-serve` over loopback) establishes the row set
//! every faulted run must reproduce. A probe run through fault-free
//! `FaultNet` instances counts the connection operations each side
//! performs. Then, for every (side × connection-op × fault kind)
//! combination, the same interaction runs with exactly that fault
//! injected, and the oracle requires the client to **converge**: the job
//! reaches DONE and the CRC-verified rows the client fetches are
//! byte-identical to the fault-free reference. Divergences emit the exact
//! `NOC_NET_FAULT_SCHEDULE` that replays them.
//!
//! Faults are injected on exactly one side per case so each side's op
//! sequence stays meaningful; the other side runs passthrough. Sticky
//! partitions pair a `heal` 12 ops later — the client's retries burn op
//! indices toward the heal, which is the escape-channel thesis in
//! miniature: keep paying a cheap retry and the rare pathology clears.

use std::net::TcpListener;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use noc_experiments::jsonio::JsonObj;
use noc_net::{FaultNet, NetFaultKind, NetFaultPlan, Transport};
use noc_serve::{http, HttpOpts, ServeOpts, Service};

use crate::{Client, ClientOpts};

/// The job every run submits: two sweep points so the row set has more
/// than one line for a tear to land inside, small enough that a full
/// (side × site × kind) product fits a CI time box. Rows are
/// deterministic, so byte-identity is a meaningful oracle.
const SOAK_SPEC: &str =
    r#"{"kind": "sweep", "schemes": "SEEC,mSEEC", "transients": "0.0", "cycles": "2000"}"#;

/// Ops between a `partition` and its paired `heal`: enough retries to
/// prove stickiness, few enough that convergence stays fast.
const HEAL_AFTER_OPS: u64 = 12;

/// One (side × connection-op × fault kind) combination that failed to
/// converge, with everything needed to replay it.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Which endpoint carried the fault plan (`client` or `server`).
    pub side: String,
    /// 0-based connection-op index the fault hit.
    pub site: u64,
    /// Canonical `NOC_NET_FAULT_SCHEDULE` that reproduces the run.
    pub schedule: String,
    /// What went wrong, human-readable.
    pub detail: String,
}

/// Summary of one [`run_network_chaos`] invocation.
#[derive(Clone, Debug, Default)]
pub struct NetworkChaosReport {
    /// Connection ops the reference client performs.
    pub client_sites: u64,
    /// Connection ops the reference server performs.
    pub server_sites: u64,
    /// (side × site × kind) combinations executed.
    pub combos: usize,
    /// Dedupe hits observed across all cases — each one is a client retry
    /// the content address absorbed idempotently.
    pub dedupe_hits: u64,
    /// Combinations where the client failed to converge byte-identically.
    pub divergences: Vec<Divergence>,
}

impl NetworkChaosReport {
    /// True when every combination converged.
    pub fn all_match(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// The fault kinds swept at every connection op. `partition` pairs a heal
/// [`HEAL_AFTER_OPS`] later; everything else is a single-op event.
fn kinds_under_test(site: u64) -> Vec<(String, NetFaultPlan)> {
    vec![
        (
            "reset".into(),
            NetFaultPlan::default().with_event(site, NetFaultKind::Reset),
        ),
        (
            "torn".into(),
            NetFaultPlan::default().with_event(site, NetFaultKind::Torn(6)),
        ),
        (
            "slow".into(),
            NetFaultPlan::default().with_event(site, NetFaultKind::Slow(3)),
        ),
        (
            "acceptfail".into(),
            NetFaultPlan::default().with_event(site, NetFaultKind::AcceptFail),
        ),
        (
            "partition".into(),
            NetFaultPlan::default()
                .with_event(site, NetFaultKind::Partition)
                .with_event(site + HEAL_AFTER_OPS, NetFaultKind::Heal),
        ),
    ]
}

/// An in-process `noc-serve` over loopback with an explicit transport.
struct TestServer {
    addr: String,
    service: Arc<Service>,
    shutdown: Arc<AtomicBool>,
    thread: std::thread::JoinHandle<()>,
}

impl TestServer {
    fn start(data_dir: &Path, transport: Transport) -> std::io::Result<TestServer> {
        let mut opts = ServeOpts::new(data_dir);
        opts.workers = 2;
        opts.queue_cap = 8;
        opts.retry_base_ms = 5;
        opts.max_attempts = 3;
        opts.batch_width = 1;
        let service = Arc::new(Service::open(opts)?);
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?.to_string();
        let shutdown = Arc::new(AtomicBool::new(false));
        let http_opts = HttpOpts {
            max_connections: 8,
            request_deadline_ms: 2_000,
            ..HttpOpts::default()
        };
        let thread = {
            let service = Arc::clone(&service);
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("network-chaos-server".to_string())
                .spawn(move || {
                    http::serve_with(listener, &service, &shutdown, &http_opts, &transport);
                })?
        };
        Ok(TestServer {
            addr,
            service,
            shutdown,
            thread,
        })
    }

    fn stop(self) {
        self.shutdown.store(true, Ordering::Relaxed);
        let _ = self.thread.join();
        self.service.drain();
    }
}

/// What one converged interaction produced.
struct Outcome {
    /// CRC-verified row payloads, sorted — the byte set the oracle
    /// compares.
    rows: Vec<String>,
    /// `dedupe_hits` from the final healthz row.
    dedupe_hits: u64,
}

/// One full client→server interaction: submit (looping on the idempotent
/// resubmission path until admitted), await DONE, fetch verified rows,
/// read the final health row. Every step keeps retrying inside `budget` —
/// convergence despite faults is exactly what is under test.
fn run_interaction(
    data_dir: &Path,
    client_transport: Transport,
    server_transport: Transport,
    budget: Duration,
) -> Result<Outcome, String> {
    let server =
        TestServer::start(data_dir, server_transport).map_err(|e| format!("server start: {e}"))?;
    let client = Client::with_transport(
        &server.addr,
        ClientOpts {
            retry_base_ms: 10,
            max_attempts: 6,
            op_timeout_ms: 2_000,
        },
        client_transport,
    );
    let deadline = std::time::Instant::now() + budget;
    let outcome = (|| {
        // Submit until admitted. A retry after a fault may land as a 200
        // dedupe instead of a 202 — both mean the job is in.
        let id = loop {
            match client.submit(SOAK_SPEC) {
                Ok((view, _created)) => break view.id,
                Err(e) => {
                    if std::time::Instant::now() >= deadline {
                        return Err(format!("submission never admitted: {e}"));
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        };
        // Converge to a terminal stage.
        let view = loop {
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                return Err("job did not reach a terminal stage in budget".to_string());
            }
            match client.await_terminal(&id, left, Duration::from_millis(20)) {
                Ok(view) => break view,
                Err(e) => {
                    if std::time::Instant::now() >= deadline {
                        return Err(format!("status never converged: {e}"));
                    }
                }
            }
        };
        if view.stage != "done" {
            return Err(format!(
                "job converged to '{}' instead of done ({:?})",
                view.stage,
                view.row.get("error")
            ));
        }
        // Verified rows; a tear inside a row line fails CRC and retries.
        let rows = loop {
            match client.rows_verified(&id) {
                Ok(rows) => break rows,
                Err(e) => {
                    if std::time::Instant::now() >= deadline {
                        return Err(format!("rows never verified: {e}"));
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        };
        let dedupe_hits = loop {
            match client.healthz() {
                Ok(h) => {
                    break h
                        .get("dedupe_hits")
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(0)
                }
                Err(e) => {
                    if std::time::Instant::now() >= deadline {
                        return Err(format!("healthz never answered: {e}"));
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        };
        let mut rows = rows;
        rows.sort();
        Ok(Outcome { rows, dedupe_hits })
    })();
    server.stop();
    outcome
}

/// Runs the full soak under `out_dir` (per-case dirs are wiped on pass).
/// `max_sites` caps how many connection ops are swept per side (CI time
/// box; `None` sweeps all). Divergence repros land in
/// `out_dir/repro_<side>_site<N>_<kind>.json`, the machine-readable
/// report in `out_dir/network_chaos.json`.
pub fn run_network_chaos(
    out_dir: &Path,
    max_sites: Option<u64>,
) -> std::io::Result<NetworkChaosReport> {
    std::fs::create_dir_all(out_dir)?;
    let budget = Duration::from_secs(60);

    // Reference: the row set every faulted run must converge to.
    let ref_dir = out_dir.join("reference");
    reset_dir(&ref_dir)?;
    let reference = run_interaction(
        &ref_dir.join("data"),
        Transport::passthrough(),
        Transport::passthrough(),
        budget,
    )
    .map_err(|e| std::io::Error::other(format!("reference run failed: {e}")))?;
    assert!(
        reference.rows.len() >= 2,
        "reference run produced {} row(s); need ≥2 for the oracle to bite",
        reference.rows.len()
    );

    // Probe: count each side's connection ops by running fault-free
    // through the fault layer's op counters.
    let probe_dir = out_dir.join("probe");
    reset_dir(&probe_dir)?;
    let client_net = FaultNet::new(NetFaultPlan::default());
    let server_net = FaultNet::new(NetFaultPlan::default());
    let probe = run_interaction(
        &probe_dir.join("data"),
        Transport::faulted(Arc::clone(&client_net)),
        Transport::faulted(Arc::clone(&server_net)),
        budget,
    )
    .map_err(|e| std::io::Error::other(format!("probe run failed: {e}")))?;
    assert_eq!(
        probe.rows, reference.rows,
        "fault-free FaultNet run diverged from passthrough (transport not transparent)"
    );
    let client_sites = client_net.ops();
    let server_sites = server_net.ops();
    assert!(client_sites > 0, "probe counted no client connection ops");
    assert!(server_sites > 0, "probe counted no server connection ops");

    let mut report = NetworkChaosReport {
        client_sites,
        server_sites,
        ..NetworkChaosReport::default()
    };
    for (side, sites) in [("client", client_sites), ("server", server_sites)] {
        let swept = max_sites.map_or(sites, |cap| sites.min(cap));
        if swept < sites {
            eprintln!("network-chaos: time box caps {side} sweep at {swept} of {sites} ops");
        }
        for site in 0..swept {
            for (kind, plan) in kinds_under_test(site) {
                report.combos += 1;
                let case_dir = out_dir.join(format!("case_{side}_site{site}_{kind}"));
                reset_dir(&case_dir)?;
                let schedule = plan.canonical();
                let faulted = Transport::faulted(FaultNet::new(plan));
                let (ct, st) = if side == "client" {
                    (faulted, Transport::passthrough())
                } else {
                    (Transport::passthrough(), faulted)
                };
                let outcome = run_interaction(&case_dir.join("data"), ct, st, budget);
                let problem = match outcome {
                    Ok(o) => {
                        report.dedupe_hits += o.dedupe_hits;
                        if o.rows == reference.rows {
                            None
                        } else {
                            Some(format!(
                                "row set diverged: {} row(s) vs {} reference",
                                o.rows.len(),
                                reference.rows.len()
                            ))
                        }
                    }
                    Err(e) => Some(e),
                };
                match problem {
                    None => {
                        let _ = std::fs::remove_dir_all(&case_dir); // keep the tree small
                    }
                    Some(detail) => {
                        let repro = JsonObj::new()
                            .str_field("side", side)
                            .u64_field("site", site)
                            .str_field("kind", &kind)
                            .str_field("schedule", &schedule)
                            .str_field("env", "NOC_NET_FAULT_SCHEDULE")
                            .str_field("detail", &detail)
                            .str_field("dir", &case_dir.display().to_string())
                            .finish();
                        noc_store::active().write_atomic(
                            &out_dir.join(format!("repro_{side}_site{site}_{kind}.json")),
                            format!("{repro}\n").as_bytes(),
                        )?;
                        report.divergences.push(Divergence {
                            side: side.to_string(),
                            site,
                            schedule,
                            detail,
                        });
                    }
                }
            }
        }
    }

    let rep = JsonObj::new()
        .u64_field("client_sites", report.client_sites)
        .u64_field("server_sites", report.server_sites)
        .u64_field("combos", report.combos as u64)
        .u64_field("dedupe_hits", report.dedupe_hits)
        .u64_field("divergences", report.divergences.len() as u64)
        .str_field("verdict", if report.all_match() { "pass" } else { "fail" })
        .finish();
    noc_store::active().write_atomic(
        &out_dir.join("network_chaos.json"),
        format!("{rep}\n").as_bytes(),
    )?;
    Ok(report)
}

fn reset_dir(dir: &Path) -> std::io::Result<()> {
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir)
}

/// Parses the published report back (the smoke script asserts on it).
#[must_use]
pub fn parse_report(text: &str) -> Option<std::collections::BTreeMap<String, String>> {
    noc_experiments::jsonio::parse_flat(text.trim())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("seec_netchaos_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    /// The first connection op on each side swept through every kind
    /// converges byte-identically. (CI sweeps more sites via the
    /// `network_chaos` binary; the in-tree test keeps tier-1 fast.)
    #[test]
    fn first_sites_converge_under_every_fault() {
        let dir = tmpdir("soak");
        let report = run_network_chaos(&dir, Some(1)).unwrap();
        assert!(report.client_sites > 0 && report.server_sites > 0);
        assert_eq!(report.combos, 10);
        assert!(report.all_match(), "divergences: {:?}", report.divergences);
        let rep = std::fs::read_to_string(dir.join("network_chaos.json")).unwrap();
        let rep = parse_report(&rep).unwrap();
        assert_eq!(rep["verdict"], "pass");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
