//! `noc_submit`: the command-line client for a running `noc_serve`.
//!
//! ```text
//! noc_submit --addr HOST:PORT [--retry-base-ms MS] [--max-attempts N]
//!            [--timeout-ms MS] <command>
//!
//! commands:
//!   submit SPEC_JSON [--wait]   POST the spec; --wait polls to terminal
//!   status ID                   one status row
//!   rows ID                     CRC-verified result rows (seals stripped)
//!   cancel ID                   request cancellation
//!   healthz                     service health + network counters
//! ```
//!
//! Every call retries with capped exponential backoff
//! (`base_ms << (n-1)`, 64× cap); resubmission is always safe because the
//! server dedupes by content address — a retry after a torn response
//! lands on the existing job. The network-fault knobs
//! `NOC_NET_FAULT_SCHEDULE` / `NOC_NET_FAULT_SEED` are validated eagerly
//! (exit status 2 on garbage) and, when set, fault this client's own
//! transport — the replay path for soak divergences.
//!
//! Exit status: 0 success, 1 the call failed (or `--wait` ended in a
//! non-DONE terminal stage), 2 bad flags or environment.

use std::process::exit;
use std::time::Duration;

use noc_client::{Client, ClientError, ClientOpts};

fn usage() -> ! {
    eprintln!(
        "usage: noc_submit --addr HOST:PORT [--retry-base-ms MS] [--max-attempts N] \
         [--timeout-ms MS] (submit SPEC_JSON [--wait] | status ID | rows ID | \
         cancel ID | healthz)"
    );
    exit(2);
}

fn main() {
    // Eager validation: garbage fault knobs are a configuration error
    // before any socket opens.
    if let Err(e) = noc_net::validate_env() {
        eprintln!("error: {e}");
        exit(2);
    }

    let mut addr = None;
    let mut opts = ClientOpts::default();
    let mut command: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match a.as_str() {
            "--addr" => addr = Some(val("--addr")),
            "--retry-base-ms" => {
                opts.retry_base_ms = val("--retry-base-ms").parse().unwrap_or_else(|_| usage());
            }
            "--max-attempts" => {
                opts.max_attempts = val("--max-attempts").parse().unwrap_or_else(|_| usage());
            }
            "--timeout-ms" => {
                opts.op_timeout_ms = val("--timeout-ms").parse().unwrap_or_else(|_| usage());
            }
            "--help" | "-h" => usage(),
            _ => command.push(a),
        }
    }
    let Some(addr) = addr else { usage() };
    let client = Client::new(&addr, opts);

    let outcome = match command.first().map(String::as_str) {
        Some("submit") => {
            let Some(spec) = command.get(1) else { usage() };
            let wait = command.iter().any(|a| a == "--wait");
            run_submit(&client, spec, wait)
        }
        Some("status") => {
            let Some(id) = command.get(1) else { usage() };
            client.status(id).map(|v| println!("{}", row_text(&v.row)))
        }
        Some("rows") => {
            let Some(id) = command.get(1) else { usage() };
            client.rows_verified(id).map(|rows| {
                for r in rows {
                    println!("{r}");
                }
            })
        }
        Some("cancel") => {
            let Some(id) = command.get(1) else { usage() };
            client.cancel(id).map(|v| println!("{}", row_text(&v.row)))
        }
        Some("healthz") => client.healthz().map(|h| println!("{}", row_text(&h))),
        _ => usage(),
    };
    if let Err(e) = outcome {
        eprintln!("noc_submit: {e}");
        exit(1);
    }
}

fn run_submit(client: &Client, spec: &str, wait: bool) -> Result<(), ClientError> {
    let (view, created) = client.submit(spec)?;
    eprintln!(
        "noc_submit: {} job {}",
        if created { "created" } else { "deduped onto" },
        view.id
    );
    if !wait {
        println!("{}", row_text(&view.row));
        return Ok(());
    }
    let done = client.await_terminal(
        &view.id,
        Duration::from_secs(3600),
        Duration::from_millis(250),
    )?;
    println!("{}", row_text(&done.row));
    if done.stage != "done" {
        return Err(ClientError::Http(
            0,
            format!("job ended in stage '{}'", done.stage),
        ));
    }
    Ok(())
}

/// Re-renders a parsed flat row as one JSON line.
fn row_text(row: &std::collections::BTreeMap<String, String>) -> String {
    let mut obj = noc_experiments::jsonio::JsonObj::new();
    for (k, v) in row {
        obj = obj.str_field(k, v);
    }
    obj.finish()
}
