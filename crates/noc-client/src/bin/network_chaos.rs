//! `network_chaos`: every network fault at every connection-op, on both
//! sides, with a client-convergence oracle.
//!
//! ```text
//! network_chaos [--out DIR] [--max-sites N]
//! ```
//!
//! Runs a reference client→server job interaction (in-process `noc-serve`
//! over loopback), enumerates every connection operation each side
//! performs, then for each (side × connection-op × fault kind)
//! combination — reset, torn read/write, slow trickle, accept failure,
//! sticky partition with heal — injects exactly that fault and requires
//! the client to converge: job DONE, CRC-verified rows byte-identical to
//! the fault-free run. `--max-sites` time-boxes the sweep for CI.
//!
//! Exit status 0 when every combination converges; 1 when any diverged (a
//! `repro_<side>_site<N>_<kind>.json` with the exact
//! `NOC_NET_FAULT_SCHEDULE` lands in the output directory); 2 on bad
//! flags or environment (`NOC_THREADS`, `NOC_BATCH_WIDTH`,
//! `NOC_VFS_FAULT_*`, `NOC_NET_FAULT_*` are validated eagerly, before any
//! socket opens).

use std::path::PathBuf;
use std::process::exit;

use noc_client::soak::run_network_chaos;

fn main() {
    // Eager validation, before any listener binds or socket connects.
    if let Err(e) = rayon::env_threads() {
        eprintln!("error: {e}");
        exit(2);
    }
    if let Err(e) = noc_experiments::sweep::env_batch_width() {
        eprintln!("error: {e}");
        exit(2);
    }
    if let Err(e) = noc_experiments::cli::validate_vfs_env() {
        eprintln!("error: {e}");
        exit(2);
    }
    if let Err(e) = noc_net::validate_env() {
        eprintln!("error: {e}");
        exit(2);
    }

    let mut out_dir = PathBuf::from("target/network_chaos");
    let mut max_sites: Option<u64> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = |flag: &str| -> String {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("{flag} needs a value");
                    exit(2);
                })
                .clone()
        };
        match arg.as_str() {
            "--out" => out_dir = PathBuf::from(val("--out")),
            "--max-sites" => {
                max_sites = Some(val("--max-sites").parse().unwrap_or_else(|_| {
                    eprintln!("bad value for --max-sites");
                    exit(2);
                }));
            }
            "--help" | "-h" => {
                println!("usage: network_chaos [--out DIR] [--max-sites N]");
                return;
            }
            other => {
                eprintln!("unknown flag '{other}' (see --help)");
                exit(2);
            }
        }
    }

    let report = match run_network_chaos(&out_dir, max_sites) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("network-chaos: harness error: {e}");
            exit(1);
        }
    };
    println!(
        "network-chaos: {} client + {} server connection ops, {} combinations, \
         {} dedupe hit(s) absorbed, {} divergence(s) — report {}",
        report.client_sites,
        report.server_sites,
        report.combos,
        report.dedupe_hits,
        report.divergences.len(),
        out_dir.join("network_chaos.json").display(),
    );
    for d in &report.divergences {
        eprintln!(
            "  DIVERGED on the {} side at op {} (NOC_NET_FAULT_SCHEDULE=\"{}\"): {}",
            d.side, d.site, d.schedule, d.detail
        );
    }
    if !report.all_match() {
        exit(1);
    }
}
