//! Client resilience tests against a *scripted* server: a listener that
//! plays back exact byte sequences — torn responses at every byte
//! offset, length-consistent truncations, bit-flipped rows — so every
//! detection path in the client is driven deterministically, without the
//! fault transport.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener};
use std::time::Duration;

use noc_client::{verify_rows, Client, ClientError, ClientOpts};
use noc_net::Transport;

/// Serves the scripted responses, one connection each, then exits. Each
/// connection's request is read (best-effort) and discarded; the scripted
/// bytes are written and the socket closed — a response cut mid-flight is
/// exactly a prefix script entry.
fn script_server(responses: Vec<Vec<u8>>) -> (String, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || {
        for resp in responses {
            let Ok((mut s, _)) = listener.accept() else {
                return;
            };
            s.set_read_timeout(Some(Duration::from_secs(5))).ok();
            let mut buf = [0u8; 4096];
            let _ = s.read(&mut buf); // the request; content irrelevant
            let _ = s.write_all(&resp);
            let _ = s.shutdown(Shutdown::Both);
        }
    });
    (addr, handle)
}

fn quick_client(addr: &str, attempts: u32) -> Client {
    Client::with_transport(
        addr,
        ClientOpts {
            retry_base_ms: 1,
            max_attempts: attempts,
            op_timeout_ms: 2_000,
        },
        Transport::passthrough(),
    )
}

fn http_200(body: &str) -> Vec<u8> {
    format!(
        "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

fn sealed_rows_body() -> String {
    format!(
        "{}\n{}\n",
        noc_store::seal_line(r#"{"point": "p0", "latency": 12}"#),
        noc_store::seal_line(r#"{"point": "p1", "latency": 34}"#),
    )
}

/// A response cut at EVERY byte offset — inside the status line, the
/// headers, and inside a row line — is detected and retried; the retry
/// converges on the whole response with the correct rows.
#[test]
fn torn_response_at_every_byte_offset_is_retried_to_convergence() {
    let body = sealed_rows_body();
    let whole = http_200(&body);
    let expect = verify_rows(&body).unwrap();
    for cut in 0..whole.len() {
        let (addr, server) = script_server(vec![whole[..cut].to_vec(), whole.clone()]);
        let client = quick_client(&addr, 4);
        let rows = client
            .rows_verified("job")
            .unwrap_or_else(|e| panic!("cut at {cut}: {e}"));
        assert_eq!(rows, expect, "cut at {cut} converged on wrong rows");
        server.join().unwrap();
    }
}

/// A truncation that *lies consistently* — Content-Length matches the
/// truncated body, so the length check passes — is still caught whenever
/// the cut lands inside a row line, because the row fails its CRC seal.
/// Two cut positions per row are undetectable by design and skipped: a
/// cut exactly at the line boundary (a shorter-but-valid journal) and a
/// cut exactly at the payload/trailer boundary (the line degrades to a
/// valid pre-CRC *legacy* row, accepted for old journals — the same
/// carve-out the frame-layer tests make).
#[test]
fn length_consistent_truncation_inside_a_row_fails_crc_and_retries() {
    let body = sealed_rows_body();
    let mut undetectable: Vec<usize> = Vec::new();
    let mut start = 0usize;
    for line in body.split_inclusive('\n') {
        // Cuts at the row boundary — either side of the newline.
        undetectable.push(start + line.len());
        undetectable.push(start + line.len() - 1);
        if let Some(at) = line.rfind("#c=") {
            undetectable.push(start + at); // cut degrades the seal to legacy
        }
        start += line.len();
    }
    let mut mid_line_cuts = 0;
    for cut in 1..body.len() {
        if undetectable.contains(&cut) {
            continue;
        }
        mid_line_cuts += 1;
        let truncated = http_200(&body[..cut]); // consistent Content-Length
        let (addr, server) = script_server(vec![truncated, http_200(&body)]);
        let client = quick_client(&addr, 4);
        let rows = client
            .rows_verified("job")
            .unwrap_or_else(|e| panic!("cut at {cut}: {e}"));
        assert_eq!(rows, verify_rows(&body).unwrap(), "cut at {cut}");
        server.join().unwrap();
    }
    assert!(
        mid_line_cuts > 50,
        "the sweep barely swept ({mid_line_cuts})"
    );
}

/// A single bit flip inside a row — valid length, valid JSON shape either
/// side — fails the CRC seal; the client refuses the poisoned payload and
/// converges on the clean retry.
#[test]
fn bit_flipped_row_is_refused_and_retried() {
    let body = sealed_rows_body();
    let mut poisoned = body.clone().into_bytes();
    let flip_at = body.find("12").unwrap(); // inside the first row's value
    poisoned[flip_at] ^= 0x01;
    let poisoned = String::from_utf8(poisoned).unwrap();
    let (addr, server) = script_server(vec![http_200(&poisoned), http_200(&body)]);
    let client = quick_client(&addr, 4);
    let rows = client.rows_verified("job").unwrap();
    assert_eq!(rows, verify_rows(&body).unwrap());
    server.join().unwrap();
}

/// When every attempt tears, the client gives up with the last failure —
/// it never fabricates or accepts partial data.
#[test]
fn exhausted_retries_give_up_without_partial_data() {
    let body = sealed_rows_body();
    let whole = http_200(&body);
    let torn = whole[..whole.len() / 2].to_vec();
    let (addr, server) = script_server(vec![torn.clone(), torn.clone(), torn]);
    let client = quick_client(&addr, 3);
    match client.rows_verified("job") {
        Err(ClientError::GaveUp(why)) => assert!(why.contains("torn"), "{why}"),
        other => panic!("expected GaveUp, got {other:?}"),
    }
    server.join().unwrap();
}

/// `submit` retried against a flaky server is idempotent end-to-end: the
/// torn first answer is retried and the dedupe `200` is surfaced as
/// `created = false`.
#[test]
fn submit_retry_lands_on_dedupe() {
    let status_row = r#"{"id": "abc123", "stage": "queued", "attempts": 0}"#;
    let whole_202 = format!(
        "HTTP/1.1 202 Accepted\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{status_row}",
        status_row.len()
    )
    .into_bytes();
    let dedupe_200 = http_200(status_row);
    // First answer tears mid-body (the job WAS admitted server-side);
    // the retry sees the dedupe.
    let torn = whole_202[..whole_202.len() - 10].to_vec();
    let (addr, server) = script_server(vec![torn, dedupe_200]);
    let client = quick_client(&addr, 4);
    let (view, created) = client.submit(r#"{"kind": "sweep"}"#).unwrap();
    assert!(!created, "retry after tear must surface the dedupe");
    assert_eq!(view.id, "abc123");
    server.join().unwrap();
}

/// 429 + Retry-After and 503 are retried; the client converges when the
/// server recovers.
#[test]
fn shed_statuses_are_retried() {
    let busy =
        b"HTTP/1.1 429 Too Many Requests\r\nRetry-After: 0\r\nContent-Length: 0\r\n\r\n".to_vec();
    let unavailable = b"HTTP/1.1 503 Service Unavailable\r\nContent-Length: 0\r\n\r\n".to_vec();
    let ok = http_200(r#"{"id": "abc123", "stage": "done"}"#);
    let (addr, server) = script_server(vec![busy, unavailable, ok]);
    let client = quick_client(&addr, 5);
    let view = client.status("abc123").unwrap();
    assert_eq!(view.stage, "done");
    server.join().unwrap();
}
