//! Property tests for the job lifecycle state machine: the runtime
//! [`Stage`] relation is pinned to an explicit edge list, random walks
//! prove every reachable sequence stays legal, and terminal states —
//! CANCELLED and FAILED in particular — admit **no** resurrection, however
//! the walk continues (the restart-adoption path depends on this).

use noc_serve::lifecycle::{JobState, Stage};
use proptest::prelude::*;

/// The lifecycle's ground truth, spelled out edge by edge. `permits` must
/// equal exactly this set — nothing extra, nothing missing.
const EDGES: &[(Stage, Stage)] = &[
    (Stage::Queued, Stage::Running),
    (Stage::Queued, Stage::Cancelled),
    (Stage::Running, Stage::Done),
    (Stage::Running, Stage::Failed),
    (Stage::Running, Stage::Cancelled),
    (Stage::Running, Stage::Checkpointed),
    (Stage::Checkpointed, Stage::Running),
    (Stage::Checkpointed, Stage::Cancelled),
    (Stage::Checkpointed, Stage::Failed),
];

fn stage(code: u8) -> Stage {
    Stage::ALL[usize::from(code) % Stage::ALL.len()]
}

#[test]
fn permits_is_exactly_the_documented_edge_set() {
    for from in Stage::ALL {
        for to in Stage::ALL {
            let expected = EDGES.contains(&(from, to));
            assert_eq!(from.permits(to), expected, "{from} -> {to}");
        }
    }
}

#[test]
fn every_stage_is_reachable_and_nonterminals_have_exits() {
    // Reachability from QUEUED over the edge relation.
    let mut reached = vec![Stage::Queued];
    let mut frontier = vec![Stage::Queued];
    while let Some(s) = frontier.pop() {
        for t in Stage::ALL {
            if s.permits(t) && !reached.contains(&t) {
                reached.push(t);
                frontier.push(t);
            }
        }
    }
    for s in Stage::ALL {
        assert!(reached.contains(&s), "{s} unreachable from QUEUED");
        let exits = Stage::ALL.into_iter().filter(|t| s.permits(*t)).count();
        if s.is_terminal() {
            assert_eq!(exits, 0, "{s} is terminal but has exits");
        } else {
            assert!(exits >= 2, "{s} must be able to progress and cancel");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(500))]

    /// Random walks: apply each proposed transition only when the relation
    /// permits it, and check the invariants the scheduler relies on along
    /// the way. Once a walk hits a terminal stage, **every** further
    /// proposal must be rejected — cancelled and failed jobs stay dead.
    #[test]
    fn walks_stay_legal_and_terminals_never_resurrect(codes in prop::collection::vec(0u8..6, 1..40)) {
        let mut cur = Stage::Queued;
        let mut died_at: Option<(usize, Stage)> = None;
        for (i, &c) in codes.iter().enumerate() {
            let proposal = stage(c);
            if let Some((when, grave)) = died_at {
                prop_assert!(
                    !cur.permits(proposal),
                    "step {i}: {grave} (terminal since step {when}) permitted {proposal}"
                );
                continue;
            }
            if cur.permits(proposal) {
                // Legal edge: take it and re-check basic sanity.
                prop_assert!(!cur.is_terminal(), "left terminal stage {cur}");
                prop_assert!(Stage::parse(proposal.label()) == Some(proposal));
                cur = proposal;
                if cur.is_terminal() {
                    died_at = Some((i, cur));
                }
            }
        }

    }

    /// The same walks driven through the **typestate** API, using the
    /// runtime relation as the model: whenever the model says an edge
    /// exists from the current stage, the corresponding typestate method
    /// must exist (encoded here as the walk's driver), and the typestate's
    /// resulting stage must match the model. A divergence in either
    /// direction fails the test, pinning `JobState` and `Stage::permits`
    /// together.
    #[test]
    fn typestate_and_runtime_relation_agree(codes in prop::collection::vec(0u8..6, 1..30)) {
        // The typestate cannot be stored in one variable across stages, so
        // the walk drives an enum mirror whose arms hold each typestate.
        enum AnyState {
            Queued(JobState<noc_serve::lifecycle::Queued>),
            Running(JobState<noc_serve::lifecycle::Running>),
            Checkpointed(JobState<noc_serve::lifecycle::Checkpointed>),
            Done(JobState<noc_serve::lifecycle::Done>),
            Failed(JobState<noc_serve::lifecycle::Failed>),
            Cancelled(JobState<noc_serve::lifecycle::Cancelled>),
        }
        impl AnyState {
            fn stage(&self) -> Stage {
                match self {
                    AnyState::Queued(s) => s.stage(),
                    AnyState::Running(s) => s.stage(),
                    AnyState::Checkpointed(s) => s.stage(),
                    AnyState::Done(s) => s.stage(),
                    AnyState::Failed(s) => s.stage(),
                    AnyState::Cancelled(s) => s.stage(),
                }
            }
            /// Applies the edge `to` when the typestate offers it.
            fn step(self, to: Stage) -> Result<AnyState, AnyState> {
                use AnyState as A;
                match (self, to) {
                    (A::Queued(s), Stage::Running) => Ok(A::Running(s.start())),
                    (A::Queued(s), Stage::Cancelled) => Ok(A::Cancelled(s.cancel())),
                    (A::Running(s), Stage::Done) => Ok(A::Done(s.complete())),
                    (A::Running(s), Stage::Failed) => Ok(A::Failed(s.fail())),
                    (A::Running(s), Stage::Cancelled) => Ok(A::Cancelled(s.cancel())),
                    (A::Running(s), Stage::Checkpointed) => Ok(A::Checkpointed(s.checkpoint())),
                    (A::Checkpointed(s), Stage::Running) => Ok(A::Running(s.resume())),
                    (A::Checkpointed(s), Stage::Cancelled) => Ok(A::Cancelled(s.cancel())),
                    (A::Checkpointed(s), Stage::Failed) => Ok(A::Failed(s.quarantine())),
                    (other, _) => Err(other),
                }
            }
        }

        let mut state = AnyState::Queued(JobState::submit("prop".into()));
        let mut attempts_model = 0u32;
        for &c in &codes {
            let to = stage(c);
            let from = state.stage();
            match state.step(to) {
                Ok(next) => {
                    prop_assert!(from.permits(to), "typestate offered illegal {from} -> {to}");
                    prop_assert_eq!(next.stage(), to);
                    if to == Stage::Running {
                        attempts_model += 1;
                    }
                    state = next;
                }
                Err(same) => {
                    prop_assert!(!from.permits(to), "runtime permits {from} -> {to} but typestate lacks it");
                    prop_assert_eq!(same.stage(), from);
                    state = same;
                }
            }
        }
        // Attempts count exactly the entries into RUNNING.
        let attempts = match &state {
            AnyState::Queued(s) => s.attempts(),
            AnyState::Running(s) => s.attempts(),
            AnyState::Checkpointed(s) => s.attempts(),
            AnyState::Done(s) => s.attempts(),
            AnyState::Failed(s) => s.attempts(),
            AnyState::Cancelled(s) => s.attempts(),
        };
        prop_assert_eq!(attempts, attempts_model);

    }
}
