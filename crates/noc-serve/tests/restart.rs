//! End-to-end crash tolerance against the real `noc_serve` binary: submit
//! a sweep over HTTP, `kill -9` the server mid-run, restart it over the
//! same data dir, and require (a) the job to resume and finish, and (b)
//! the checkpoint rows to be identical — as a sorted set — to those of an
//! uninterrupted run of the same job.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("noc_serve_restart_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Minimal HTTP/1.1 client: one request, one response, connection closed.
fn request(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    // A server may answer an error mid-upload; keep reading regardless.
    let _ = stream.write_all(req.as_bytes());
    let mut response = String::new();
    let _ = stream.read_to_string(&mut response);
    let code: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .unwrap_or(0);
    let payload = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (code, payload)
}

/// Extracts a field (string or numeric) from a flat JSON row.
fn field(row: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\": ");
    let start = row.find(&needle)? + needle.len();
    let rest = &row[start..];
    if let Some(quoted) = rest.strip_prefix('"') {
        Some(quoted[..quoted.find('"')?].to_string())
    } else {
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim().to_string())
    }
}

/// Spawns the server over `data_dir` and waits for its address file.
/// The child leaks only on the assert-panic path, where the whole test
/// process is torn down anyway.
#[allow(clippy::zombie_processes)]
fn spawn_server(data_dir: &Path) -> (Child, String) {
    let addr_file = data_dir.join("addr.txt");
    let _ = std::fs::remove_file(&addr_file);
    let child = Command::new(env!("CARGO_BIN_EXE_noc_serve"))
        .args([
            "--data-dir",
            data_dir.to_str().unwrap(),
            "--workers",
            "1",
            "--retry-base-ms",
            "5",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn noc_serve");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(text) = std::fs::read_to_string(&addr_file) {
            let addr = text.trim().to_string();
            if !addr.is_empty() {
                // The file is written after bind; the listener is live.
                return (child, addr);
            }
        }
        assert!(
            Instant::now() < deadline,
            "server never published its address"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn sorted_lines(text: &str) -> Vec<String> {
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    lines.sort();
    lines
}

/// The sweep under test: 8 points, each a second-scale simulation, so the
/// kill lands mid-job deterministically.
const SPEC: &str = r#"{"kind": "sweep", "schemes": "SEEC,mSEEC", "transients": "0.0,0.005,0.01,0.05", "cycles": "8000", "seed": "77"}"#;

#[test]
fn kill_nine_mid_sweep_resumes_to_identical_rows() {
    // Reference: the same job, uninterrupted, through the service layer.
    let ref_dir = tmpdir("reference");
    let reference = {
        let mut opts = noc_serve::ServeOpts::new(&ref_dir);
        opts.workers = 1;
        opts.batch_width = 4;
        let service = noc_serve::Service::open(opts).unwrap();
        let row = noc_experiments::jsonio::parse_flat(SPEC).unwrap();
        let (status, _) = service.submit(&row).unwrap();
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            let s = service.status(&status.id).unwrap();
            if s.stage.is_terminal() {
                assert_eq!(s.stage, noc_serve::Stage::Done, "{:?}", s.error);
                break;
            }
            assert!(Instant::now() < deadline, "reference run stuck");
            std::thread::sleep(Duration::from_millis(20));
        }
        let rows = std::fs::read_to_string(service.rows_path(&status.id).unwrap()).unwrap();
        service.drain();
        (status.id, rows)
    };

    // Victim: same job via the real binary, killed with SIGKILL mid-run.
    let data_dir = tmpdir("victim");
    let (mut child, addr) = spawn_server(&data_dir);
    let (code, body) = request(&addr, "POST", "/jobs", SPEC);
    assert_eq!(code, 202, "{body}");
    let id = field(&body, "id").expect("job id");
    assert_eq!(id, reference.0, "same spec, same content address");

    // Wait until at least one checkpoint row is on disk, then kill -9.
    let rows_path = data_dir.join("jobs").join(&id).join("rows.ckpt.jsonl");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let rows = std::fs::read_to_string(&rows_path).unwrap_or_default();
        let n = rows.lines().count();
        if (1..8).contains(&n) {
            break;
        }
        assert!(n < 8, "sweep finished before the kill; enlarge it");
        assert!(Instant::now() < deadline, "no progress before kill");
        std::thread::sleep(Duration::from_millis(5));
    }
    child.kill().expect("SIGKILL"); // Child::kill is SIGKILL on unix
    let _ = child.wait();

    // Restart over the same data dir: the journal is adopted, the job
    // resumes (re-executing only missing points) and completes.
    let (mut child, addr) = spawn_server(&data_dir);
    let deadline = Instant::now() + Duration::from_secs(120);
    let status = loop {
        let (code, body) = request(&addr, "GET", &format!("/jobs/{id}"), "");
        assert_eq!(code, 200, "{body}");
        let stage = field(&body, "stage").expect("stage");
        if ["done", "failed", "cancelled"].contains(&stage.as_str()) {
            break body;
        }
        assert!(Instant::now() < deadline, "resumed job stuck: {body}");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(field(&status, "stage").as_deref(), Some("done"), "{status}");
    assert_eq!(field(&status, "done").as_deref(), Some("8"), "{status}");

    // The journal holds exactly the reference row set (sorted compare:
    // parallel workers may order rows differently between runs).
    let (code, resumed_rows) = request(&addr, "GET", &format!("/jobs/{id}/rows"), "");
    assert_eq!(code, 200);
    assert_eq!(
        sorted_lines(&resumed_rows),
        sorted_lines(&reference.1),
        "kill -9 + resume must reproduce the uninterrupted row set"
    );
    // And the on-disk journal agrees with what HTTP served.
    let on_disk = std::fs::read_to_string(&rows_path).unwrap();
    assert_eq!(sorted_lines(&on_disk), sorted_lines(&reference.1));

    // Graceful shutdown this time: drain over HTTP, then the process exits
    // on its own.
    let (code, _) = request(&addr, "POST", "/drain", "");
    assert_eq!(code, 202);
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match child.try_wait().unwrap() {
            Some(es) => {
                assert!(es.success(), "drained server must exit 0, got {es:?}");
                break;
            }
            None => {
                assert!(Instant::now() < deadline, "server never exited after drain");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
    let _ = std::fs::remove_dir_all(&data_dir);
    let _ = std::fs::remove_dir_all(&ref_dir);
}

#[test]
fn http_surface_shed_dedupe_and_errors() {
    let data_dir = tmpdir("http");
    let (mut child, addr) = spawn_server(&data_dir);

    // healthz
    let (code, body) = request(&addr, "GET", "/healthz", "");
    assert_eq!(code, 200);
    assert!(body.contains("\"status\": \"ok\""), "{body}");

    // Bad spec → 400 naming the problem.
    let (code, body) = request(&addr, "POST", "/jobs", r#"{"kind": "warp"}"#);
    assert_eq!(code, 400);
    assert!(body.contains("unknown job kind"), "{body}");

    // Unknown job → 404; unknown route → 404.
    let (code, _) = request(&addr, "GET", "/jobs/feedfacefeedface", "");
    assert_eq!(code, 404);
    let (code, _) = request(&addr, "GET", "/nope", "");
    assert_eq!(code, 404);

    // Submit, then resubmit: 202 then 200 (dedupe).
    let spec = r#"{"kind": "chaos", "seed": "5", "cases": "1", "pool": "smoke"}"#;
    let (code, body) = request(&addr, "POST", "/jobs", spec);
    assert_eq!(code, 202, "{body}");
    let (code, body2) = request(&addr, "POST", "/jobs", spec);
    assert_eq!(code, 200, "{body2}");
    assert_eq!(field(&body, "id"), field(&body2, "id"));

    // Oversized body → 413.
    let huge = format!(
        r#"{{"kind": "sweep", "schemes": "{}"}}"#,
        "x".repeat(70 * 1024)
    );
    let (code, _) = request(&addr, "POST", "/jobs", &huge);
    assert_eq!(code, 413);

    child.kill().unwrap();
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&data_dir);
}
