//! HTTP hardening tests: torn requests at every byte offset, slow-loris
//! deadlines, header caps, connection shedding, and the healthz network
//! counters. All over real loopback sockets against the in-process
//! server; tears are produced the honest way — write a prefix, close the
//! socket — so the server sees exactly what a dead client leaves behind.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use noc_net::Transport;
use noc_serve::{http, HttpOpts, ServeOpts, Service};

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("noc_http_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// An in-process server on loopback. `workers: 0` — these tests exercise
/// admission, not execution.
struct Harness {
    addr: String,
    service: Arc<Service>,
    shutdown: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Harness {
    fn start(tag: &str, http_opts: HttpOpts) -> Harness {
        let dir = tmpdir(tag);
        let mut opts = ServeOpts::new(&dir);
        opts.workers = 0;
        opts.queue_cap = 4;
        let service = Arc::new(Service::open(opts).unwrap());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let shutdown = Arc::new(AtomicBool::new(false));
        let thread = {
            let service = Arc::clone(&service);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                http::serve_with(
                    listener,
                    &service,
                    &shutdown,
                    &http_opts,
                    &Transport::passthrough(),
                );
            })
        };
        Harness {
            addr,
            service,
            shutdown,
            thread: Some(thread),
        }
    }
}

impl Drop for Harness {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        self.service.drain();
    }
}

/// Sends raw bytes, returns the full raw response (empty when the server
/// hung up without answering).
fn raw_roundtrip(addr: &str, bytes: &[u8]) -> Vec<u8> {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(bytes).unwrap();
    let _ = s.shutdown(Shutdown::Write);
    let mut out = Vec::new();
    let _ = s.read_to_end(&mut out);
    out
}

fn status_code(raw: &[u8]) -> Option<u16> {
    let text = String::from_utf8_lossy(raw);
    text.split_whitespace().nth(1).and_then(|c| c.parse().ok())
}

fn full_request(method: &str, path: &str, body: &str) -> Vec<u8> {
    format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

const SPEC: &str = r#"{"kind": "sweep", "schemes": "SEEC", "transients": "0.0", "cycles": "2000"}"#;

/// A request torn at EVERY byte offset — including cuts inside the
/// request line, inside headers, and inside the body — never kills the
/// server: after all of them, a whole request still gets a clean answer
/// and the tears show up in the reset counter.
#[test]
fn torn_request_at_every_byte_offset_leaves_server_alive() {
    let h = Harness::start("torn_req", HttpOpts::default());
    let request = full_request("POST", "/jobs", SPEC);
    for cut in 1..request.len() {
        let mut s = TcpStream::connect(&h.addr).unwrap();
        s.write_all(&request[..cut]).unwrap();
        // The tear: the client dies mid-request.
        drop(s);
    }
    // The server took every tear and still serves.
    let raw = raw_roundtrip(&h.addr, &full_request("GET", "/healthz", ""));
    assert_eq!(status_code(&raw), Some(200));
    let text = String::from_utf8_lossy(&raw);
    assert!(text.contains("\"connections_reset\""), "healthz: {text}");
    // Most cuts die before a complete request; all of those are resets.
    assert!(
        h.service.net().reset.get() > 0,
        "no tear was counted as a reset"
    );
    // And a whole submission still works.
    let raw = raw_roundtrip(&h.addr, &full_request("POST", "/jobs", SPEC));
    assert_eq!(status_code(&raw), Some(202), "server damaged by tears");
}

/// A client that connects and trickles nothing is killed at the request
/// deadline with `408`, and the kill is counted.
#[test]
fn slow_loris_is_killed_at_the_deadline() {
    let h = Harness::start(
        "loris",
        HttpOpts {
            request_deadline_ms: 150,
            ..HttpOpts::default()
        },
    );
    let mut s = TcpStream::connect(&h.addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    // A drip of header bytes, never finishing the request.
    s.write_all(b"POST /jobs HTTP/1.1\r\nHost: t").unwrap();
    let mut out = Vec::new();
    let _ = s.read_to_end(&mut out);
    assert_eq!(
        status_code(&out),
        Some(408),
        "{}",
        String::from_utf8_lossy(&out)
    );
    assert_eq!(h.service.net().deadline_kills.get(), 1);
}

/// An endless header line is refused at the cap with `431` — fixed-size
/// buffering, not unbounded growth.
#[test]
fn endless_header_line_is_refused_with_431() {
    let h = Harness::start(
        "longline",
        HttpOpts {
            max_header_line: 1024,
            ..HttpOpts::default()
        },
    );
    let mut req = b"GET /healthz HTTP/1.1\r\nX-Flood: ".to_vec();
    req.extend(std::iter::repeat_n(b'a', 8 * 1024));
    // No newline: the line would grow forever without the cap.
    let raw = raw_roundtrip(&h.addr, &req);
    assert_eq!(
        status_code(&raw),
        Some(431),
        "{}",
        String::from_utf8_lossy(&raw)
    );
    assert_eq!(h.service.net().header_rejects.get(), 1);

    // An over-long REQUEST line hits the same cap.
    let mut req = b"GET /".to_vec();
    req.extend(std::iter::repeat_n(b'x', 8 * 1024));
    let raw = raw_roundtrip(&h.addr, &req);
    assert_eq!(status_code(&raw), Some(431));
}

/// Too many header lines is also a `431`.
#[test]
fn too_many_headers_is_refused_with_431() {
    let h = Harness::start(
        "manyheads",
        HttpOpts {
            max_headers: 8,
            ..HttpOpts::default()
        },
    );
    let mut req = String::from("GET /healthz HTTP/1.1\r\n");
    for i in 0..32 {
        req.push_str(&format!("X-H{i}: v\r\n"));
    }
    req.push_str("\r\n");
    let raw = raw_roundtrip(&h.addr, req.as_bytes());
    assert_eq!(status_code(&raw), Some(431));
    assert!(h.service.net().header_rejects.get() >= 1);
}

/// With the connection cap at zero every arrival is shed inline with
/// `503` + `Retry-After`, and the shed is counted.
#[test]
fn saturated_server_sheds_with_503_retry_after() {
    let h = Harness::start(
        "shed",
        HttpOpts {
            max_connections: 0,
            ..HttpOpts::default()
        },
    );
    let raw = raw_roundtrip(&h.addr, &full_request("GET", "/healthz", ""));
    let text = String::from_utf8_lossy(&raw);
    assert_eq!(status_code(&raw), Some(503), "{text}");
    assert!(text.contains("Retry-After"), "{text}");
    assert!(h.service.net().shed.get() >= 1);
    assert!(h.service.net().accepted.get() >= 1);
}

/// A retried submission is absorbed by the content address as a `200`
/// dedupe, and the hit is visible in healthz — the counter soaks use to
/// prove the idempotency escape channel actually fired.
#[test]
fn resubmission_dedupes_and_counts_the_hit() {
    let h = Harness::start("dedupe", HttpOpts::default());
    let first = raw_roundtrip(&h.addr, &full_request("POST", "/jobs", SPEC));
    assert_eq!(status_code(&first), Some(202));
    let again = raw_roundtrip(&h.addr, &full_request("POST", "/jobs", SPEC));
    assert_eq!(status_code(&again), Some(200), "retry must dedupe");
    assert_eq!(h.service.net().dedupe_hits.get(), 1);
    let raw = raw_roundtrip(&h.addr, &full_request("GET", "/healthz", ""));
    assert!(
        String::from_utf8_lossy(&raw).contains("\"dedupe_hits\": 1"),
        "{}",
        String::from_utf8_lossy(&raw)
    );
}
