//! Integration tests for the in-process service: deadline expiry,
//! retry-then-quarantine, queue-full load shedding, cancellation (with no
//! resurrection across restarts), content-address dedupe, and storage
//! faults (read-only DEGRADED mode, probe-write self-heal, journal repair
//! on adoption). All deterministic — panics are injected via the spec's
//! `fail_attempts` hook, overload via `workers: 0`, storage faults via a
//! scheduled `noc_store::FaultVfs` passed to `Service::open_with_vfs`.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use noc_experiments::jsonio;
use noc_serve::{ServeOpts, Service, Stage, SubmitError};
use noc_store::{FaultKind, FaultPlan, FaultVfs};

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("noc_serve_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn row(line: &str) -> BTreeMap<String, String> {
    jsonio::parse_flat(line).expect("valid submission row")
}

fn opts(dir: &std::path::Path) -> ServeOpts {
    let mut o = ServeOpts::new(dir);
    o.workers = 2;
    o.queue_cap = 8;
    o.retry_base_ms = 5;
    o.max_attempts = 3;
    o.batch_width = 1;
    o
}

/// Polls until the job reaches a terminal stage (or panics after 60 s —
/// these jobs are seconds-scale at most).
fn await_terminal(service: &Service, id: &str) -> noc_serve::JobStatus {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let s = service.status(id).expect("job exists");
        if s.stage.is_terminal() {
            return s;
        }
        assert!(Instant::now() < deadline, "job {id} stuck in {}", s.stage);
        std::thread::sleep(Duration::from_millis(10));
    }
}

const QUICK_SWEEP: &str =
    r#"{"kind": "sweep", "schemes": "SEEC,mSEEC", "transients": "0.0,0.01", "cycles": "2000"}"#;

#[test]
fn sweep_job_runs_to_done_and_dedupes() {
    let dir = tmpdir("done");
    let service = Service::open(opts(&dir)).unwrap();
    let (status, created) = service.submit(&row(QUICK_SWEEP)).unwrap();
    assert!(created);
    assert_eq!(status.total, 4);
    let done = await_terminal(&service, &status.id);
    assert_eq!(done.stage, Stage::Done);
    assert_eq!((done.done, done.failed_units), (4, 0));
    assert!(done.summary.is_some());
    // Resubmission (even with different non-work knobs) dedupes onto the
    // finished job instead of re-running it.
    let resub = format!(
        r#"{}, "deadline_ms": "60000"}}"#,
        QUICK_SWEEP.trim_end_matches('}')
    );
    let (again, created) = service.submit(&row(&resub)).unwrap();
    assert!(!created, "content address must dedupe");
    assert_eq!(again.id, done.id);
    assert_eq!(again.stage, Stage::Done);
    // The rows journal exists and holds one row per point.
    let rows = std::fs::read_to_string(service.rows_path(&done.id).unwrap()).unwrap();
    assert_eq!(rows.lines().count(), 4);
    service.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deadline_expiry_is_a_terminal_failure() {
    let dir = tmpdir("deadline");
    let service = Service::open(opts(&dir)).unwrap();
    // A 1 ms budget against a multi-point sweep: expires mid-run, at a
    // unit boundary, deterministically before the sweep can finish.
    let spec = r#"{"kind": "sweep", "schemes": "SEEC,mSEEC", "transients": "0.0,0.01,0.05", "cycles": "6000", "deadline_ms": "1"}"#;
    let (status, _) = service.submit(&row(spec)).unwrap();
    let done = await_terminal(&service, &status.id);
    assert_eq!(done.stage, Stage::Failed);
    let err = done.error.expect("failure detail");
    assert!(err.contains("deadline exceeded"), "{err}");
    // Expiry is not retried: one attempt only.
    assert_eq!(done.attempts, 1);
    service.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn panicking_job_retries_then_succeeds() {
    let dir = tmpdir("retry_ok");
    let service = Service::open(opts(&dir)).unwrap();
    // Panics on attempt 1, runs clean on attempt 2 (within max_attempts=3).
    let spec = r#"{"kind": "sweep", "schemes": "SEEC", "transients": "0.0", "cycles": "2000", "fail_attempts": "1"}"#;
    let (status, _) = service.submit(&row(spec)).unwrap();
    let done = await_terminal(&service, &status.id);
    assert_eq!(done.stage, Stage::Done, "{:?}", done.error);
    assert_eq!(done.attempts, 2, "one panic, one clean run");
    assert!(done.quarantine.is_none());
    service.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn panicking_job_is_quarantined_after_max_attempts() {
    let dir = tmpdir("quarantine");
    let service = Service::open(opts(&dir)).unwrap();
    // Panics forever: must exhaust max_attempts=3 and quarantine.
    let spec = r#"{"kind": "sweep", "schemes": "SEEC", "transients": "0.0", "cycles": "2000", "fail_attempts": "99"}"#;
    let (status, _) = service.submit(&row(spec)).unwrap();
    let done = await_terminal(&service, &status.id);
    assert_eq!(done.stage, Stage::Failed);
    assert_eq!(done.attempts, 3);
    let err = done.error.expect("quarantine detail");
    assert!(err.contains("quarantined after 3 attempts"), "{err}");
    assert!(err.contains("injected service test panic"), "{err}");
    // The black box exists and names the panic.
    let qpath = done.quarantine.expect("quarantine path");
    let body = std::fs::read_to_string(&qpath).unwrap();
    let qrow = jsonio::parse_flat(body.trim()).expect("quarantine row");
    assert_eq!(qrow["schema"], "noc-serve-quarantine-v1");
    assert!(qrow["panic"].contains("injected service test panic"));
    service.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn full_queue_sheds_with_retry_after() {
    let dir = tmpdir("shed");
    let mut o = opts(&dir);
    o.workers = 0; // accept-only: nothing drains the queue
    o.queue_cap = 1;
    let service = Service::open(o).unwrap();
    let (first, created) = service.submit(&row(QUICK_SWEEP)).unwrap();
    assert!(created);
    assert_eq!(first.stage, Stage::Queued);
    // The queue (cap 1) is full: a different job is shed with Retry-After.
    let other = r#"{"kind": "chaos", "seed": "1", "cases": "1"}"#;
    match service.submit(&row(other)) {
        Err(SubmitError::Busy(full)) => assert!(full.retry_after_s >= 1),
        other => panic!("expected Busy, got {other:?}"),
    }
    // Shedding is before persistence: the shed job left no directory, and
    // resubmitting the *same* job dedupes instead of shedding.
    assert_eq!(service.list().len(), 1);
    let (again, created) = service.submit(&row(QUICK_SWEEP)).unwrap();
    assert!(!created);
    assert_eq!(again.id, first.id);
    service.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn draining_service_refuses_submissions() {
    let dir = tmpdir("drain");
    let service = Service::open(opts(&dir)).unwrap();
    service.drain();
    assert!(service.is_draining());
    match service.submit(&row(QUICK_SWEEP)) {
        Err(SubmitError::Draining) => {}
        other => panic!("expected Draining, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn invalid_specs_are_rejected_with_field_names() {
    let dir = tmpdir("invalid");
    let service = Service::open(opts(&dir)).unwrap();
    for (line, needle) in [
        (r#"{"kind": "warp"}"#, "unknown job kind"),
        (
            r#"{"kind": "sweep", "schemes": "SEEK"}"#,
            "unknown scheme label",
        ),
        (
            r#"{"kind": "replay", "repro": "/nonexistent/r.jsonl"}"#,
            "cannot read repro",
        ),
    ] {
        match service.submit(&row(line)) {
            Err(SubmitError::Invalid(e)) => assert!(e.contains(needle), "{line}: {e}"),
            other => panic!("{line}: expected Invalid, got {other:?}"),
        }
    }
    service.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancelled_job_stays_cancelled_across_restart() {
    let dir = tmpdir("cancel");
    let mut o = opts(&dir);
    o.workers = 0; // keep the job parked so cancellation is immediate
    let service = Service::open(o.clone()).unwrap();
    let (status, _) = service.submit(&row(QUICK_SWEEP)).unwrap();
    assert_eq!(status.stage, Stage::Queued);
    let cancelled = service.cancel(&status.id).expect("cancellable");
    assert_eq!(cancelled.stage, Stage::Cancelled);
    // A second cancel reports the terminal stage.
    match service.cancel(&status.id) {
        Err(Some(Stage::Cancelled)) => {}
        other => panic!("expected terminal-cancel conflict, got {other:?}"),
    }
    // Resubmission dedupes onto the cancelled job — no resurrection.
    let (again, created) = service.submit(&row(QUICK_SWEEP)).unwrap();
    assert!(!created);
    assert_eq!(again.stage, Stage::Cancelled);
    service.drain();
    // Restart over the same data dir, now WITH workers: the journal's
    // terminal verdict must hold — the job is adopted as CANCELLED, never
    // requeued, never run.
    o.workers = 2;
    let reborn = Service::open(o).unwrap();
    let s = reborn.status(&status.id).expect("adopted");
    assert_eq!(s.stage, Stage::Cancelled);
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(reborn.status(&status.id).unwrap().stage, Stage::Cancelled);
    assert_eq!(reborn.queued(), 0, "cancelled job must not requeue");
    reborn.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn running_job_cancels_at_a_unit_boundary() {
    let dir = tmpdir("cancel_running");
    let service = Service::open(opts(&dir)).unwrap();
    // Enough points that the job is still running when cancel arrives.
    let spec = r#"{"kind": "sweep", "schemes": "SEEC,mSEEC,EscVC", "transients": "0.0,0.01,0.05", "cycles": "6000"}"#;
    let (status, _) = service.submit(&row(spec)).unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let s = service.status(&status.id).unwrap();
        if s.stage == Stage::Running {
            break;
        }
        assert!(
            !s.stage.is_terminal(),
            "finished before cancel; enlarge the sweep"
        );
        assert!(Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(2));
    }
    service.cancel(&status.id).expect("cancellable");
    let done = await_terminal(&service, &status.id);
    assert_eq!(done.stage, Stage::Cancelled);
    service.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn drained_jobs_are_adopted_and_finish_after_restart() {
    let dir = tmpdir("adopt");
    let mut o = opts(&dir);
    o.workers = 0; // park the job; drain leaves it QUEUED in the journal
    let service = Service::open(o.clone()).unwrap();
    let (status, _) = service.submit(&row(QUICK_SWEEP)).unwrap();
    service.drain();
    drop(service);
    // Restart with workers: the job is adopted, requeued and completes.
    o.workers = 2;
    let reborn = Service::open(o).unwrap();
    let done = await_terminal(&reborn, &status.id);
    assert_eq!(done.stage, Stage::Done);
    assert_eq!(done.done, 4);
    reborn.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

/// One point, one worker: every storage op lands at a deterministic index.
///
/// Op map (`FaultVfs` counts appends + atomic writes, never reads):
///   0 spec.json · 1 state.jsonl acceptance · 2 RUNNING transition ·
///   3-5 the row append and its two resync retries (stuck) ·
///   6-8 the parked-by-storage transition retries (still stuck) ·
///   9+ the self-heal probe writes, one per worker tick.
const ONE_POINT: &str =
    r#"{"kind": "sweep", "schemes": "SEEC", "transients": "0.0", "cycles": "2000"}"#;

#[test]
fn storage_fault_parks_job_degrades_service_and_self_heals() {
    let dir = tmpdir("degraded");
    let mut o = opts(&dir);
    o.workers = 1;
    let plan = FaultPlan::default()
        .with_event(3, FaultKind::Stuck)
        .with_event(40, FaultKind::Heal);
    let vfs = FaultVfs::new(plan);
    let service = Service::open_with_vfs(o, Arc::new(vfs)).unwrap();
    let (status, created) = service.submit(&row(ONE_POINT)).unwrap();
    assert!(created);

    // The row append hits the stuck fault: the job parks (CHECKPOINTED,
    // rows intact, token NOT latched) and the service flips read-only.
    let deadline = Instant::now() + Duration::from_secs(30);
    while !service.storage_degraded() {
        assert!(Instant::now() < deadline, "service never degraded");
        std::thread::sleep(Duration::from_millis(5));
    }
    let parked = service.status(&status.id).unwrap();
    assert!(
        !parked.stage.is_terminal(),
        "storage fault must park, not fail: {}",
        parked.stage
    );
    assert!(service.storage_detail().is_some());

    // Read-only mode: new submissions are shed with the failure detail.
    let other = r#"{"kind": "chaos", "seed": "1", "cases": "1", "pool": "smoke"}"#;
    match service.submit(&row(other)) {
        Err(SubmitError::StorageDegraded(why)) => {
            assert!(!why.is_empty(), "degraded error names the failure");
        }
        other => panic!("expected StorageDegraded, got {other:?}"),
    }

    // The probe writes burn through the schedule to the heal event; the
    // service then leaves read-only mode, requeues the parked job, and the
    // sweep finishes with its journal intact.
    let done = await_terminal(&service, &status.id);
    assert_eq!(done.stage, Stage::Done, "{:?}", done.error);
    assert_eq!(done.done, 1);
    assert!(!service.storage_degraded(), "heal must clear DEGRADED");
    assert!(service.storage_detail().is_none());
    let rows = std::fs::read_to_string(service.rows_path(&done.id).unwrap()).unwrap();
    assert_eq!(
        rows.lines().filter(|l| !l.trim().is_empty()).count(),
        1,
        "{rows}"
    );
    // Post-heal the service accepts work again.
    let (second, created) = service.submit(&row(other)).unwrap();
    assert!(created);
    let second = await_terminal(&service, &second.id);
    assert_eq!(second.stage, Stage::Done, "{:?}", second.error);
    service.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_state_journal_line_is_repaired_and_counted_on_adoption() {
    let dir = tmpdir("state_repair");
    let o = opts(&dir);
    let service = Service::open(o.clone()).unwrap();
    let (status, _) = service.submit(&row(ONE_POINT)).unwrap();
    let done = await_terminal(&service, &status.id);
    assert_eq!(done.stage, Stage::Done);
    assert_eq!(done.repaired_lines, 0);
    assert_eq!(done.corrupt_lines, 0);
    service.drain();
    drop(service);

    // Flip one byte inside the final (DONE) transition record. The CRC
    // trailer catches it: the next boot drops exactly that line, compacts
    // the journal, and the job — whose believable history now ends at
    // RUNNING — is adopted and re-run to completion from its row journal.
    let state = dir.join("jobs").join(&status.id).join("state.jsonl");
    let mut bytes = std::fs::read(&state).unwrap();
    let line_starts: Vec<usize> = std::iter::once(0)
        .chain(
            bytes
                .iter()
                .enumerate()
                .filter(|(_, b)| **b == b'\n')
                .map(|(i, _)| i + 1),
        )
        .collect();
    let last_line = *line_starts
        .iter()
        .rev()
        .find(|&&s| s < bytes.len())
        .unwrap();
    bytes[last_line + 10] ^= 0x20;
    std::fs::write(&state, &bytes).unwrap();

    let reborn = Service::open(o).unwrap();
    let s = reborn.status(&status.id).expect("adopted");
    assert_eq!(s.repaired_lines, 1, "exact accounting of the dropped line");
    let redone = await_terminal(&reborn, &status.id);
    assert_eq!(redone.stage, Stage::Done, "{:?}", redone.error);
    // The journal was compacted: every surviving line verifies, so a third
    // boot counts zero repairs.
    reborn.drain();
    drop(reborn);
    let third = Service::open(opts(&dir)).unwrap();
    assert_eq!(third.status(&status.id).unwrap().repaired_lines, 0);
    third.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn chaos_job_completes_and_journals_cases() {
    let dir = tmpdir("chaos");
    let service = Service::open(opts(&dir)).unwrap();
    let spec = r#"{"kind": "chaos", "seed": "11", "cases": "2", "pool": "smoke"}"#;
    let (status, _) = service.submit(&row(spec)).unwrap();
    let done = await_terminal(&service, &status.id);
    assert_eq!(done.stage, Stage::Done, "{:?}", done.error);
    assert_eq!(done.done, 2);
    let rows = std::fs::read_to_string(service.rows_path(&done.id).unwrap()).unwrap();
    assert_eq!(rows.lines().count(), 2);
    service.drain();
    let _ = std::fs::remove_dir_all(&dir);
}
