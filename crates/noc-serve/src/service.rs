//! The job service: a bounded queue feeding a supervised worker pool, with
//! every lifecycle transition journaled for crash-safe restart.
//!
//! ## Failure matrix
//!
//! | event                    | outcome                                     |
//! |--------------------------|---------------------------------------------|
//! | job panics               | retried with capped exponential backoff; after `max_attempts` quarantined as FAILED with a `quarantine.json` black box |
//! | deadline expires         | FAILED (`deadline exceeded`), no retry       |
//! | client cancels           | CANCELLED at the next unit boundary, terminal forever (restarts included) |
//! | queue full               | submission shed with `QueueFull` (HTTP 429 + `Retry-After`) |
//! | drain (SIGTERM)          | running jobs parked as CHECKPOINTED, queue closed, workers joined |
//! | `kill -9`                | next boot adopts the journals: non-terminal jobs requeue and resume from `rows.ckpt.jsonl`; a torn final row is repaired and re-executed |
//! | storage write fails      | running jobs park as CHECKPOINTED with their rows intact and the service flips to read-only DEGRADED: submissions get `StorageDegraded` (HTTP 503 + `Retry-After`), `healthz` reports it, and a periodic probe write heals the service and requeues the parked jobs once storage recovers |
//! | corrupt journal line     | detected by its CRC trailer at the next boot, dropped with exact accounting (`repaired_lines` / `corrupt_lines` in every status row), and compacted out of the journal |
//!
//! ## On-disk layout (under `data_dir`)
//!
//! ```text
//! jobs/<id>/spec.json        the submitted spec (canonical rendering)
//! jobs/<id>/state.jsonl      append-only stage transitions
//! jobs/<id>/rows.ckpt.jsonl  per-unit results (the resume journal)
//! jobs/<id>/dumps/           black-box dumps and repro files
//! jobs/<id>/quarantine.json  written when retries are exhausted
//! ```

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use noc_experiments::jsonio::{self, JsonObj};
use noc_experiments::{JobError, JobProgress};
use noc_store::{LineCheck, Vfs};

use crate::lifecycle::Stage;
use crate::queue::{BoundedQueue, QueueFull};
use crate::spec::JobSpec;

/// Service configuration.
#[derive(Clone, Debug)]
pub struct ServeOpts {
    /// Root of the persistent state.
    pub data_dir: PathBuf,
    /// Worker threads. `0` means accept-only — jobs queue but never run
    /// (the load-shedding tests use this to fill the queue reliably).
    pub workers: usize,
    /// Queue bound; submissions beyond it are shed.
    pub queue_cap: usize,
    /// Base backoff after a panicking attempt; attempt `n` waits
    /// `retry_base_ms << (n-1)`, capped at 64× the base.
    pub retry_base_ms: u64,
    /// Attempts before a panicking job is quarantined.
    pub max_attempts: u32,
    /// Lockstep batch width for sweep jobs (resolve `NOC_BATCH_WIDTH`
    /// before building this — the service never reads the environment).
    pub batch_width: usize,
}

impl ServeOpts {
    pub fn new(data_dir: impl Into<PathBuf>) -> ServeOpts {
        ServeOpts {
            data_dir: data_dir.into(),
            workers: 2,
            queue_cap: 16,
            retry_base_ms: 50,
            max_attempts: 3,
            batch_width: 4,
        }
    }
}

/// Why a submission was not accepted.
#[derive(Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// Malformed spec; the message names the field.
    Invalid(String),
    /// Queue at capacity — shed, retry later.
    Busy(QueueFull),
    /// The service is draining and accepts nothing new.
    Draining,
    /// Storage is degraded: the service is read-only until a probe write
    /// succeeds. The message names the failure that tripped it.
    StorageDegraded(String),
}

/// Point-in-time public view of one job.
#[derive(Clone, Debug)]
pub struct JobStatus {
    pub id: String,
    pub stage: Stage,
    pub attempts: u32,
    pub done: usize,
    pub total: usize,
    pub failed_units: usize,
    /// Torn journal lines detected (by shape or CRC), quarantined, and
    /// re-executed across this job's journals.
    pub repaired_lines: usize,
    /// Lines whose CRC trailer failed outright — silent corruption that
    /// would have been parsed as data before checksummed framing.
    pub corrupt_lines: usize,
    /// Present when terminal-with-prejudice: the failure/cancel detail.
    pub error: Option<String>,
    /// Present when DONE: the job's one-line summary.
    pub summary: Option<String>,
    /// Present when quarantined: the black-box path.
    pub quarantine: Option<PathBuf>,
}

impl JobStatus {
    /// Flat JSON rendering for HTTP payloads.
    pub fn to_row(&self) -> String {
        let mut obj = JsonObj::new()
            .str_field("id", &self.id)
            .str_field("stage", self.stage.label())
            .u64_field("attempts", u64::from(self.attempts))
            .u64_field("done", self.done as u64)
            .u64_field("total", self.total as u64)
            .u64_field("failed_units", self.failed_units as u64)
            .u64_field("repaired_lines", self.repaired_lines as u64)
            .u64_field("corrupt_lines", self.corrupt_lines as u64);
        if let Some(e) = &self.error {
            obj = obj.str_field("error", e);
        }
        if let Some(s) = &self.summary {
            obj = obj.str_field("summary", s);
        }
        if let Some(q) = &self.quarantine {
            obj = obj.str_field("quarantine", &q.display().to_string());
        }
        obj.finish()
    }
}

/// One monotonic event counter. Relaxed ordering: counters are telemetry,
/// never synchronization.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one observed event.
    pub fn incr(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Monotonic network/admission counters, surfaced in `/healthz` so chaos
/// soaks can assert that shedding, deadline kills, and idempotent
/// resubmission actually happened — not just that the end state converged.
#[derive(Debug, Default)]
pub struct NetStats {
    /// Connections the accept loop took off the listener.
    pub accepted: Counter,
    /// Connections refused inline (concurrency cap or spawn failure).
    pub shed: Counter,
    /// Connections that died mid-request (reset, torn request, I/O error).
    pub reset: Counter,
    /// Connections refused with `408` for exceeding the request deadline.
    pub deadline_kills: Counter,
    /// Requests refused with `431` (header line/count caps).
    pub header_rejects: Counter,
    /// Submissions answered from the content-address dedupe — each one is
    /// a client retry observed after the original attempt was admitted.
    pub dedupe_hits: Counter,
}

/// Shared per-job progress counters, updated by the running worker and
/// read by status snapshots.
#[derive(Default)]
struct Progress {
    done: AtomicUsize,
    total: AtomicUsize,
    failed: AtomicUsize,
    repaired: AtomicUsize,
    corrupt: AtomicUsize,
}

struct Entry {
    spec: JobSpec,
    stage: Stage,
    attempts: u32,
    token: rayon::CancelToken,
    progress: Arc<Progress>,
    /// First worker claim — the deadline anchor.
    started: Option<Instant>,
    /// Set by [`Service::cancel`]; distinguishes a user cancel from a
    /// drain interrupt when both arrive as `CancelReason::Cancelled`.
    user_cancelled: bool,
    /// Parked because the storage layer stopped accepting writes; requeued
    /// automatically when the probe write heals the service.
    parked_by_storage: bool,
    error: Option<String>,
    summary: Option<String>,
    quarantine: Option<PathBuf>,
}

struct Shared {
    opts: ServeOpts,
    queue: BoundedQueue<String>,
    jobs: Mutex<BTreeMap<String, Entry>>,
    draining: AtomicBool,
    /// Every persistence path goes through this handle; tests swap in a
    /// `noc_store::FaultVfs` via [`Service::open_with_vfs`].
    vfs: Arc<dyn Vfs>,
    /// Read-only DEGRADED mode: set when a persistent write failure is
    /// observed, cleared when a probe write lands.
    storage_down: AtomicBool,
    /// The failure that tripped DEGRADED, for `healthz` and submit errors.
    storage_detail: Mutex<String>,
    /// Network/admission counters (the HTTP layer increments these).
    net: NetStats,
}

/// The running service. Cheap to clone handles out of via [`Service::drain`]
/// semantics: one instance owns the worker pool.
pub struct Service {
    shared: Arc<Shared>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Shared {
    fn job_dir(&self, id: &str) -> PathBuf {
        self.opts.data_dir.join("jobs").join(id)
    }

    /// Appends one transition to the job's `state.jsonl` after validating
    /// it against the lifecycle relation; an illegal edge is a scheduler
    /// bug and panics in tests (and is refused, loudly, in release).
    ///
    /// The line carries a CRC trailer so a torn or bit-rotted record is
    /// detected (never parsed) at the next boot. A failed append retries
    /// with the newline-resync protocol, then trips DEGRADED — the
    /// in-memory stage already advanced, so status stays truthful even
    /// when the journal lags.
    fn transition(&self, entry: &mut Entry, id: &str, to: Stage, detail: &str) {
        let from = entry.stage;
        if !from.permits(to) {
            debug_assert!(false, "illegal transition {from} -> {to} for {id}");
            eprintln!("noc-serve: refusing illegal transition {from} -> {to} for {id}");
            return;
        }
        entry.stage = to;
        let line = JsonObj::new()
            .str_field("stage", to.label())
            .u64_field("attempts", u64::from(entry.attempts))
            .str_field("detail", detail)
            .finish();
        let sealed = noc_store::seal_line(&line);
        let path = self.job_dir(id).join("state.jsonl");
        let appended = self.vfs.open_append(&path).and_then(|mut log| {
            noc_store::RetryPolicy::default().run(|attempt| {
                // After a failed append the bytes on disk are unknown, so
                // retries lead with a newline: a torn fragment becomes its
                // own (CRC-detectable) line instead of a hybrid.
                let framed = if attempt > 1 {
                    format!("\n{sealed}\n")
                } else {
                    format!("{sealed}\n")
                };
                log.append(framed.as_bytes())
            })
        });
        if let Err(e) = appended {
            self.mark_degraded(&format!("cannot journal {id} -> {to}: {e}"));
        }
    }

    /// Flips the service into read-only DEGRADED mode (idempotent).
    fn mark_degraded(&self, why: &str) {
        *lock(&self.storage_detail) = why.to_string();
        if !self.storage_down.swap(true, Ordering::SeqCst) {
            eprintln!("noc-serve: storage DEGRADED (read-only): {why}");
        }
    }

    fn is_degraded(&self) -> bool {
        self.storage_down.load(Ordering::SeqCst)
    }

    fn status_of(&self, id: &str, e: &Entry) -> JobStatus {
        JobStatus {
            id: id.to_string(),
            stage: e.stage,
            attempts: e.attempts,
            done: e.progress.done.load(Ordering::Relaxed),
            total: e.progress.total.load(Ordering::Relaxed),
            failed_units: e.progress.failed.load(Ordering::Relaxed),
            repaired_lines: e.progress.repaired.load(Ordering::Relaxed),
            corrupt_lines: e.progress.corrupt.load(Ordering::Relaxed),
            error: e.error.clone(),
            summary: e.summary.clone(),
            quarantine: e.quarantine.clone(),
        }
    }
}

impl Service {
    /// Opens (or re-opens) the service over `data_dir`: creates the
    /// layout, **adopts** every journaled job — terminal jobs stay as
    /// their journals say (a cancelled job is never resurrected), every
    /// non-terminal job is parked as CHECKPOINTED and requeued, resuming
    /// from its `rows.ckpt.jsonl` — and starts the worker pool.
    pub fn open(opts: ServeOpts) -> std::io::Result<Service> {
        Service::open_with_vfs(opts, noc_store::active())
    }

    /// [`Service::open`] over an explicit storage layer — the storage-fault
    /// tests pass a seeded `noc_store::FaultVfs` here.
    pub fn open_with_vfs(opts: ServeOpts, vfs: Arc<dyn Vfs>) -> std::io::Result<Service> {
        let jobs_root = opts.data_dir.join("jobs");
        vfs.create_dir_all(&jobs_root)?;
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(opts.queue_cap),
            jobs: Mutex::new(BTreeMap::new()),
            draining: AtomicBool::new(false),
            vfs,
            storage_down: AtomicBool::new(false),
            storage_detail: Mutex::new(String::new()),
            net: NetStats::default(),
            opts,
        });
        let mut adopt: Vec<String> = Vec::new();
        for dirent in std::fs::read_dir(&jobs_root)? {
            let dir = dirent?.path();
            let Some(id) = dir.file_name().and_then(|n| n.to_str()).map(String::from) else {
                continue;
            };
            match adopt_one(&shared, &dir, &id) {
                Ok(Some(id)) => adopt.push(id),
                Ok(None) => {}
                Err(e) => eprintln!("noc-serve: skipping {id}: {e}"),
            }
        }
        // Requeue outside the jobs lock, bound-exempt: these jobs were
        // accepted in a previous life.
        {
            let mut jobs = lock(&shared.jobs);
            for id in adopt {
                if let Some(e) = jobs.get_mut(&id) {
                    // A job the last process died while RUNNING parks as
                    // CHECKPOINTED; QUEUED/CHECKPOINTED jobs requeue as-is.
                    if e.stage == Stage::Running {
                        shared.transition(e, &id, Stage::Checkpointed, "adopted after crash");
                    }
                }
                shared.queue.requeue(id);
            }
        }
        let service = Service {
            workers: Mutex::new(Vec::new()),
            shared,
        };
        service.spawn_workers();
        Ok(service)
    }

    fn spawn_workers(&self) {
        let mut handles = lock(&self.workers);
        for i in 0..self.shared.opts.workers {
            let shared = Arc::clone(&self.shared);
            let h = std::thread::Builder::new()
                .name(format!("noc-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn worker");
            handles.push(h);
        }
    }

    /// Submits a job. Returns the status and whether it was newly created
    /// (`false` = content-address dedupe hit an existing job, in whatever
    /// stage it is — including terminal).
    pub fn submit(&self, row: &BTreeMap<String, String>) -> Result<(JobStatus, bool), SubmitError> {
        if self.shared.draining.load(Ordering::Relaxed) {
            return Err(SubmitError::Draining);
        }
        if self.shared.is_degraded() {
            return Err(SubmitError::StorageDegraded(
                lock(&self.shared.storage_detail).clone(),
            ));
        }
        let spec = JobSpec::parse(row).map_err(SubmitError::Invalid)?;
        let id = spec.digest().map_err(SubmitError::Invalid)?;
        let mut jobs = lock(&self.shared.jobs);
        if let Some(e) = jobs.get(&id) {
            // A dedupe hit is the idempotency escape channel at work: a
            // retrying client resubmitted something already admitted.
            self.shared.net.dedupe_hits.incr();
            return Ok((self.shared.status_of(&id, e), false));
        }
        let dir = self.shared.job_dir(&id);
        self.shared
            .vfs
            .create_dir_all(&dir.join("dumps"))
            .map_err(|e| SubmitError::Invalid(format!("cannot create job dir: {e}")))?;
        let progress = Arc::new(Progress::default());
        progress
            .total
            .store(spec.to_job(&dir, 1).total_units(), Ordering::Relaxed);
        let entry = Entry {
            spec,
            stage: Stage::Queued,
            attempts: 0,
            token: rayon::CancelToken::new(),
            progress,
            started: None,
            user_cancelled: false,
            parked_by_storage: false,
            error: None,
            summary: None,
            quarantine: None,
        };
        // Reserve the queue slot before anything becomes visible.
        if let Err(full) = self.shared.queue.try_push(id.clone()) {
            let _ = std::fs::remove_dir_all(&dir);
            return Err(SubmitError::Busy(full));
        }
        // Both acceptance artifacts land atomically (temp + fsync +
        // rename): a crash mid-submit leaves no half-written spec for the
        // next boot to choke on. A write failure here IS a storage fault —
        // undo, trip DEGRADED, and shed the submission. (The reserved
        // queue slot drains harmlessly: the id has no registry entry.)
        let spec_write = self
            .shared
            .vfs
            .write_atomic(
                &dir.join("spec.json"),
                format!("{}\n", entry.spec.to_row()).as_bytes(),
            )
            .and_then(|()| {
                // First journal line: the QUEUED acceptance record. Not a
                // transition (there is no prior stage), so written whole.
                let line = JsonObj::new()
                    .str_field("stage", Stage::Queued.label())
                    .u64_field("attempts", 0)
                    .str_field("detail", "accepted")
                    .finish();
                self.shared.vfs.write_atomic(
                    &dir.join("state.jsonl"),
                    format!("{}\n", noc_store::seal_line(&line)).as_bytes(),
                )
            });
        if let Err(e) = spec_write {
            let _ = std::fs::remove_dir_all(&dir);
            let why = format!("cannot persist submission {id}: {e}");
            self.shared.mark_degraded(&why);
            return Err(SubmitError::StorageDegraded(why));
        }
        let status = self.shared.status_of(&id, &entry);
        jobs.insert(id, entry);
        Ok((status, true))
    }

    /// Snapshot of one job.
    pub fn status(&self, id: &str) -> Option<JobStatus> {
        let jobs = lock(&self.shared.jobs);
        jobs.get(id).map(|e| self.shared.status_of(id, e))
    }

    /// Snapshot of every job, id-ordered.
    pub fn list(&self) -> Vec<JobStatus> {
        let jobs = lock(&self.shared.jobs);
        jobs.iter()
            .map(|(id, e)| self.shared.status_of(id, e))
            .collect()
    }

    /// The job's unit journal, for the rows endpoint.
    pub fn rows_path(&self, id: &str) -> Option<PathBuf> {
        let jobs = lock(&self.shared.jobs);
        jobs.contains_key(id)
            .then(|| self.shared.job_dir(id).join("rows.ckpt.jsonl"))
    }

    /// Cancels a job: immediate for parked jobs, observed at the next unit
    /// boundary for running ones. `Err` carries the terminal stage when
    /// there is nothing left to cancel.
    pub fn cancel(&self, id: &str) -> Result<JobStatus, Option<Stage>> {
        let mut jobs = lock(&self.shared.jobs);
        let Some(e) = jobs.get_mut(id) else {
            return Err(None);
        };
        if e.stage.is_terminal() {
            return Err(Some(e.stage));
        }
        e.user_cancelled = true;
        e.token.cancel();
        if matches!(e.stage, Stage::Queued | Stage::Checkpointed) {
            self.shared
                .transition(e, id, Stage::Cancelled, "cancelled while parked");
            e.error = Some("cancelled by client".into());
        }
        Ok(self.shared.status_of(id, e))
    }

    /// True once [`Service::drain`] began.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::Relaxed)
    }

    /// True while the service is in read-only DEGRADED mode (a persistent
    /// storage write failure was observed and the probe write has not yet
    /// succeeded).
    pub fn storage_degraded(&self) -> bool {
        self.shared.is_degraded()
    }

    /// The failure that tripped DEGRADED mode, when degraded.
    pub fn storage_detail(&self) -> Option<String> {
        self.shared
            .is_degraded()
            .then(|| lock(&self.shared.storage_detail).clone())
    }

    /// Queue depth (for health reporting).
    pub fn queued(&self) -> usize {
        self.shared.queue.len()
    }

    /// The network/admission counters (HTTP layer writes, `healthz` reads).
    pub fn net(&self) -> &NetStats {
        &self.shared.net
    }

    /// Graceful shutdown: stop accepting, interrupt running jobs (they
    /// park as CHECKPOINTED with their progress journaled), and join the
    /// workers. Idempotent.
    pub fn drain(&self) {
        self.shared.draining.store(true, Ordering::Relaxed);
        self.shared.queue.close();
        {
            let jobs = lock(&self.shared.jobs);
            for e in jobs.values() {
                if e.stage == Stage::Running {
                    e.token.cancel();
                }
            }
        }
        let handles: Vec<_> = std::mem::take(&mut *lock(&self.workers));
        for h in handles {
            let _ = h.join();
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Rebuilds one job's registry entry from its journals. Returns the id
/// when the job must be requeued (non-terminal), `None` when it rests.
///
/// Every `state.jsonl` line is verified against its CRC trailer first: a
/// torn or bit-rotted record is dropped with exact accounting (surfaced as
/// `repaired_lines` in the status row) and compacted out of the journal,
/// so repeated restarts do not re-count the same damage. Pre-CRC lines
/// (journals written before checksummed framing) are accepted as legacy
/// when they still parse.
fn adopt_one(shared: &Arc<Shared>, dir: &Path, id: &str) -> Result<Option<String>, String> {
    let spec_line = shared
        .vfs
        .read_to_string(&dir.join("spec.json"))
        .map_err(|e| format!("unreadable spec.json: {e}"))?;
    let row = jsonio::parse_flat(spec_line.trim()).ok_or("corrupt spec.json")?;
    let spec = JobSpec::parse(&row)?;
    // Verify, then replay the transition journal, validating each edge;
    // CRC-failed lines are repaired away and illegal edges end the
    // believable history.
    let mut stage = Stage::Queued;
    let mut attempts = 0u32;
    let mut error = None;
    let mut summary = None;
    let mut state_repaired = 0usize;
    if let Ok(text) = shared.vfs.read_to_string(&dir.join("state.jsonl")) {
        let mut kept: Vec<&str> = Vec::new();
        let mut payloads: Vec<String> = Vec::new();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue; // newline-resync padding from an append retry
            }
            match noc_store::open_line(line) {
                LineCheck::Sealed(payload) => {
                    kept.push(line);
                    payloads.push(payload.to_string());
                }
                LineCheck::Legacy(payload) if jsonio::parse_flat(payload).is_some() => {
                    kept.push(line);
                    payloads.push(payload.to_string());
                }
                LineCheck::Legacy(_) | LineCheck::Corrupt => state_repaired += 1,
            }
        }
        if state_repaired > 0 {
            eprintln!(
                "noc-serve: {id}: repairing state journal \
                 ({state_repaired} torn/corrupt line(s) dropped)"
            );
            let mut fixed = kept.join("\n");
            if !fixed.is_empty() {
                fixed.push('\n');
            }
            let _ = shared
                .vfs
                .write_atomic(&dir.join("state.jsonl"), fixed.as_bytes());
        }
        // The first believable line is the QUEUED acceptance record, not a
        // transition.
        for payload in payloads.iter().skip(1) {
            let Some(row) = jsonio::parse_flat(payload) else {
                continue;
            };
            let Some(next) = row.get("stage").and_then(|s| Stage::parse(s)) else {
                continue;
            };
            if !stage.permits(next) {
                eprintln!("noc-serve: {id}: journal claims {stage} -> {next}; truncating history");
                break;
            }
            stage = next;
            if let Some(a) = row.get("attempts").and_then(|a| a.parse().ok()) {
                attempts = a;
            }
            if let Some(d) = row.get("detail") {
                match stage {
                    Stage::Failed | Stage::Cancelled => error = Some(d.clone()),
                    Stage::Done => summary = Some(d.clone()),
                    _ => {}
                }
            }
        }
    }
    let progress = Arc::new(Progress::default());
    progress
        .total
        .store(spec.to_job(dir, 1).total_units(), Ordering::Relaxed);
    progress.repaired.store(state_repaired, Ordering::Relaxed);
    // Terminal verdicts survive restarts untouched; everything else counts
    // its journaled rows as done and goes back to work.
    if !stage.is_terminal() {
        if let Ok(ckpt) = noc_experiments::Checkpoint::open_with_vfs(
            &dir.join("rows.ckpt.jsonl"),
            Arc::clone(&shared.vfs),
        ) {
            progress.done.store(ckpt.done_count(), Ordering::Relaxed);
            progress
                .repaired
                .fetch_add(ckpt.torn_dropped(), Ordering::Relaxed);
            progress
                .corrupt
                .fetch_add(ckpt.corrupt_dropped(), Ordering::Relaxed);
        }
    }
    let quarantine = dir.join("quarantine.json");
    let entry = Entry {
        spec,
        stage,
        attempts,
        token: rayon::CancelToken::new(),
        progress,
        started: None,
        user_cancelled: false,
        parked_by_storage: false,
        error,
        summary,
        quarantine: quarantine.exists().then_some(quarantine),
    };
    let requeue = !stage.is_terminal();
    lock(&shared.jobs).insert(id.to_string(), entry);
    Ok(requeue.then(|| id.to_string()))
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        if shared.draining.load(Ordering::Relaxed) {
            return;
        }
        if shared.is_degraded() {
            // Read-only mode: nothing runs until the probe write lands.
            probe_storage(shared);
            if shared.is_degraded() {
                std::thread::sleep(Duration::from_millis(50));
                continue;
            }
        }
        let Some(id) = shared.queue.pop(Duration::from_millis(50)) else {
            continue;
        };
        run_one(shared, &id);
    }
}

/// Attempts the self-heal probe: one atomic write under `data_dir`. On
/// success the service leaves DEGRADED mode and every job that was parked
/// by a storage fault is requeued (bound-exempt — they were accepted
/// before the fault). Safe to race from every worker: the probe is
/// idempotent and `run_one` claims under the jobs lock, so a double
/// requeue is harmless.
fn probe_storage(shared: &Arc<Shared>) {
    let probe = shared.opts.data_dir.join(".storage_probe");
    if shared.vfs.write_atomic(&probe, b"ok\n").is_err() {
        return; // still down; stay degraded
    }
    if shared.storage_down.swap(false, Ordering::SeqCst) {
        eprintln!("noc-serve: storage healed; leaving read-only mode");
        let resume: Vec<String> = {
            let mut jobs = lock(&shared.jobs);
            jobs.iter_mut()
                .filter(|(_, e)| e.parked_by_storage && e.stage == Stage::Checkpointed)
                .map(|(id, e)| {
                    e.parked_by_storage = false;
                    id.clone()
                })
                .collect()
        };
        for id in resume {
            shared.queue.requeue(id);
        }
    }
}

/// Claims, executes and settles one job attempt.
fn run_one(shared: &Arc<Shared>, id: &str) {
    let dir = shared.job_dir(id);
    // Claim.
    let (spec, token, progress, attempt) = {
        let mut jobs = lock(&shared.jobs);
        let Some(e) = jobs.get_mut(id) else { return };
        if !matches!(e.stage, Stage::Queued | Stage::Checkpointed) {
            return; // cancelled (or settled) while queued
        }
        e.attempts += 1;
        let verb = if e.stage == Stage::Queued {
            "start"
        } else {
            "resume"
        };
        shared.transition(
            e,
            id,
            Stage::Running,
            &format!("{verb} attempt {}", e.attempts),
        );
        let started = *e.started.get_or_insert_with(Instant::now);
        if let Some(ms) = e.spec.deadline_ms {
            e.token.set_deadline(started + Duration::from_millis(ms));
        }
        (
            e.spec.clone(),
            e.token.clone(),
            Arc::clone(&e.progress),
            e.attempts,
        )
    };
    let dumps = dir.join("dumps");
    let _ = shared.vfs.create_dir_all(&dumps);
    let job = spec.to_job(&dir, shared.opts.batch_width);
    let cb = {
        let progress = Arc::clone(&progress);
        move |p: JobProgress| {
            progress.done.store(p.done, Ordering::Relaxed);
            progress.total.store(p.total, Ordering::Relaxed);
            progress.failed.store(p.failed, Ordering::Relaxed);
        }
    };
    let job_vfs = Arc::clone(&shared.vfs);
    let result = rayon::catch_panic(|| {
        if attempt <= spec.fail_attempts {
            panic!(
                "injected service test panic (attempt {attempt}/{})",
                spec.fail_attempts
            );
        }
        job.run(&noc_experiments::JobCtx {
            cancel: &token,
            progress: Some(&cb),
            dump_dir: &dumps,
            vfs: Some(job_vfs),
        })
    });
    // Settle.
    let mut jobs = lock(&shared.jobs);
    let Some(e) = jobs.get_mut(id) else { return };
    match result {
        Ok(Ok(report)) => {
            e.progress
                .repaired
                .fetch_add(report.repaired_lines, Ordering::Relaxed);
            e.progress
                .corrupt
                .fetch_add(report.corrupt_lines, Ordering::Relaxed);
            shared.transition(e, id, Stage::Done, &report.summary);
            e.summary = Some(report.summary);
        }
        Ok(Err(JobError::Failed(err))) => {
            // Deterministic job failure: retrying cannot help.
            shared.transition(e, id, Stage::Failed, &err);
            e.error = Some(err);
        }
        Ok(Err(JobError::Interrupted(reason))) => {
            if reason == rayon::CancelReason::StorageDegraded {
                // The job's journal stopped accepting writes: park with
                // every completed row intact (nothing is lost — the units
                // that could not journal re-execute after the heal) and
                // flip the service read-only. The probe write requeues it.
                shared.transition(e, id, Stage::Checkpointed, "parked by storage fault");
                e.parked_by_storage = true;
                shared.mark_degraded(&format!("job {id}: persistent journal write failure"));
            } else if reason == rayon::CancelReason::DeadlineExceeded {
                let msg = format!("deadline exceeded ({} ms)", e.spec.deadline_ms.unwrap_or(0));
                shared.transition(e, id, Stage::Failed, &msg);
                e.error = Some(msg);
            } else if e.user_cancelled {
                shared.transition(e, id, Stage::Cancelled, "cancelled by client");
                e.error = Some("cancelled by client".into());
            } else {
                // Drain: park with progress journaled; the next boot
                // adopts and resumes.
                shared.transition(e, id, Stage::Checkpointed, "parked by drain");
            }
        }
        Err(panic_msg) => {
            if e.attempts >= shared.opts.max_attempts {
                let quarantine = dir.join("quarantine.json");
                let body = JsonObj::new()
                    .str_field("schema", "noc-serve-quarantine-v1")
                    .str_field("id", id)
                    .u64_field("attempts", u64::from(e.attempts))
                    .str_field("panic", &panic_msg)
                    .str_field("dumps", &dumps.display().to_string())
                    .finish();
                // Atomic: a half-written black box is worse than none.
                let _ = shared
                    .vfs
                    .write_atomic(&quarantine, format!("{body}\n").as_bytes());
                let msg = format!("quarantined after {} attempts: {panic_msg}", e.attempts);
                shared.transition(e, id, Stage::Checkpointed, "panicked");
                shared.transition(e, id, Stage::Failed, &msg);
                e.error = Some(msg);
                e.quarantine = Some(quarantine);
            } else {
                shared.transition(
                    e,
                    id,
                    Stage::Checkpointed,
                    &format!("panicked on attempt {}: {panic_msg}", e.attempts),
                );
                let attempts = e.attempts;
                drop(jobs);
                backoff_then_requeue(shared, id, attempts);
            }
        }
    }
}

/// Sleeps the capped exponential backoff (cancellable at 10 ms
/// granularity), then requeues — unless a drain or a user cancel arrived
/// while waiting.
fn backoff_then_requeue(shared: &Arc<Shared>, id: &str, attempt: u32) {
    let base = shared.opts.retry_base_ms;
    let factor = 1u64 << (attempt.saturating_sub(1)).min(6); // capped 64x
    let mut remaining = base.saturating_mul(factor);
    while remaining > 0 {
        if shared.draining.load(Ordering::Relaxed) {
            return; // stays CHECKPOINTED; adopted on restart
        }
        {
            let jobs = lock(&shared.jobs);
            if jobs.get(id).is_none_or(|e| e.stage != Stage::Checkpointed) {
                return; // cancelled (or otherwise settled) while parked
            }
        }
        let step = remaining.min(10);
        std::thread::sleep(Duration::from_millis(step));
        remaining -= step;
    }
    let jobs = lock(&shared.jobs);
    if jobs.get(id).is_some_and(|e| e.stage == Stage::Checkpointed) {
        shared.queue.requeue(id.to_string());
    }
}
