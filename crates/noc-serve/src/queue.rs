//! A bounded MPMC work queue with explicit overload semantics.
//!
//! `try_push` never blocks: a full queue is a [`QueueFull`] error the HTTP
//! layer turns into `429 Too Many Requests` + `Retry-After` — shedding
//! load at the front door instead of letting latency collapse. `requeue`
//! bypasses the bound: a job the service *already accepted* (a retry after
//! a panicking attempt, a drain-interrupted resume) must never be shed, or
//! acceptance would be a lie.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// The queue is at capacity; the caller should retry later.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueueFull {
    /// How long the client is told to wait (`Retry-After`, seconds).
    pub retry_after_s: u64,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Bounded FIFO connecting the acceptor to the worker pool.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    cap: usize,
}

impl<T> BoundedQueue<T> {
    pub fn new(cap: usize) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            cap: cap.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Enqueues a newly accepted item, or sheds it if the queue is full or
    /// the service is draining (callers distinguish draining beforehand).
    pub fn try_push(&self, item: T) -> Result<(), QueueFull> {
        let mut q = self.lock();
        if q.closed || q.items.len() >= self.cap {
            return Err(QueueFull { retry_after_s: 1 });
        }
        q.items.push_back(item);
        drop(q);
        self.ready.notify_one();
        Ok(())
    }

    /// Re-enqueues an item the service already owns. Exempt from the bound
    /// and from `closed` (a drain still parks the item for the journal).
    pub fn requeue(&self, item: T) {
        self.lock().items.push_back(item);
        self.ready.notify_one();
    }

    /// Blocks up to `patience` for an item. `None` means "closed" or
    /// "timed out with nothing available" — workers loop on this, checking
    /// their own shutdown condition between calls.
    pub fn pop(&self, patience: Duration) -> Option<T> {
        let mut q = self.lock();
        loop {
            if q.closed {
                return None;
            }
            if let Some(item) = q.items.pop_front() {
                return Some(item);
            }
            let (guard, timeout) = self
                .ready
                .wait_timeout(q, patience)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            q = guard;
            if timeout.timed_out() {
                return q.items.pop_front();
            }
        }
    }

    /// Closes the queue: `try_push` sheds, `pop` returns `None` without
    /// draining the backlog — undispatched items stay journaled as QUEUED
    /// and are re-adopted on the next boot.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_queue_sheds_but_requeue_is_exempt() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        let err = q.try_push(3).unwrap_err();
        assert!(err.retry_after_s >= 1);
        q.requeue(3);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(Duration::from_millis(1)), Some(1));
    }

    #[test]
    fn close_wakes_blocked_workers_and_sheds_new_work() {
        let q = std::sync::Arc::new(BoundedQueue::<u32>::new(4));
        let q2 = std::sync::Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop(Duration::from_secs(30)));
        // Give the worker a moment to block, then close.
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), None);
        assert!(q.try_push(1).is_err(), "closed queue sheds");
    }

    #[test]
    fn pop_times_out_empty_handed() {
        let q = BoundedQueue::<u32>::new(1);
        assert_eq!(q.pop(Duration::from_millis(5)), None);
    }
}
