//! The `noc_serve` binary: bind, adopt journals, serve until SIGTERM /
//! SIGINT / `POST /drain`, then drain gracefully.
//!
//! ```text
//! noc_serve --data-dir DIR [--addr 127.0.0.1:0] [--workers N]
//!           [--queue-cap N] [--retry-base-ms MS] [--max-attempts N]
//!           [--max-conns N] [--request-deadline-ms MS]
//! ```
//!
//! Environment knobs are validated **eagerly** (exit status 2 on garbage,
//! matching the experiment binaries): `NOC_THREADS` (worker parallelism
//! inside a sweep), `NOC_BATCH_WIDTH` (lockstep lanes; precedence:
//! explicit service width > `NOC_BATCH_WIDTH` > default 4), the
//! storage-fault knobs `NOC_VFS_FAULT_SCHEDULE` / `NOC_VFS_FAULT_SEED`,
//! and the network-fault knobs `NOC_NET_FAULT_SCHEDULE` /
//! `NOC_NET_FAULT_SEED` (precedence for both pairs: explicit schedule
//! events win at their op index, the seed fills the rest; unset means no
//! fault injection).
//!
//! The bound address is printed to stdout **and** written (atomically:
//! temp + fsync + rename) to `DIR/addr.txt` so supervisors (and the
//! kill -9 restart tests) can find a port-0 listener without ever reading
//! a torn address.

use std::net::TcpListener;
use std::process::exit;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use noc_serve::{http, HttpOpts, ServeOpts, Service};

fn usage() -> ! {
    eprintln!(
        "usage: noc_serve --data-dir DIR [--addr HOST:PORT] [--workers N] \
         [--queue-cap N] [--retry-base-ms MS] [--max-attempts N] \
         [--max-conns N] [--request-deadline-ms MS]"
    );
    exit(2);
}

fn main() {
    // Eager environment validation: a garbage NOC_THREADS or
    // NOC_BATCH_WIDTH is a configuration error at boot, not a panic
    // mid-job hours later.
    if let Err(e) = rayon::env_threads() {
        eprintln!("error: {e}");
        exit(2);
    }
    let batch_width = match noc_experiments::sweep::env_batch_width() {
        Ok(w) => w.unwrap_or(4),
        Err(e) => {
            eprintln!("error: {e}");
            exit(2);
        }
    };
    if let Err(e) = noc_experiments::cli::validate_vfs_env() {
        eprintln!("error: {e}");
        exit(2);
    }
    if let Err(e) = noc_net::validate_env() {
        eprintln!("error: {e}");
        exit(2);
    }

    let mut addr = "127.0.0.1:0".to_string();
    let mut data_dir = None;
    let mut opts_workers = 2usize;
    let mut queue_cap = 16usize;
    let mut retry_base_ms = 50u64;
    let mut max_attempts = 3u32;
    let mut http_opts = HttpOpts::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match a.as_str() {
            "--addr" => addr = val("--addr"),
            "--data-dir" => data_dir = Some(val("--data-dir")),
            "--workers" => {
                opts_workers = val("--workers").parse().unwrap_or_else(|_| usage());
            }
            "--queue-cap" => {
                queue_cap = val("--queue-cap").parse().unwrap_or_else(|_| usage());
            }
            "--retry-base-ms" => {
                retry_base_ms = val("--retry-base-ms").parse().unwrap_or_else(|_| usage());
            }
            "--max-attempts" => {
                max_attempts = val("--max-attempts").parse().unwrap_or_else(|_| usage());
            }
            "--max-conns" => {
                http_opts.max_connections = val("--max-conns").parse().unwrap_or_else(|_| usage());
            }
            "--request-deadline-ms" => {
                http_opts.request_deadline_ms = val("--request-deadline-ms")
                    .parse()
                    .unwrap_or_else(|_| usage());
            }
            _ => usage(),
        }
    }
    let Some(data_dir) = data_dir else { usage() };

    let mut opts = ServeOpts::new(&data_dir);
    opts.workers = opts_workers;
    opts.queue_cap = queue_cap;
    opts.retry_base_ms = retry_base_ms;
    opts.max_attempts = max_attempts;
    opts.batch_width = batch_width;

    let service = match Service::open(opts) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            eprintln!("error: cannot open {data_dir}: {e}");
            exit(1);
        }
    };

    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: cannot bind {addr}: {e}");
            exit(1);
        }
    };
    let bound = listener.local_addr().expect("bound addr");
    if let Err(e) = noc_store::active().write_atomic(
        &std::path::Path::new(&data_dir).join("addr.txt"),
        format!("{bound}\n").as_bytes(),
    ) {
        eprintln!("error: cannot record address: {e}");
        exit(1);
    }
    println!("noc-serve listening on {bound}");

    // Graceful drain on SIGTERM/SIGINT: the handler just flips the flag;
    // the accept loop observes it and returns.
    let shutdown = Arc::new(AtomicBool::new(false));
    for sig in [signal_hook::consts::SIGTERM, signal_hook::consts::SIGINT] {
        if let Err(e) = signal_hook::flag::register(sig, Arc::clone(&shutdown)) {
            eprintln!("error: cannot install handler for signal {sig}: {e}");
            exit(1);
        }
    }

    http::serve_with(
        listener,
        &service,
        &shutdown,
        &http_opts,
        &noc_net::Transport::from_env(),
    );
    println!("noc-serve draining ({} queued)", service.queued());
    service.drain();
    println!("noc-serve drained");
}
