//! Job specifications: what a client submits, how it is validated, and the
//! **content address** that dedupes resubmissions.
//!
//! A spec is a flat JSON object (the repo's `jsonio` dialect). The job id
//! is an FNV-1a digest over the *work* the spec describes — for sweeps,
//! the sorted point keys (themselves config digests); for chaos, the
//! generator knobs; for replays, the repro file's bytes. Knobs that do not
//! change the work — `deadline_ms`, and the `fail_attempts` test hook —
//! are deliberately excluded, so resubmitting the same sweep with a
//! different deadline lands on the same job instead of re-running it.

use std::collections::BTreeMap;
use std::path::PathBuf;

use noc_experiments::chaos::GenPool;
use noc_experiments::figs::fault_sweep;
use noc_experiments::jsonio::JsonObj;
use noc_experiments::sweep::FaultPoint;
use noc_experiments::{Scheme, SimJob};
use noc_types::fault::fnv1a;

/// What kind of work a job runs.
#[derive(Clone, Debug)]
pub enum SpecKind {
    /// A fault sweep over an explicit point set.
    Sweep { source: SweepSource },
    /// A chaos soak: `cases` generated cases from `seed`.
    Chaos {
        seed: u64,
        cases: usize,
        pool: GenPool,
    },
    /// Replay a recorded repro file.
    Replay { repro: PathBuf },
}

/// Where a sweep job's points come from.
#[derive(Clone, Debug)]
pub enum SweepSource {
    /// A named, repo-defined pool: `"fault-quick"` or `"fault-full"`.
    Pool(String),
    /// An explicit cross product of schemes × transient fault rates on a
    /// uniform-random 4×4-default mesh.
    Custom {
        schemes: Vec<Scheme>,
        transients: Vec<f64>,
        k: u8,
        vcs: u8,
        cycles: u64,
        seed: u64,
        rate: f64,
    },
}

/// A validated job submission.
#[derive(Clone, Debug)]
pub struct JobSpec {
    pub kind: SpecKind,
    /// Wall-clock budget, measured from the first worker claim. Expiry is
    /// a terminal failure (no retry — time does not come back).
    pub deadline_ms: Option<u64>,
    /// Test hook: the worker panics on this many initial attempts before
    /// letting the job run. Excluded from the content address. Drives the
    /// retry/backoff/quarantine integration tests deterministically.
    pub fail_attempts: u32,
}

impl JobSpec {
    /// Parses and validates a submission row. Every error names the field.
    pub fn parse(row: &BTreeMap<String, String>) -> Result<JobSpec, String> {
        let kind = row
            .get("kind")
            .ok_or_else(|| "missing field 'kind'".to_string())?;
        let u64f = |k: &str, default: u64| -> Result<u64, String> {
            match row.get(k) {
                None => Ok(default),
                Some(v) => v.parse().map_err(|e| format!("field '{k}': {e}")),
            }
        };
        let kind = match kind.as_str() {
            "sweep" => {
                let source = if let Some(pool) = row.get("pool") {
                    match pool.as_str() {
                        "fault-quick" | "fault-full" => SweepSource::Pool(pool.clone()),
                        other => return Err(format!("unknown sweep pool '{other}'")),
                    }
                } else {
                    let schemes = row
                        .get("schemes")
                        .ok_or_else(|| "sweep needs 'pool' or 'schemes'".to_string())?
                        .split(',')
                        .map(|s| {
                            Scheme::from_label(s.trim())
                                .ok_or_else(|| format!("unknown scheme label '{}'", s.trim()))
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    let transients = row
                        .get("transients")
                        .map(String::as_str)
                        .unwrap_or("0.0")
                        .split(',')
                        .map(|s| {
                            s.trim()
                                .parse::<f64>()
                                .map_err(|e| format!("field 'transients': {e}"))
                        })
                        .collect::<Result<Vec<f64>, _>>()?;
                    if schemes.is_empty() || transients.is_empty() {
                        return Err("sweep needs at least one scheme and transient".into());
                    }
                    SweepSource::Custom {
                        schemes,
                        transients,
                        k: u64f("k", 4)? as u8,
                        vcs: u64f("vcs", 2)? as u8,
                        cycles: u64f("cycles", 3_000)?,
                        seed: u64f("seed", 0xA11CE)?,
                        rate: match row.get("rate") {
                            None => 0.05,
                            Some(v) => v.parse().map_err(|e| format!("field 'rate': {e}"))?,
                        },
                    }
                };
                SpecKind::Sweep { source }
            }
            "chaos" => {
                let pool = match row.get("pool").map(String::as_str).unwrap_or("smoke") {
                    "smoke" => GenPool::Smoke,
                    "full" => GenPool::Full,
                    other => return Err(format!("unknown chaos pool '{other}'")),
                };
                let cases = u64f("cases", 4)? as usize;
                if cases == 0 {
                    return Err("field 'cases': must be at least 1".into());
                }
                SpecKind::Chaos {
                    seed: u64f("seed", 1)?,
                    cases,
                    pool,
                }
            }
            "replay" => {
                let repro = row
                    .get("repro")
                    .ok_or_else(|| "replay needs 'repro' (path)".to_string())?;
                SpecKind::Replay {
                    repro: PathBuf::from(repro),
                }
            }
            other => return Err(format!("unknown job kind '{other}'")),
        };
        let deadline_ms = match row.get("deadline_ms") {
            None => None,
            Some(v) => {
                let ms: u64 = v.parse().map_err(|e| format!("field 'deadline_ms': {e}"))?;
                if ms == 0 {
                    return Err("field 'deadline_ms': must be at least 1".into());
                }
                Some(ms)
            }
        };
        Ok(JobSpec {
            kind,
            deadline_ms,
            fail_attempts: u64f("fail_attempts", 0)? as u32,
        })
    }

    /// Re-renders the spec as a flat row — `parse(to_row(s))` is identity.
    /// This is what `spec.json` persists for restart adoption.
    pub fn to_row(&self) -> String {
        let mut obj = JsonObj::new();
        match &self.kind {
            SpecKind::Sweep { source } => {
                obj = obj.str_field("kind", "sweep");
                match source {
                    SweepSource::Pool(p) => obj = obj.str_field("pool", p),
                    SweepSource::Custom {
                        schemes,
                        transients,
                        k,
                        vcs,
                        cycles,
                        seed,
                        rate,
                    } => {
                        let labels: Vec<String> = schemes.iter().map(|s| s.label()).collect();
                        let ts: Vec<String> = transients.iter().map(|t| format!("{t}")).collect();
                        obj = obj
                            .str_field("schemes", &labels.join(","))
                            .str_field("transients", &ts.join(","))
                            .u64_field("k", u64::from(*k))
                            .u64_field("vcs", u64::from(*vcs))
                            .u64_field("cycles", *cycles)
                            .u64_field("seed", *seed)
                            .f64_field("rate", *rate, 6);
                    }
                }
            }
            SpecKind::Chaos { seed, cases, pool } => {
                obj = obj
                    .str_field("kind", "chaos")
                    .u64_field("seed", *seed)
                    .u64_field("cases", *cases as u64)
                    .str_field(
                        "pool",
                        match pool {
                            GenPool::Smoke => "smoke",
                            GenPool::Full => "full",
                        },
                    );
            }
            SpecKind::Replay { repro } => {
                obj = obj
                    .str_field("kind", "replay")
                    .str_field("repro", &repro.display().to_string());
            }
        }
        if let Some(ms) = self.deadline_ms {
            obj = obj.u64_field("deadline_ms", ms);
        }
        if self.fail_attempts > 0 {
            obj = obj.u64_field("fail_attempts", u64::from(self.fail_attempts));
        }
        obj.finish()
    }

    /// The sweep points this spec expands to (empty for non-sweep jobs).
    pub fn points(&self) -> Vec<FaultPoint> {
        match &self.kind {
            SpecKind::Sweep { source } => match source {
                SweepSource::Pool(p) => fault_sweep::points(p == "fault-quick"),
                SweepSource::Custom {
                    schemes,
                    transients,
                    k,
                    vcs,
                    cycles,
                    seed,
                    rate,
                } => {
                    let mut pts = Vec::new();
                    for s in schemes {
                        for t in transients {
                            let mut p = FaultPoint::quick("serve", *s, *t);
                            p.k = *k;
                            p.vcs = *vcs;
                            p.cycles = *cycles;
                            p.seed = *seed;
                            p.rate = *rate;
                            pts.push(p);
                        }
                    }
                    pts
                }
            },
            _ => Vec::new(),
        }
    }

    /// Content address: the job id. Digest of the *work*, not the spec
    /// text — two spellings of the same point set collide (by design), and
    /// deadline/test knobs do not perturb it. Replay specs hash the repro
    /// file's bytes, so the file must exist at submission (`Err` names it).
    pub fn digest(&self) -> Result<String, String> {
        let canon = match &self.kind {
            SpecKind::Sweep { .. } => {
                let mut keys: Vec<String> = self.points().iter().map(FaultPoint::key).collect();
                keys.sort();
                format!("sweep|{}", keys.join("|"))
            }
            SpecKind::Chaos { seed, cases, pool } => {
                format!("chaos|{seed}|{cases}|{pool:?}")
            }
            SpecKind::Replay { repro } => {
                let bytes = std::fs::read(repro)
                    .map_err(|e| format!("cannot read repro {}: {e}", repro.display()))?;
                format!("replay|{:016x}", fnv1a(&bytes))
            }
        };
        Ok(format!("{:016x}", fnv1a(canon.as_bytes())))
    }

    /// Instantiates the runnable job, rooted in the job's directory:
    /// `rows.ckpt.jsonl` is the unit journal the resume contract rides on.
    /// `width` is the service-resolved lockstep batch width (the service
    /// reads `NOC_BATCH_WIDTH` once, eagerly, at boot).
    pub fn to_job(&self, job_dir: &std::path::Path, width: usize) -> SimJob {
        let rows = job_dir.join("rows.ckpt.jsonl");
        match &self.kind {
            SpecKind::Sweep { .. } => SimJob::Sweep {
                points: self.points(),
                ckpt: rows,
                width,
            },
            SpecKind::Chaos { seed, cases, pool } => SimJob::Chaos {
                seed: *seed,
                cases: *cases,
                pool: *pool,
                log: rows,
            },
            SpecKind::Replay { repro } => SimJob::Replay {
                repro: repro.clone(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_experiments::jsonio;

    fn parse_line(line: &str) -> BTreeMap<String, String> {
        jsonio::parse_flat(line).expect("valid row")
    }

    #[test]
    fn spec_row_round_trips() {
        for line in [
            r#"{"kind": "sweep", "pool": "fault-quick"}"#,
            r#"{"kind": "sweep", "schemes": "SEEC,mSEEC", "transients": "0.0,0.01", "deadline_ms": "5000"}"#,
            r#"{"kind": "chaos", "seed": "9", "cases": "3", "pool": "smoke"}"#,
        ] {
            let spec = JobSpec::parse(&parse_line(line)).expect(line);
            let rendered = spec.to_row();
            let again = JobSpec::parse(&parse_line(&rendered)).expect(&rendered);
            assert_eq!(spec.digest().unwrap(), again.digest().unwrap(), "{line}");
            assert_eq!(spec.deadline_ms, again.deadline_ms);
            assert_eq!(spec.fail_attempts, again.fail_attempts);
        }
    }

    #[test]
    fn digest_is_content_addressed() {
        let base = JobSpec::parse(&parse_line(
            r#"{"kind": "sweep", "schemes": "SEEC", "transients": "0.0"}"#,
        ))
        .unwrap();
        // Deadline and the test hook do not perturb the address.
        let with_knobs = JobSpec::parse(&parse_line(
            r#"{"kind": "sweep", "schemes": "SEEC", "transients": "0.0", "deadline_ms": "100", "fail_attempts": "2"}"#,
        ))
        .unwrap();
        assert_eq!(base.digest().unwrap(), with_knobs.digest().unwrap());
        // The work does.
        let other = JobSpec::parse(&parse_line(
            r#"{"kind": "sweep", "schemes": "mSEEC", "transients": "0.0"}"#,
        ))
        .unwrap();
        assert_ne!(base.digest().unwrap(), other.digest().unwrap());
    }

    #[test]
    fn garbage_specs_name_the_broken_field() {
        for (line, needle) in [
            (r#"{"cases": "3"}"#, "kind"),
            (r#"{"kind": "warp"}"#, "unknown job kind"),
            (r#"{"kind": "sweep"}"#, "'pool' or 'schemes'"),
            (
                r#"{"kind": "sweep", "pool": "everything"}"#,
                "unknown sweep pool",
            ),
            (
                r#"{"kind": "sweep", "schemes": "SEEK"}"#,
                "unknown scheme label",
            ),
            (
                r#"{"kind": "sweep", "schemes": "SEEC", "transients": "lots"}"#,
                "transients",
            ),
            (r#"{"kind": "chaos", "cases": "0"}"#, "at least 1"),
            (
                r#"{"kind": "chaos", "pool": "tsunami"}"#,
                "unknown chaos pool",
            ),
            (r#"{"kind": "replay"}"#, "repro"),
            (r#"{"kind": "chaos", "deadline_ms": "0"}"#, "deadline_ms"),
        ] {
            let err = JobSpec::parse(&parse_line(line)).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn custom_sweep_expands_the_cross_product() {
        let spec = JobSpec::parse(&parse_line(
            r#"{"kind": "sweep", "schemes": "SEEC,mSEEC", "transients": "0.0,0.01,0.05", "cycles": "2000"}"#,
        ))
        .unwrap();
        let pts = spec.points();
        assert_eq!(pts.len(), 6);
        assert!(pts.iter().all(|p| p.cycles == 2_000));
    }
}
