//! The job lifecycle, twice: once as a **typestate** (illegal transitions
//! do not compile) and once as a runtime [`Stage`] relation (journals and
//! HTTP payloads need values, not types). The two are pinned against each
//! other by `tests/lifecycle.rs`: every typestate method corresponds to a
//! `permits` edge and vice versa.
//!
//! ```text
//!            ┌────────────┐ start  ┌─────────┐ complete  ┌──────┐
//!   submit → │   QUEUED   ├───────►│ RUNNING ├──────────►│ DONE │
//!            └─────┬──────┘        └─┬─┬─┬─┬─┘           └──────┘
//!                  │ cancel   resume │ │ │ │ fail/deadline ┌────────┐
//!                  ▼           ┌─────┘ │ │ └──────────────►│ FAILED │
//!            ┌───────────┐     │       │ │ checkpoint      └────────┘
//!            │ CANCELLED │◄────┼───────┘ ▼   (interrupt)       ▲
//!            └───────────┘     │  ┌──────────────┐  quarantine │
//!                  ▲           └──┤ CHECKPOINTED ├─────────────┘
//!                  └── cancel ────┴──────────────┘
//! ```
//!
//! `DONE`, `FAILED` and `CANCELLED` are terminal: the corresponding
//! typestates have **no** transition methods, so "resurrecting" a
//! cancelled job is a compile error, and the runtime relation returns
//! `false` for every edge out of them (the restart-adoption path leans on
//! this — a terminal journal line ends the job's story, whatever follows).

use std::marker::PhantomData;

// ---------------------------------------------------------------------------
// Runtime stage relation
// ---------------------------------------------------------------------------

/// Runtime mirror of the typestate: what journals, HTTP responses and the
/// scheduler's registry store.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Accepted, journaled, waiting for a worker.
    Queued,
    /// Claimed by a worker, executing.
    Running,
    /// Interrupted with its progress journaled (drain, crash adoption, or
    /// a panicking attempt awaiting its retry): resumable.
    Checkpointed,
    /// Completed; report available.
    Done,
    /// Terminal error: deterministic job failure, deadline expiry, or
    /// quarantine after the retry budget.
    Failed,
    /// Cancelled by the client. Never resurrected, even across restarts.
    Cancelled,
}

impl Stage {
    /// Every stage, in journal-label order.
    pub const ALL: [Stage; 6] = [
        Stage::Queued,
        Stage::Running,
        Stage::Checkpointed,
        Stage::Done,
        Stage::Failed,
        Stage::Cancelled,
    ];

    /// The journal/HTTP label.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Queued => "queued",
            Stage::Running => "running",
            Stage::Checkpointed => "checkpointed",
            Stage::Done => "done",
            Stage::Failed => "failed",
            Stage::Cancelled => "cancelled",
        }
    }

    /// Inverse of [`Stage::label`].
    pub fn parse(s: &str) -> Option<Stage> {
        Stage::ALL.into_iter().find(|st| st.label() == s)
    }

    /// No edges lead out of a terminal stage.
    pub fn is_terminal(self) -> bool {
        matches!(self, Stage::Done | Stage::Failed | Stage::Cancelled)
    }

    /// The transition relation — exactly the edges the typestate methods
    /// below encode. Journal replay on restart validates every recorded
    /// transition against this (a journal claiming `done → running` is
    /// corruption, not history).
    pub fn permits(self, to: Stage) -> bool {
        use Stage::{Cancelled, Checkpointed, Done, Failed, Queued, Running};
        matches!(
            (self, to),
            (Queued, Running | Cancelled)
                | (Running, Done | Failed | Cancelled | Checkpointed)
                | (Checkpointed, Running | Cancelled | Failed)
        )
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

// ---------------------------------------------------------------------------
// Typestate
// ---------------------------------------------------------------------------

/// Typestate marker: queued.
pub enum Queued {}
/// Typestate marker: running.
pub enum Running {}
/// Typestate marker: checkpointed (interrupted, resumable).
pub enum Checkpointed {}
/// Typestate marker: done (terminal).
pub enum Done {}
/// Typestate marker: failed (terminal).
pub enum Failed {}
/// Typestate marker: cancelled (terminal).
pub enum Cancelled {}

/// Maps a typestate marker back to its runtime [`Stage`] so generic code
/// (the scheduler's journal writer) can ask "which stage am I in?".
pub trait StageOf {
    /// The runtime stage this marker denotes.
    const STAGE: Stage;
}
impl StageOf for Queued {
    const STAGE: Stage = Stage::Queued;
}
impl StageOf for Running {
    const STAGE: Stage = Stage::Running;
}
impl StageOf for Checkpointed {
    const STAGE: Stage = Stage::Checkpointed;
}
impl StageOf for Done {
    const STAGE: Stage = Stage::Done;
}
impl StageOf for Failed {
    const STAGE: Stage = Stage::Failed;
}
impl StageOf for Cancelled {
    const STAGE: Stage = Stage::Cancelled;
}

/// A job's lifecycle position, parameterized by typestate. Transition
/// methods consume `self` and return the next state; states without a
/// method for an edge make that transition a **compile error**:
///
/// ```compile_fail
/// use noc_serve::lifecycle::JobState;
/// let done = JobState::submit("j1".into()).start().complete();
/// done.start(); // no such method: DONE is terminal
/// ```
///
/// ```compile_fail
/// use noc_serve::lifecycle::JobState;
/// let cancelled = JobState::submit("j1".into()).cancel();
/// cancelled.start(); // no resurrection of a cancelled job
/// ```
///
/// ```compile_fail
/// use noc_serve::lifecycle::JobState;
/// let queued = JobState::submit("j1".into());
/// queued.checkpoint(); // nothing to checkpoint before the job ran
/// ```
///
/// ```compile_fail
/// use noc_serve::lifecycle::JobState;
/// let failed = JobState::submit("j1".into()).start().fail();
/// failed.resume(); // quarantined/failed jobs stay failed
/// ```
#[derive(Debug)]
pub struct JobState<S> {
    id: String,
    /// Executed attempts (incremented by [`JobState::start`] and
    /// [`JobState::resume`]).
    attempts: u32,
    _stage: PhantomData<S>,
}

impl<S: StageOf> JobState<S> {
    /// The runtime stage of this typestate.
    pub fn stage(&self) -> Stage {
        S::STAGE
    }

    /// The job's content-address id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Executed attempts so far.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    fn into<T: StageOf>(self) -> JobState<T> {
        debug_assert!(
            S::STAGE.permits(T::STAGE),
            "typestate edge {} -> {} missing from Stage::permits",
            S::STAGE,
            T::STAGE
        );
        JobState {
            id: self.id,
            attempts: self.attempts,
            _stage: PhantomData,
        }
    }
}

impl JobState<Queued> {
    /// A freshly accepted job.
    pub fn submit(id: String) -> JobState<Queued> {
        JobState {
            id,
            attempts: 0,
            _stage: PhantomData,
        }
    }

    /// A worker claims the job.
    pub fn start(mut self) -> JobState<Running> {
        self.attempts += 1;
        self.into()
    }

    /// Client cancellation before any worker claimed it.
    pub fn cancel(self) -> JobState<Cancelled> {
        self.into()
    }
}

impl JobState<Running> {
    /// The job ran to completion.
    pub fn complete(self) -> JobState<Done> {
        self.into()
    }

    /// Deterministic failure, deadline expiry, or quarantine — terminal.
    pub fn fail(self) -> JobState<Failed> {
        self.into()
    }

    /// Client cancellation observed mid-run (at a unit boundary).
    pub fn cancel(self) -> JobState<Cancelled> {
        self.into()
    }

    /// Interrupted with progress journaled: service drain, crash adoption,
    /// or a panicking attempt parked for its backoff. Resumable.
    pub fn checkpoint(self) -> JobState<Checkpointed> {
        self.into()
    }
}

impl JobState<Checkpointed> {
    /// A worker re-claims the job; the journal skips finished units.
    pub fn resume(mut self) -> JobState<Running> {
        self.attempts += 1;
        self.into()
    }

    /// Client cancellation while parked.
    pub fn cancel(self) -> JobState<Cancelled> {
        self.into()
    }

    /// The retry budget ran out: quarantined, terminal.
    pub fn quarantine(self) -> JobState<Failed> {
        self.into()
    }
}

// Done / Failed / Cancelled deliberately have no impl blocks: terminality
// is the absence of methods, checked at compile time.

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for s in Stage::ALL {
            assert_eq!(Stage::parse(s.label()), Some(s));
        }
        assert_eq!(Stage::parse("zombie"), None);
    }

    #[test]
    fn terminal_stages_permit_nothing() {
        for from in Stage::ALL.into_iter().filter(|s| s.is_terminal()) {
            for to in Stage::ALL {
                assert!(!from.permits(to), "{from} -> {to} must be illegal");
            }
        }
    }

    #[test]
    fn typestate_walk_matches_runtime_relation() {
        // QUEUED -> RUNNING -> CHECKPOINTED -> RUNNING -> DONE, counting
        // attempts along the way.
        let q = JobState::submit("walk".into());
        assert_eq!((q.stage(), q.attempts()), (Stage::Queued, 0));
        let r = q.start();
        assert_eq!((r.stage(), r.attempts()), (Stage::Running, 1));
        let c = r.checkpoint();
        assert_eq!(c.stage(), Stage::Checkpointed);
        let r = c.resume();
        assert_eq!((r.stage(), r.attempts()), (Stage::Running, 2));
        let d = r.complete();
        assert_eq!((d.stage(), d.id()), (Stage::Done, "walk"));
    }

    #[test]
    fn quarantine_and_cancel_paths_terminate() {
        let f = JobState::submit("q".into())
            .start()
            .checkpoint()
            .quarantine();
        assert_eq!(f.stage(), Stage::Failed);
        let c = JobState::submit("c".into()).cancel();
        assert_eq!(c.stage(), Stage::Cancelled);
        let c = JobState::submit("c2".into()).start().cancel();
        assert_eq!(c.stage(), Stage::Cancelled);
    }
}
