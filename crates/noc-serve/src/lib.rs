//! `noc-serve`: a crash-tolerant job service over the repo's simulation
//! runners.
//!
//! Long-running work — fault sweeps, chaos soaks, repro replays — is
//! submitted over a hand-rolled HTTP/1.1 + JSON interface (zero external
//! dependencies), deduplicated by content address (the same config digest
//! machinery the checkpoint journals key on), and executed on a supervised
//! worker pool:
//!
//! * the job lifecycle is a **typestate** ([`lifecycle`]): illegal
//!   transitions do not compile, terminal states have no exits;
//! * every transition is journaled, and every unit of work lands in an
//!   append-only `rows.ckpt.jsonl`, so `kill -9` at any byte is recoverable:
//!   the next boot adopts the journals and resumes, producing row sets
//!   byte-identical to an uninterrupted run;
//! * per-job **deadlines** and client cancellation ride one cooperative
//!   [`rayon::CancelToken`], observed at sweep-point granularity;
//! * panicking jobs are **retried** under capped exponential backoff and
//!   then **quarantined** with a black-box dump;
//! * the queue is bounded: overload is shed at admission with HTTP 429 +
//!   `Retry-After`, never absorbed as latency;
//! * SIGTERM drains gracefully — running jobs park as CHECKPOINTED.
//!
//! See DESIGN.md §14 for the architecture and failure matrix.

#![forbid(unsafe_code)]

pub mod http;
pub mod lifecycle;
pub mod queue;
pub mod service;
pub mod spec;

pub use http::HttpOpts;
pub use lifecycle::{JobState, Stage};
pub use queue::{BoundedQueue, QueueFull};
pub use service::{Counter, JobStatus, NetStats, ServeOpts, Service, SubmitError};
pub use spec::{JobSpec, SpecKind, SweepSource};
