//! A deliberately tiny HTTP/1.1 server over `std::net` — no framework, no
//! async runtime, no external dependency. Thread-per-connection with a
//! per-connection total-request deadline; one request per connection
//! (`Connection: close`).
//!
//! ```text
//! POST /jobs            submit (flat JSON body)  202 created / 200 dedupe
//!                       400 bad spec · 413 body too large
//!                       429 + Retry-After queue full · 503 draining
//!                       503 + Retry-After storage degraded (read-only)
//! GET  /jobs            every job, one JSON row per line
//! GET  /jobs/<id>       one job's status row            (404 unknown)
//! GET  /jobs/<id>/rows  the unit journal, as JSONL      (404 unknown)
//! POST /jobs/<id>/cancel                                 (409 terminal)
//! GET  /healthz         liveness + queue depth + storage + net counters
//! POST /drain           begin graceful shutdown, 202
//! ```
//!
//! ## Admission hardening
//!
//! The accept loop is the service's outermost shed point, and every limit
//! is enforced *before* work is queued:
//!
//! * **bounded concurrency** — at most [`HttpOpts::max_connections`]
//!   in-flight connections; the overflow connection gets an immediate
//!   `503` + `Retry-After` on the accept thread and is counted in
//!   `connections_shed`;
//! * **total-request deadline** — a connection has
//!   [`HttpOpts::request_deadline_ms`] to deliver its whole request
//!   (slow-loris defense): the socket read timeout is always the
//!   *remaining* deadline, so a stalled client costs one timed-out read,
//!   never an unbounded block, and is refused with `408`
//!   (`deadline_kills`);
//! * **bounded headers** — header lines are capped at
//!   [`HttpOpts::max_header_line`] bytes and [`HttpOpts::max_headers`]
//!   lines, refused with `431` (`header_rejects`) — an endless header
//!   line costs a fixed-size buffer, not unbounded memory;
//! * **tracked workers** — connection threads are reaped as they finish
//!   and joined when the accept loop exits, so a drain never abandons a
//!   worker mid-response.
//!
//! All traffic flows through a `noc_net::Transport`: passthrough in
//! production (one branch per op), a replayable fault plan under the
//! `NOC_NET_FAULT_*` knobs or in the network-chaos soak.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use noc_experiments::jsonio;
use noc_net::{FaultStream, Transport};

use crate::service::{Service, SubmitError};

/// Largest accepted request body. Specs are small; anything bigger is a
/// client bug or abuse, refused with `413`.
const MAX_BODY: usize = 64 * 1024;

/// Admission limits for the HTTP layer. Every knob sheds *early* — at
/// accept or header-parse time — so overload costs a refusal, not memory
/// or a hung worker.
#[derive(Clone, Debug)]
pub struct HttpOpts {
    /// In-flight connection cap; the overflow connection is shed with
    /// `503` + `Retry-After` on the accept thread.
    pub max_connections: usize,
    /// Total time a connection gets to deliver its request (slow-loris
    /// defense); expired connections are refused with `408`.
    pub request_deadline_ms: u64,
    /// Longest accepted request/header line, in bytes (`431` beyond).
    pub max_header_line: usize,
    /// Most header lines accepted per request (`431` beyond).
    pub max_headers: usize,
}

impl Default for HttpOpts {
    fn default() -> HttpOpts {
        HttpOpts {
            max_connections: 64,
            request_deadline_ms: 10_000,
            max_header_line: 8 * 1024,
            max_headers: 64,
        }
    }
}

/// Serves until `shutdown` flips true (SIGTERM/SIGINT or `POST /drain`),
/// with default limits over the process-wide transport (passthrough unless
/// the `NOC_NET_FAULT_*` knobs are set).
pub fn serve(listener: TcpListener, service: &Arc<Service>, shutdown: &Arc<AtomicBool>) {
    serve_with(
        listener,
        service,
        shutdown,
        &HttpOpts::default(),
        &Transport::from_env(),
    );
}

/// [`serve`] with explicit limits and transport (the chaos soak injects a
/// faulted transport here). The listener runs non-blocking so the flag is
/// observed within ~20 ms; each accepted connection is handled on a
/// tracked thread, reaped as it finishes and joined before returning.
pub fn serve_with(
    listener: TcpListener,
    service: &Arc<Service>,
    shutdown: &Arc<AtomicBool>,
    opts: &HttpOpts,
    transport: &Transport,
) {
    listener
        .set_nonblocking(true)
        .expect("listener nonblocking");
    let listener = transport.listener(listener);
    let live = Arc::new(AtomicUsize::new(0));
    let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::Relaxed) {
        // Reap finished connection threads so the tracking list stays
        // proportional to live connections, not total served.
        let mut i = 0;
        while i < handles.len() {
            if handles[i].is_finished() {
                let _ = handles.swap_remove(i).join();
            } else {
                i += 1;
            }
        }
        match listener.accept() {
            Ok((stream, _)) => {
                service.net().accepted.incr();
                if live.load(Ordering::SeqCst) >= opts.max_connections {
                    // Shed inline on the accept thread: the response is a
                    // handful of bytes and spawning would defeat the cap.
                    service.net().shed.incr();
                    let _ = shed_response(stream);
                    continue;
                }
                live.fetch_add(1, Ordering::SeqCst);
                let conn_service = Arc::clone(service);
                let conn_shutdown = Arc::clone(shutdown);
                let conn_live = Arc::clone(&live);
                let conn_opts = opts.clone();
                let spawned = std::thread::Builder::new()
                    .name("noc-serve-conn".to_string())
                    .spawn(move || {
                        let _guard = LiveGuard(conn_live);
                        if handle(stream, &conn_service, &conn_shutdown, &conn_opts).is_err() {
                            conn_service.net().reset.incr();
                        }
                    });
                match spawned {
                    Ok(h) => handles.push(h),
                    Err(_) => {
                        // Spawn failure counts as a shed: the connection
                        // dies, the counter got its decrement via the
                        // guard never existing.
                        live.fetch_sub(1, Ordering::SeqCst);
                        service.net().shed.incr();
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => {
                // A failed accept (injected or real) drops one pending
                // connection; the listener itself survives.
                service.net().reset.incr();
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
    for h in handles {
        let _ = h.join();
    }
}

/// Decrements the live-connection gauge when the connection thread exits,
/// panics included.
struct LiveGuard(Arc<AtomicUsize>);

impl Drop for LiveGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The inline `503` for a shed connection.
fn shed_response(stream: FaultStream) -> io::Result<()> {
    stream.set_write_timeout(Some(Duration::from_secs(1)))?;
    respond_with(
        stream,
        503,
        "Service Unavailable",
        &[("Retry-After", "1")],
        &error_row("connection limit reached"),
    )
}

/// How reading a request can end before routing.
enum ReadEnd {
    /// The line/body arrived intact.
    Ok(String),
    /// The connection's total-request deadline expired (slow loris).
    Deadline,
    /// A header line exceeded the cap.
    TooLong,
    /// Clean EOF before the terminator — a torn request.
    Torn,
}

/// Reads one `\n`-terminated line with the line-length cap, under the
/// connection deadline. The socket read timeout is always the *remaining*
/// deadline, so a stalled peer costs exactly one timed-out read.
fn read_line_bounded(
    reader: &mut BufReader<FaultStream>,
    max_len: usize,
    deadline: Instant,
) -> io::Result<ReadEnd> {
    let mut line = Vec::new();
    loop {
        let Some(remaining) = deadline
            .checked_duration_since(Instant::now())
            .filter(|d| !d.is_zero())
        else {
            return Ok(ReadEnd::Deadline);
        };
        reader.get_ref().set_read_timeout(Some(remaining))?;
        let available = match reader.fill_buf() {
            Ok(buf) => buf,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Ok(ReadEnd::Deadline)
            }
            Err(e) => return Err(e),
        };
        if available.is_empty() {
            return Ok(ReadEnd::Torn);
        }
        let (take, done) = match available.iter().position(|&b| b == b'\n') {
            Some(at) => (at + 1, true),
            None => (available.len(), false),
        };
        if line.len() + take > max_len {
            return Ok(ReadEnd::TooLong);
        }
        line.extend_from_slice(&available[..take]);
        reader.consume(take);
        if done {
            return Ok(ReadEnd::Ok(String::from_utf8_lossy(&line).into_owned()));
        }
    }
}

/// Reads exactly `len` body bytes under the connection deadline.
fn read_body_bounded(
    reader: &mut BufReader<FaultStream>,
    len: usize,
    deadline: Instant,
) -> io::Result<ReadEnd> {
    let mut body = vec![0u8; len];
    let mut got = 0usize;
    while got < len {
        let Some(remaining) = deadline
            .checked_duration_since(Instant::now())
            .filter(|d| !d.is_zero())
        else {
            return Ok(ReadEnd::Deadline);
        };
        reader.get_ref().set_read_timeout(Some(remaining))?;
        match reader.read(&mut body[got..]) {
            Ok(0) => return Ok(ReadEnd::Torn),
            Ok(n) => got += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Ok(ReadEnd::Deadline)
            }
            Err(e) => return Err(e),
        }
    }
    Ok(ReadEnd::Ok(String::from_utf8_lossy(&body).into_owned()))
}

fn handle(
    stream: FaultStream,
    service: &Service,
    shutdown: &AtomicBool,
    opts: &HttpOpts,
) -> io::Result<()> {
    let deadline = Instant::now() + Duration::from_millis(opts.request_deadline_ms.max(1));
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let line = match read_line_bounded(&mut reader, opts.max_header_line, deadline)? {
        ReadEnd::Ok(line) => line,
        ReadEnd::Deadline => return refuse_deadline(stream, service),
        ReadEnd::TooLong => return refuse_headers(stream, service, "request line too long"),
        ReadEnd::Torn => {
            service.net().reset.incr();
            return Ok(()); // nothing arrived worth answering
        }
    };
    let mut parts = line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m.to_string(), p.to_string()),
        _ => {
            return respond(
                stream,
                400,
                "Bad Request",
                r#"{"error": "malformed request line"}"#,
            )
        }
    };
    // Headers: only Content-Length matters to us, but every line is held
    // to the caps.
    let mut content_length = 0usize;
    let mut header_count = 0usize;
    loop {
        let h = match read_line_bounded(&mut reader, opts.max_header_line, deadline)? {
            ReadEnd::Ok(h) => h,
            ReadEnd::Deadline => return refuse_deadline(stream, service),
            ReadEnd::TooLong => return refuse_headers(stream, service, "header line too long"),
            ReadEnd::Torn => break, // EOF ends the header block
        };
        let h = h.trim();
        if h.is_empty() {
            break;
        }
        header_count += 1;
        if header_count > opts.max_headers {
            return refuse_headers(stream, service, "too many headers");
        }
        if let Some(v) = h
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
        {
            content_length = v.parse().unwrap_or(0);
        }
    }
    if content_length > MAX_BODY {
        // Drain (bounded) before erroring so the client can finish its
        // write and read the 413 instead of tripping over a broken pipe.
        let mut remaining = content_length.min(1 << 20);
        let mut scratch = [0u8; 8192];
        while remaining > 0 {
            let take = remaining.min(scratch.len());
            let n = match reader.read(&mut scratch[..take]) {
                Ok(n) => n,
                Err(_) => break,
            };
            if n == 0 {
                break;
            }
            remaining -= n;
        }
        return respond(
            stream,
            413,
            "Payload Too Large",
            r#"{"error": "body too large"}"#,
        );
    }
    let body = match read_body_bounded(&mut reader, content_length, deadline)? {
        ReadEnd::Ok(body) => body,
        ReadEnd::Deadline => return refuse_deadline(stream, service),
        ReadEnd::Torn => {
            // The request died inside its body: nothing was admitted, the
            // peer is gone — count the tear and hang up.
            service.net().reset.incr();
            return Ok(());
        }
        ReadEnd::TooLong => unreachable!("body reads have no line cap"),
    };
    route(stream, service, shutdown, &method, &path, &body)
}

fn refuse_deadline(stream: FaultStream, service: &Service) -> io::Result<()> {
    service.net().deadline_kills.incr();
    respond(
        stream,
        408,
        "Request Timeout",
        &error_row("request deadline exceeded"),
    )
}

fn refuse_headers(stream: FaultStream, service: &Service, why: &str) -> io::Result<()> {
    service.net().header_rejects.incr();
    respond(
        stream,
        431,
        "Request Header Fields Too Large",
        &error_row(why),
    )
}

fn route(
    stream: FaultStream,
    service: &Service,
    shutdown: &AtomicBool,
    method: &str,
    path: &str,
    body: &str,
) -> io::Result<()> {
    match (method, path) {
        ("POST", "/jobs") => {
            let Some(row) = jsonio::parse_flat(body.trim()) else {
                return respond(
                    stream,
                    400,
                    "Bad Request",
                    r#"{"error": "body is not a flat JSON object"}"#,
                );
            };
            match service.submit(&row) {
                Ok((status, created)) => {
                    let (code, reason) = if created {
                        (202, "Accepted")
                    } else {
                        (200, "OK")
                    };
                    respond(stream, code, reason, &status.to_row())
                }
                Err(SubmitError::Invalid(e)) => respond(stream, 400, "Bad Request", &error_row(&e)),
                Err(SubmitError::Busy(full)) => respond_with(
                    stream,
                    429,
                    "Too Many Requests",
                    &[("Retry-After", &full.retry_after_s.to_string())],
                    &error_row("queue full"),
                ),
                Err(SubmitError::Draining) => {
                    respond(stream, 503, "Service Unavailable", &error_row("draining"))
                }
                Err(SubmitError::StorageDegraded(why)) => respond_with(
                    stream,
                    503,
                    "Service Unavailable",
                    &[("Retry-After", "5")],
                    &error_row(&format!("storage degraded (read-only): {why}")),
                ),
            }
        }
        ("GET", "/jobs") => {
            let rows: Vec<String> = service
                .list()
                .iter()
                .map(crate::service::JobStatus::to_row)
                .collect();
            respond(stream, 200, "OK", &rows.join("\n"))
        }
        ("GET", "/healthz") => {
            let degraded = service.storage_degraded();
            let net = service.net();
            let mut obj = jsonio::JsonObj::new()
                .str_field("status", if degraded { "degraded" } else { "ok" })
                .str_field("storage", if degraded { "read-only" } else { "ok" })
                .str_field("draining", &service.is_draining().to_string())
                .str_field("queued", &service.queued().to_string())
                .u64_field("connections_accepted", net.accepted.get())
                .u64_field("connections_shed", net.shed.get())
                .u64_field("connections_reset", net.reset.get())
                .u64_field("deadline_kills", net.deadline_kills.get())
                .u64_field("header_rejects", net.header_rejects.get())
                .u64_field("dedupe_hits", net.dedupe_hits.get());
            if let Some(why) = service.storage_detail() {
                obj = obj.str_field("storage_detail", &why);
            }
            respond(stream, 200, "OK", &obj.finish())
        }
        ("POST", "/drain") => {
            shutdown.store(true, Ordering::Relaxed);
            respond(stream, 202, "Accepted", r#"{"status": "draining"}"#)
        }
        ("POST", p) if p.starts_with("/jobs/") && p.ends_with("/cancel") => {
            let id = &p["/jobs/".len()..p.len() - "/cancel".len()];
            match service.cancel(id) {
                Ok(status) => respond(stream, 200, "OK", &status.to_row()),
                Err(Some(stage)) => respond(
                    stream,
                    409,
                    "Conflict",
                    &error_row(&format!("job is terminal ({stage})")),
                ),
                Err(None) => respond(stream, 404, "Not Found", &error_row("unknown job")),
            }
        }
        ("GET", p) if p.starts_with("/jobs/") && p.ends_with("/rows") => {
            let id = &p["/jobs/".len()..p.len() - "/rows".len()];
            match service.rows_path(id) {
                Some(path) => {
                    let text = std::fs::read_to_string(path).unwrap_or_default();
                    respond(stream, 200, "OK", &text)
                }
                None => respond(stream, 404, "Not Found", &error_row("unknown job")),
            }
        }
        ("GET", p) if p.starts_with("/jobs/") => {
            let id = &p["/jobs/".len()..];
            match service.status(id) {
                Some(status) => respond(stream, 200, "OK", &status.to_row()),
                None => respond(stream, 404, "Not Found", &error_row("unknown job")),
            }
        }
        _ => respond(stream, 404, "Not Found", &error_row("no such route")),
    }
}

fn error_row(msg: &str) -> String {
    noc_experiments::jsonio::JsonObj::new()
        .str_field("error", msg)
        .finish()
}

fn respond(stream: FaultStream, code: u16, reason: &str, body: &str) -> io::Result<()> {
    respond_with(stream, code, reason, &[], body)
}

fn respond_with(
    mut stream: FaultStream,
    code: u16,
    reason: &str,
    extra: &[(&str, &str)],
    body: &str,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {code} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (k, v) in extra {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}
