//! A deliberately tiny HTTP/1.1 server over `std::net` — no framework, no
//! async runtime, no external dependency. Thread-per-connection with short
//! socket timeouts; one request per connection (`Connection: close`).
//!
//! ```text
//! POST /jobs            submit (flat JSON body)  202 created / 200 dedupe
//!                       400 bad spec · 413 body too large
//!                       429 + Retry-After queue full · 503 draining
//!                       503 + Retry-After storage degraded (read-only)
//! GET  /jobs            every job, one JSON row per line
//! GET  /jobs/<id>       one job's status row            (404 unknown)
//! GET  /jobs/<id>/rows  the unit journal, as JSONL      (404 unknown)
//! POST /jobs/<id>/cancel                                 (409 terminal)
//! GET  /healthz         liveness + queue depth + storage health
//! POST /drain           begin graceful shutdown, 202
//! ```

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use noc_experiments::jsonio;

use crate::service::{Service, SubmitError};

/// Largest accepted request body. Specs are small; anything bigger is a
/// client bug or abuse, refused with `413`.
const MAX_BODY: usize = 64 * 1024;

/// Serves until `shutdown` flips true (SIGTERM/SIGINT or `POST /drain`).
/// The listener runs non-blocking so the flag is observed within ~50 ms;
/// each accepted connection is handled on its own thread.
pub fn serve(listener: &TcpListener, service: &Arc<Service>, shutdown: &Arc<AtomicBool>) {
    listener
        .set_nonblocking(true)
        .expect("listener nonblocking");
    while !shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let service = Arc::clone(service);
                let shutdown = Arc::clone(shutdown);
                std::thread::spawn(move || {
                    let _ = handle(stream, &service, &shutdown);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

fn handle(stream: TcpStream, service: &Service, shutdown: &AtomicBool) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m.to_string(), p.to_string()),
        _ => {
            return respond(
                stream,
                400,
                "Bad Request",
                r#"{"error": "malformed request line"}"#,
            )
        }
    };
    // Headers: only Content-Length matters to us.
    let mut content_length = 0usize;
    loop {
        let mut h = String::new();
        if reader.read_line(&mut h)? == 0 {
            break;
        }
        let h = h.trim();
        if h.is_empty() {
            break;
        }
        if let Some(v) = h
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
        {
            content_length = v.parse().unwrap_or(0);
        }
    }
    if content_length > MAX_BODY {
        // Drain (bounded) before erroring so the client can finish its
        // write and read the 413 instead of tripping over a broken pipe.
        let mut remaining = content_length.min(1 << 20);
        let mut scratch = [0u8; 8192];
        while remaining > 0 {
            let take = remaining.min(scratch.len());
            let n = reader.read(&mut scratch[..take])?;
            if n == 0 {
                break;
            }
            remaining -= n;
        }
        return respond(
            stream,
            413,
            "Payload Too Large",
            r#"{"error": "body too large"}"#,
        );
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8_lossy(&body).into_owned();
    route(stream, service, shutdown, &method, &path, &body)
}

fn route(
    stream: TcpStream,
    service: &Service,
    shutdown: &AtomicBool,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<()> {
    match (method, path) {
        ("POST", "/jobs") => {
            let Some(row) = jsonio::parse_flat(body.trim()) else {
                return respond(
                    stream,
                    400,
                    "Bad Request",
                    r#"{"error": "body is not a flat JSON object"}"#,
                );
            };
            match service.submit(&row) {
                Ok((status, created)) => {
                    let (code, reason) = if created {
                        (202, "Accepted")
                    } else {
                        (200, "OK")
                    };
                    respond(stream, code, reason, &status.to_row())
                }
                Err(SubmitError::Invalid(e)) => respond(stream, 400, "Bad Request", &error_row(&e)),
                Err(SubmitError::Busy(full)) => respond_with(
                    stream,
                    429,
                    "Too Many Requests",
                    &[("Retry-After", &full.retry_after_s.to_string())],
                    &error_row("queue full"),
                ),
                Err(SubmitError::Draining) => {
                    respond(stream, 503, "Service Unavailable", &error_row("draining"))
                }
                Err(SubmitError::StorageDegraded(why)) => respond_with(
                    stream,
                    503,
                    "Service Unavailable",
                    &[("Retry-After", "5")],
                    &error_row(&format!("storage degraded (read-only): {why}")),
                ),
            }
        }
        ("GET", "/jobs") => {
            let rows: Vec<String> = service
                .list()
                .iter()
                .map(crate::service::JobStatus::to_row)
                .collect();
            respond(stream, 200, "OK", &rows.join("\n"))
        }
        ("GET", "/healthz") => {
            let degraded = service.storage_degraded();
            let mut obj = jsonio::JsonObj::new()
                .str_field("status", if degraded { "degraded" } else { "ok" })
                .str_field("storage", if degraded { "read-only" } else { "ok" })
                .str_field("draining", &service.is_draining().to_string())
                .str_field("queued", &service.queued().to_string());
            if let Some(why) = service.storage_detail() {
                obj = obj.str_field("storage_detail", &why);
            }
            respond(stream, 200, "OK", &obj.finish())
        }
        ("POST", "/drain") => {
            shutdown.store(true, Ordering::Relaxed);
            respond(stream, 202, "Accepted", r#"{"status": "draining"}"#)
        }
        ("POST", p) if p.starts_with("/jobs/") && p.ends_with("/cancel") => {
            let id = &p["/jobs/".len()..p.len() - "/cancel".len()];
            match service.cancel(id) {
                Ok(status) => respond(stream, 200, "OK", &status.to_row()),
                Err(Some(stage)) => respond(
                    stream,
                    409,
                    "Conflict",
                    &error_row(&format!("job is terminal ({stage})")),
                ),
                Err(None) => respond(stream, 404, "Not Found", &error_row("unknown job")),
            }
        }
        ("GET", p) if p.starts_with("/jobs/") && p.ends_with("/rows") => {
            let id = &p["/jobs/".len()..p.len() - "/rows".len()];
            match service.rows_path(id) {
                Some(path) => {
                    let text = std::fs::read_to_string(path).unwrap_or_default();
                    respond(stream, 200, "OK", &text)
                }
                None => respond(stream, 404, "Not Found", &error_row("unknown job")),
            }
        }
        ("GET", p) if p.starts_with("/jobs/") => {
            let id = &p["/jobs/".len()..];
            match service.status(id) {
                Some(status) => respond(stream, 200, "OK", &status.to_row()),
                None => respond(stream, 404, "Not Found", &error_row("unknown job")),
            }
        }
        _ => respond(stream, 404, "Not Found", &error_row("no such route")),
    }
}

fn error_row(msg: &str) -> String {
    noc_experiments::jsonio::JsonObj::new()
        .str_field("error", msg)
        .finish()
}

fn respond(stream: TcpStream, code: u16, reason: &str, body: &str) -> std::io::Result<()> {
    respond_with(stream, code, reason, &[], body)
}

fn respond_with(
    mut stream: TcpStream,
    code: u16,
    reason: &str,
    extra: &[(&str, &str)],
    body: &str,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {code} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (k, v) in extra {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}
