//! The seeker side-band path: a closed walk over all routers.
//!
//! The paper embeds the seeker path as a ring through every router (§3.3,
//! Fig 3). On a mesh we use a boustrophedon (snake) sweep followed by a
//! return segment to the start; the return segment revisits some routers,
//! which is harmless — the seeker simply transits them.

use noc_types::{Coord, NodeId};

/// A closed walk over all routers of a `cols`×`rows` mesh: consecutive
/// entries are mesh neighbours and the last entry is a neighbour of the
/// first. Every router appears at least once.
#[derive(Clone, Debug)]
pub struct SeekerRing {
    seq: Vec<NodeId>,
    /// First occurrence of each node in `seq`.
    first_pos: Vec<usize>,
}

impl SeekerRing {
    /// Builds the snake-plus-return ring.
    pub fn new(cols: u8, rows: u8) -> SeekerRing {
        assert!(cols >= 2 && rows >= 1, "ring needs at least a 2x1 mesh");
        let mut seq = Vec::new();
        // Boustrophedon sweep.
        for y in 0..rows {
            if y % 2 == 0 {
                for x in 0..cols {
                    seq.push(Coord::new(x, y).to_node(cols));
                }
            } else {
                for x in (0..cols).rev() {
                    seq.push(Coord::new(x, y).to_node(cols));
                }
            }
        }
        // Return toward (0,0): walk up the ending column, then west along
        // row 0, stopping one hop short of the start so the walk closes with
        // a single hop (no duplicate of the start node).
        let end = seq
            .last()
            .expect("the serpentine walk visits at least row zero")
            .to_coord(cols);
        let stop_y = if end.x == 0 { 1 } else { 0 };
        for y in (stop_y..end.y).rev() {
            seq.push(Coord::new(end.x, y).to_node(cols));
        }
        if end.x > 0 {
            for x in (1..end.x).rev() {
                seq.push(Coord::new(x, 0).to_node(cols));
            }
        }
        // `seq` now ends adjacent to (0,0) (or at it for 1-row meshes, where
        // the snake ends on row 0 already).
        let n = cols as usize * rows as usize;
        let mut first_pos = vec![usize::MAX; n];
        for (i, &node) in seq.iter().enumerate() {
            if first_pos[node.idx()] == usize::MAX {
                first_pos[node.idx()] = i;
            }
        }
        debug_assert!(first_pos.iter().all(|&p| p != usize::MAX));
        SeekerRing { seq, first_pos }
    }

    /// Builds an explicit walk (used by mSEEC partitions and tests).
    /// Consecutive entries must be neighbours.
    pub fn from_walk(seq: Vec<NodeId>, num_nodes: usize) -> SeekerRing {
        let mut first_pos = vec![usize::MAX; num_nodes];
        for (i, &node) in seq.iter().enumerate() {
            if first_pos[node.idx()] == usize::MAX {
                first_pos[node.idx()] = i;
            }
        }
        SeekerRing { seq, first_pos }
    }

    /// Length of the walk in hops (one full seeker revolution).
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// Router at walk position `pos` (wraps around).
    pub fn at(&self, pos: usize) -> NodeId {
        self.seq[pos % self.seq.len()]
    }

    /// First position of `node` in the walk.
    pub fn position_of(&self, node: NodeId) -> usize {
        self.first_pos[node.idx()]
    }

    /// The underlying sequence.
    pub fn seq(&self) -> &[NodeId] {
        &self.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_valid_ring(cols: u8, rows: u8) {
        let ring = SeekerRing::new(cols, rows);
        let n = cols as usize * rows as usize;
        // Visits every router.
        let mut seen = vec![false; n];
        for &node in ring.seq() {
            seen[node.idx()] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "{cols}x{rows}: ring misses routers"
        );
        // Consecutive entries (cyclically) are neighbours.
        for i in 0..ring.len() {
            let a = ring.at(i).to_coord(cols);
            let b = ring.at(i + 1).to_coord(cols);
            assert_eq!(a.manhattan(b), 1, "{cols}x{rows}: {a}->{b} not a hop");
        }
    }

    #[test]
    fn rings_are_valid_closed_walks() {
        for k in [2u8, 3, 4, 8, 16] {
            assert_valid_ring(k, k);
        }
        assert_valid_ring(4, 2);
        assert_valid_ring(2, 4);
    }

    #[test]
    fn ring_starts_at_origin() {
        let ring = SeekerRing::new(4, 4);
        assert_eq!(ring.at(0), NodeId(0));
        assert_eq!(ring.position_of(NodeId(0)), 0);
    }

    #[test]
    fn walking_full_length_covers_all_from_any_offset() {
        let ring = SeekerRing::new(4, 4);
        for start in 0..ring.len() {
            let mut seen = [false; 16];
            for i in 0..ring.len() {
                seen[ring.at(start + i).idx()] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }
}
