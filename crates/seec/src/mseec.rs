//! mSEEC: multiple simultaneous seekers over column partitions (§3.8).
//!
//! Partitions are the mesh columns, groups are the rows (Fig 5). In phase
//! `p`, the NICs of row `p` are active; in step `s` of that phase, the NIC
//! in column `j` seeks within column `(j + s) mod k`. Seekers travel along
//! row `p` to their target column, then sweep the column; FF packets return
//! column-first. The paper guarantees non-intersection with a static
//! schedule; here the same invariant is enforced structurally by the
//! space-time reservation table (a flight that would cross another's path
//! is delayed by the bounded residual occupancy — see DESIGN.md).

use crate::flight::{FfFlight, FfStream};
use crate::seec::SeecConfig;
use noc_sim::network::Network;
use noc_sim::nic::EjReserve;
use noc_sim::Mechanism;
use noc_types::{Coord, Cycle, Flit, MessageClass, NodeId, SchemeKind, NUM_PORTS};

/// A seeker scoped to one column partition.
#[derive(Clone, Debug)]
struct MSeeker {
    origin: NodeId,
    class: MessageClass,
    ej_vc: usize,
    /// Router the seeker currently sits on.
    pos: NodeId,
    /// Remaining walk (next router first).
    walk: Vec<NodeId>,
    /// Column being searched.
    col: u8,
    /// Whether this seeker also searches NIC injection queues (footnote 2).
    search_queues: bool,
}

#[derive(Debug)]
enum EngState {
    /// About to serve `class_cursor` (reserve + launch seeker).
    StartClass,
    Seeking(MSeeker),
    Flying(FfFlight),
    /// Wormhole (§3.11): trailing flits chase the head through a captured VC.
    Streaming(FfStream),
    /// All classes served for this step; waiting at the barrier.
    DoneStep,
}

/// One per-column engine (the active NIC of the current group/row).
#[derive(Debug)]
struct Engine {
    /// Column of this engine's NIC.
    j: u8,
    state: EngState,
    class_cursor: u8,
}

/// The mSEEC mechanism: `k` concurrent engines, phase/step schedule.
pub struct MSeecMechanism {
    cfg: SeecConfig,
    cols: u8,
    rows: u8,
    classes: u8,
    /// Active group (row).
    phase: u8,
    /// Step within the phase: engine `j` searches column `(j+step) % cols`.
    step: u8,
    engines: Vec<Engine>,
    /// Per (nic, class): pending proactive reservation after a missed turn.
    pending_reserve: Vec<bool>,
    pub ff_ejections: u64,
    pub empty_seeks: u64,
}

impl MSeecMechanism {
    pub fn new(cols: u8, rows: u8, classes: u8, cfg: SeecConfig) -> MSeecMechanism {
        assert!(cols >= 2 && rows >= 2, "mSEEC needs at least a 2x2 mesh");
        let engines = (0..cols)
            .map(|j| Engine {
                j,
                state: EngState::StartClass,
                class_cursor: 0,
            })
            .collect();
        MSeecMechanism {
            cfg,
            cols,
            rows,
            classes,
            phase: 0,
            step: 0,
            engines,
            pending_reserve: vec![false; cols as usize * rows as usize * classes as usize],
            ff_ejections: 0,
            empty_seeks: 0,
        }
    }

    pub fn for_net(cfg: &noc_types::NetConfig) -> MSeecMechanism {
        MSeecMechanism::new(cfg.cols, cfg.rows, cfg.classes, SeecConfig::default())
    }

    fn slot(&self, nic: usize, class: u8) -> usize {
        nic * self.classes as usize + class as usize
    }

    /// The seeker walk for engine `j` in the current phase/step: along row
    /// `phase` to the target column, then to the column's top, then down to
    /// its bottom. Excludes the origin router itself (searched first).
    fn build_walk(&self, j: u8) -> (Vec<NodeId>, u8) {
        let p = self.phase;
        let c = (j + self.step) % self.cols;
        let mut walk = Vec::new();
        let mut x = j;
        while x != c {
            x = if c > x { x + 1 } else { x - 1 };
            walk.push(Coord::new(x, p).to_node(self.cols));
        }
        for y in (0..p).rev() {
            walk.push(Coord::new(c, y).to_node(self.cols));
        }
        for y in 0..self.rows {
            // Sweep top-to-bottom; revisits of (c, 0..=p) are transit-cheap.
            walk.push(Coord::new(c, y).to_node(self.cols));
        }
        (walk, c)
    }

    fn serve_pending(&mut self, net: &mut Network) {
        for nic in 0..net.nics.len() {
            for class in 0..self.classes {
                let slot = self.slot(nic, class);
                if !self.pending_reserve[slot] {
                    continue;
                }
                let claims =
                    &net.routers[nic].outputs[noc_types::Direction::Local.index()].vc_claimed;
                if let Some(i) = net.nics[nic].free_ejection_vc(MessageClass(class), claims) {
                    net.nics[nic].ejection[i].reserve = EjReserve::Held;
                    self.pending_reserve[slot] = false;
                }
            }
        }
    }
}

/// Searches one router's input VCs for a packet headed to `origin` in
/// `class`; drains and upgrades it on a match.
/// How a seeker match launches its traversal (see `seec::Found`).
enum MFound {
    Batch(Vec<Flit>),
    Stream(noc_types::PortId, usize),
}

fn search_router_for(
    net: &mut Network,
    node: NodeId,
    origin: NodeId,
    class: MessageClass,
    now: Cycle,
    search_queues: bool,
) -> Option<MFound> {
    let r = node.idx();
    let wormhole = net.cfg.buffer_org == noc_types::BufferOrg::Wormhole;
    for port in 0..NUM_PORTS {
        for vc in 0..net.routers[r].inputs[port].vcs.len() {
            let v = &net.routers[r].inputs[port].vcs[vc];
            if v.ff_capture || v.route.is_some() {
                continue;
            }
            let eligible = if wormhole {
                v.front().is_some_and(|f| f.kind.is_head())
            } else {
                v.packet_fully_buffered()
            };
            if !eligible {
                continue;
            }
            let front = v.front().expect("eligible VC is non-empty");
            if front.dest == origin && front.class == class && !front.ff {
                if wormhole {
                    return Some(MFound::Stream(port, vc));
                }
                let mut flits = net.drain_packet(node, port, vc);
                for f in &mut flits {
                    f.ff = true;
                    f.ff_upgrade = Some(now);
                    f.escape = false;
                }
                return Some(MFound::Batch(flits));
            }
        }
    }
    if search_queues {
        let q = &mut net.nics[r].inj_queues[class.idx()];
        if let Some(k) = q.iter().position(|p| p.dest == origin) {
            let pkt = q.remove(k).expect("position() returned an in-range index");
            let mut flits: Vec<Flit> = (0..pkt.len_flits)
                .map(|i| Flit::from_packet(&pkt, i, now))
                .collect();
            for f in &mut flits {
                f.ff = true;
                f.ff_upgrade = Some(now);
            }
            return Some(MFound::Batch(flits));
        }
    }
    None
}

impl Mechanism for MSeecMechanism {
    fn kind(&self) -> SchemeKind {
        SchemeKind::MSeec
    }

    fn pre_cycle(&mut self, net: &mut Network) {
        let now = net.cycle;
        self.serve_pending(net);

        let p = self.phase;
        let classes = self.classes;
        let inj_period = self.cfg.inj_search_period;
        let cols = self.cols;
        let mut all_done = true;

        for e in 0..self.engines.len() {
            // Temporarily take the state to sidestep double borrows.
            let state = std::mem::replace(&mut self.engines[e].state, EngState::DoneStep);
            let j = self.engines[e].j;
            let origin = Coord::new(j, p).to_node(cols);
            let new_state = match state {
                EngState::StartClass => {
                    let class = MessageClass(self.engines[e].class_cursor);
                    // Reserve an ejection VC (or adopt a Held one).
                    let per = net.cfg.ejection_vcs_per_class as usize;
                    let base = class.idx() * per;
                    let nic = &mut net.nics[origin.idx()];
                    let held =
                        (base..base + per).find(|&i| nic.ejection[i].reserve == EjReserve::Held);
                    let ej_vc = match held {
                        Some(i) => Some(i),
                        None => {
                            let claims = &net.routers[origin.idx()].outputs
                                [noc_types::Direction::Local.index()]
                            .vc_claimed;
                            let free = nic.free_ejection_vc(class, claims);
                            if let Some(i) = free {
                                nic.ejection[i].reserve = EjReserve::Held;
                            }
                            free
                        }
                    };
                    match ej_vc {
                        Some(ej_vc) => {
                            let (walk, col) = self.build_walk(j);
                            let period = inj_period;
                            let area = (cols as Cycle) * (self.rows as Cycle);
                            let search_queues = (period > 0 && now % period < 8 * area)
                                || net.quiescent_for() > 2 * area;
                            EngState::Seeking(MSeeker {
                                origin,
                                class,
                                ej_vc,
                                pos: origin,
                                walk,
                                col,
                                search_queues,
                            })
                        }
                        None => {
                            let slot = self.slot(origin.idx(), class.0);
                            self.pending_reserve[slot] = true;
                            // Missed turn for this class: next class (or done).
                            self.engines[e].class_cursor += 1;
                            if self.engines[e].class_cursor == classes {
                                EngState::DoneStep
                            } else {
                                EngState::StartClass
                            }
                        }
                    }
                }
                EngState::Seeking(mut s) => {
                    net.stats.sideband_hops += 1;
                    // Search the router the seeker currently sits on, but
                    // only while inside the partition column (row-transit
                    // routers belong to other engines' turf); the origin
                    // router itself is always searched.
                    let cur = s.pos;
                    // Column-first flights cannot detour around dead links,
                    // so a router whose express path to the origin is severed
                    // has no valid candidates (see `flight::ff_path_is_live`).
                    let searchable = (cur.to_coord(cols).x == s.col || cur == origin)
                        && crate::flight::ff_path_is_live(net, cur, s.origin, true);
                    let found = if searchable {
                        search_router_for(net, cur, s.origin, s.class, now, s.search_queues)
                    } else {
                        None
                    };
                    match found {
                        Some(MFound::Batch(flits)) => {
                            net.nics[s.origin.idx()].ejection[s.ej_vc].reserve =
                                EjReserve::For(flits[0].packet);
                            let flight = FfFlight::plan(
                                net,
                                flits,
                                cur,
                                s.origin,
                                s.ej_vc,
                                now + 1,
                                true, // column-first: stay in the partition
                            );
                            EngState::Flying(flight)
                        }
                        Some(MFound::Stream(port, vc)) => {
                            let pkt = net.routers[cur.idx()].inputs[port].vcs[vc]
                                .front()
                                .expect("streamed VC holds the matched packet")
                                .packet;
                            net.nics[s.origin.idx()].ejection[s.ej_vc].reserve =
                                EjReserve::For(pkt);
                            let stream =
                                FfStream::begin(net, cur, port, vc, s.origin, s.ej_vc, now, true);
                            EngState::Streaming(stream)
                        }
                        None => {
                            if s.walk.is_empty() {
                                // Walk exhausted: release and next class.
                                let vc = &mut net.nics[s.origin.idx()].ejection[s.ej_vc];
                                debug_assert_eq!(vc.reserve, EjReserve::Held);
                                vc.reserve = EjReserve::Free;
                                self.empty_seeks += 1;
                                self.engines[e].class_cursor += 1;
                                if self.engines[e].class_cursor == classes {
                                    EngState::DoneStep
                                } else {
                                    EngState::StartClass
                                }
                            } else {
                                s.pos = s.walk.remove(0);
                                EngState::Seeking(s)
                            }
                        }
                    }
                }
                EngState::Flying(mut flight) => {
                    if flight.advance(net, now) {
                        self.ff_ejections += 1;
                        self.engines[e].class_cursor += 1;
                        if self.engines[e].class_cursor == classes {
                            EngState::DoneStep
                        } else {
                            EngState::StartClass
                        }
                    } else {
                        EngState::Flying(flight)
                    }
                }
                EngState::Streaming(mut stream) => {
                    if stream.advance(net, now) {
                        self.ff_ejections += 1;
                        self.engines[e].class_cursor += 1;
                        if self.engines[e].class_cursor == classes {
                            EngState::DoneStep
                        } else {
                            EngState::StartClass
                        }
                    } else {
                        EngState::Streaming(stream)
                    }
                }
                EngState::DoneStep => EngState::DoneStep,
            };
            if !matches!(new_state, EngState::DoneStep) {
                all_done = false;
            }
            self.engines[e].state = new_state;
        }

        if all_done {
            // Barrier: everyone finished the step; rotate partitions, then
            // groups.
            self.step += 1;
            if self.step == self.cols {
                self.step = 0;
                self.phase = (self.phase + 1) % self.rows;
            }
            for e in &mut self.engines {
                e.state = EngState::StartClass;
                e.class_cursor = 0;
            }
        }
    }

    fn debug_state(&self) -> String {
        let engines: Vec<String> = self
            .engines
            .iter()
            .map(|e| {
                let st = match &e.state {
                    EngState::StartClass => "start".to_string(),
                    EngState::Seeking(s) => format!(
                        "seeking origin={} class={} pos={} walk_left={}",
                        s.origin.0,
                        s.class.0,
                        s.pos.0,
                        s.walk.len()
                    ),
                    EngState::Flying(f) => {
                        format!("flying depart={} links={}", f.depart(), f.links().len())
                    }
                    EngState::Streaming(_) => "streaming".to_string(),
                    EngState::DoneStep => "done".to_string(),
                };
                format!("eng{}(cursor={}): {st}", e.j, e.class_cursor)
            })
            .collect();
        format!(
            "mseec phase={} step={} ff_ejections={} empty_seeks={} pending_reserves={} [{}]",
            self.phase,
            self.step,
            self.ff_ejections,
            self.empty_seeks,
            self.pending_reserve.iter().filter(|&&b| b).count(),
            engines.join("; ")
        )
    }
}
