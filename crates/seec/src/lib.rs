//! # seec — Stochastic Escape Express Channel
//!
//! The paper's contribution: destination NICs take turns sending *seekers*
//! over a side-band path; a seeker that finds a packet destined for its
//! (pre-reserved) ejection VC upgrades it to *Free Flow* — a bufferless,
//! minimal, lookahead-driven traversal with absolute priority that is
//! guaranteed to eject. One FF packet at a time in base SEEC
//! ([`SeecMechanism`]); one per column partition in mSEEC
//! ([`MSeecMechanism`]).
//!
//! Integration with the simulator is through `noc_sim::Mechanism`:
//! everything SEEC does happens in `pre_cycle`, and the switch allocator
//! honours the space-time link reservations FF traversals make (the model of
//! the paper's lookahead signal, §3.5).

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod flight;
pub mod mseec;
pub mod ring;
pub mod seec;

pub use flight::FfFlight;
pub use mseec::MSeecMechanism;
pub use ring::SeekerRing;
pub use seec::{SeecConfig, SeecMechanism};
