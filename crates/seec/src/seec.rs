//! The base SEEC mechanism: one seeker / one FF packet at a time.

use crate::flight::{FfFlight, FfStream};
use crate::ring::SeekerRing;
use noc_sim::network::Network;
use noc_sim::nic::EjReserve;
use noc_sim::Mechanism;
use noc_types::{Cycle, Flit, MessageClass, NodeId, SchemeKind, NUM_PORTS};

/// Tunables for SEEC / mSEEC.
#[derive(Clone, Copy, Debug)]
pub struct SeecConfig {
    /// Every this many cycles, seekers also search NIC *injection* queues
    /// for one full revolution (footnote 2 of the paper: guards the corner
    /// case where the `NoC` is so full of requests that a response can never
    /// inject). The paper set N = 1M and never hit the case on gem5's
    /// resource sizing; our stress configurations (2 TBEs, 1 `VNet`) reach it
    /// readily, so the default is 10k. Set to 0 to disable.
    pub inj_search_period: Cycle,
}

impl Default for SeecConfig {
    fn default() -> Self {
        SeecConfig {
            inj_search_period: 10_000,
        }
    }
}

/// Where the seeker-turn token currently sits: NIC × message class.
#[derive(Clone, Copy, Debug)]
struct Token {
    nic: usize,
    class: u8,
}

/// An in-flight seeker.
#[derive(Clone, Copy, Debug)]
struct Seeker {
    origin: NodeId,
    class: MessageClass,
    /// Reserved ejection VC at the origin NIC (flattened index).
    ej_vc: usize,
    /// Current position on the ring walk.
    pos: usize,
    /// Hops of pure transit remaining before searching starts (round-robin
    /// start offset, §3.3's `<router-id, inport-id>` tracker).
    transit_left: usize,
    /// Routers still to search (one per walk step once transit is done).
    search_left: usize,
    /// Whether this seeker also searches NIC injection queues (footnote 2).
    search_queues: bool,
}

/// Controller state: the three phases of a SEEC turn.
#[derive(Debug)]
enum State {
    /// Advance the token and try to reserve an ejection VC.
    Advance,
    Seeking(Seeker),
    Flying(FfFlight),
    /// Wormhole (§3.11): trailing flits chase the head through a captured VC.
    Streaming(FfStream),
}

/// Base SEEC: a single global round-robin token over (NIC, message class)
/// pairs; the holder reserves an ejection VC, circulates a seeker over the
/// ring, and — on a find — launches exactly one Free-Flow packet.
pub struct SeecMechanism {
    cfg: SeecConfig,
    ring: SeekerRing,
    state: State,
    token: Token,
    /// Per (nic, class): ring position after the router that produced the
    /// last FF packet — where the next search begins (round-robin fairness).
    search_start: Vec<usize>,
    /// Per (nic, class): the class missed its turn and proactively reserves
    /// the next free ejection VC (§3.3).
    pending_reserve: Vec<bool>,
    classes: usize,
    /// Diagnostics: completed FF ejections.
    pub ff_ejections: u64,
    /// Diagnostics: seekers that returned empty-handed.
    pub empty_seeks: u64,
}

impl SeecMechanism {
    pub fn new(cols: u8, rows: u8, classes: u8, cfg: SeecConfig) -> SeecMechanism {
        let n = cols as usize * rows as usize;
        let ring = SeekerRing::new(cols, rows);
        SeecMechanism {
            cfg,
            ring,
            state: State::Advance,
            token: Token {
                nic: n - 1,
                class: classes - 1,
            },
            search_start: vec![0; n * classes as usize],
            pending_reserve: vec![false; n * classes as usize],
            classes: classes as usize,
            ff_ejections: 0,
            empty_seeks: 0,
        }
    }

    /// Convenience constructor from a network config.
    pub fn for_net(cfg: &noc_types::NetConfig) -> SeecMechanism {
        SeecMechanism::new(cfg.cols, cfg.rows, cfg.classes, SeecConfig::default())
    }

    fn slot(&self, nic: usize, class: u8) -> usize {
        nic * self.classes + class as usize
    }

    /// Moves the token to the next (class, then NIC) position.
    fn bump_token(&mut self, nodes: usize) {
        self.token.class += 1;
        if self.token.class as usize == self.classes {
            self.token.class = 0;
            self.token.nic = (self.token.nic + 1) % nodes;
        }
    }

    /// Tries to start a turn for the current token holder: reserve an
    /// ejection VC and launch a seeker.
    fn try_start_turn(&mut self, net: &mut Network) -> Option<Seeker> {
        let nic_id = NodeId(self.token.nic as u16);
        let class = MessageClass(self.token.class);
        let slot = self.slot(self.token.nic, self.token.class);
        // An earlier missed turn may have pre-reserved a VC (Held).
        let per = net.cfg.ejection_vcs_per_class as usize;
        let base = class.idx() * per;
        let nic = &mut net.nics[self.token.nic];
        let held = (base..base + per).find(|&i| nic.ejection[i].reserve == EjReserve::Held);
        let ej_vc = match held {
            Some(i) => Some(i),
            None => {
                let claims = &net.routers[self.token.nic].outputs
                    [noc_types::Direction::Local.index()]
                .vc_claimed;
                let free = nic.free_ejection_vc(class, claims);
                if let Some(i) = free {
                    nic.ejection[i].reserve = EjReserve::Held;
                }
                free
            }
        };
        let Some(ej_vc) = ej_vc else {
            // Missed turn: proactively reserve when one frees up.
            self.pending_reserve[slot] = true;
            return None;
        };
        self.pending_reserve[slot] = false;
        let origin_pos = self.ring.position_of(nic_id);
        let start = self.search_start[slot];
        // Transit (without searching) from the origin to the round-robin
        // start position, then search one full revolution.
        let len = self.ring.len();
        let transit = (start + len - origin_pos) % len;
        Some(Seeker {
            origin: nic_id,
            class,
            ej_vc,
            pos: origin_pos,
            transit_left: transit,
            search_left: len,
            search_queues: false,
        })
    }

    /// Serves any `pending_reserve` classes whose NIC now has a free VC
    /// (the proactive reservation of §3.3).
    fn serve_pending(&mut self, net: &mut Network) {
        for nic in 0..net.nics.len() {
            for class in 0..self.classes as u8 {
                let slot = self.slot(nic, class);
                if !self.pending_reserve[slot] {
                    continue;
                }
                let claims =
                    &net.routers[nic].outputs[noc_types::Direction::Local.index()].vc_claimed;
                if let Some(i) = net.nics[nic].free_ejection_vc(MessageClass(class), claims) {
                    net.nics[nic].ejection[i].reserve = EjReserve::Held;
                    self.pending_reserve[slot] = false;
                }
            }
        }
    }

    /// Searches the router at the seeker's position. On a match, returns how
    /// to launch the Free-Flow traversal.
    fn search_router(&mut self, net: &mut Network, s: &Seeker, now: Cycle) -> Option<Found> {
        let node = self.ring.at(s.pos);
        let r = node.idx();
        // A flight from here flies the fixed minimal path and cannot detour
        // around dead links; if that path is severed, nothing at this router
        // is a valid Free-Flow candidate for this origin.
        if !crate::flight::ff_path_is_live(net, node, s.origin, self.column_first()) {
            return None;
        }
        let wormhole = net.cfg.buffer_org == noc_types::BufferOrg::Wormhole;
        for port in 0..NUM_PORTS {
            for vc in 0..net.routers[r].inputs[port].vcs.len() {
                let v = &net.routers[r].inputs[port].vcs[vc];
                if v.ff_capture || v.route.is_some() {
                    continue;
                }
                // VCT upgrades fully-buffered packets in one shot; wormhole
                // (§3.11) upgrades any head-fronted VC and streams the rest.
                let eligible = if wormhole {
                    v.front().is_some_and(|f| f.kind.is_head())
                } else {
                    v.packet_fully_buffered()
                };
                if !eligible {
                    continue;
                }
                let front = v.front().expect("eligible VC is non-empty");
                if front.dest == s.origin && front.class == s.class && !front.ff {
                    if wormhole {
                        return Some(Found::Stream(node, port, vc));
                    }
                    let flits = net.drain_packet(node, port, vc);
                    return Some(Found::Batch(upgrade(flits, now), node));
                }
            }
        }
        // Periodically also search the local NIC's injection queues.
        if s.search_queues {
            let q = &mut net.nics[r].inj_queues[s.class.idx()];
            if let Some(k) = q.iter().position(|p| p.dest == s.origin) {
                let pkt = q.remove(k).expect("position() returned an in-range index");
                let flits: Vec<Flit> = (0..pkt.len_flits)
                    .map(|i| Flit::from_packet(&pkt, i, now))
                    .collect();
                return Some(Found::Batch(upgrade(flits, now), node));
            }
        }
        None
    }

    /// Releases the seeker's reservation after an empty-handed return.
    fn release_reservation(net: &mut Network, s: &Seeker) {
        let vc = &mut net.nics[s.origin.idx()].ejection[s.ej_vc];
        debug_assert_eq!(vc.reserve, EjReserve::Held);
        vc.reserve = EjReserve::Free;
    }

    /// Column-first flights are the mSEEC discipline; base SEEC flies XY.
    fn column_first(&self) -> bool {
        false
    }
}

/// How a seeker's match launches its Free-Flow traversal.
enum Found {
    /// Fully-drained packet flying as one batch (VCT, or from a NIC queue).
    Batch(Vec<Flit>, NodeId),
    /// Captured VC streaming flits as they arrive (wormhole, §3.11).
    Stream(NodeId, noc_types::PortId, usize),
}

/// Marks drained flits as a Free-Flow packet.
fn upgrade(mut flits: Vec<Flit>, now: Cycle) -> Vec<Flit> {
    for f in &mut flits {
        f.ff = true;
        f.ff_upgrade = Some(now);
        f.escape = false;
    }
    flits
}

impl Mechanism for SeecMechanism {
    fn kind(&self) -> SchemeKind {
        SchemeKind::Seec
    }

    fn pre_cycle(&mut self, net: &mut Network) {
        let now = net.cycle;
        self.serve_pending(net);
        match std::mem::replace(&mut self.state, State::Advance) {
            State::Advance => {
                self.bump_token(net.nics.len());
                match self.try_start_turn(net) {
                    Some(mut seeker) => {
                        // Footnote 2: seekers also inspect NIC injection
                        // queues (a) for one window every `inj_search_period`
                        // cycles and (b) whenever the data network has gone
                        // quiescent for a couple of seek times — the state in
                        // which a response that can never inject is the only
                        // thing left to rescue.
                        let period = self.cfg.inj_search_period;
                        let ring = self.ring.len() as Cycle;
                        seeker.search_queues = (period > 0 && now % period < 8 * ring)
                            || net.quiescent_for() > 2 * ring;
                        self.state = State::Seeking(seeker);
                    }
                    None => self.state = State::Advance,
                }
            }
            State::Seeking(mut s) => {
                // One ring hop per cycle on the side band.
                net.stats.sideband_hops += 1;
                if s.transit_left > 0 {
                    s.transit_left -= 1;
                    s.pos += 1;
                    self.state = State::Seeking(s);
                    return;
                }
                if let Some(found) = self.search_router(net, &s, now) {
                    // Seeker dropped; FF launch. Remember where to resume the
                    // round-robin search next turn.
                    let slot = self.slot(s.origin.idx(), s.class.0);
                    match found {
                        Found::Batch(flits, found_at) => {
                            self.search_start[slot] =
                                (self.ring.position_of(found_at) + 1) % self.ring.len();
                            net.nics[s.origin.idx()].ejection[s.ej_vc].reserve =
                                EjReserve::For(flits[0].packet);
                            let flight = FfFlight::plan(
                                net,
                                flits,
                                found_at,
                                s.origin,
                                s.ej_vc,
                                now + 1,
                                self.column_first(),
                            );
                            self.state = State::Flying(flight);
                        }
                        Found::Stream(node, port, vc) => {
                            self.search_start[slot] =
                                (self.ring.position_of(node) + 1) % self.ring.len();
                            let pkt = net.routers[node.idx()].inputs[port].vcs[vc]
                                .front()
                                .expect("streamed VC holds the matched packet")
                                .packet;
                            net.nics[s.origin.idx()].ejection[s.ej_vc].reserve =
                                EjReserve::For(pkt);
                            let stream = FfStream::begin(
                                net,
                                node,
                                port,
                                vc,
                                s.origin,
                                s.ej_vc,
                                now,
                                self.column_first(),
                            );
                            self.state = State::Streaming(stream);
                        }
                    }
                    return;
                }
                s.search_left -= 1;
                if s.search_left == 0 {
                    // Full revolution, nothing found: free the VC, next turn.
                    Self::release_reservation(net, &s);
                    self.empty_seeks += 1;
                    self.state = State::Advance;
                } else {
                    s.pos += 1;
                    self.state = State::Seeking(s);
                }
            }
            State::Flying(mut flight) => {
                if flight.advance(net, now) {
                    self.ff_ejections += 1;
                    self.state = State::Advance;
                } else {
                    self.state = State::Flying(flight);
                }
            }
            State::Streaming(mut stream) => {
                if stream.advance(net, now) {
                    self.ff_ejections += 1;
                    self.state = State::Advance;
                } else {
                    self.state = State::Streaming(stream);
                }
            }
        }
    }

    fn debug_state(&self) -> String {
        let state = match &self.state {
            State::Advance => "advance".to_string(),
            State::Seeking(s) => format!(
                "seeking origin={} class={} pos={} transit_left={} search_left={} queues={}",
                s.origin.0, s.class.0, s.pos, s.transit_left, s.search_left, s.search_queues
            ),
            State::Flying(f) => {
                format!("flying depart={} links={}", f.depart(), f.links().len())
            }
            State::Streaming(_) => "streaming".to_string(),
        };
        format!(
            "seec token=(nic {}, class {}) state=[{state}] ff_ejections={} empty_seeks={} \
             pending_reserves={}",
            self.token.nic,
            self.token.class,
            self.ff_ejections,
            self.empty_seeks,
            self.pending_reserve.iter().filter(|&&b| b).count()
        )
    }
}
