//! Free-Flow flights: the bufferless traversal of an upgraded packet.
//!
//! At upgrade time the whole minimal path is known, so the flight reserves
//! every `(directed link, cycle)` slot it will use — the model of the
//! lookahead signal racing one cycle ahead of the data (§3.5) — and then the
//! flits simply materialize at the destination NIC on schedule, with link
//! activity accounted per cycle. Switch allocation skips reserved slots, so
//! normal traffic can never collide with a flight, and two flights can never
//! collide with each other (the reservation table rejects overlaps).

use noc_sim::network::Network;
use noc_sim::routing::hop_dir;
use noc_types::{Coord, Cycle, Direction, Flit, NodeId, PortId};

/// An in-progress Free-Flow traversal.
#[derive(Clone, Debug)]
pub struct FfFlight {
    /// The packet's flits, already marked `ff` and stamped with the upgrade
    /// cycle.
    flits: Vec<Flit>,
    /// Output links in path order. The last entry is the destination
    /// router's local (ejection) port; earlier entries are router-router
    /// links.
    links: Vec<(NodeId, PortId)>,
    /// Cycle the head flit crosses `links[0]`.
    depart: Cycle,
    /// Destination NIC index and reserved ejection VC.
    dest: NodeId,
    ej_vc: usize,
    /// Flits fully delivered so far.
    delivered: usize,
}

impl FfFlight {
    /// Plans a flight for `flits` (a fully drained packet) currently at
    /// router `from`, destined for `dest`'s NIC ejection VC `ej_vc`.
    ///
    /// `column_first` picks YX instead of XY hop order — mSEEC flights stay
    /// in their column partition as long as possible (Fig 5), base SEEC uses
    /// XY. The earliest conflict-free departure at or after `earliest` is
    /// chosen by probing the reservation table (for base SEEC the table is
    /// empty and `earliest` is always used; for mSEEC this enforces the
    /// static schedule's non-intersection guarantee structurally).
    pub fn plan(
        net: &mut Network,
        mut flits: Vec<Flit>,
        from: NodeId,
        dest: NodeId,
        ej_vc: usize,
        earliest: Cycle,
        column_first: bool,
    ) -> FfFlight {
        let cols = net.cfg.cols;
        let here = from.to_coord(cols);
        let there = dest.to_coord(cols);
        let path = minimal_path(here, there, column_first);
        let mut links: Vec<(NodeId, PortId)> = Vec::with_capacity(path.len() + 1);
        let mut cur = here;
        for &next in &path {
            links.push((cur.to_node(cols), hop_dir(cur, next).index()));
            cur = next;
        }
        links.push((dest, Direction::Local.index()));

        let len = flits.len() as Cycle;
        // Probe for the earliest conflict-free departure. Each link i is
        // occupied for cycles [depart+i, depart+i+len-1].
        let mut depart = earliest;
        'probe: loop {
            for (i, &(node, port)) in links.iter().enumerate() {
                let from_c = depart + i as Cycle;
                if net
                    .reservations
                    .conflicts(node, port, from_c, from_c + len - 1)
                {
                    depart += 1;
                    continue 'probe;
                }
            }
            break;
        }
        for (i, &(node, port)) in links.iter().enumerate() {
            let from_c = depart + i as Cycle;
            net.reservations
                .reserve(node, port, from_c, from_c + len - 1);
        }

        // The data path crosses `links.len() - 1` router-router links; stamp
        // hop counts now. One lookahead per link precedes the data.
        let hops = (links.len() - 1) as u8;
        for f in &mut flits {
            f.hops = f.hops.saturating_add(hops);
            f.vc = ej_vc as u8;
        }
        net.stats.lookahead_hops += links.len() as u64;

        FfFlight {
            flits,
            links,
            depart,
            dest,
            ej_vc,
            delivered: 0,
        }
    }

    /// Advances the flight to `now`: counts link activity for flits crossing
    /// links this cycle and delivers flits reaching the NIC. Returns `true`
    /// when the whole packet has been delivered.
    pub fn advance(&mut self, net: &mut Network, now: Cycle) -> bool {
        let len = self.flits.len();
        let nlinks = self.links.len();
        // Flit s crosses link i at cycle depart + s + i.
        for s in 0..len {
            if now < self.depart + s as Cycle {
                continue;
            }
            let i = (now - self.depart - s as Cycle) as usize;
            if i < nlinks.saturating_sub(1) {
                // Router-router traversal.
                let (node, port) = self.links[i];
                net.stats.count_link_hop_at(now, node, port);
            }
        }
        // Flit s arrives at the NIC at depart + s + nlinks.
        while self.delivered < len && now == self.depart + self.delivered as Cycle + nlinks as Cycle
        {
            let flit = self.flits[self.delivered];
            net.nics[self.dest.idx()].receive(self.ej_vc, flit);
            net.last_progress = now;
            self.delivered += 1;
        }
        self.delivered == len
    }

    /// Cycle the tail flit enters the NIC (flight completion).
    pub fn completes_at(&self) -> Cycle {
        self.depart + (self.flits.len() - 1) as Cycle + self.links.len() as Cycle
    }

    /// The links this flight crosses (tests).
    pub fn links(&self) -> &[(NodeId, PortId)] {
        &self.links
    }

    /// Chosen departure cycle (tests).
    pub fn depart(&self) -> Cycle {
        self.depart
    }
}

/// Whether the Free-Flow path from `from` to `dest` crosses only live
/// links. Flights fly the fixed minimal path with no way to detour, so on a
/// degraded mesh ([`noc_types::FaultConfig`] dead links) the seeker must
/// skip candidates whose express path would cross a dead link — the packet
/// stays reachable through the masked adaptive routing, it just cannot be
/// express-channelled from that router. The seeker side band itself is
/// modeled fault-free. Always `true` on a healthy mesh, at zero cost.
pub fn ff_path_is_live(net: &Network, from: NodeId, dest: NodeId, column_first: bool) -> bool {
    match &net.fault {
        Some(f) if f.dead.any() => {}
        _ => return true,
    }
    let cols = net.cfg.cols;
    let mut cur = from.to_coord(cols);
    for next in minimal_path(cur, dest.to_coord(cols), column_first) {
        if net
            .neighbor(cur.to_node(cols), hop_dir(cur, next))
            .is_none()
        {
            return false;
        }
        cur = next;
    }
    true
}

/// Minimal path from `from` to `to`, XY (row-first) or YX (column-first)
/// order; excludes `from`, includes `to`.
pub fn minimal_path(from: Coord, to: Coord, column_first: bool) -> Vec<Coord> {
    let mut path = Vec::with_capacity(from.manhattan(to) as usize);
    let mut cur = from;
    let step_x = |cur: &mut Coord, path: &mut Vec<Coord>| {
        while cur.x != to.x {
            cur.x = if to.x > cur.x { cur.x + 1 } else { cur.x - 1 };
            path.push(*cur);
        }
    };
    let step_y = |cur: &mut Coord, path: &mut Vec<Coord>| {
        while cur.y != to.y {
            cur.y = if to.y > cur.y { cur.y + 1 } else { cur.y - 1 };
            path.push(*cur);
        }
    };
    if column_first {
        step_y(&mut cur, &mut path);
        step_x(&mut cur, &mut path);
    } else {
        step_x(&mut cur, &mut path);
        step_y(&mut cur, &mut path);
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_types::{FlitKind, MessageClass, NetConfig, Packet, PacketId};

    fn flits(len: u8, src: NodeId, dest: NodeId) -> Vec<Flit> {
        let p = Packet {
            id: PacketId(1),
            src,
            dest,
            class: MessageClass(0),
            len_flits: len,
            birth: 0,
            measured: true,
        };
        (0..len)
            .map(|s| {
                let mut f = Flit::from_packet(&p, s, 5);
                f.ff = true;
                f.ff_upgrade = Some(10);
                f
            })
            .collect()
    }

    #[test]
    fn flight_reserves_whole_path_and_delivers_on_schedule() {
        let mut net = Network::new(NetConfig::synth(4, 2));
        let from = NodeId(0);
        let dest = NodeId(10); // (2,2): 4 hops + ejection
        let mut flight = FfFlight::plan(
            &mut net,
            flits(5, NodeId(3), dest),
            from,
            dest,
            0,
            11,
            false,
        );
        assert_eq!(flight.links().len(), 5);
        assert_eq!(flight.depart(), 11);
        // Head: crosses links 11..15, arrives NIC at 16; tail arrives at 20.
        assert_eq!(flight.completes_at(), 20);
        // Link slots are reserved.
        assert!(net
            .reservations
            .is_reserved(NodeId(0), flight.links()[0].1, 11));
        assert!(net
            .reservations
            .is_reserved(NodeId(0), flight.links()[0].1, 15));
        assert!(!net
            .reservations
            .is_reserved(NodeId(0), flight.links()[0].1, 16));

        let mut done = false;
        for now in 11..=20 {
            done = flight.advance(&mut net, now);
        }
        assert!(done);
        let nic = &net.nics[10];
        assert!(nic.ejection[0].complete_packet());
        assert_eq!(nic.ejection[0].buf.front().unwrap().hops, 4);
        assert_eq!(nic.ejection[0].buf.front().unwrap().kind, FlitKind::Head);
    }

    #[test]
    fn conflicting_flight_is_delayed_not_overlapped() {
        let mut net = Network::new(NetConfig::synth(4, 2));
        let dest = NodeId(3);
        let a = FfFlight::plan(
            &mut net,
            flits(5, NodeId(0), dest),
            NodeId(0),
            dest,
            0,
            5,
            false,
        );
        // Same path, same earliest: must be pushed past a's occupancy.
        let b = FfFlight::plan(
            &mut net,
            flits(5, NodeId(0), dest),
            NodeId(0),
            dest,
            1,
            5,
            false,
        );
        assert!(b.depart() > a.depart());
        // No shared (link, cycle): b departs only after a's first link frees.
        assert!(b.depart() >= a.depart() + 5);
    }

    #[test]
    fn column_first_path_stays_in_column_then_row() {
        let path = minimal_path(Coord::new(2, 0), Coord::new(0, 3), true);
        // Down column 2 first, then west along row 3.
        assert_eq!(path[0], Coord::new(2, 1));
        assert_eq!(path[2], Coord::new(2, 3));
        assert_eq!(path[3], Coord::new(1, 3));
        assert_eq!(*path.last().unwrap(), Coord::new(0, 3));
    }

    #[test]
    fn ff_path_liveness_reflects_dead_links() {
        use noc_types::{Direction, FaultConfig};
        let cfg = NetConfig::synth(4, 2)
            .with_fault(FaultConfig::default().with_dead_links(vec![(NodeId(1), Direction::East)]));
        let net = Network::new(cfg);
        // XY paths along row 0 cross the dead 1 -> 2 link.
        assert!(!ff_path_is_live(&net, NodeId(0), NodeId(3), false));
        assert!(!ff_path_is_live(&net, NodeId(0), NodeId(7), false));
        // Column-first drops to row 1 before heading east: alive.
        assert!(ff_path_is_live(&net, NodeId(0), NodeId(7), true));
        // Paths that never touch the dead link are unaffected.
        assert!(ff_path_is_live(&net, NodeId(4), NodeId(12), false));
        // A healthy mesh is always live.
        let clean = Network::new(NetConfig::synth(4, 2));
        assert!(ff_path_is_live(&clean, NodeId(0), NodeId(3), false));
    }

    #[test]
    fn zero_hop_flight_is_just_ejection() {
        // Packet already buffered at its destination router.
        let mut net = Network::new(NetConfig::synth(4, 2));
        let dest = NodeId(6);
        let mut flight = FfFlight::plan(
            &mut net,
            flits(1, NodeId(0), dest),
            dest,
            dest,
            1,
            100,
            false,
        );
        assert_eq!(flight.links().len(), 1);
        assert_eq!(flight.completes_at(), 101);
        assert!(!flight.advance(&mut net, 100));
        assert!(flight.advance(&mut net, 101));
        assert!(net.nics[6].ejection[1].complete_packet());
    }
}

/// A *streaming* Free-Flow traversal for wormhole buffering (§3.11): the
/// seeker upgrades the head flit at the front of a (possibly shallow) VC;
/// the VC is put into capture mode, and each trailing flit is launched onto
/// the express path as it arrives, chasing the head at one hop per cycle.
/// Launches reserve their link slots individually, so the no-collision
/// invariant holds exactly as for batch flights.
#[derive(Clone, Debug)]
pub struct FfStream {
    links: Vec<(NodeId, PortId)>,
    dest: NodeId,
    ej_vc: usize,
    /// Total flits in the packet (from the head flit's header).
    total: u8,
    /// Launched flits with their departure cycles, in sequence order.
    launched: Vec<(Cycle, Flit)>,
    delivered: usize,
    last_depart: Cycle,
    /// Source VC being captured (None once the tail has been taken).
    src: Option<(NodeId, PortId, usize)>,
    upgrade_cycle: Cycle,
}

impl FfStream {
    /// Begins capturing `(node, port, vc)`, whose front flit must be the
    /// packet's head. Flits buffered right now launch immediately.
    #[allow(clippy::too_many_arguments)] // mirrors the upgrade-site tuple one-to-one
    pub fn begin(
        net: &mut Network,
        node: NodeId,
        port: PortId,
        vc: usize,
        dest: NodeId,
        ej_vc: usize,
        now: Cycle,
        column_first: bool,
    ) -> FfStream {
        let cols = net.cfg.cols;
        let head = *net.routers[node.idx()].inputs[port].vcs[vc]
            .front()
            .expect("capturing empty VC");
        debug_assert!(head.kind.is_head());
        let path = minimal_path(node.to_coord(cols), dest.to_coord(cols), column_first);
        let mut links: Vec<(NodeId, PortId)> = Vec::with_capacity(path.len() + 1);
        let mut cur = node.to_coord(cols);
        for &next in &path {
            links.push((cur.to_node(cols), hop_dir(cur, next).index()));
            cur = next;
        }
        links.push((dest, Direction::Local.index()));
        net.stats.lookahead_hops += links.len() as u64;
        net.routers[node.idx()].inputs[port].vcs[vc].ff_capture = true;
        let mut s = FfStream {
            links,
            dest,
            ej_vc,
            total: head.len,
            launched: Vec::with_capacity(head.len as usize),
            delivered: 0,
            last_depart: now, // first launch departs at now + 1
            src: Some((node, port, vc)),
            upgrade_cycle: now,
        };
        s.pump(net, now);
        s
    }

    /// Takes any newly-arrived captured flits and launches them.
    fn pump(&mut self, net: &mut Network, now: Cycle) {
        let Some((node, port, vc)) = self.src else {
            return;
        };
        let vcell = &mut net.routers[node.idx()].inputs[port].vcs[vc];
        if vcell.buf.is_empty() {
            return;
        }
        let flits = vcell.take_captured();
        if !vcell.ff_capture {
            // The tail passed: the VC has been released.
            self.src = None;
        }
        let hops = (self.links.len() - 1) as u8;
        for mut f in flits {
            f.ff = true;
            f.ff_upgrade = Some(self.upgrade_cycle);
            f.escape = false;
            f.hops = f.hops.saturating_add(hops);
            f.vc = self.ej_vc as u8;
            // Earliest conflict-free departure after the previous flit.
            let mut depart = (now + 1).max(self.last_depart + 1);
            'probe: loop {
                for (i, &(n, p)) in self.links.iter().enumerate() {
                    let c = depart + i as Cycle;
                    if net.reservations.conflicts(n, p, c, c) {
                        depart += 1;
                        continue 'probe;
                    }
                }
                break;
            }
            for (i, &(n, p)) in self.links.iter().enumerate() {
                let c = depart + i as Cycle;
                net.reservations.reserve(n, p, c, c);
            }
            self.last_depart = depart;
            self.launched.push((depart, f));
        }
    }

    /// One cycle of progress; returns `true` when the whole packet has been
    /// delivered into the reserved ejection VC.
    pub fn advance(&mut self, net: &mut Network, now: Cycle) -> bool {
        self.pump(net, now);
        let nlinks = self.links.len();
        for &(depart, _) in &self.launched {
            if now >= depart && now < depart + (nlinks - 1) as Cycle {
                let (node, port) = self.links[(now - depart) as usize];
                net.stats.count_link_hop_at(now, node, port);
            }
        }
        while self.delivered < self.launched.len() {
            let (depart, flit) = self.launched[self.delivered];
            if now != depart + nlinks as Cycle {
                break;
            }
            net.nics[self.dest.idx()].receive(self.ej_vc, flit);
            net.last_progress = now;
            self.delivered += 1;
        }
        self.delivered == self.total as usize
    }
}

#[cfg(test)]
mod stream_tests {
    use super::*;
    use noc_types::{MessageClass, NetConfig, Packet, PacketId};

    fn packet(len: u8, src: NodeId, dest: NodeId) -> (Packet, Vec<Flit>) {
        let p = Packet {
            id: PacketId(77),
            src,
            dest,
            class: MessageClass(0),
            len_flits: len,
            birth: 0,
            measured: true,
        };
        let flits = (0..len).map(|s| Flit::from_packet(&p, s, 3)).collect();
        (p, flits)
    }

    #[test]
    fn stream_launches_flits_as_they_arrive() {
        let mut net = Network::new(NetConfig::synth(4, 2).with_wormhole(2));
        let (_, flits) = packet(5, NodeId(0), NodeId(3));
        let (node, port, vc) = (NodeId(1), 2, 0);
        // Two flits buffered now; three trickle in later.
        net.routers[node.idx()].inputs[port].vcs[vc].push(flits[0]);
        net.routers[node.idx()].inputs[port].vcs[vc].push(flits[1]);

        let mut stream = FfStream::begin(&mut net, node, port, vc, NodeId(3), 0, 100, false);
        assert_eq!(stream.launched.len(), 2);
        assert!(net.routers[node.idx()].inputs[port].vcs[vc].ff_capture);

        // Trailing flits arrive over the next cycles.
        let mut done = false;
        for now in 101..140 {
            if now == 105 {
                net.routers[node.idx()].inputs[port].vcs[vc].push(flits[2]);
                net.routers[node.idx()].inputs[port].vcs[vc].push(flits[3]);
            }
            if now == 110 {
                net.routers[node.idx()].inputs[port].vcs[vc].push(flits[4]);
            }
            done = stream.advance(&mut net, now);
            if done {
                break;
            }
        }
        assert!(done, "stream never completed");
        // The VC was released when the tail was taken.
        assert!(net.routers[node.idx()].inputs[port].vcs[vc].is_free());
        // The packet reassembled in order at the destination.
        let ej = &net.nics[3].ejection[0];
        assert!(ej.complete_packet());
        let seqs: Vec<u8> = ej.buf.iter().map(|f| f.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn stream_departures_are_strictly_ordered() {
        let mut net = Network::new(NetConfig::synth(4, 2).with_wormhole(1));
        let (_, flits) = packet(3, NodeId(0), NodeId(12));
        let (node, port, vc) = (NodeId(5), 0, 1);
        for f in &flits {
            net.routers[node.idx()].inputs[port].vcs[vc].push(*f);
        }
        let stream = FfStream::begin(&mut net, node, port, vc, NodeId(12), 1, 50, true);
        let departs: Vec<Cycle> = stream.launched.iter().map(|(d, _)| *d).collect();
        assert_eq!(departs.len(), 3);
        assert!(departs.windows(2).all(|w| w[0] < w[1]));
    }
}
