//! §3.9's Prev-FF-Origin tracker: seekers resume searching *after* the
//! router that produced the previous FF packet, so routers close to the
//! destination on the seeker path cannot monopolize upgrades.

use noc_sim::stats::DeliveredPacket;
use noc_sim::workload::PacketFactory;
use noc_sim::{Sim, Workload};
use noc_types::{
    BaseRouting, Cycle, MessageClass, NetConfig, NodeId, Packet, PacketId, RoutingAlgo,
};
use seec::SeecMechanism;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Two symmetric sources flood one sink; everything else idles. Under heavy
/// blockage both sources' packets need FF rescues — the origin tracker must
/// spread upgrades across both rather than always rescuing the source that
/// appears first on the ring.
struct TwoSources {
    factory: PacketFactory,
    srcs: [NodeId; 2],
    sink: NodeId,
    ff_by_src: Rc<RefCell<HashMap<NodeId, u64>>>,
    delivered_by_src: Rc<RefCell<HashMap<NodeId, u64>>>,
}

impl Workload for TwoSources {
    fn generate(&mut self, cycle: Cycle, inject: &mut dyn FnMut(NodeId, Packet)) {
        // Heavy: both sources push a 5-flit packet every other cycle.
        if !cycle.is_multiple_of(2) {
            return;
        }
        for &src in &self.srcs {
            let pkt = self
                .factory
                .make(src, self.sink, MessageClass(0), 5, cycle, true);
            inject(src, pkt);
        }
    }

    fn deliver(&mut self, _cycle: Cycle, p: &DeliveredPacket) -> bool {
        *self.delivered_by_src.borrow_mut().entry(p.src).or_default() += 1;
        if p.ff_upgrade.is_some() {
            *self.ff_by_src.borrow_mut().entry(p.src).or_default() += 1;
        }
        let _ = PacketId(0);
        true
    }
}

#[test]
fn ff_upgrades_are_shared_across_sources() {
    let cfg = NetConfig::synth(4, 1)
        .with_routing(RoutingAlgo::Uniform(BaseRouting::AdaptiveMinimal))
        .with_seed(61);
    let ff = Rc::new(RefCell::new(HashMap::new()));
    let delivered = Rc::new(RefCell::new(HashMap::new()));
    // Sources at opposite corners; the sink at (2,1) is exactly three hops
    // from both, so neither source is inherently more rescue-prone.
    let wl = TwoSources {
        factory: PacketFactory::new(),
        srcs: [NodeId(0), NodeId(15)],
        sink: NodeId(6),
        ff_by_src: ff.clone(),
        delivered_by_src: delivered.clone(),
    };
    let mech = SeecMechanism::for_net(&cfg);
    let mut sim = Sim::new(cfg, Box::new(wl), Box::new(mech));
    sim.run(40_000);

    let ff = ff.borrow();
    let a = ff.get(&NodeId(0)).copied().unwrap_or(0);
    let b = ff.get(&NodeId(15)).copied().unwrap_or(0);
    assert!(
        a + b > 20,
        "expected plenty of FF rescues at this load, got {a}+{b}"
    );
    // Round-robin fairness: neither source monopolizes FF rescues. (Without
    // the origin tracker, the source whose packets sit earlier on the ring
    // would win nearly every seek.)
    let lo = a.min(b) as f64;
    let hi = a.max(b) as f64;
    assert!(
        lo / hi > 0.25,
        "FF rescues badly skewed: {a} vs {b} (origin tracker broken?)"
    );
    // And both sources actually get service overall.
    let d = delivered.borrow();
    assert!(d.get(&NodeId(0)).copied().unwrap_or(0) > 100);
    assert!(d.get(&NodeId(15)).copied().unwrap_or(0) > 100);
}
