//! End-to-end SEEC/mSEEC tests: the paper's correctness claims under traffic.

use noc_sim::{watchdog, NoMechanism, Sim};
use noc_traffic::{SyntheticWorkload, TrafficPattern};
use noc_types::{BaseRouting, NetConfig, RoutingAlgo};
use seec::{MSeecMechanism, SeecMechanism};

fn adaptive_cfg(k: u8, vcs: u8, seed: u64) -> NetConfig {
    NetConfig::synth(k, vcs)
        .with_routing(RoutingAlgo::Uniform(BaseRouting::AdaptiveMinimal))
        .with_seed(seed)
}

#[test]
fn seec_delivers_and_uses_ff_under_load() {
    let cfg = adaptive_cfg(4, 2, 21);
    let wl = SyntheticWorkload::new(TrafficPattern::UniformRandom, 0.20, 4, 4, cfg.warmup, 21);
    let mech = SeecMechanism::for_net(&cfg);
    let mut sim = Sim::new(cfg, Box::new(wl), Box::new(mech));
    sim.run(30_000);
    let s = sim.finish();
    assert!(
        s.ejected_packets > 1000,
        "only {} delivered",
        s.ejected_packets
    );
    assert!(s.ff_packets > 0, "no packet ever used Free Flow");
    assert!(s.sideband_hops > 0, "seekers never moved");
    assert!(s.lookahead_hops > 0, "no lookaheads sent");
}

/// The paper's central correctness claim: fully-adaptive random routing with
/// a single VC is deadlock-prone, and SEEC alone must keep it live.
#[test]
fn seec_keeps_single_vc_adaptive_routing_deadlock_free() {
    let cfg = adaptive_cfg(4, 1, 33);
    let wl = SyntheticWorkload::new(TrafficPattern::UniformRandom, 0.30, 4, 4, cfg.warmup, 33);
    let mech = SeecMechanism::for_net(&cfg);
    let mut sim = Sim::new(cfg, Box::new(wl), Box::new(mech));
    for _ in 0..60 {
        sim.run(1000);
        assert!(
            !watchdog::looks_stuck(&sim.net, watchdog::DEFAULT_STUCK_THRESHOLD),
            "network wedged at cycle {}",
            sim.net.cycle
        );
    }
    let s = sim.finish();
    assert!(s.ejected_packets > 1000);
}

/// Control experiment: without SEEC, the same deadlock-prone configuration
/// wedges (validates that the test above is actually exercising recovery).
#[test]
fn without_seec_single_vc_adaptive_routing_deadlocks() {
    let cfg = adaptive_cfg(4, 1, 33);
    let wl = SyntheticWorkload::new(TrafficPattern::UniformRandom, 0.30, 4, 4, cfg.warmup, 33);
    let mut sim = Sim::new(cfg, Box::new(wl), Box::new(NoMechanism));
    let mut wedged = false;
    for _ in 0..60 {
        sim.run(1000);
        if watchdog::looks_stuck(&sim.net, watchdog::DEFAULT_STUCK_THRESHOLD) {
            wedged = true;
            break;
        }
    }
    assert!(
        wedged,
        "expected a deadlock without any mechanism; got {} delivered",
        sim.net.stats.ejected_packets
    );
    // And the wait-for graph confirms a true cyclic dependency.
    assert!(
        watchdog::find_deadlock_cycle(&sim.net).is_some(),
        "watchdog fired but no dependency cycle found"
    );
}

#[test]
fn mseec_delivers_with_multiple_concurrent_ff_packets() {
    let cfg = adaptive_cfg(4, 2, 55);
    let wl = SyntheticWorkload::new(TrafficPattern::Transpose, 0.25, 4, 4, cfg.warmup, 55);
    let mech = MSeecMechanism::for_net(&cfg);
    let mut sim = Sim::new(cfg, Box::new(wl), Box::new(mech));
    sim.run(30_000);
    let s = sim.finish();
    assert!(s.ejected_packets > 500, "only {}", s.ejected_packets);
    assert!(s.ff_packets > 0);
}

#[test]
fn mseec_keeps_single_vc_adaptive_routing_deadlock_free() {
    let cfg = adaptive_cfg(4, 1, 77);
    let wl = SyntheticWorkload::new(TrafficPattern::UniformRandom, 0.30, 4, 4, cfg.warmup, 77);
    let mech = MSeecMechanism::for_net(&cfg);
    let mut sim = Sim::new(cfg, Box::new(wl), Box::new(mech));
    for _ in 0..60 {
        sim.run(1000);
        assert!(
            !watchdog::looks_stuck(&sim.net, watchdog::DEFAULT_STUCK_THRESHOLD),
            "network wedged at cycle {}",
            sim.net.cycle
        );
    }
    assert!(sim.net.stats.ejected_packets > 1000);
}

/// No FF packet ever misroutes: every delivered packet's hop count equals
/// the Manhattan distance between its endpoints (minimal traversal), which
/// we can check in aggregate because *all* routing here is minimal.
#[test]
fn seec_packets_route_minimally() {
    let cfg = adaptive_cfg(4, 2, 91);
    let cols = cfg.cols;
    let wl = SyntheticWorkload::new(TrafficPattern::BitComplement, 0.04, 4, 4, cfg.warmup, 91);
    let mech = SeecMechanism::for_net(&cfg);
    let mut sim = Sim::new(cfg, Box::new(wl), Box::new(mech));
    sim.run(20_000);
    let s = sim.finish();
    // Bit complement on 4x4: src (x,y) → (3-x, 3-y); hops = |3-2x|+|3-2y|.
    let mut expect = 0.0;
    let mut n = 0;
    for x in 0..cols {
        for y in 0..cols {
            expect += ((3 - 2 * x as i32).abs() + (3 - 2 * y as i32).abs()) as f64;
            n += 1;
        }
    }
    expect /= n as f64;
    let got = s.avg_hops();
    assert!(
        (got - expect).abs() < 0.05,
        "avg hops {got} vs minimal {expect} — something misrouted"
    );
}

#[test]
fn seec_and_mseec_are_deterministic() {
    let run = |mseec: bool, seed: u64| {
        let cfg = adaptive_cfg(4, 2, seed);
        let wl =
            SyntheticWorkload::new(TrafficPattern::UniformRandom, 0.15, 4, 4, cfg.warmup, seed);
        let mech: Box<dyn noc_sim::Mechanism> = if mseec {
            Box::new(MSeecMechanism::for_net(&cfg))
        } else {
            Box::new(SeecMechanism::for_net(&cfg))
        };
        let mut sim = Sim::new(cfg, Box::new(wl), mech);
        sim.run(15_000);
        let s = sim.finish();
        (s.ejected_packets, s.sum_total_latency, s.ff_packets)
    };
    assert_eq!(run(false, 5), run(false, 5));
    assert_eq!(run(true, 5), run(true, 5));
}
