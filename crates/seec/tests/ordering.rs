//! §3.7's point-to-point ordering remark, demonstrated end to end: Free
//! Flow (and adaptive routing generally) reorders same-source packets, and
//! the NIC-side reorder buffer restores order.

use noc_sim::stats::DeliveredPacket;
use noc_sim::workload::PacketFactory;
use noc_sim::{ReorderBuffer, Sim, Workload};
use noc_types::{
    BaseRouting, Cycle, MessageClass, NetConfig, NodeId, Packet, PacketId, RoutingAlgo,
};
use seec::SeecMechanism;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// A workload that streams sequenced packets from every node to a fixed
/// partner and records the arrival order of sequence numbers.
struct SequencedStreams {
    factory: PacketFactory,
    rate_period: Cycle,
    next_seq: Vec<u64>,
    /// `PacketId` → (stream seq).
    seq_of: HashMap<PacketId, u64>,
    /// Observed arrival sequence per source, raw and reordered.
    raw: Rc<RefCell<HashMap<NodeId, Vec<u64>>>>,
    fixed: Rc<RefCell<HashMap<NodeId, Vec<u64>>>>,
    rb: ReorderBuffer,
    nodes: u16,
}

impl Workload for SequencedStreams {
    fn generate(&mut self, cycle: Cycle, inject: &mut dyn FnMut(NodeId, Packet)) {
        if !cycle.is_multiple_of(self.rate_period) {
            return;
        }
        for s in 0..self.nodes {
            let src = NodeId(s);
            let dest = NodeId((s + 5) % self.nodes);
            let seq = self.next_seq[s as usize];
            self.next_seq[s as usize] += 1;
            let len = if seq.is_multiple_of(2) { 5 } else { 1 };
            let pkt = self
                .factory
                .make(src, dest, MessageClass(0), len, cycle, true);
            self.seq_of.insert(pkt.id, seq);
            inject(src, pkt);
        }
    }

    fn deliver(&mut self, _cycle: Cycle, p: &DeliveredPacket) -> bool {
        let seq = self.seq_of[&p.id];
        self.raw.borrow_mut().entry(p.src).or_default().push(seq);
        for (s, pkt) in self.rb.offer(p, seq) {
            self.fixed.borrow_mut().entry(pkt.src).or_default().push(s);
        }
        true
    }
}

#[test]
fn ff_reorders_streams_and_reorder_buffer_repairs_them() {
    let cfg = NetConfig::synth(4, 1)
        .with_routing(RoutingAlgo::Uniform(BaseRouting::AdaptiveMinimal))
        .with_seed(31);
    let raw = Rc::new(RefCell::new(HashMap::new()));
    let fixed = Rc::new(RefCell::new(HashMap::new()));
    let wl = SequencedStreams {
        factory: PacketFactory::new(),
        rate_period: 4, // heavy: 0.25 pkts/node/cycle
        next_seq: vec![0; 16],
        seq_of: HashMap::new(),
        raw: raw.clone(),
        fixed: fixed.clone(),
        rb: ReorderBuffer::new(),
        nodes: 16,
    };
    let mech = SeecMechanism::for_net(&cfg);
    let mut sim = Sim::new(cfg, Box::new(wl), Box::new(mech));
    sim.run(40_000);
    assert!(
        sim.net.stats.ff_packets > 0,
        "no FF rescues — test load too low"
    );

    // Raw delivery order is NOT always the send order (reordering exists).
    let raw = raw.borrow();
    let any_reordered = raw.values().any(|v| v.windows(2).any(|w| w[0] > w[1]));
    assert!(
        any_reordered,
        "expected at least one out-of-order delivery under FF + adaptive routing"
    );

    // The reorder buffer surfaces every stream strictly in order.
    let fixed = fixed.borrow();
    for (src, seqs) in fixed.iter() {
        for (i, &s) in seqs.iter().enumerate() {
            assert_eq!(s, i as u64, "{src}: reordered stream after repair");
        }
    }
    // And it surfaced plenty of packets overall.
    let total: usize = fixed.values().map(Vec::len).sum();
    assert!(total > 500, "only {total} packets surfaced");
}
