//! §3.11: SEEC over wormhole buffer management — VCs shallower than the
//! largest packet, flit-granularity credits, and streaming FF upgrades.

use noc_sim::{watchdog, NoMechanism, Sim};
use noc_traffic::{PacketMix, SyntheticWorkload, TrafficPattern};
use noc_types::{BaseRouting, NetConfig, RoutingAlgo};
use seec::{MSeecMechanism, SeecMechanism};

fn wormhole_cfg(k: u8, vcs: u8, depth: u8, seed: u64) -> NetConfig {
    NetConfig::synth(k, vcs)
        .with_wormhole(depth)
        .with_routing(RoutingAlgo::Uniform(BaseRouting::AdaptiveMinimal))
        .with_seed(seed)
}

#[test]
fn wormhole_network_delivers_multi_flit_packets() {
    // Depth-2 VCs, 5-flit packets: worms span routers.
    let cfg = wormhole_cfg(4, 2, 2, 11).with_routing(RoutingAlgo::Uniform(BaseRouting::Xy));
    let wl = SyntheticWorkload::new(TrafficPattern::UniformRandom, 0.05, 4, 4, cfg.warmup, 11);
    let mut sim = Sim::new(cfg, Box::new(wl), Box::new(NoMechanism));
    sim.run(20_000);
    let s = sim.finish();
    assert!(
        s.ejected_packets as f64 >= 0.95 * s.injected_packets as f64,
        "{} of {}",
        s.ejected_packets,
        s.injected_packets
    );
    // Latency must exceed the VCT equivalent only mildly at this load.
    assert!(s.avg_total_latency() < 40.0, "{}", s.avg_total_latency());
}

#[test]
fn wormhole_minimum_depth_one_works() {
    // The paper: "this approach will work even if the wormhole queue has the
    // minimum depth of 1-flit".
    let cfg = wormhole_cfg(4, 2, 1, 13).with_routing(RoutingAlgo::Uniform(BaseRouting::Xy));
    let wl = SyntheticWorkload::new(TrafficPattern::Transpose, 0.03, 4, 4, cfg.warmup, 13);
    let mut sim = Sim::new(cfg, Box::new(wl), Box::new(NoMechanism));
    sim.run(20_000);
    let s = sim.finish();
    assert!(s.ejected_packets as f64 >= 0.9 * s.injected_packets as f64);
}

#[test]
fn seec_streams_ff_packets_under_wormhole() {
    let cfg = wormhole_cfg(4, 1, 2, 17);
    let wl = SyntheticWorkload::new(TrafficPattern::UniformRandom, 0.25, 4, 4, cfg.warmup, 17);
    let mech = SeecMechanism::for_net(&cfg);
    let mut sim = Sim::new(cfg, Box::new(wl), Box::new(mech));
    for _ in 0..40 {
        sim.run(1000);
        assert!(
            !watchdog::looks_stuck(&sim.net, watchdog::DEFAULT_STUCK_THRESHOLD),
            "wormhole SEEC wedged at {}",
            sim.net.cycle
        );
    }
    let s = sim.finish();
    assert!(
        s.ejected_packets_all > 500,
        "only {}",
        s.ejected_packets_all
    );
    assert!(s.ff_packets > 0, "no streaming FF upgrades happened");
}

#[test]
fn seec_wormhole_rescues_long_packets_specifically() {
    // All packets are 5 flits with depth-1 VCs: every upgrade must stream.
    let cfg = wormhole_cfg(4, 1, 1, 19);
    let wl = SyntheticWorkload::new(TrafficPattern::UniformRandom, 0.15, 4, 4, cfg.warmup, 19)
        .with_mix(PacketMix {
            short_len: 5,
            long_len: 5,
            long_prob: 1.0,
        });
    let mech = SeecMechanism::for_net(&cfg);
    let mut sim = Sim::new(cfg, Box::new(wl), Box::new(mech));
    for _ in 0..40 {
        sim.run(1000);
        assert!(
            !watchdog::looks_stuck(&sim.net, watchdog::DEFAULT_STUCK_THRESHOLD),
            "wedged at {}",
            sim.net.cycle
        );
    }
    assert!(sim.net.stats.ff_packets > 0);
}

#[test]
fn mseec_works_under_wormhole_too() {
    let cfg = wormhole_cfg(4, 1, 2, 23);
    let wl = SyntheticWorkload::new(TrafficPattern::UniformRandom, 0.25, 4, 4, cfg.warmup, 23);
    let mech = MSeecMechanism::for_net(&cfg);
    let mut sim = Sim::new(cfg, Box::new(wl), Box::new(mech));
    for _ in 0..40 {
        sim.run(1000);
        assert!(
            !watchdog::looks_stuck(&sim.net, watchdog::DEFAULT_STUCK_THRESHOLD),
            "mSEEC wormhole wedged at {}",
            sim.net.cycle
        );
    }
    assert!(sim.net.stats.ff_packets > 0);
}

/// Without SEEC, the same wormhole configuration deadlocks (control).
#[test]
fn wormhole_without_mechanism_deadlocks() {
    let cfg = wormhole_cfg(4, 1, 2, 17);
    let wl = SyntheticWorkload::new(TrafficPattern::UniformRandom, 0.25, 4, 4, cfg.warmup, 17);
    let mut sim = Sim::new(cfg, Box::new(wl), Box::new(NoMechanism));
    let mut wedged = false;
    for _ in 0..40 {
        sim.run(1000);
        if watchdog::looks_stuck(&sim.net, watchdog::DEFAULT_STUCK_THRESHOLD) {
            wedged = true;
            break;
        }
    }
    assert!(wedged, "expected wormhole adaptive routing to deadlock");
}
