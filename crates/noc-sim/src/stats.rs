//! Simulation statistics.
//!
//! Only packets injected after warm-up are "measured" (the paper warms the
//! simulator for 1000 cycles, §4.1). Event counters (link traversals, sideband
//! activity) feed the energy model in `noc-power`.

use noc_types::{Cycle, Flit, MessageClass, NodeId, PacketId};

/// Everything known about a packet at the moment its tail flit is consumed at
/// the destination NIC. Passed to [`crate::workload::Workload::deliver`] and
/// folded into [`Stats`].
#[derive(Clone, Copy, Debug)]
pub struct DeliveredPacket {
    pub id: PacketId,
    pub src: NodeId,
    pub dest: NodeId,
    pub class: MessageClass,
    pub len_flits: u8,
    /// Cycle the packet entered the source NIC queue.
    pub birth: Cycle,
    /// Cycle the head flit entered the network.
    pub inject: Cycle,
    /// Cycle the tail flit was consumed at the destination.
    pub eject: Cycle,
    /// Link traversals of the head flit (counts misroutes).
    pub hops: u8,
    /// Cycle the packet was upgraded to Free Flow, if it was.
    pub ff_upgrade: Option<Cycle>,
    pub measured: bool,
}

impl DeliveredPacket {
    /// Total latency: NIC queue entry to consumption.
    pub fn total_latency(&self) -> u64 {
        self.eject - self.birth
    }

    /// Network latency: injection to consumption.
    pub fn network_latency(&self) -> u64 {
        self.eject - self.inject
    }

    /// Time spent in the source NIC queue.
    pub fn queue_latency(&self) -> u64 {
        self.inject - self.birth
    }
}

/// Fixed window length (cycles) for peak-activity tracking (Fig 11's "peak"
/// link energy is the busiest window).
pub const ACTIVITY_WINDOW: u64 = 1000;

/// One epoch of a dynamic fault schedule as the engine executed it: the
/// event that opened the epoch and what reconfiguration found. Appended to
/// [`Stats::epochs`] by the chaos layer so a run's fault timeline is fully
/// reconstructable from its statistics.
#[derive(Clone, Debug)]
pub struct EpochRecord {
    /// Cycle the schedule event was applied.
    pub cycle: Cycle,
    /// Canonical event rendering (`at:code:node[:dir]`, matching
    /// `FaultSchedule::canonical`).
    pub action: String,
    /// Whether every live source/destination pair remained routable after
    /// the rebuild (false ⇒ the stranded-packet purge was armed).
    pub routable: bool,
    /// Whether the west-first escape layer survived intact (always true for
    /// schemes without escape VCs).
    pub escape_ok: bool,
    /// Flits purged from severed routes while this epoch was the newest one
    /// (recovered by end-to-end retransmission or counted abandoned).
    pub purged_flits: u64,
    /// Cycle a kill's drain-cut actually severed the wiring (in-flight
    /// traffic finished first); `None` for heals and for cuts still pending
    /// at run end.
    pub cut_done_at: Option<Cycle>,
    /// Degraded-CDG certifier verdict for this epoch's topology, filled in
    /// by harnesses that re-certify online (`noc-verify` cannot be called
    /// from the engine — it depends on this crate).
    pub recert: Option<String>,
}

/// Aggregate statistics for one simulation run.
#[derive(Clone, Debug, Default)]
pub struct Stats {
    /// Measured packets that entered NIC injection queues.
    pub generated_packets: u64,
    /// Measured packets fully injected into the network.
    pub injected_packets: u64,
    /// Measured flits injected.
    pub injected_flits: u64,
    /// Measured packets consumed at their destination.
    pub ejected_packets: u64,
    /// Measured flits consumed.
    pub ejected_flits: u64,
    /// *All* packets consumed after warm-up, measured or not. Past
    /// saturation, source queues grow without bound and packets born after
    /// warm-up may never inject; accepted throughput must therefore count
    /// every post-warm-up delivery (as Garnet does), while latency statistics
    /// stay restricted to measured packets.
    pub ejected_packets_all: u64,
    /// All flits consumed after warm-up.
    pub ejected_flits_all: u64,

    /// Sum over ejected measured packets of total latency.
    pub sum_total_latency: u64,
    /// Sum of network (inject→eject) latency.
    pub sum_network_latency: u64,
    /// Sum of NIC queueing latency.
    pub sum_queue_latency: u64,
    /// Largest total latency seen (Fig 15's tail metric).
    pub max_total_latency: u64,
    /// Sum of head-flit hop counts.
    pub sum_hops: u64,

    /// Measured packets that were upgraded to Free Flow at some point.
    pub ff_packets: u64,
    /// All post-warm-up deliveries that used Free Flow (basis for Fig 10a's
    /// fraction — measured packets starve past saturation).
    pub ff_packets_all: u64,
    /// Of FF packets: cycles spent before the upgrade (buffered traversal).
    pub sum_ff_buffered: u64,
    /// Of FF packets: cycles spent after the upgrade (bufferless traversal).
    pub sum_ff_bufferless: u64,
    /// Of never-upgraded packets: total network latency.
    pub sum_regular_latency: u64,

    /// Data-link flit traversals (all flits, measured or not, incl. FF and
    /// misroutes). Feeds the energy model.
    pub link_flit_hops: u64,
    /// Buffer writes (flit enqueued into a router VC).
    pub buffer_writes: u64,
    /// Buffer reads (flit dequeued from a router VC).
    pub buffer_reads: u64,
    /// Seeker side-band hops (16-bit link activity).
    pub sideband_hops: u64,
    /// Lookahead side-band hops (10-bit link activity).
    pub lookahead_hops: u64,
    /// SPIN probe hops on the data links.
    pub probe_hops: u64,
    /// Flits that traversed a token-held hop under TFC (buffer bypasses;
    /// credited by the energy model).
    pub tfc_bypasses: u64,
    /// Hops that moved a packet away from (or not toward) its destination:
    /// deflections, swaps, drains.
    pub misroute_hops: u64,
    /// Packets forcibly relocated by a subactive/reactive event (swap, drain,
    /// spin) — event counter for diagnostics.
    pub forced_moves: u64,
    /// Deadlock-recovery events triggered (SPIN spins, timeouts fired).
    pub recovery_events: u64,

    /// Victim packets drained through the serialized recovery channel by the
    /// runtime recovery layer (`noc-sim::recovery`). Distinct from
    /// [`Stats::recovery_events`], which counts *detections* (SPIN probe
    /// launches, link-layer timeouts); a drain is a detection converted into
    /// forward progress.
    pub drain_recoveries: u64,
    /// Recovery-channel link hops taken by drained victims (head-flit hops;
    /// the recovery cost axis of `recovery_sweep`).
    pub recovery_victim_hops: u64,
    /// Cycles victims spent in transit through the recovery channel
    /// (serialized one-flit-deep escape path; the latency cost of recovery).
    pub recovery_cycles_lost: u64,
    /// Whole-packet copies re-injected by the NIC end-to-end retransmission
    /// layer after a delivery timeout.
    pub e2e_retransmits: u64,
    /// Duplicate deliveries suppressed at ejection (an original and its
    /// end-to-end retransmission copy both arrived; exactly one was
    /// delivered).
    pub e2e_duplicates_dropped: u64,
    /// Packets the end-to-end layer gave up on after exhausting its retry
    /// budget.
    pub e2e_abandoned: u64,

    /// Link traversals the fault layer corrupted (detectable checksum
    /// damage; each corruption forces at least one retransmission).
    pub corrupted_flits: u64,
    /// Flit re-sends performed by the link-layer retransmission protocol
    /// (go-back-N resends after a nack or timeout). The retransmission
    /// overhead of a run is `retransmitted_flits / link_flit_hops`.
    pub retransmitted_flits: u64,
    /// Ack events on the link-layer control wires.
    pub link_acks: u64,
    /// Nack events on the link-layer control wires.
    pub link_nacks: u64,

    /// Fault-schedule events applied (each opens a reconfiguration epoch).
    pub chaos_epochs: u64,
    /// Links killed / healed by the schedule.
    pub chaos_links_killed: u64,
    pub chaos_links_healed: u64,
    /// Routers killed / healed by the schedule.
    pub chaos_routers_killed: u64,
    pub chaos_routers_healed: u64,
    /// Flits purged off severed routes by epoch reconfiguration (stranded
    /// packets with no surviving path, and traffic marooned at dead
    /// routers). Purged flits leave the network without being consumed;
    /// flit conservation accounts for them separately, and the end-to-end
    /// retransmission layer re-sends their packets (or abandons them).
    pub chaos_purged_flits: u64,
    /// The epoch trace: one record per applied schedule event.
    pub epochs: Vec<EpochRecord>,

    /// Per-directed-link traversal counts, indexed `node * NUM_PORTS + port`
    /// (filled lazily; see [`Stats::count_link_hop_at`]). Feeds utilization
    /// heat maps and per-link hotspot analysis.
    pub link_use: Vec<u64>,
    /// Peak link activity in any [`ACTIVITY_WINDOW`]: data + probe hops.
    pub peak_window_link_hops: u64,
    window_start: Cycle,
    window_hops: u64,

    /// Cycle measurement began (end of warm-up).
    pub measure_start: Cycle,
    /// Cycle the run finished.
    pub end_cycle: Cycle,

    /// Per-message-class total-latency samples of measured deliveries
    /// (grown lazily per class; sorted by [`Stats::finish`] so the
    /// percentile accessors are exact, not streaming approximations).
    latency_samples: Vec<Vec<u32>>,
}

impl Stats {
    /// Records a data-link flit traversal at `cycle` (also drives the peak
    /// window tracker).
    pub fn count_link_hop(&mut self, cycle: Cycle) {
        self.link_flit_hops += 1;
        self.bump_window(cycle, 1);
    }

    /// Like [`Self::count_link_hop`], additionally attributing the traversal
    /// to a specific directed link for utilization maps.
    pub fn count_link_hop_at(&mut self, cycle: Cycle, node: NodeId, port: usize) {
        self.count_link_hop(cycle);
        let i = node.idx() * noc_types::NUM_PORTS + port;
        if i >= self.link_use.len() {
            self.link_use.resize(i + 1, 0);
        }
        self.link_use[i] += 1;
    }

    /// Traversal count of the directed link leaving `node` through `port`.
    pub fn link_use_at(&self, node: NodeId, port: usize) -> u64 {
        self.link_use
            .get(node.idx() * noc_types::NUM_PORTS + port)
            .copied()
            .unwrap_or(0)
    }

    /// Records a SPIN probe hop (probes ride the data links).
    pub fn count_probe_hop(&mut self, cycle: Cycle) {
        self.probe_hops += 1;
        self.bump_window(cycle, 1);
    }

    fn bump_window(&mut self, cycle: Cycle, n: u64) {
        if cycle >= self.window_start + ACTIVITY_WINDOW {
            self.peak_window_link_hops = self.peak_window_link_hops.max(self.window_hops);
            // Skip forward to the window containing `cycle`.
            let w = (cycle - self.window_start) / ACTIVITY_WINDOW;
            self.window_start += w * ACTIVITY_WINDOW;
            self.window_hops = 0;
        }
        self.window_hops += n;
    }

    /// Folds a delivered packet into the aggregates.
    pub fn record_delivery(&mut self, p: &DeliveredPacket) {
        if p.eject >= self.measure_start {
            self.ejected_packets_all += 1;
            self.ejected_flits_all += p.len_flits as u64;
            if p.ff_upgrade.is_some() {
                self.ff_packets_all += 1;
            }
        }
        if !p.measured {
            return;
        }
        self.ejected_packets += 1;
        self.ejected_flits += p.len_flits as u64;
        let total = p.total_latency();
        self.sum_total_latency += total;
        self.sum_network_latency += p.network_latency();
        self.sum_queue_latency += p.queue_latency();
        self.max_total_latency = self.max_total_latency.max(total);
        let cls = p.class.idx();
        if cls >= self.latency_samples.len() {
            self.latency_samples.resize(cls + 1, Vec::new());
        }
        self.latency_samples[cls].push(u32::try_from(total).unwrap_or(u32::MAX));
        self.sum_hops += p.hops as u64;
        if let Some(up) = p.ff_upgrade {
            self.ff_packets += 1;
            self.sum_ff_buffered += up.saturating_sub(p.inject);
            self.sum_ff_bufferless += p.eject.saturating_sub(up);
        } else {
            self.sum_regular_latency += p.network_latency();
        }
    }

    /// Records injection of a measured flit.
    pub fn record_injected_flit(&mut self, f: &Flit) {
        if f.measured {
            self.injected_flits += 1;
            if f.kind.is_tail() {
                self.injected_packets += 1;
            }
        }
    }

    /// Mean total packet latency (queue + network), the paper's
    /// "average packet latency".
    pub fn avg_total_latency(&self) -> f64 {
        ratio(self.sum_total_latency, self.ejected_packets)
    }

    /// Mean network latency (inject → eject).
    pub fn avg_network_latency(&self) -> f64 {
        ratio(self.sum_network_latency, self.ejected_packets)
    }

    /// Mean hops per packet.
    pub fn avg_hops(&self) -> f64 {
        ratio(self.sum_hops, self.ejected_packets)
    }

    /// Accepted throughput in packets/node/cycle over the measurement phase
    /// (counts every post-warm-up delivery; see [`Self::ejected_packets_all`]).
    pub fn throughput(&self, nodes: usize) -> f64 {
        let cycles = self.end_cycle.saturating_sub(self.measure_start);
        if cycles == 0 || nodes == 0 {
            return 0.0;
        }
        self.ejected_packets_all as f64 / (nodes as f64 * cycles as f64)
    }

    /// Fraction of received packets that used Free Flow (Fig 10a), over all
    /// post-warm-up deliveries.
    pub fn ff_fraction(&self) -> f64 {
        ratio(self.ff_packets_all, self.ejected_packets_all)
    }

    /// Mean reception rate of *flits* per node per cycle.
    pub fn flit_throughput(&self, nodes: usize) -> f64 {
        let cycles = self.end_cycle.saturating_sub(self.measure_start);
        if cycles == 0 || nodes == 0 {
            return 0.0;
        }
        self.ejected_flits_all as f64 / (nodes as f64 * cycles as f64)
    }

    /// Finalizes the peak window tracker at the end of a run and sorts the
    /// latency samples so the percentile accessors are exact.
    pub fn finish(&mut self, end: Cycle) {
        self.end_cycle = end;
        self.peak_window_link_hops = self.peak_window_link_hops.max(self.window_hops);
        for samples in &mut self.latency_samples {
            samples.sort_unstable();
        }
    }

    /// Nearest-rank `q`-th percentile (`0 < q <= 100`) of total latency over
    /// measured deliveries of `class`; `None` when the class saw no measured
    /// delivery. Exact once [`Stats::finish`] has sorted the samples.
    pub fn percentile_latency(&self, class: MessageClass, q: f64) -> Option<u64> {
        let s = self.latency_samples.get(class.idx())?;
        percentile_sorted(s, q)
    }

    /// Nearest-rank `q`-th percentile of total latency over *all* measured
    /// deliveries, merged across classes.
    pub fn percentile_latency_all(&self, q: f64) -> Option<u64> {
        let mut all: Vec<u32> = self
            .latency_samples
            .iter()
            .flat_map(|s| s.iter().copied())
            .collect();
        all.sort_unstable();
        percentile_sorted(&all, q)
    }

    /// Median total latency over all measured deliveries; `None` when the
    /// run delivered nothing measured (empty sample sets never panic —
    /// nearest-rank indexing is guarded end to end).
    pub fn p50(&self) -> Option<u64> {
        self.percentile_latency_all(50.0)
    }

    /// 95th-percentile total latency; `None` on an empty sample set.
    pub fn p95(&self) -> Option<u64> {
        self.percentile_latency_all(95.0)
    }

    /// 99th-percentile total latency; `None` on an empty sample set.
    pub fn p99(&self) -> Option<u64> {
        self.percentile_latency_all(99.0)
    }

    /// Message classes that recorded at least one measured delivery.
    pub fn classes_with_latency(&self) -> impl Iterator<Item = MessageClass> + '_ {
        self.latency_samples
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.is_empty())
            .map(|(c, _)| MessageClass(c as u8))
    }
}

/// Nearest-rank percentile of an ascending-sorted sample set.
fn percentile_sorted(sorted: &[u32], q: f64) -> Option<u64> {
    if sorted.is_empty() || !(0.0..=100.0).contains(&q) {
        return None;
    }
    let rank = ((q / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(u64::from(sorted[rank - 1]))
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_types::MessageClass;

    fn pkt(birth: Cycle, inject: Cycle, eject: Cycle, ff: Option<Cycle>) -> DeliveredPacket {
        DeliveredPacket {
            id: PacketId(0),
            src: NodeId(0),
            dest: NodeId(1),
            class: MessageClass(0),
            len_flits: 5,
            birth,
            inject,
            eject,
            hops: 3,
            ff_upgrade: ff,
            measured: true,
        }
    }

    #[test]
    fn latency_decomposition() {
        let p = pkt(10, 14, 30, None);
        assert_eq!(p.total_latency(), 20);
        assert_eq!(p.queue_latency(), 4);
        assert_eq!(p.network_latency(), 16);
    }

    #[test]
    fn delivery_aggregation() {
        let mut s = Stats::default();
        s.record_delivery(&pkt(0, 2, 12, None));
        s.record_delivery(&pkt(0, 2, 22, Some(10)));
        assert_eq!(s.ejected_packets, 2);
        assert_eq!(s.avg_total_latency(), 17.0);
        assert_eq!(s.max_total_latency, 22);
        assert_eq!(s.ff_packets, 1);
        assert_eq!(s.sum_ff_buffered, 8); // inject 2 → upgrade 10
        assert_eq!(s.sum_ff_bufferless, 12); // upgrade 10 → eject 22
        assert_eq!(s.sum_regular_latency, 10);
    }

    #[test]
    fn unmeasured_packets_are_ignored() {
        let mut s = Stats::default();
        let mut p = pkt(0, 1, 5, None);
        p.measured = false;
        s.record_delivery(&p);
        assert_eq!(s.ejected_packets, 0);
    }

    #[test]
    fn peak_window_tracks_busiest_window() {
        let mut s = Stats::default();
        for c in 0..10 {
            s.count_link_hop(c);
        }
        for c in ACTIVITY_WINDOW..ACTIVITY_WINDOW + 500 {
            s.count_link_hop(c);
        }
        s.finish(2 * ACTIVITY_WINDOW);
        assert_eq!(s.peak_window_link_hops, 500);
        assert_eq!(s.link_flit_hops, 510);
    }

    #[test]
    fn percentiles_are_nearest_rank_per_class() {
        let mut s = Stats::default();
        // Class 0: total latencies 10, 20, ..., 100.
        for k in 1..=10u64 {
            s.record_delivery(&pkt(0, 2, 10 * k, None));
        }
        // Class 2: a single delivery of latency 7.
        let mut p = pkt(0, 2, 7, None);
        p.class = MessageClass(2);
        s.record_delivery(&p);
        s.finish(1000);
        let c0 = MessageClass(0);
        assert_eq!(s.percentile_latency(c0, 50.0), Some(50));
        assert_eq!(s.percentile_latency(c0, 95.0), Some(100));
        assert_eq!(s.percentile_latency(c0, 99.0), Some(100));
        assert_eq!(s.percentile_latency(c0, 100.0), Some(100));
        // Out-of-range quantiles and empty classes return None.
        assert_eq!(s.percentile_latency(c0, 0.0), Some(10));
        assert_eq!(s.percentile_latency(c0, 101.0), None);
        assert_eq!(s.percentile_latency(MessageClass(1), 50.0), None);
        assert_eq!(s.percentile_latency(MessageClass(9), 50.0), None);
        // Single-sample class: every quantile is that sample.
        assert_eq!(s.percentile_latency(MessageClass(2), 50.0), Some(7));
        assert_eq!(s.percentile_latency(MessageClass(2), 99.0), Some(7));
        // Merged percentile covers both classes (7 is the new minimum).
        assert_eq!(s.percentile_latency_all(1.0), Some(7));
        assert_eq!(s.percentile_latency_all(99.0), Some(100));
        let classes: Vec<u8> = s.classes_with_latency().map(|c| c.0).collect();
        assert_eq!(classes, vec![0, 2]);
    }

    #[test]
    fn percentile_accessors_survive_empty_sample_sets() {
        // A fresh Stats has no samples at all: every accessor must return
        // None instead of panicking on a nearest-rank index underflow.
        let mut s = Stats::default();
        assert_eq!(s.p50(), None);
        assert_eq!(s.p95(), None);
        assert_eq!(s.p99(), None);
        assert_eq!(s.percentile_latency_all(50.0), None);
        // Still None after finish() (sorting empty sets is a no-op), and
        // still None when only unmeasured traffic flowed.
        s.finish(100);
        assert_eq!(s.p99(), None);
        let mut p = pkt(0, 2, 40, None);
        p.measured = false;
        s.record_delivery(&p);
        assert_eq!(s.p50(), None);
        // One measured delivery: every percentile is that sample.
        s.record_delivery(&pkt(0, 2, 40, None));
        s.finish(100);
        assert_eq!(s.p50(), Some(40));
        assert_eq!(s.p95(), Some(40));
        assert_eq!(s.p99(), Some(40));
    }

    #[test]
    fn percentiles_ignore_unmeasured_deliveries() {
        let mut s = Stats::default();
        let mut p = pkt(0, 2, 500, None);
        p.measured = false;
        s.record_delivery(&p);
        s.finish(1000);
        assert_eq!(s.percentile_latency(MessageClass(0), 50.0), None);
        assert_eq!(s.classes_with_latency().count(), 0);
    }

    #[test]
    fn throughput_normalizes_by_nodes_and_cycles() {
        let mut s = Stats {
            measure_start: 1000,
            ejected_packets_all: 640,
            ..Stats::default()
        };
        s.finish(2000);
        assert!((s.throughput(64) - 0.01).abs() < 1e-12);
    }
}
