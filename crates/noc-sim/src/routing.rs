//! Minimal routing functions on the mesh.
//!
//! These are pure: they compute the set of *legal* next-hop directions for a
//! routing algorithm; the router combines them with downstream credit state
//! and the RNG to pick one (adaptive = weighted by free VCs, oblivious =
//! uniform random, deterministic = single candidate).

use noc_types::{BaseRouting, Coord, Direction};

/// A small fixed-capacity set of candidate directions (a minimal route on a
/// mesh never has more than two productive directions, but west-first can be
/// given non-minimal candidates by forced moves, so capacity is four).
#[derive(Clone, Copy, Debug)]
pub struct Candidates {
    dirs: [Direction; 4],
    len: u8,
}

impl Candidates {
    pub const EMPTY: Candidates = Candidates {
        dirs: [Direction::Local; 4],
        len: 0,
    };

    pub fn push(&mut self, d: Direction) {
        debug_assert!((self.len as usize) < 4);
        self.dirs[self.len as usize] = d;
        self.len += 1;
    }

    pub fn len(&self) -> usize {
        self.len as usize
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn contains(&self, d: Direction) -> bool {
        self.as_slice().contains(&d)
    }

    pub fn as_slice(&self) -> &[Direction] {
        &self.dirs[..self.len as usize]
    }
}

impl FromIterator<Direction> for Candidates {
    fn from_iter<T: IntoIterator<Item = Direction>>(iter: T) -> Self {
        let mut c = Candidates::EMPTY;
        for d in iter {
            c.push(d);
        }
        c
    }
}

/// The productive (distance-reducing) directions from `from` toward `to`.
/// Empty when `from == to` (the packet ejects locally).
pub fn productive(from: Coord, to: Coord) -> Candidates {
    let mut c = Candidates::EMPTY;
    if to.x > from.x {
        c.push(Direction::East);
    } else if to.x < from.x {
        c.push(Direction::West);
    }
    if to.y > from.y {
        c.push(Direction::South);
    } else if to.y < from.y {
        c.push(Direction::North);
    }
    c
}

/// Dimension-ordered XY: all X hops, then all Y hops. Deterministic and
/// deadlock-free.
pub fn xy(from: Coord, to: Coord) -> Candidates {
    let mut c = Candidates::EMPTY;
    if to.x > from.x {
        c.push(Direction::East);
    } else if to.x < from.x {
        c.push(Direction::West);
    } else if to.y > from.y {
        c.push(Direction::South);
    } else if to.y < from.y {
        c.push(Direction::North);
    }
    c
}

/// West-first turn model: if the destination lies to the west, the packet
/// must route west first (single candidate); otherwise it may route
/// adaptively among the remaining productive directions (E/N/S). Deadlock-
/// free: no turn into West ever occurs after a non-West hop.
pub fn west_first(from: Coord, to: Coord) -> Candidates {
    if to.x < from.x {
        let mut c = Candidates::EMPTY;
        c.push(Direction::West);
        c
    } else {
        productive(from, to)
    }
}

/// Candidate directions for `algo` from `from` toward `to`. For the two
/// random algorithms this is the full productive set; the adaptive/oblivious
/// distinction is in how the router *chooses* among them.
pub fn candidates(algo: BaseRouting, from: Coord, to: Coord) -> Candidates {
    match algo {
        BaseRouting::Xy => xy(from, to),
        BaseRouting::WestFirst => west_first(from, to),
        BaseRouting::ObliviousMinimal | BaseRouting::AdaptiveMinimal => productive(from, to),
    }
}

/// The full minimal path from `from` to `to` in XY order, excluding `from`,
/// including `to`. Used for Free-Flow path construction and tests.
pub fn xy_path(from: Coord, to: Coord) -> Vec<Coord> {
    let mut path = Vec::with_capacity(from.manhattan(to) as usize);
    let mut cur = from;
    while cur.x != to.x {
        cur.x = if to.x > cur.x { cur.x + 1 } else { cur.x - 1 };
        path.push(cur);
    }
    while cur.y != to.y {
        cur.y = if to.y > cur.y { cur.y + 1 } else { cur.y - 1 };
        path.push(cur);
    }
    path
}

/// The direction of the single hop from `a` to adjacent `b`, or `None` when
/// the coordinates are not mesh neighbours.
pub fn try_hop_dir(a: Coord, b: Coord) -> Option<Direction> {
    if b.x == a.x + 1 && b.y == a.y {
        Some(Direction::East)
    } else if a.x == b.x + 1 && b.y == a.y {
        Some(Direction::West)
    } else if b.y == a.y + 1 && b.x == a.x {
        Some(Direction::South)
    } else if a.y == b.y + 1 && b.x == a.x {
        Some(Direction::North)
    } else {
        None
    }
}

/// The direction of the single hop from `a` to adjacent `b`.
///
/// # Panics
/// Panics if `a` and `b` are not mesh neighbours; use [`try_hop_dir`] when
/// adjacency is not already guaranteed.
pub fn hop_dir(a: Coord, b: Coord) -> Direction {
    match try_hop_dir(a, b) {
        Some(d) => d,
        None => panic!("{a} and {b} are not neighbours"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const fn c(x: u8, y: u8) -> Coord {
        Coord::new(x, y)
    }

    #[test]
    fn productive_covers_both_dims() {
        let p = productive(c(1, 1), c(3, 0));
        assert_eq!(p.len(), 2);
        assert!(p.contains(Direction::East));
        assert!(p.contains(Direction::North));
        assert!(productive(c(2, 2), c(2, 2)).is_empty());
    }

    #[test]
    fn xy_is_deterministic_x_then_y() {
        assert_eq!(xy(c(0, 0), c(2, 2)).as_slice(), &[Direction::East]);
        assert_eq!(xy(c(2, 0), c(2, 2)).as_slice(), &[Direction::South]);
        assert_eq!(xy(c(3, 3), c(1, 1)).as_slice(), &[Direction::West]);
        assert!(xy(c(1, 1), c(1, 1)).is_empty());
    }

    #[test]
    fn west_first_forces_west() {
        assert_eq!(west_first(c(3, 1), c(0, 3)).as_slice(), &[Direction::West]);
        let adaptive = west_first(c(0, 0), c(2, 3));
        assert_eq!(adaptive.len(), 2);
        assert!(adaptive.contains(Direction::East));
        assert!(adaptive.contains(Direction::South));
    }

    #[test]
    fn west_first_never_turns_into_west_late() {
        // Walk any west-first route greedily; once a non-West hop is taken,
        // West must never reappear as a candidate.
        for sx in 0..4u8 {
            for sy in 0..4u8 {
                for dx in 0..4u8 {
                    for dy in 0..4u8 {
                        let (mut cur, dst) = (c(sx, sy), c(dx, dy));
                        let mut gone_nonwest = false;
                        while cur != dst {
                            let cand = west_first(cur, dst);
                            assert!(!cand.is_empty());
                            if gone_nonwest {
                                assert!(!cand.contains(Direction::West));
                            }
                            let d = cand.as_slice()[0];
                            if d != Direction::West {
                                gone_nonwest = true;
                            }
                            cur = d.step(cur, 4, 4).unwrap();
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn xy_path_reaches_destination_minimally() {
        let from = c(1, 3);
        let to = c(3, 0);
        let path = xy_path(from, to);
        assert_eq!(path.len() as u32, from.manhattan(to));
        assert_eq!(*path.last().unwrap(), to);
        // consecutive entries are neighbours
        let mut prev = from;
        for &p in &path {
            assert_eq!(prev.manhattan(p), 1);
            prev = p;
        }
    }

    #[test]
    fn hop_dir_matches_step() {
        let a = c(2, 2);
        for d in Direction::CARDINAL {
            let b = d.step(a, 5, 5).unwrap();
            assert_eq!(hop_dir(a, b), d);
        }
    }
}
