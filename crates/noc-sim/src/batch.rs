//! Lockstep batched execution: N same-shape simulations through one shared
//! per-cycle skeleton.
//!
//! Experiment sweeps run many design points that differ only in scheme,
//! offered load and seed — the mesh dimensions, VC partitioning and buffer
//! depths (everything that sizes the engine's struct-of-arrays core) are
//! identical. [`LockstepBatch`] exploits that: it drives N such lanes
//! cycle-by-cycle *together*, so the per-cycle loop machinery is shared and
//! the identically-shaped credit/occupancy arrays of consecutive lanes walk
//! the cache in a regular pattern, instead of each run paying the full
//! skeleton cost in isolation.
//!
//! Batched lanes run with idle-cycle skipping enabled (see
//! [`Sim::skip_target`]): whenever a lane is provably inert its clock jumps
//! to its next event horizon, and the batch's shared clock — the minimum
//! over the lanes — drags the busy lanes forward at full rate while quiet
//! lanes wait at their horizon for free. Each lane still executes *exactly*
//! the cycle/skip sequence the scalar `Sim::run` would under the same flag,
//! so batched results are byte-identical to scalar runs (the
//! `idle_skip_invisible` property test covers the skip-on/off side, the
//! `batch_differential` test in `noc-experiments` the batched/scalar side).
//!
//! What may be batched together is governed by [`ShapeKey`]: the structural
//! fields of [`NetConfig`] that determine array sizes and per-cycle phase
//! structure. Scheme, routing, rates, seeds, fault scenarios and recovery
//! arming may all differ freely between lanes — they live in lane-local
//! state.

use crate::network::Sim;
use crate::stats::Stats;
use noc_types::fault::fnv1a;
use noc_types::{BufferOrg, Cycle, NetConfig};

/// The structural shape of a network configuration: every field that sizes
/// the engine's flat arrays or changes the per-cycle skeleton. Two configs
/// with equal shape keys may share a [`LockstepBatch`]; everything *not*
/// captured here (routing algorithm, seed, warmup, fault and recovery
/// scenarios) is lane-local and free to differ.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ShapeKey {
    pub cols: u8,
    pub rows: u8,
    pub vnets: u8,
    pub classes: u8,
    pub vcs_per_vnet: u8,
    pub vc_depth: u8,
    pub buffer_org: BufferOrg,
    pub router_latency: u8,
    pub ejection_vcs_per_class: u8,
}

impl ShapeKey {
    /// Extracts the shape of `cfg`.
    pub fn of(cfg: &NetConfig) -> ShapeKey {
        ShapeKey {
            cols: cfg.cols,
            rows: cfg.rows,
            vnets: cfg.vnets,
            classes: cfg.classes,
            vcs_per_vnet: cfg.vcs_per_vnet,
            vc_depth: cfg.vc_depth,
            buffer_org: cfg.buffer_org,
            router_latency: cfg.router_latency,
            ejection_vcs_per_class: cfg.ejection_vcs_per_class,
        }
    }

    /// Stable 64-bit digest — the batch-compatibility grouping key used by
    /// the sweep runner (equal digests ⇔ equal shapes, up to FNV collision).
    pub fn digest(&self) -> u64 {
        fnv1a(format!("{self:?}").as_bytes())
    }
}

/// N same-shape simulations advanced in lockstep. See the module docs.
pub struct LockstepBatch {
    lanes: Vec<Sim>,
    key: ShapeKey,
}

impl LockstepBatch {
    /// Wraps `lanes` into a batch and enables idle-cycle skipping on every
    /// lane (the batched executor's default; proven invisible by the
    /// skip-invariance property test).
    ///
    /// # Panics
    /// Panics when `lanes` is empty or the lanes' configurations disagree
    /// on [`ShapeKey`] — mixing shapes would defeat the shared skeleton and
    /// is always a caller bug.
    pub fn new(mut lanes: Vec<Sim>) -> LockstepBatch {
        assert!(!lanes.is_empty(), "a batch needs at least one lane");
        let key = ShapeKey::of(&lanes[0].net.cfg);
        for (i, lane) in lanes.iter().enumerate() {
            let k = ShapeKey::of(&lane.net.cfg);
            assert_eq!(k, key, "lane {i} shape {k:?} incompatible with {key:?}");
        }
        for lane in &mut lanes {
            lane.idle_skip = true;
        }
        LockstepBatch { lanes, key }
    }

    /// The batch's shared shape.
    pub fn key(&self) -> ShapeKey {
        self.key
    }

    /// Number of lanes.
    pub fn width(&self) -> usize {
        self.lanes.len()
    }

    pub fn lanes(&self) -> &[Sim] {
        &self.lanes
    }

    pub fn lanes_mut(&mut self) -> &mut [Sim] {
        &mut self.lanes
    }

    /// Unwraps the batch back into its lanes.
    pub fn into_lanes(self) -> Vec<Sim> {
        self.lanes
    }

    /// Runs every lane for `cycles` cycles (from each lane's own current
    /// cycle), in lockstep on a shared clock.
    ///
    /// Each round advances exactly the lanes sitting at the batch's
    /// earliest in-progress cycle: a lane first gets its skip chance, then
    /// steps if the skip did not move it. Per lane this reproduces the
    /// scalar `Sim::run` sequence verbatim — the interleaving *between*
    /// lanes is the only thing lockstep changes, and lanes share no state.
    /// Skipped lanes park at their jump target until the shared clock
    /// catches up, which costs nothing: parked lanes are filtered by a
    /// cycle compare, not stepped.
    pub fn run(&mut self, cycles: u64) {
        let ends: Vec<Cycle> = self.lanes.iter().map(|l| l.net.cycle + cycles).collect();
        loop {
            let now = self
                .lanes
                .iter()
                .zip(&ends)
                .filter(|(l, &end)| l.net.cycle < end)
                .map(|(l, _)| l.net.cycle)
                .min();
            let Some(now) = now else {
                break;
            };
            for (lane, &end) in self.lanes.iter_mut().zip(&ends) {
                if lane.net.cycle != now || now >= end {
                    continue;
                }
                lane.maybe_skip(end);
                if lane.net.cycle == now {
                    lane.step();
                }
            }
        }
    }

    /// Finalizes every lane and returns the statistics, in lane order.
    pub fn finish(&mut self) -> Vec<Stats> {
        self.lanes.iter_mut().map(|l| l.finish().clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::IdleWorkload;
    use crate::NoMechanism;
    use noc_types::{MessageClass, NodeId, Packet, PacketId};

    fn packet(id: u64, src: u16, dest: u16, len: u8) -> Packet {
        Packet {
            id: PacketId(id),
            src: NodeId(src),
            dest: NodeId(dest),
            class: MessageClass(0),
            len_flits: len,
            birth: 0,
            measured: true,
        }
    }

    /// A deterministic busy sim: `seed` varies the preloaded packet set so
    /// lanes do genuinely different work.
    fn busy_sim(seed: u64) -> Sim {
        let cfg = NetConfig::synth(4, 2).with_seed(seed);
        let mut sim = Sim::new(cfg, Box::new(IdleWorkload), Box::new(NoMechanism));
        for i in 0..8u16 {
            let dest = (15 - i + (seed as u16 % 3)) % 16;
            let dest = if dest == i { (dest + 1) % 16 } else { dest };
            sim.net.nics[i as usize].enqueue(packet(u64::from(i), i, dest, 3));
        }
        sim
    }

    #[test]
    fn batched_lanes_match_scalar_runs_bit_for_bit() {
        let seeds = [1u64, 7, 42, 1000];
        // Scalar reference: each lane run alone, default flags.
        let scalar: Vec<(u64, String)> = seeds
            .iter()
            .map(|&s| {
                let mut sim = busy_sim(s);
                sim.run(500);
                (sim.net.state_digest(), format!("{:?}", sim.net.stats))
            })
            .collect();
        // Batched: same lanes, lockstep with idle skipping.
        let mut batch = LockstepBatch::new(seeds.iter().map(|&s| busy_sim(s)).collect());
        batch.run(500);
        for (lane, want) in batch.lanes().iter().zip(&scalar) {
            assert_eq!(lane.net.cycle, 500);
            assert_eq!(lane.net.state_digest(), want.0, "state diverged");
            assert_eq!(format!("{:?}", lane.net.stats), want.1, "stats diverged");
        }
    }

    #[test]
    fn idle_lanes_fast_forward() {
        // An idle workload with nothing queued is skippable from cycle 0:
        // the batch must cover a huge horizon without stepping through it.
        let mut batch = LockstepBatch::new(vec![busy_sim(1), {
            let cfg = NetConfig::synth(4, 2);
            Sim::new(cfg, Box::new(IdleWorkload), Box::new(NoMechanism))
        }]);
        batch.run(5_000_000);
        for lane in batch.lanes() {
            assert_eq!(lane.net.cycle, 5_000_000);
        }
    }

    #[test]
    fn shape_key_ignores_seed_and_routing_but_not_structure() {
        let a = NetConfig::synth(8, 4).with_seed(1);
        let b = NetConfig::synth(8, 4).with_seed(999);
        assert_eq!(ShapeKey::of(&a), ShapeKey::of(&b));
        assert_eq!(ShapeKey::of(&a).digest(), ShapeKey::of(&b).digest());
        let mut c = NetConfig::synth(8, 4);
        c.vc_depth = 4;
        assert_ne!(ShapeKey::of(&a), ShapeKey::of(&c));
        assert_ne!(ShapeKey::of(&a), ShapeKey::of(&NetConfig::synth(8, 2)));
        assert_ne!(ShapeKey::of(&a), ShapeKey::of(&NetConfig::synth(4, 4)));
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn mixed_shapes_are_refused() {
        let a = Sim::new(
            NetConfig::synth(4, 2),
            Box::new(IdleWorkload),
            Box::new(NoMechanism),
        );
        let b = Sim::new(
            NetConfig::synth(4, 4),
            Box::new(IdleWorkload),
            Box::new(NoMechanism),
        );
        let _ = LockstepBatch::new(vec![a, b]);
    }
}
