//! The workload interface: who injects packets and who consumes them.
//!
//! Open-loop synthetic traffic only implements `generate`; the closed-loop
//! coherence-protocol workload also gates consumption (a directory may refuse
//! a request while its resources are busy — the root of protocol deadlock)
//! and reacts to deliveries by issuing follow-up messages.

use crate::stats::DeliveredPacket;
use noc_types::{Cycle, MessageClass, NodeId, Packet, PacketId};

/// Allocates globally unique packet ids for a workload.
#[derive(Clone, Debug, Default)]
pub struct PacketFactory {
    next: u64,
}

impl PacketFactory {
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a packet descriptor with a fresh id.
    #[allow(clippy::too_many_arguments)]
    pub fn make(
        &mut self,
        src: NodeId,
        dest: NodeId,
        class: MessageClass,
        len_flits: u8,
        birth: Cycle,
        measured: bool,
    ) -> Packet {
        let id = PacketId(self.next);
        self.next += 1;
        Packet {
            id,
            src,
            dest,
            class,
            len_flits,
            birth,
            measured,
        }
    }

    /// Number of packets created so far.
    pub fn created(&self) -> u64 {
        self.next
    }
}

/// A source/sink of traffic driven by the simulation loop.
pub trait Workload {
    /// Called once per cycle before routers compute. Push new packets via
    /// `inject(node, packet)`; they enter that NIC's injection queue this
    /// cycle.
    fn generate(&mut self, cycle: Cycle, inject: &mut dyn FnMut(NodeId, Packet));

    /// Offered a complete packet sitting in an ejection VC. Return `true` to
    /// consume it now (it is then removed and counted), `false` to leave it
    /// (backpressure — the ejection VC stays occupied).
    ///
    /// Implementations that consume may record follow-up messages and emit
    /// them on the next `generate` call.
    fn deliver(&mut self, cycle: Cycle, packet: &DeliveredPacket) -> bool {
        let _ = (cycle, packet);
        true
    }

    /// For closed-loop workloads: `Some(true)` once the workload's work items
    /// are all complete (run can stop), `None` for open-loop workloads.
    fn finished(&self) -> Option<bool> {
        None
    }

    /// Idle-cycle skipping input: the earliest cycle at or after `now` at
    /// which `generate` may do *anything* — inject a packet or merely
    /// consume RNG. The engine only fast-forwards a quiescent network up to
    /// (never past) this horizon, so a workload is skip-safe exactly when
    /// its `generate` is a guaranteed no-op on every skipped cycle.
    ///
    /// The conservative default declares activity every cycle, which
    /// disables skipping entirely (correct for Bernoulli-style workloads
    /// that draw RNG per node per cycle). `None` means "never again"
    /// (pure sinks), letting the clock jump freely.
    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        Some(now)
    }
}

/// The trivial workload: nothing injected, everything consumed. Useful for
/// tests that drive the network by hand.
#[derive(Clone, Debug, Default)]
pub struct IdleWorkload;

impl Workload for IdleWorkload {
    fn generate(&mut self, _cycle: Cycle, _inject: &mut dyn FnMut(NodeId, Packet)) {}

    fn next_activity(&self, _now: Cycle) -> Option<Cycle> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_ids_are_unique_and_monotonic() {
        let mut f = PacketFactory::new();
        let a = f.make(NodeId(0), NodeId(1), MessageClass(0), 1, 0, true);
        let b = f.make(NodeId(2), NodeId(3), MessageClass(1), 5, 7, false);
        assert_ne!(a.id, b.id);
        assert!(a.id < b.id);
        assert_eq!(f.created(), 2);
        assert_eq!(b.len_flits, 5);
        assert!(!b.measured);
    }
}
