//! Network interface controllers (NICs).
//!
//! Each node has a NIC with per-message-class injection queues and — per the
//! paper's system assumptions (§3.3) — per-message-class *ejection VCs*. The
//! NIC is the upstream "router" of the local input port (it allocates local
//! input VCs and streams flits at one per cycle) and the downstream consumer
//! of the local output port.

use crate::stats::DeliveredPacket;
use noc_types::{Cycle, Flit, MessageClass, NetConfig, NodeId, Packet, PacketId};
use std::collections::VecDeque;

/// Reservation state of an ejection VC (used by SEEC's seeker protocol).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum EjReserve {
    /// Not reserved; normal ejection may allocate it.
    #[default]
    Free,
    /// Reserved by a NIC about to send (or searching with) a seeker; blocked
    /// for normal ejection.
    Held,
    /// Reserved for a specific in-flight Free-Flow packet.
    For(PacketId),
}

/// One ejection VC at a NIC. Ejection VCs are per message class; the
/// flattened index of class `c`, slot `k` is `c * ejection_vcs_per_class + k`.
#[derive(Clone, Debug, Default)]
pub struct EjVc {
    pub buf: VecDeque<Flit>,
    pub reserve: EjReserve,
}

impl EjVc {
    /// Free for normal (router-side) allocation: empty and unreserved.
    pub fn is_free(&self) -> bool {
        self.buf.is_empty() && self.reserve == EjReserve::Free
    }

    /// True when a complete packet sits in the VC ready for consumption.
    pub fn complete_packet(&self) -> bool {
        match self.buf.front() {
            Some(f) => f.kind.is_head() && self.buf.len() == f.len as usize,
            None => false,
        }
    }
}

/// Progress of a packet currently being streamed into the router's local
/// input port.
#[derive(Clone, Copy, Debug)]
pub struct InjProgress {
    pub packet: Packet,
    pub next_seq: u8,
    /// Local-input VC the packet was allocated.
    pub vc: usize,
    /// Cycle the head flit was sent (the packet's injection timestamp).
    pub inject: Cycle,
}

/// A network interface controller.
#[derive(Clone, Debug)]
pub struct Nic {
    pub id: NodeId,
    /// Per-message-class injection queues (unbounded source queues; queueing
    /// delay is measured).
    pub inj_queues: Vec<VecDeque<Packet>>,
    /// Round-robin pointer over classes for injection fairness.
    pub inj_rr: usize,
    /// In-progress multi-flit injection, if any.
    pub inj_active: Option<InjProgress>,
    /// Claims on the router's local input VCs (this NIC is their upstream).
    /// `Some(p)` from allocation until `p`'s tail flit has been sent.
    pub local_claims: Vec<Option<PacketId>>,
    /// Ejection VCs, flattened `classes * ejection_vcs_per_class`.
    pub ejection: Vec<EjVc>,
    ej_per_class: usize,
}

impl Nic {
    pub fn new(id: NodeId, cfg: &NetConfig) -> Nic {
        let classes = cfg.classes as usize;
        let ej_per_class = cfg.ejection_vcs_per_class as usize;
        Nic {
            id,
            inj_queues: vec![VecDeque::new(); classes],
            inj_rr: 0,
            inj_active: None,
            local_claims: vec![None; cfg.vcs_per_port()],
            ejection: vec![EjVc::default(); classes * ej_per_class],
            ej_per_class,
        }
    }

    /// Queues a packet for injection.
    pub fn enqueue(&mut self, p: Packet) {
        self.inj_queues[p.class.idx()].push_back(p);
    }

    /// Total packets waiting in injection queues.
    pub fn backlog(&self) -> usize {
        self.inj_queues.iter().map(VecDeque::len).sum()
    }

    /// Flattened ejection-VC index for `(class, slot)`.
    pub fn ej_index(&self, class: MessageClass, slot: usize) -> usize {
        class.idx() * self.ej_per_class + slot
    }

    /// The ejection VCs of one message class.
    pub fn ej_slots(&self, class: MessageClass) -> &[EjVc] {
        let s = class.idx() * self.ej_per_class;
        &self.ejection[s..s + self.ej_per_class]
    }

    /// First free (unreserved, empty, unclaimed) ejection VC of `class`, as a
    /// flattened index. `claims` is the router-side local-output claim table.
    pub fn free_ejection_vc(
        &self,
        class: MessageClass,
        claims: &[Option<PacketId>],
    ) -> Option<usize> {
        let s = class.idx() * self.ej_per_class;
        (s..s + self.ej_per_class).find(|&i| self.ejection[i].is_free() && claims[i].is_none())
    }

    /// Accepts a flit arriving from the router's local output port (or from a
    /// Free-Flow traversal) into ejection VC `ej_vc`.
    pub fn receive(&mut self, ej_vc: usize, flit: Flit) {
        let vc = &mut self.ejection[ej_vc];
        if flit.kind.is_head() {
            debug_assert!(vc.buf.is_empty(), "head into occupied ejection VC");
        }
        vc.buf.push_back(flit);
    }

    /// Summarizes the complete packet at ejection VC `ej_vc` without removing
    /// it (the workload may refuse consumption — backpressure).
    /// Panics if no complete packet is present.
    pub fn consume_peek(&self, ej_vc: usize, now: Cycle) -> DeliveredPacket {
        let vc = &self.ejection[ej_vc];
        assert!(vc.complete_packet(), "consuming incomplete packet");
        let head = *vc.buf.front().expect("complete packet has a head flit");
        let tail = *vc.buf.back().expect("complete packet has a tail flit");
        DeliveredPacket {
            id: head.packet,
            src: head.src,
            dest: head.dest,
            class: head.class,
            len_flits: head.len,
            birth: head.birth,
            inject: head.inject,
            eject: now,
            hops: head.hops,
            ff_upgrade: head.ff_upgrade.or(tail.ff_upgrade),
            measured: head.measured,
        }
    }

    /// Removes the packet summarized by [`Self::consume_peek`] and clears the
    /// VC's reservation.
    pub fn consume_commit(&mut self, ej_vc: usize) {
        let vc = &mut self.ejection[ej_vc];
        debug_assert!(vc.complete_packet());
        vc.buf.clear();
        vc.reserve = EjReserve::Free;
    }

    /// Peek + commit in one call (tests and simple sinks).
    pub fn consume(&mut self, ej_vc: usize, now: Cycle) -> DeliveredPacket {
        let d = self.consume_peek(ej_vc, now);
        self.consume_commit(ej_vc);
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_types::{FlitKind, NetConfig};

    fn cfg() -> NetConfig {
        NetConfig::full_system(4, 6, 2)
    }

    fn flit(seq: u8, len: u8, class: MessageClass) -> Flit {
        let p = Packet {
            id: PacketId(9),
            src: NodeId(0),
            dest: NodeId(5),
            class,
            len_flits: len,
            birth: 0,
            measured: true,
        };
        Flit::from_packet(&p, seq, 2)
    }

    #[test]
    fn ejection_vc_indexing_is_per_class() {
        let nic = Nic::new(NodeId(5), &cfg());
        assert_eq!(nic.ejection.len(), 12);
        assert_eq!(nic.ej_index(MessageClass(0), 0), 0);
        assert_eq!(nic.ej_index(MessageClass(3), 1), 7);
        assert_eq!(nic.ej_slots(MessageClass(5)).len(), 2);
    }

    #[test]
    fn free_ejection_vc_respects_reservations_and_claims() {
        let mut nic = Nic::new(NodeId(1), &cfg());
        let claims = vec![None; 12];
        let c = MessageClass(2);
        assert_eq!(nic.free_ejection_vc(c, &claims), Some(4));
        nic.ejection[4].reserve = EjReserve::Held;
        assert_eq!(nic.free_ejection_vc(c, &claims), Some(5));
        let mut claims2 = claims.clone();
        claims2[5] = Some(PacketId(1));
        assert_eq!(nic.free_ejection_vc(c, &claims2), None);
    }

    #[test]
    fn receive_then_consume_builds_summary() {
        let mut nic = Nic::new(NodeId(5), &cfg());
        let class = MessageClass(1);
        let idx = nic.ej_index(class, 0);
        for s in 0..5 {
            let mut f = flit(s, 5, class);
            f.hops = 4;
            nic.receive(idx, f);
        }
        assert!(nic.ejection[idx].complete_packet());
        let d = nic.consume(idx, 50);
        assert_eq!(d.len_flits, 5);
        assert_eq!(d.eject, 50);
        assert_eq!(d.network_latency(), 48);
        assert_eq!(d.hops, 4);
        assert!(nic.ejection[idx].is_free());
    }

    #[test]
    fn incomplete_packet_is_not_consumable() {
        let mut nic = Nic::new(NodeId(5), &cfg());
        let class = MessageClass(0);
        let idx = nic.ej_index(class, 1);
        nic.receive(idx, flit(0, 5, class));
        nic.receive(idx, flit(1, 5, class));
        assert!(!nic.ejection[idx].complete_packet());
        assert!(!nic.ejection[idx].is_free());
    }

    #[test]
    fn single_flit_packet_is_complete_on_arrival() {
        let mut nic = Nic::new(NodeId(5), &cfg());
        let class = MessageClass(0);
        let idx = nic.ej_index(class, 0);
        let f = flit(0, 1, class);
        assert_eq!(f.kind, FlitKind::HeadTail);
        nic.receive(idx, f);
        assert!(nic.ejection[idx].complete_packet());
    }
}
