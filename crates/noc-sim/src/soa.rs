//! Struct-of-arrays engine core: the per-cycle hot state — credit
//! snapshots, wormhole flit-credit slots, per-port occupancy counters and
//! per-router dirty bits — stored as flat, contiguous arrays indexed by
//! `(router, port, vc)` instead of per-router structs of `Vec`s.
//!
//! The free-VC snapshot of one `(router, port)` pair is a single `u32`
//! bitmask (bit `v` set ⇔ downstream VC `v` is free), so the allocation
//! queries that dominate router compute become mask-and-popcount /
//! trailing-zeros operations over precomputed per-VNet masks — and a whole
//! port's "anything free?" pre-filter is one `!= 0` test. Bit order is
//! ascending VC index, so every scan (`first_free_normal`, class-scoped
//! ejection, escape lookup) selects exactly the VC the old `Vec<bool>`
//! iteration did: the refactor is behaviour- and byte-identical.

use crate::nic::Nic;
use crate::router::Router;
use noc_types::{Direction, NetConfig, PortId, NUM_PORTS};

/// Flat `SoA` storage for the engine's per-cycle hot state. Lives on
/// [`crate::Network`]; routers see it through [`CreditView`].
#[derive(Clone, Debug)]
pub struct CreditSoA {
    /// Lanes (VC slots) per `(router, port)` entry: the maximum of the
    /// cardinal-port VC count and the local port's flattened ejection-VC
    /// count, so one stride serves every port.
    stride: usize,
    /// Free-VC bitmask per `(router, port)`, indexed `r * NUM_PORTS + p`.
    free: Vec<u32>,
    /// Wormhole flit-credit slots, indexed `(r * NUM_PORTS + p) * stride + v`
    /// (depth − buffered − in flight). Only read under wormhole.
    slots: Vec<u8>,
    /// Buffered flits per `(router, input port)`, indexed `r * NUM_PORTS + p`.
    /// Gates the empty-router/empty-port skips in router compute.
    occupancy: Vec<u16>,
    /// Per-router credit-snapshot dirty bits.
    dirty: Vec<bool>,
    /// Per-VNet mask of *normal* (non-escape) VC bits.
    normal_mask: Vec<u32>,
    /// Per-VNet mask of the escape VC bit (0 when the routing has none).
    escape_mask: Vec<u32>,
    /// Flattened port index of each `VNet`'s escape VC (valid iff the
    /// corresponding `escape_mask` is non-zero).
    escape_idx: Vec<usize>,
}

impl CreditSoA {
    pub fn new(cfg: &NetConfig, n: usize) -> CreditSoA {
        let ej = cfg.classes as usize * cfg.ejection_vcs_per_class as usize;
        let stride = cfg.vcs_per_port().max(ej);
        assert!(stride <= 32, "more than 32 VC lanes per port");
        let mut normal_mask = Vec::with_capacity(cfg.vnets as usize);
        let mut escape_mask = Vec::with_capacity(cfg.vnets as usize);
        let mut escape_idx = Vec::with_capacity(cfg.vnets as usize);
        for vnet in 0..cfg.vnets {
            let range = cfg.vc_range(vnet);
            let esc = cfg.escape_vc(vnet).map(|e| range.start + e);
            let mut nm = 0u32;
            for v in range {
                if Some(v) != esc {
                    nm |= 1 << v;
                }
            }
            normal_mask.push(nm);
            escape_mask.push(esc.map_or(0, |e| 1 << e));
            escape_idx.push(esc.unwrap_or(0));
        }
        CreditSoA {
            stride,
            free: vec![0; n * NUM_PORTS],
            slots: vec![cfg.vc_depth; n * NUM_PORTS * stride],
            occupancy: vec![0; n * NUM_PORTS],
            dirty: vec![true; n],
            normal_mask,
            escape_mask,
            escape_idx,
        }
    }

    /// Read-only per-router view for route computation and VC allocation.
    pub fn view(&self, r: usize) -> CreditView<'_> {
        CreditView { soa: self, r }
    }

    #[inline]
    fn lane(&self, r: usize, p: PortId) -> usize {
        r * NUM_PORTS + p
    }

    /// Whether downstream VC `v` behind `(r, p)` is free.
    pub fn is_free(&self, r: usize, p: PortId, v: usize) -> bool {
        self.free[self.lane(r, p)] & (1 << v) != 0
    }

    /// Sets the free bit of downstream VC `v` behind `(r, p)`.
    pub fn set_free(&mut self, r: usize, p: PortId, v: usize, val: bool) {
        let l = self.lane(r, p);
        if val {
            self.free[l] |= 1 << v;
        } else {
            self.free[l] &= !(1 << v);
        }
    }

    /// The free-VC bitmask of `(r, p)`.
    pub fn port_mask(&self, r: usize, p: PortId) -> u32 {
        self.free[self.lane(r, p)]
    }

    /// Count of free VCs behind `(r, p)` (TFC token input).
    pub fn free_count(&self, r: usize, p: PortId) -> usize {
        self.port_mask(r, p).count_ones() as usize
    }

    /// Wormhole flit-credit slots of downstream VC `(r, p, v)`.
    pub fn slot(&self, r: usize, p: PortId, v: usize) -> u8 {
        self.slots[self.lane(r, p) * self.stride + v]
    }

    // --- occupancy counters -------------------------------------------

    /// Buffered flits behind input port `(r, p)`.
    pub fn occ(&self, r: usize, p: PortId) -> u16 {
        self.occupancy[self.lane(r, p)]
    }

    /// Copy of router `r`'s per-port occupancy counters.
    pub fn occ_array(&self, r: usize) -> [u16; NUM_PORTS] {
        let s = r * NUM_PORTS;
        let mut out = [0; NUM_PORTS];
        out.copy_from_slice(&self.occupancy[s..s + NUM_PORTS]);
        out
    }

    /// Whether router `r` buffers any flit at all.
    pub fn router_busy(&self, r: usize) -> bool {
        let s = r * NUM_PORTS;
        self.occupancy[s..s + NUM_PORTS].iter().any(|&o| o != 0)
    }

    /// Total flits buffered across every router (idle-skip quiescence).
    pub fn total_buffered(&self) -> u64 {
        self.occupancy.iter().map(|&o| u64::from(o)).sum()
    }

    pub fn occ_add(&mut self, r: usize, p: PortId, d: u16) {
        let l = self.lane(r, p);
        self.occupancy[l] += d;
    }

    pub fn occ_sub(&mut self, r: usize, p: PortId, d: u16) {
        let l = self.lane(r, p);
        self.occupancy[l] -= d;
    }

    /// Recounts every router's per-port occupancy from the buffers
    /// themselves (mechanisms may move flits outside the tracked sites).
    pub fn recount_occupancy(&mut self, routers: &[Router]) {
        for (i, r) in routers.iter().enumerate() {
            for (p, port) in r.inputs.iter().enumerate() {
                self.occupancy[i * NUM_PORTS + p] =
                    port.vcs.iter().map(|vc| vc.buf.len() as u16).sum();
            }
        }
    }

    // --- dirty bits ----------------------------------------------------

    pub fn is_dirty(&self, r: usize) -> bool {
        self.dirty[r]
    }

    pub fn mark_dirty(&mut self, r: usize) {
        self.dirty[r] = true;
    }

    pub fn clear_dirty(&mut self, r: usize) {
        self.dirty[r] = false;
    }

    pub fn mark_all_dirty(&mut self) {
        for f in &mut self.dirty {
            *f = true;
        }
    }

    // --- snapshot refresh ---------------------------------------------

    /// Recomputes router `i`'s downstream-availability snapshot from
    /// scratch (shared by the per-cycle refresh and the invariant layer's
    /// cross-check).
    pub(crate) fn recompute_router(
        &mut self,
        routers: &[Router],
        nics: &[Nic],
        i: usize,
        wormhole: bool,
        depth: u8,
        dead: Option<&crate::fault::DeadSet>,
    ) {
        let r = &routers[i];
        for dir in Direction::CARDINAL {
            let p = dir.index();
            let l = self.lane(i, p);
            match r.outputs[p].neighbor {
                Some(nb) => {
                    // A link flagged dead but still wired is draining towards
                    // a quiescence cut: no *new* VC claims may form on it
                    // (the escape fallback in `try_alloc` consults the free
                    // bits without the routing mask), but in-flight worms
                    // keep their credit view so they can finish streaming.
                    let closing = dead.is_some_and(|ds| ds.link_dead(i, dir));
                    let their_in = dir.opposite().index();
                    let down = &routers[nb.idx()].inputs[their_in];
                    let mut mask = 0u32;
                    for (v, vc) in down.vcs.iter().enumerate() {
                        if !closing && vc.is_free() && r.outputs[p].vc_claimed[v].is_none() {
                            mask |= 1 << v;
                        }
                    }
                    self.free[l] = mask;
                    if wormhole {
                        for (v, vc) in down.vcs.iter().enumerate() {
                            let used = vc.buf.len() as u8 + r.outputs[p].inflight[v];
                            self.slots[l * self.stride + v] = depth.saturating_sub(used);
                        }
                    }
                }
                None => self.free[l] = 0,
            }
        }
        let lp = Direction::Local.index();
        let nic = &nics[i];
        let mut mask = 0u32;
        for (v, ej) in nic.ejection.iter().enumerate() {
            if ej.is_free() && r.outputs[lp].vc_claimed[v].is_none() {
                mask |= 1 << v;
            }
        }
        let l = self.lane(i, lp);
        self.free[l] = mask;
    }

    /// Copies router `i`'s snapshot lanes out (invariant cross-check).
    #[cfg(feature = "check-invariants")]
    pub(crate) fn router_lanes(&self, i: usize) -> ([u32; NUM_PORTS], Vec<u8>) {
        let s = i * NUM_PORTS;
        let mut free = [0; NUM_PORTS];
        free.copy_from_slice(&self.free[s..s + NUM_PORTS]);
        let slots = self.slots[s * self.stride..(s + NUM_PORTS) * self.stride].to_vec();
        (free, slots)
    }

    /// Writes router `i`'s snapshot lanes back (invariant cross-check).
    #[cfg(feature = "check-invariants")]
    pub(crate) fn restore_router_lanes(&mut self, i: usize, free: &[u32; NUM_PORTS], slots: &[u8]) {
        let s = i * NUM_PORTS;
        self.free[s..s + NUM_PORTS].copy_from_slice(free);
        self.slots[s * self.stride..(s + NUM_PORTS) * self.stride].copy_from_slice(slots);
    }
}

/// One router's read-only window onto the [`CreditSoA`]: what route
/// computation and VC allocation consult. All scans are ascending-VC, via
/// `trailing_zeros` over the lane masks.
#[derive(Clone, Copy)]
pub struct CreditView<'a> {
    soa: &'a CreditSoA,
    r: usize,
}

impl CreditView<'_> {
    /// Whether downstream VC `v` behind `port` is free.
    pub fn is_free(&self, port: PortId, v: usize) -> bool {
        self.soa.is_free(self.r, port, v)
    }

    /// Whether any downstream VC behind `port` is free (the per-port
    /// pre-filter in switch allocation: one compare instead of a scan).
    pub fn any_free(&self, port: PortId) -> bool {
        self.soa.port_mask(self.r, port) != 0
    }

    /// Number of free *normal* (non-escape) VCs of `vnet` behind `port`.
    pub fn free_normal(&self, port: PortId, vnet: u8) -> usize {
        let m = self.soa.port_mask(self.r, port) & self.soa.normal_mask[vnet as usize];
        m.count_ones() as usize
    }

    /// First free normal VC of `vnet` behind `port` (ascending VC index,
    /// matching the old `Vec<bool>` scan order exactly).
    pub fn first_free_normal(&self, port: PortId, vnet: u8) -> Option<usize> {
        let m = self.soa.port_mask(self.r, port) & self.soa.normal_mask[vnet as usize];
        (m != 0).then(|| m.trailing_zeros() as usize)
    }

    /// The escape VC of `vnet` behind `port`, if configured and free.
    pub fn free_escape(&self, port: PortId, vnet: u8) -> Option<usize> {
        let m = self.soa.port_mask(self.r, port) & self.soa.escape_mask[vnet as usize];
        (m != 0).then(|| self.soa.escape_idx[vnet as usize])
    }

    /// First free ejection VC of the class range `[start, start + per)`
    /// behind the local port (ascending, class-scoped).
    pub fn first_free_in(&self, port: PortId, start: usize, per: usize) -> Option<usize> {
        let lanes = ((1u64 << per) - 1) as u32;
        let m = (self.soa.port_mask(self.r, port) >> start) & lanes;
        (m != 0).then(|| start + m.trailing_zeros() as usize)
    }

    /// Wormhole flit-credit slots of downstream VC `(port, v)`.
    pub fn slot(&self, port: PortId, v: usize) -> u8 {
        self.soa.slot(self.r, port, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_types::NetConfig;

    #[test]
    fn masks_partition_vnet_ranges() {
        let mut cfg = NetConfig::synth(4, 4);
        cfg.routing = noc_types::RoutingAlgo::EscapeVc {
            normal: noc_types::BaseRouting::AdaptiveMinimal,
        };
        let soa = CreditSoA::new(&cfg, 1);
        for vnet in 0..cfg.vnets {
            let range = cfg.vc_range(vnet);
            let all: u32 = range.clone().map(|v| 1u32 << v).sum();
            assert_eq!(
                soa.normal_mask[vnet as usize] | soa.escape_mask[vnet as usize],
                all
            );
            assert_eq!(
                soa.normal_mask[vnet as usize] & soa.escape_mask[vnet as usize],
                0
            );
        }
    }

    #[test]
    fn ascending_scan_matches_naive_order() {
        let cfg = NetConfig::synth(4, 4);
        let mut soa = CreditSoA::new(&cfg, 1);
        soa.set_free(0, 2, 1, true);
        soa.set_free(0, 2, 3, true);
        let v = soa.view(0);
        assert_eq!(v.first_free_normal(2, 0), Some(1));
        assert!(v.any_free(2));
        assert!(!v.any_free(1));
        assert_eq!(v.free_normal(2, 0), 2);
        soa.set_free(0, 2, 1, false);
        assert_eq!(soa.view(0).first_free_normal(2, 0), Some(3));
    }

    #[test]
    fn class_scoped_lookup_is_ascending() {
        let cfg = NetConfig::full_system(4, 6, 2);
        let mut soa = CreditSoA::new(&cfg, 1);
        let lp = Direction::Local.index();
        for v in 0..(cfg.classes as usize * cfg.ejection_vcs_per_class as usize) {
            soa.set_free(0, lp, v, true);
        }
        soa.set_free(0, lp, 6, false);
        assert_eq!(soa.view(0).first_free_in(lp, 6, 2), Some(7));
        soa.set_free(0, lp, 7, false);
        assert_eq!(soa.view(0).first_free_in(lp, 6, 2), None);
    }

    #[test]
    fn occupancy_counters_track_adds_and_subs() {
        let cfg = NetConfig::synth(4, 2);
        let mut soa = CreditSoA::new(&cfg, 4);
        assert!(!soa.router_busy(2));
        soa.occ_add(2, 1, 3);
        assert!(soa.router_busy(2));
        assert_eq!(soa.occ(2, 1), 3);
        assert_eq!(soa.total_buffered(), 3);
        soa.occ_sub(2, 1, 3);
        assert!(!soa.router_busy(2));
    }
}
