//! Dynamic fault schedules: epoch reconfiguration of a running network.
//!
//! The static fault layer (`crate::fault`) freezes its dead set at
//! construction. This module executes a [`noc_types::FaultSchedule`] — a
//! validated timeline of link/router kill and heal events — against a *live*
//! network, reconfiguring it at every event ("epoch"):
//!
//! * **Kill link** — the link disappears from the routing mask immediately
//!   (no new VC claims target it; `refresh_one_downfree` reports its VCs
//!   un-free while the dead flag is up), but the wiring is severed only once
//!   the link is *quiet*: all claimed worms finished streaming, all credits
//!   returned, and — under link-layer retransmission — both windows empty.
//!   This drain-cut discipline means a kill never truncates a packet
//!   mid-worm; the cost is that the physical cut trails the logical one by
//!   the drain time (recorded per epoch as
//!   [`EpochRecord::cut_done_at`](crate::stats::EpochRecord)).
//! * **Heal link** — wiring is restored from geometry on both sides, the
//!   retransmission state of the link is reset to a fresh sequence space
//!   (generation-stamped so wire events from before the heal are inert), and
//!   the mask is rebuilt so traffic starts using the link again.
//! * **Kill router** — the router's links go down (drain-cut each), its NIC
//!   stops picking new packets and stops consuming, and the per-cycle purge
//!   removes what ends up marooned there: fully-buffered packets that can no
//!   longer route, and complete packets in ejection VCs no one will consume.
//!   Switch allocation keeps running at a dead router so in-flight worms
//!   finish (graceful drain, not instant power-off).
//! * **Heal router** — the router and every link of it that is not
//!   independently down (and whose far endpoint is alive) come back.
//!
//! After every event the mask is rebuilt *partially*
//! ([`RouteMask::build_partial`]): a mid-run kill may legitimately
//! disconnect pairs. While any pair is disconnected (or any router is dead)
//! the **stranded purge** runs each cycle: fully-buffered, unrouted packets
//! whose source→destination pair has no surviving path are lifted out of
//! their VCs and dropped, counted in `Stats::chaos_purged_flits`. The
//! end-to-end retransmission layer (when armed) re-sends them once their
//! delivery timeout fires — or counts them abandoned — so "purge" is a
//! drop at the network layer, not at the protocol layer. Flit conservation
//! under `check-invariants` accounts purged flits explicitly.
//!
//! Determinism: events fire at fixed cycles, scans run in fixed node order,
//! and nothing here touches any RNG — chaos runs are bit-identical across
//! `NOC_THREADS` settings like every other run.

use crate::fault::RouteMask;
use crate::network::Network;
use noc_types::{Cycle, Direction, FaultAction, FaultEvent, NetConfig, NodeId};

/// A kill whose wiring cut is still waiting for the link to drain.
#[derive(Clone, Copy, Debug)]
struct PendingCut {
    node: usize,
    dir: Direction,
    /// Index into `Stats::epochs` of the event that requested the cut.
    epoch: usize,
}

/// Runtime state of a fault schedule, hung off
/// [`FaultLayer::chaos`](crate::fault::FaultLayer) when the config carries
/// one.
pub struct ChaosState {
    /// The merged (cycle-ordered) event timeline.
    events: Vec<FaultEvent>,
    /// Next event to apply.
    next_event: usize,
    /// Links the schedule (or the initial config) killed *independently* of
    /// any router death — healing an adjacent router must not revive them.
    link_down: Vec<[bool; 4]>,
    /// Routers currently down.
    router_down: Vec<bool>,
    /// Links whose wiring is currently severed (`neighbor` nulled). A kill
    /// sets this only once the drain-cut completes; a heal clears it.
    cut: Vec<[bool; 4]>,
    /// Kills still draining toward their cut.
    pending: Vec<PendingCut>,
    /// True while some live pair is unroutable or some router is down — the
    /// per-cycle stranded purge runs only then.
    scan_stranded: bool,
    cols: u8,
    rows: u8,
}

impl ChaosState {
    /// Builds the schedule runtime over the construction-time dead set
    /// (initially dead hardware is already cut by `Network::new`).
    pub fn new(cfg: &NetConfig, dead: &crate::fault::DeadSet) -> ChaosState {
        let n = cfg.num_nodes();
        let (cols, rows) = (cfg.cols, cfg.rows);
        let router_down: Vec<bool> = (0..n).map(|i| dead.router_dead(i)).collect();
        let mut link_down = vec![[false; 4]; n];
        let mut cut = vec![[false; 4]; n];
        for (i, (ld, ct)) in link_down.iter_mut().zip(cut.iter_mut()).enumerate() {
            let c = NodeId(i as u16).to_coord(cols);
            for d in Direction::CARDINAL {
                let Some(peer) = d.step(c, cols, rows) else {
                    continue;
                };
                if dead.link_dead(i, d) {
                    // Initially dead wiring is nulled at construction.
                    ct[d.index()] = true;
                    // Attribute the kill to the routers where possible; a
                    // link listed explicitly *and* adjacent to a dead router
                    // is treated as router-caused (healing the router
                    // revives it — schedules needing finer control list the
                    // link as a schedule kill instead).
                    let peer_down = router_down[peer.to_node(cols).idx()];
                    if !router_down[i] && !peer_down {
                        ld[d.index()] = true;
                    }
                }
            }
        }
        // Events fire in timeline order; the stable sort keeps same-cycle
        // events in their authored order (validation already checked the
        // kill/heal state machine against exactly this ordering).
        let mut events = cfg.fault.schedule.events.clone();
        events.sort_by_key(|e| e.at);
        ChaosState {
            events,
            next_event: 0,
            link_down,
            router_down,
            cut,
            pending: Vec::new(),
            scan_stranded: false,
            cols,
            rows,
        }
    }

    /// Whether the schedule has been fully applied and every pending cut has
    /// completed (soak-harness stopping condition).
    pub fn settled(&self) -> bool {
        self.next_event >= self.events.len() && self.pending.is_empty()
    }

    /// Events applied so far.
    pub fn events_applied(&self) -> usize {
        self.next_event
    }

    /// Idle-cycle skipping horizon. `None` while per-cycle chaos work is
    /// live — a pending drain-cut advancing toward quiesce, or the stranded
    /// purge running during a partition — because those act every cycle and
    /// must not be jumped over. Otherwise the cycle of the next unapplied
    /// schedule event (`tick` fires events only once `e.at <= now`, so a
    /// clock jump that stops *at* that cycle applies it exactly on time),
    /// or `Cycle::MAX` once the schedule is fully applied.
    pub fn quiet_until(&self) -> Option<Cycle> {
        if !self.pending.is_empty() || self.scan_stranded {
            return None;
        }
        Some(
            self.events
                .get(self.next_event)
                .map_or(Cycle::MAX, |e| e.at),
        )
    }
}

/// The per-cycle chaos hook, called at the top of
/// [`Sim::step`](crate::Sim::step) before delivery. Applies every schedule
/// event due at the current cycle, advances pending drain-cuts, and runs the
/// stranded purge while the mesh is partitioned or a router is down. The
/// state is taken out of the network for the duration (same borrow pattern
/// as `recovery::tick`).
pub fn tick(net: &mut Network) {
    let Some(fl) = &mut net.fault else {
        return;
    };
    // A settled schedule with no stranded scan pending has no per-cycle
    // work left: skip the take/put churn, and guarantee structurally that
    // the epoch trace can never grow after the last event.
    if fl
        .chaos
        .as_ref()
        .is_some_and(|c| c.settled() && !c.scan_stranded)
    {
        return;
    }
    let Some(mut chaos) = fl.chaos.take() else {
        return;
    };
    let now = net.cycle;
    let mut batch = 0usize;
    while chaos
        .events
        .get(chaos.next_event)
        .is_some_and(|e| e.at <= now)
    {
        let ev = chaos.events[chaos.next_event];
        chaos.next_event += 1;
        let record = net.stats.epochs.len() + batch;
        apply_event(&mut chaos, net, &ev, record);
        batch += 1;
    }
    if batch > 0 {
        rebuild(&mut chaos, net, batch);
    }
    advance_cuts(&mut chaos, net);
    if chaos.scan_stranded {
        purge_stranded(&chaos, net);
    }
    if let Some(fl) = &mut net.fault {
        fl.chaos = Some(chaos);
    }
}

/// Applies one schedule event to the dead set and the chaos bookkeeping
/// (mask rebuild and epoch recording happen once per batch in `rebuild`;
/// `record` is the `Stats::epochs` index this event's record will occupy).
fn apply_event(chaos: &mut ChaosState, net: &mut Network, ev: &FaultEvent, record: usize) {
    let (cols, rows) = (chaos.cols, chaos.rows);
    let fl = net
        .fault
        .as_mut()
        .expect("chaos ticks only with a fault layer");
    match ev.action {
        FaultAction::KillLink(node, d) => {
            let i = node.idx();
            chaos.link_down[i][d.index()] = true;
            if let Some(peer) = d.step(node.to_coord(cols), cols, rows) {
                chaos.link_down[peer.to_node(cols).idx()][d.opposite().index()] = true;
            }
            fl.dead.set_link(i, d, cols, rows, true);
            net.stats.chaos_links_killed += 1;
            chaos.pending.push(PendingCut {
                node: i,
                dir: d,
                epoch: record,
            });
        }
        FaultAction::HealLink(node, d) => {
            let i = node.idx();
            chaos.link_down[i][d.index()] = false;
            if let Some(peer) = d.step(node.to_coord(cols), cols, rows) {
                chaos.link_down[peer.to_node(cols).idx()][d.opposite().index()] = false;
            }
            fl.dead.set_link(i, d, cols, rows, false);
            net.stats.chaos_links_healed += 1;
            revive_link(chaos, net, i, d);
        }
        FaultAction::KillRouter(node) => {
            let i = node.idx();
            chaos.router_down[i] = true;
            let fl = net.fault.as_mut().expect("fault layer present");
            fl.dead.set_router(i, true);
            net.stats.chaos_routers_killed += 1;
            let c = node.to_coord(cols);
            for d in Direction::CARDINAL {
                if d.step(c, cols, rows).is_none() {
                    continue;
                }
                let fl = net.fault.as_mut().expect("fault layer present");
                if fl.dead.link_dead(i, d) {
                    continue; // already down (independently or via the peer)
                }
                fl.dead.set_link(i, d, cols, rows, true);
                chaos.pending.push(PendingCut {
                    node: i,
                    dir: d,
                    epoch: record,
                });
            }
        }
        FaultAction::HealRouter(node) => {
            let i = node.idx();
            chaos.router_down[i] = false;
            let fl = net.fault.as_mut().expect("fault layer present");
            fl.dead.set_router(i, false);
            net.stats.chaos_routers_healed += 1;
            let c = node.to_coord(cols);
            for d in Direction::CARDINAL {
                let Some(peer) = d.step(c, cols, rows) else {
                    continue;
                };
                let peer = peer.to_node(cols).idx();
                // A link revives with its router unless it is independently
                // down or its far endpoint is still a dead router.
                if chaos.link_down[i][d.index()] || chaos.router_down[peer] {
                    continue;
                }
                let fl = net.fault.as_mut().expect("fault layer present");
                fl.dead.set_link(i, d, cols, rows, false);
                revive_link(chaos, net, i, d);
            }
        }
    }
}

/// Brings the physical link `(node, d)` back into service: cancels a pending
/// cut, or — when the wiring was actually severed — restores it from
/// geometry on both sides and resets the link-layer retransmission state to
/// a fresh, generation-bumped sequence space.
fn revive_link(chaos: &mut ChaosState, net: &mut Network, node: usize, d: Direction) {
    chaos
        .pending
        .retain(|p| !same_link(p.node, p.dir, node, d, chaos.cols, chaos.rows));
    if !chaos.cut[node][d.index()] {
        return; // never severed: the wiring (and protocol state) is intact
    }
    let peer = d
        .step(
            NodeId(node as u16).to_coord(chaos.cols),
            chaos.cols,
            chaos.rows,
        )
        .expect("validated schedules never heal off-mesh links")
        .to_node(chaos.cols);
    chaos.cut[node][d.index()] = false;
    chaos.cut[peer.idx()][d.opposite().index()] = false;
    net.routers[node].outputs[d.index()].neighbor = Some(peer);
    net.routers[peer.idx()].outputs[d.opposite().index()].neighbor = Some(NodeId(node as u16));
    if let Some(rt) = net.fault.as_mut().and_then(|f| f.retrans.as_mut()) {
        rt.reset_link(node, d);
    }
    net.credit_touch(node);
    net.credit_touch(peer.idx());
}

/// Whether `(a, da)` and `(b, db)` name the same physical link.
fn same_link(a: usize, da: Direction, b: usize, db: Direction, cols: u8, rows: u8) -> bool {
    if a == b && da == db {
        return true;
    }
    match da.step(NodeId(a as u16).to_coord(cols), cols, rows) {
        Some(p) => p.to_node(cols).idx() == b && da.opposite() == db,
        None => false,
    }
}

/// Post-event reconfiguration: rebuild the routing mask (partially — kills
/// may disconnect pairs), re-check the escape layer, drop stale sticky port
/// choices, refresh credit snapshots, and append the epoch records.
fn rebuild(chaos: &mut ChaosState, net: &mut Network, batch: usize) {
    let now = net.cycle;
    let (cols, rows) = (chaos.cols, chaos.rows);
    let fl = net.fault.as_mut().expect("fault layer present");
    let mask = RouteMask::build_partial(cols, rows, &fl.dead);
    let routable = mask.fully_routable(&fl.dead);
    // Re-arm the escape layer: the west-first mask either rebuilds cleanly
    // on the degraded mesh or the escape layer is (for now) severed and
    // escape-resident packets fall to the recovery layer if they wedge.
    let escape_ok =
        !net.cfg.routing.has_escape() || RouteMask::build_west_first(cols, rows, &fl.dead).is_ok();
    fl.mask = Some(mask);
    chaos.scan_stranded = !routable || chaos.router_down.iter().any(|&r| r);
    // Sticky (non-adaptive) port choices were computed against the old
    // topology; clear them so waiting heads re-route under the new mask.
    // Allocated routes (claims held) are left alone — claimed worms drain.
    for r in &mut net.routers {
        for port in &mut r.inputs {
            for vc in &mut port.vcs {
                if vc.route.is_none() {
                    vc.pending_port = None;
                }
            }
        }
    }
    net.credit_mark_all();
    // One epoch record per event applied this cycle (same-cycle events
    // share the rebuild; each gets its own trace row).
    for k in 0..batch {
        let ev = &chaos.events[chaos.next_event - batch + k];
        net.stats.epochs.push(crate::stats::EpochRecord {
            cycle: now,
            action: render_event(ev),
            routable,
            escape_ok,
            purged_flits: 0,
            cut_done_at: None,
            recert: None,
        });
    }
    net.stats.chaos_epochs += batch as u64;
}

/// Canonical one-event rendering (matches `FaultSchedule::canonical`'s
/// per-event form).
fn render_event(ev: &FaultEvent) -> String {
    match ev.action {
        FaultAction::KillLink(n, d) => format!("{}:kl:{}:{}", ev.at, n.0, d.index()),
        FaultAction::HealLink(n, d) => format!("{}:hl:{}:{}", ev.at, n.0, d.index()),
        FaultAction::KillRouter(n) => format!("{}:kr:{}", ev.at, n.0),
        FaultAction::HealRouter(n) => format!("{}:hr:{}", ev.at, n.0),
    }
}

/// Severs the wiring of every pending kill whose link has gone quiet: no
/// claims, no in-flight credits, empty retransmission windows — both
/// directions. Quiet-before-cut keeps the upstream credit-return lookup in
/// `deliver_arrivals` sound (it resolves the upstream router through the
/// receiver's own wiring).
fn advance_cuts(chaos: &mut ChaosState, net: &mut Network) {
    if chaos.pending.is_empty() {
        return;
    }
    let now = net.cycle;
    let (cols, rows) = (chaos.cols, chaos.rows);
    let mut k = 0;
    while k < chaos.pending.len() {
        let p = chaos.pending[k];
        let Some(peer) = p.dir.step(NodeId(p.node as u16).to_coord(cols), cols, rows) else {
            chaos.pending.swap_remove(k);
            continue;
        };
        let peer = peer.to_node(cols).idx();
        let quiet = link_half_quiet(net, p.node, p.dir)
            && link_half_quiet(net, peer, p.dir.opposite())
            && net
                .fault
                .as_ref()
                .and_then(|f| f.retrans.as_ref())
                .is_none_or(|rt| rt.link_quiet(p.node, p.dir));
        if !quiet {
            k += 1;
            continue;
        }
        net.routers[p.node].outputs[p.dir.index()].neighbor = None;
        net.routers[peer].outputs[p.dir.opposite().index()].neighbor = None;
        chaos.cut[p.node][p.dir.index()] = true;
        chaos.cut[peer][p.dir.opposite().index()] = true;
        net.credit_touch(p.node);
        net.credit_touch(peer);
        if let Some(rec) = net.stats.epochs.get_mut(p.epoch) {
            rec.cut_done_at = Some(now);
        }
        chaos.pending.swap_remove(k);
    }
}

/// One direction of the quiet test: the sender at `node` holds no claim and
/// counts no in-flight flit toward `dir`.
fn link_half_quiet(net: &Network, node: usize, dir: Direction) -> bool {
    let out = &net.routers[node].outputs[dir.index()];
    out.neighbor.is_some()
        && out.vc_claimed.iter().all(Option::is_none)
        && out.inflight.iter().all(|&c| c == 0)
}

/// The stranded purge: removes packets that the new topology can never
/// deliver — fully-buffered, unrouted packets whose pair has no surviving
/// path (which includes everything buffered at or addressed to a dead
/// router), and complete packets sitting in the ejection VCs of dead
/// routers. Purged flits are counted, attributed to the newest epoch, and
/// recovered (or abandoned) by the end-to-end retransmission layer.
fn purge_stranded(chaos: &ChaosState, net: &mut Network) {
    let now = net.cycle;
    let cols = net.cfg.cols;
    let mut purged: u64 = 0;
    let n = net.routers.len();
    for i in 0..n {
        // Router input VCs: fully-buffered, unrouted, uncaptured packets
        // with no surviving path. Streaming or moving packets are never
        // touched — worms always finish (drain semantics).
        for p in 0..noc_types::NUM_PORTS {
            for v in 0..net.routers[i].inputs[p].vcs.len() {
                let vc = &net.routers[i].inputs[p].vcs[v];
                let Some(front) = vc.front() else { continue };
                if vc.route.is_some() || vc.ff_capture || !vc.packet_fully_buffered() {
                    continue;
                }
                let dest = front.dest;
                if dest.idx() == i && !chaos.router_down[i] {
                    continue; // at destination, router alive: it will eject
                }
                let unroutable = chaos.router_down[i]
                    || chaos.router_down[dest.idx()]
                    || net.fault.as_ref().is_some_and(|f| {
                        f.mask.as_ref().is_some_and(|m| {
                            dest.idx() != i
                                && m.allowed(NodeId(i as u16).to_coord(cols), dest.to_coord(cols))
                                    == 0
                        })
                    });
                if !unroutable {
                    continue;
                }
                let flits = net.drain_packet(NodeId(i as u16), p, v);
                purged += flits.len() as u64;
            }
        }
        // Ejection VCs of dead routers: the NIC no longer consumes, so
        // complete packets are lifted out (partial packets wait — their
        // remaining flits are still arriving and worms always finish).
        if chaos.router_down[i] {
            for ej in 0..net.nics[i].ejection.len() {
                if net.nics[i].ejection[ej].complete_packet() {
                    purged += net.nics[i].ejection[ej].buf.len() as u64;
                    net.nics[i].consume_commit(ej);
                    net.credit_touch(i);
                }
            }
        }
    }
    if purged > 0 {
        net.stats.chaos_purged_flits += purged;
        if let Some(rec) = net.stats.epochs.last_mut() {
            rec.purged_flits += purged;
        }
        // Purging is progress: the stall it resolves must not also trip the
        // watchdog while end-to-end retransmission takes over.
        net.last_progress = now;
    }
}

#[cfg(test)]
mod tests {
    //! Epoch-boundary pins: the degenerate schedule shapes (no schedule,
    //! zero events due this cycle, fully settled) must do exactly nothing —
    //! no chaos state, no epoch records, no per-cycle work.

    use crate::network::Sim;
    use crate::workload::IdleWorkload;
    use noc_types::{Direction, FaultConfig, FaultSchedule, NetConfig, NodeId};

    fn sim(cfg: NetConfig) -> Sim {
        Sim::new(cfg, Box::new(IdleWorkload), Box::new(crate::NoMechanism))
    }

    #[test]
    fn empty_schedule_creates_no_chaos_state() {
        // `FaultSchedule::none()` must behave exactly like no schedule at
        // all: no ChaosState is hung off the fault layer, no epoch is ever
        // recorded, and ticking is a no-op.
        let cfg = NetConfig::synth(4, 2)
            .with_fault(FaultConfig::default().with_schedule(FaultSchedule::none()));
        let mut s = sim(cfg);
        assert!(s.net.fault.as_ref().is_none_or(|f| f.chaos.is_none()));
        for _ in 0..50 {
            s.step();
        }
        assert_eq!(s.net.stats.chaos_epochs, 0);
        assert!(s.net.stats.epochs.is_empty());
    }

    #[test]
    fn epoch_records_track_events_exactly() {
        // One kill at cycle 10, one heal at 50: before the first event the
        // trace is empty; after each boundary it grows by exactly one; once
        // the schedule settles it never grows again.
        let cfg = NetConfig::synth(4, 2).with_fault(
            FaultConfig::default().with_schedule(FaultSchedule::link_flap(
                NodeId(5),
                Direction::East,
                10,
                50,
            )),
        );
        let mut s = sim(cfg);
        while s.net.cycle < 10 {
            s.step();
        }
        assert!(s.net.stats.epochs.is_empty(), "no epoch before the event");
        while s.net.cycle < 50 {
            s.step();
        }
        assert_eq!(s.net.stats.epochs.len(), 1, "kill recorded once");
        assert!(
            s.net.stats.epochs[0].cut_done_at.is_some(),
            "idle link drain-cuts promptly"
        );
        for _ in 0..200 {
            s.step();
        }
        assert_eq!(s.net.stats.epochs.len(), 2, "heal recorded once");
        assert_eq!(s.net.stats.chaos_epochs, 2);
        let chaos = s.net.fault.as_ref().and_then(|f| f.chaos.as_ref());
        assert!(chaos.is_some_and(|c| c.settled()), "schedule must settle");
    }

    #[test]
    fn same_cycle_events_get_one_record_each() {
        use noc_types::{FaultAction, FaultEvent};
        let events = vec![
            FaultEvent {
                at: 5,
                action: FaultAction::KillLink(NodeId(5), Direction::East),
            },
            FaultEvent {
                at: 5,
                action: FaultAction::KillLink(NodeId(9), Direction::North),
            },
        ];
        let cfg = NetConfig::synth(4, 2)
            .with_fault(FaultConfig::default().with_schedule(FaultSchedule::new(events)));
        let mut s = sim(cfg);
        for _ in 0..30 {
            s.step();
        }
        assert_eq!(s.net.stats.epochs.len(), 2, "one record per event");
        assert_eq!(s.net.stats.chaos_epochs, 2);
        assert_eq!(s.net.stats.epochs[0].cycle, s.net.stats.epochs[1].cycle);
    }

    #[test]
    fn settled_schedule_does_no_further_work() {
        // After the last event applies and its cut drains, the guard in
        // `tick` short-circuits: the chaos state stays queryable (the soak
        // harness polls `settled`) and the trace is frozen.
        let cfg = NetConfig::synth(4, 2).with_fault(
            FaultConfig::default().with_schedule(FaultSchedule::link_flap(
                NodeId(5),
                Direction::East,
                5,
                8,
            )),
        );
        let mut s = sim(cfg);
        for _ in 0..40 {
            s.step();
        }
        let frozen = s.net.stats.epochs.len();
        let applied = s
            .net
            .fault
            .as_ref()
            .and_then(|f| f.chaos.as_ref())
            .map(|c| c.events_applied());
        assert_eq!(applied, Some(2));
        for _ in 0..500 {
            s.step();
        }
        assert_eq!(s.net.stats.epochs.len(), frozen);
        assert!(s
            .net
            .fault
            .as_ref()
            .and_then(|f| f.chaos.as_ref())
            .is_some_and(|c| c.settled()));
    }
}
