//! Runtime deadlock recovery: drain-and-reinject escape channel plus
//! NIC-level end-to-end retransmission.
//!
//! The watchdog (`crate::watchdog`) *detects* a wedged network; this module
//! converts the detection into forward progress instead of a panic. Two
//! independent sub-layers, both armed through
//! [`NetConfig::recovery`](noc_types::NetConfig):
//!
//! * **Drain recovery** — when the network has made no progress for
//!   [`RecoveryConfig::stuck_threshold`] cycles (well below the watchdog's
//!   panic threshold, so recovery pre-empts it), a victim packet is selected
//!   from the wait-for cycle witness ([`watchdog::find_deadlock_cycle`]) —
//!   or, when the stall is livelock/starvation with no cycle, the oldest
//!   blocked head. The victim is drained out of its VC through the SPI
//!   ([`Network::drain_packet`]) into a reserved, serialized, one-packet-deep
//!   *recovery channel*: a dedicated XY-routed escape path modelled at full
//!   per-hop cost, certified acyclic by `noc-verify`. On arrival the victim
//!   is re-delivered into a free ejection VC at its destination NIC; the
//!   packets that waited on its buffer resume on their own. Breaking one
//!   edge of a wait cycle restores progress for the whole cycle; repeated
//!   stalls drain repeated victims (one at a time — the channel is
//!   serialized, which is what keeps it trivially deadlock-free).
//! * **End-to-end retransmission** — the source NIC keeps every sent packet
//!   in an outstanding table until its delivery is confirmed at consumption.
//!   A packet unconfirmed past its (attempt-scaled) timeout is re-injected
//!   as a fresh copy with a distinct retry [`PacketId`]; duplicate arrivals
//!   are suppressed at ejection so the workload observes exactly-once
//!   delivery. This covers losses no in-network mechanism can heal, e.g. a
//!   router dying mid-flight with flits buffered inside it.
//!
//! Both layers are deterministic: victim selection scans in fixed order,
//! tables are ordered (`BTreeMap`/`BTreeSet`), and nothing here touches the
//! network RNG — runs are bit-identical across `NOC_THREADS` settings. On a
//! healthy mesh neither layer ever acts (`looks_stuck` never fires, the
//! outstanding table drains on time), so arming recovery leaves fault-free
//! runs byte-identical.

use crate::mechanism::Mechanism;
use crate::network::{Network, LOCAL_LATENCY};
use crate::nic::EjReserve;
use crate::watchdog;
use noc_types::{
    Cycle, Direction, Flit, MessageClass, NodeId, Packet, PacketId, PortId, RecoveryConfig,
};
use std::collections::{BTreeMap, BTreeSet};

/// Bit marking a [`PacketId`] as an end-to-end retransmission copy. Retry
/// copies need ids distinct from the original (claims, residency and
/// duplicate bookkeeping are all keyed by id), but must still map back to the
/// original for delivery accounting — see [`logical_id`].
pub const RETRY_BIT: u64 = 1 << 63;
/// The retry attempt number is encoded above the logical id so each copy of
/// one packet is globally unique.
const ATTEMPT_SHIFT: u32 = 48;
/// Low bits carrying the original (logical) packet id.
const LOGICAL_MASK: u64 = (1 << ATTEMPT_SHIFT) - 1;

/// The original packet id behind a possibly-retry id.
#[inline]
pub fn logical_id(id: PacketId) -> PacketId {
    PacketId(id.0 & LOGICAL_MASK)
}

/// True when `id` names an end-to-end retransmission copy.
#[inline]
pub fn is_retry(id: PacketId) -> bool {
    id.0 & RETRY_BIT != 0
}

/// How often (cycles) the end-to-end layer scans its outstanding table for
/// expired deliveries. Timeouts are coarse by nature; a periodic scan keeps
/// the healthy-path cost at a single modulo test.
const E2E_SCAN_PERIOD: Cycle = 16;

/// A packet sent but not yet confirmed delivered (end-to-end layer).
struct Outstanding {
    packet: Packet,
    deadline: Cycle,
    attempts: u32,
}

/// A victim in transit through the recovery channel.
struct Drain {
    flits: Vec<Flit>,
    class: MessageClass,
    dest: NodeId,
    /// Cycle the victim reaches its destination NIC (full modelled cost of
    /// the serialized escape path, not a free teleport).
    arrive_at: Cycle,
}

/// Runtime state of the recovery layer, hung off
/// [`Network::recovery`](crate::network::Network) when
/// [`RecoveryConfig::any`] is set.
pub struct RecoveryState {
    pub cfg: RecoveryConfig,
    /// The victim currently in the recovery channel (at most one: the
    /// channel is serialized).
    drain: Option<Drain>,
    /// End-to-end outstanding table, keyed by logical packet id. Ordered so
    /// timeout scans are deterministic.
    outstanding: BTreeMap<u64, Outstanding>,
    /// Logical ids delivered once while a retransmission copy was (or may
    /// still be) in flight; later copies are suppressed at ejection.
    delivered_retx: BTreeSet<u64>,
}

impl RecoveryState {
    pub fn new(cfg: RecoveryConfig) -> RecoveryState {
        RecoveryState {
            cfg,
            drain: None,
            outstanding: BTreeMap::new(),
            delivered_retx: BTreeSet::new(),
        }
    }

    /// Flits currently in recovery-channel custody (conservation: these are
    /// in the network, just not in any router buffer or inbox).
    pub fn custody_flits(&self) -> usize {
        self.drain.as_ref().map_or(0, |d| d.flits.len())
    }

    /// Called by injection when the source NIC finishes streaming a packet:
    /// the end-to-end layer starts its delivery timer. Retry copies are not
    /// re-registered — their deadline was set when they were scheduled.
    /// Idle-cycle skipping input: `true` when a recovery `step` is a
    /// guaranteed no-op on a quiet network — no drain in progress and an
    /// empty outstanding table (the periodic end-to-end scan over an empty
    /// table does nothing, so jumping across scan boundaries is invisible;
    /// `start_drain` cannot fire because `looks_stuck` is `false` for an
    /// empty network).
    pub fn is_idle(&self) -> bool {
        self.drain.is_none() && self.outstanding.is_empty()
    }

    pub fn register_sent(&mut self, pkt: &Packet, now: Cycle) {
        if self.cfg.e2e_timeout == 0 || is_retry(pkt.id) {
            return;
        }
        self.outstanding.entry(pkt.id.0).or_insert(Outstanding {
            packet: *pkt,
            deadline: now + self.cfg.e2e_timeout,
            attempts: 0,
        });
    }

    /// Pure classification of a delivery at ejection: the logical id the
    /// workload must see, and whether this arrival is a duplicate to discard.
    /// No mutation — the workload may refuse the delivery (backpressure) and
    /// the same packet will be classified again next cycle.
    pub fn classify_delivery(&self, raw: PacketId) -> (PacketId, bool) {
        let logical = logical_id(raw);
        let dup = self.cfg.e2e_timeout > 0 && self.delivered_retx.contains(&logical.0);
        (logical, dup)
    }

    /// Confirms a successful delivery (after the workload accepted it):
    /// clears the outstanding entry and, when any retransmission copy of this
    /// packet was ever scheduled, remembers the logical id so late copies are
    /// suppressed.
    pub fn on_delivered(&mut self, raw: PacketId) {
        if self.cfg.e2e_timeout == 0 {
            return;
        }
        let key = logical_id(raw).0;
        let retried = match self.outstanding.remove(&key) {
            Some(entry) => entry.attempts > 0,
            None => false,
        };
        if retried || is_retry(raw) {
            self.delivered_retx.insert(key);
        }
    }

    /// One recovery cycle: end-to-end timeout scan, recovery-channel
    /// delivery, then (when armed and the network is stuck) victim selection
    /// and drain. Runs after the mechanism's post-cycle so it observes the
    /// same state the watchdog would.
    fn step(&mut self, net: &mut Network, mech: &mut dyn Mechanism) {
        let now = net.cycle;
        if self.cfg.e2e_timeout > 0 && now.is_multiple_of(E2E_SCAN_PERIOD) {
            self.scan_timeouts(net);
        }
        self.advance_drain(net);
        if self.cfg.enabled
            && self.drain.is_none()
            && watchdog::looks_stuck(net, self.cfg.stuck_threshold)
        {
            self.start_drain(net, mech);
        }
    }

    /// Re-injects expired outstanding packets (or abandons them past the
    /// retry budget).
    fn scan_timeouts(&mut self, net: &mut Network) {
        let now = net.cycle;
        let expired: Vec<u64> = self
            .outstanding
            .iter()
            .filter(|(_, o)| now >= o.deadline)
            .map(|(&k, _)| k)
            .collect();
        for key in expired {
            let Some(entry) = self.outstanding.get_mut(&key) else {
                continue;
            };
            if entry.attempts >= self.cfg.e2e_max_retries {
                self.outstanding.remove(&key);
                net.stats.e2e_abandoned += 1;
                continue;
            }
            entry.attempts += 1;
            let attempt = u64::from(entry.attempts);
            // Back off exponentially (capped at 64x) so a congestion-delayed
            // (not lost) packet is not hammered with copies: with a fixed or
            // linearly-growing retry interval, a saturated network receives
            // retry copies faster than it delivers packets and the source
            // backlogs diverge instead of draining (found by the chaos soak).
            entry.deadline = now + (self.cfg.e2e_timeout << attempt.min(6));
            let mut copy = entry.packet;
            copy.id = PacketId(key | RETRY_BIT | (attempt << ATTEMPT_SHIFT));
            copy.birth = now;
            // Copies never count toward traffic statistics; the original
            // already did at generation.
            copy.measured = false;
            let src = entry.packet.src.idx();
            net.stats.e2e_retransmits += 1;
            net.nics[src].enqueue(copy);
            net.last_progress = now;
        }
    }

    /// Delivers the in-transit victim once its modelled escape-path latency
    /// has elapsed and a free ejection VC of its class exists at the
    /// destination. Retries every cycle on ejection backpressure.
    fn advance_drain(&mut self, net: &mut Network) {
        let now = net.cycle;
        let Some(d) = &self.drain else {
            return;
        };
        if now < d.arrive_at {
            return;
        }
        let dest = d.dest.idx();
        let claims = &net.routers[dest].outputs[Direction::Local.index()].vc_claimed;
        let Some(ej) = net.nics[dest].free_ejection_vc(d.class, claims) else {
            return; // destination ejection busy: retry next cycle
        };
        let Some(d) = self.drain.take() else {
            return;
        };
        for f in d.flits {
            net.nics[dest].receive(ej, f);
        }
        net.credit_touch(dest);
        net.last_progress = now;
    }

    /// Selects a victim and drains it into the recovery channel. When no
    /// viable victim exists, leaves the network untouched — quiescence keeps
    /// growing and the watchdog's panic path stays armed as the backstop.
    fn start_drain(&mut self, net: &mut Network, mech: &mut dyn Mechanism) {
        let Some(w) = select_victim(net) else {
            return;
        };
        let now = net.cycle;
        let flits = net.drain_packet(w.node, w.port, w.vc);
        let head = flits[0];
        let victim = head.packet;
        let hops = manhattan(w.node, head.dest, net.cfg.cols);
        // Full cost of the serialized escape path: one recovery-channel hop
        // per mesh hop at the configured per-hop latency, the tail trailing
        // the head by one flit per two cycles, plus the ejection link.
        let transit = hops * net.hop_latency() + (flits.len() as Cycle - 1) * 2 + LOCAL_LATENCY;
        let mut flits = flits;
        for f in &mut flits {
            f.hops = f.hops.saturating_add(u8::try_from(hops).unwrap_or(u8::MAX));
        }
        for _ in 0..hops * flits.len() as Cycle {
            net.stats.count_link_hop(now);
        }
        net.stats.drain_recoveries += 1;
        net.stats.recovery_victim_hops += hops;
        net.stats.recovery_cycles_lost += transit;
        self.drain = Some(Drain {
            class: head.class,
            dest: head.dest,
            arrive_at: now + transit,
            flits,
        });
        // Any ejection VC reserved for the victim (a Free-Flow reservation
        // made before it wedged) must be released, or it leaks forever.
        for i in 0..net.nics.len() {
            let mut touched = false;
            for ej in &mut net.nics[i].ejection {
                if ej.reserve == EjReserve::For(victim) {
                    ej.reserve = EjReserve::Free;
                    touched = true;
                }
            }
            if touched {
                net.credit_touch(i);
            }
        }
        mech.on_recovery_drain(net, victim);
        // Starting a drain *is* progress: the stuck clock restarts and fires
        // again only if draining this victim did not unwedge the network.
        net.last_progress = now;
    }
}

/// The per-cycle recovery hook called from [`Sim::step`](crate::Sim). The
/// state is taken out of the network for the duration so it can mutate the
/// network freely through the SPI.
pub fn tick(net: &mut Network, mech: &mut dyn Mechanism) {
    let Some(mut rec) = net.recovery.take() else {
        return;
    };
    rec.step(net, mech);
    net.recovery = Some(rec);
}

/// A candidate victim: the VC holding the packet to drain.
struct Victim {
    node: NodeId,
    port: PortId,
    vc: usize,
}

/// Deterministic victim selection. Prefers a member of the wait-for cycle
/// witness (breaking an actual deadlock edge); falls back to the oldest
/// blocked head anywhere (livelock/starvation has no cycle to point at).
/// A viable victim must be fully buffered (VCT: a streaming or moving packet
/// cannot be lifted out of its VC), not captured by a Free-Flow stream, and
/// addressed to a live router.
fn select_victim(net: &Network) -> Option<Victim> {
    if let Some(cycle) = watchdog::find_deadlock_cycle(net) {
        for w in &cycle {
            if viable(net, w.node, w.port, w.vc) {
                return Some(Victim {
                    node: w.node,
                    port: w.port,
                    vc: w.vc,
                });
            }
        }
    }
    // Livelock / starvation fallback: the longest-waiting viable head, scan
    // order breaking ties, so selection is reproducible.
    let mut best: Option<(Cycle, Victim)> = None;
    for (i, r) in net.routers.iter().enumerate() {
        for (p, port) in r.inputs.iter().enumerate() {
            for (v, vc) in port.vcs.iter().enumerate() {
                let Some(since) = vc.head_wait_since else {
                    continue;
                };
                if best.as_ref().is_some_and(|(b, _)| *b <= since) {
                    continue;
                }
                let node = NodeId(i as u16);
                if viable(net, node, p, v) {
                    best = Some((
                        since,
                        Victim {
                            node,
                            port: p,
                            vc: v,
                        },
                    ));
                }
            }
        }
    }
    best.map(|(_, v)| v)
}

/// Whether the packet in `(node, port, vc)` can be drained right now.
fn viable(net: &Network, node: NodeId, port: PortId, vc: usize) -> bool {
    let v = &net.routers[node.idx()].inputs[port].vcs[vc];
    let Some(front) = v.front() else {
        return false;
    };
    if v.route.is_some() || v.ff_capture || !v.packet_fully_buffered() {
        return false;
    }
    // A victim must be deliverable: a dead destination router has no working
    // ejection link, so draining toward it would wedge the recovery channel.
    let dest_dead = net
        .fault
        .as_ref()
        .is_some_and(|f| f.dead.router_dead(front.dest.idx()));
    !dest_dead
}

/// Mesh distance of the recovery channel's XY path.
fn manhattan(from: NodeId, to: NodeId, cols: u8) -> Cycle {
    let a = from.to_coord(cols);
    let b = to.to_coord(cols);
    Cycle::from(a.x.abs_diff(b.x)) + Cycle::from(a.y.abs_diff(b.y))
}
