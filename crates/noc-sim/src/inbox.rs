//! Arrival-time bucket queues (a small timing wheel) for in-flight flits.
//!
//! The engine's inboxes used to be flat `Vec<(Cycle, ...)>`s scanned
//! linearly every cycle with `swap_remove` — O(pending) timestamp compares
//! per cycle per node, and same-cycle entries were delivered in an order
//! that depended on compaction history. The wheel replaces the scan with an
//! O(due) bucket drain keyed on `arrival % capacity`:
//!
//! * `push` is O(1); the wheel grows (power-of-two capacity) whenever an
//!   arrival lands beyond the current horizon, so any `cycle + latency` is
//!   accepted.
//! * `drain_due_into` empties exactly the bucket for the current cycle, in
//!   **push order** — FIFO within a cycle is a documented guarantee (see
//!   `fifo_within_cycle` below and the engine's delivery phase), where the
//!   old `swap_remove` compaction could reorder same-cycle flits.
//! * Buckets are reused `Vec`s, so steady-state operation allocates nothing.
//!
//! Invariant: every entry's arrival cycle is `>= base` (the next cycle to
//! be drained) and `< base + capacity`, so a bucket only ever holds entries
//! for a single cycle.

use noc_types::Cycle;

/// Minimum bucket count; covers the default hop latencies (≤ 2–3 cycles)
/// without growth.
const MIN_SLOTS: usize = 8;

/// A timing wheel holding `(arrival, payload)` entries.
#[derive(Clone, Debug)]
pub struct Inbox<T> {
    /// `slots[c & (slots.len() - 1)]` holds the entries due at cycle `c`.
    slots: Vec<Vec<(Cycle, T)>>,
    /// Total buffered entries.
    len: usize,
    /// The earliest cycle that has not been drained yet.
    base: Cycle,
}

impl<T> Default for Inbox<T> {
    fn default() -> Self {
        Inbox::new()
    }
}

impl<T> Inbox<T> {
    pub fn new() -> Inbox<T> {
        Inbox {
            slots: (0..MIN_SLOTS).map(|_| Vec::new()).collect(),
            len: 0,
            base: 0,
        }
    }

    /// Number of buffered entries.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn slot_of(&self, arrival: Cycle) -> usize {
        (arrival & (self.slots.len() as Cycle - 1)) as usize
    }

    /// Queues `item` for delivery at `arrival`. Arrivals must not predate
    /// the wheel's current cycle (`base`): the engine always schedules at
    /// least one cycle ahead (`router_latency >= 1`).
    pub fn push(&mut self, arrival: Cycle, item: T) {
        debug_assert!(
            arrival >= self.base,
            "arrival {arrival} before wheel base {}",
            self.base
        );
        if arrival - self.base >= self.slots.len() as Cycle {
            self.grow(arrival);
        }
        let s = self.slot_of(arrival);
        self.slots[s].push((arrival, item));
        self.len += 1;
    }

    /// Doubles capacity until `arrival` fits, re-bucketing every entry.
    /// Same-cycle entries stay together in one bucket in their original
    /// order, so FIFO-within-cycle survives growth.
    fn grow(&mut self, arrival: Cycle) {
        let needed = (arrival - self.base + 1).next_power_of_two() as usize;
        let old = std::mem::replace(
            &mut self.slots,
            (0..needed.max(MIN_SLOTS * 2)).map(|_| Vec::new()).collect(),
        );
        for bucket in old {
            for (c, item) in bucket {
                let s = self.slot_of(c);
                self.slots[s].push((c, item));
            }
        }
    }

    /// Moves every entry due at `now` into `out`, preserving push order, and
    /// advances the wheel. Must be called with non-decreasing `now` (the
    /// engine drains every cycle).
    pub fn drain_due_into(&mut self, now: Cycle, out: &mut Vec<T>) {
        debug_assert!(now >= self.base.saturating_sub(1) || self.len == 0);
        self.base = now + 1;
        let s = self.slot_of(now);
        let bucket = &mut self.slots[s];
        self.len -= bucket.len();
        for (c, item) in bucket.drain(..) {
            debug_assert_eq!(c, now, "stale entry in wheel bucket");
            out.push(item);
        }
    }

    /// Visits every entry due exactly at `at` (a future cycle); entries for
    /// which `f` returns `Some(new_arrival)` are re-timed to that cycle.
    /// Used by TFC's express bypass, which accelerates in-flight head flits.
    /// Re-timed entries append to their new bucket in visit order.
    pub fn retime_due_at<F: FnMut(&T) -> Option<Cycle>>(&mut self, at: Cycle, mut f: F) {
        let s = self.slot_of(at);
        let mut moved: Vec<(Cycle, T)> = Vec::new();
        let bucket = &mut self.slots[s];
        let mut k = 0;
        while k < bucket.len() {
            debug_assert_eq!(bucket[k].0, at, "stale entry in wheel bucket");
            match f(&bucket[k].1) {
                Some(new_arrival) => {
                    let (_, item) = bucket.remove(k);
                    moved.push((new_arrival, item));
                }
                None => k += 1,
            }
        }
        self.len -= moved.len();
        for (c, item) in moved {
            self.push(c, item);
        }
    }

    /// The earliest arrival cycle among the buffered entries, or `None`
    /// when the wheel is empty. Idle-cycle skipping uses this as a jump
    /// horizon: a quiescent engine may fast-forward its clock to (never
    /// past) the minimum `next_due` over all wheels, because no bucket
    /// holds anything due on the skipped cycles. O(capacity) scan — only
    /// called when the engine is otherwise quiet.
    pub fn next_due(&self) -> Option<Cycle> {
        if self.len == 0 {
            return None;
        }
        self.slots
            .iter()
            .flat_map(|b| b.iter().map(|&(c, _)| c))
            .min()
    }

    /// Iterates all buffered entries as `(arrival, &payload)`. Order across
    /// cycles is unspecified; within one cycle it is push order.
    pub fn iter(&self) -> impl Iterator<Item = (Cycle, &T)> {
        self.slots
            .iter()
            .flat_map(|b| b.iter().map(|(c, item)| (*c, item)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_at_exact_cycles() {
        let mut w: Inbox<u32> = Inbox::new();
        w.push(3, 30);
        w.push(1, 10);
        w.push(2, 20);
        let mut out = Vec::new();
        for now in 0..=3 {
            w.drain_due_into(now, &mut out);
        }
        assert_eq!(out, vec![10, 20, 30]);
        assert!(w.is_empty());
    }

    #[test]
    fn fifo_within_cycle() {
        // Same-cycle entries come out in push order — the guarantee the
        // old swap_remove compaction did not give.
        let mut w: Inbox<u32> = Inbox::new();
        for i in 0..10 {
            w.push(5, i);
        }
        let mut out = Vec::new();
        for now in 0..=5 {
            w.drain_due_into(now, &mut out);
        }
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn grows_past_the_initial_horizon() {
        let mut w: Inbox<u32> = Inbox::new();
        w.push(2, 2);
        w.push(100, 100); // far beyond MIN_SLOTS
        w.push(7, 7);
        assert_eq!(w.len(), 3);
        let mut out = Vec::new();
        for now in 0..=100 {
            w.drain_due_into(now, &mut out);
        }
        assert_eq!(out, vec![2, 7, 100]);
    }

    #[test]
    fn growth_preserves_same_cycle_order() {
        let mut w: Inbox<u32> = Inbox::new();
        for i in 0..4 {
            w.push(6, i);
        }
        w.push(200, 999); // forces growth and re-bucketing
        let mut out = Vec::new();
        for now in 0..=6 {
            w.drain_due_into(now, &mut out);
        }
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn retime_moves_matching_entries() {
        let mut w: Inbox<&'static str> = Inbox::new();
        w.push(4, "slow");
        w.push(4, "fast");
        w.push(4, "slow2");
        w.retime_due_at(4, |s| if *s == "fast" { Some(2) } else { None });
        let mut at2 = Vec::new();
        let mut out = Vec::new();
        for now in 0..=4 {
            w.drain_due_into(now, &mut out);
            if now == 2 {
                at2 = out.clone();
            }
        }
        assert_eq!(at2, vec!["fast"]);
        assert_eq!(out, vec!["fast", "slow", "slow2"]);
        assert!(w.is_empty());
    }

    #[test]
    fn steady_state_reuses_buckets() {
        let mut w: Inbox<u64> = Inbox::new();
        let mut out = Vec::new();
        for now in 0..1000u64 {
            w.push(now + 2, now);
            w.drain_due_into(now, &mut out);
        }
        assert_eq!(out.len(), 998);
        assert_eq!(w.len(), 2);
        assert_eq!(w.slots.len(), MIN_SLOTS, "no growth for small horizons");
    }
}

/// Property tests: the wheel must be observationally identical to the naive
/// flat-`Vec` inbox it replaced — same delivery cycles, same FIFO order
/// within a cycle — under arbitrary interleavings of pushes and drains,
/// including horizons that force growth and schedules that wrap the wheel
/// many times over.
#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        /// Random schedule vs the naive model. Each op either pushes an
        /// entry `0..24` cycles ahead of the current cycle (beyond the
        /// 8-slot minimum wheel, so growth and re-bucketing happen
        /// constantly) or drains the current cycle and advances — i.e.
        /// pushes interleave with drains exactly as in the engine's cycle
        /// loop. The model is a push-ordered `Vec` drained by a stable
        /// linear scan, so comparing full output sequences checks both
        /// delivery cycles and FIFO-within-cycle.
        fn wheel_matches_naive_vec_model(ops in prop::collection::vec(0u64..32, 1..300)) {
            let mut w: Inbox<usize> = Inbox::new();
            let mut model: Vec<(Cycle, usize)> = Vec::new();
            let mut now: Cycle = 0;
            let mut next_id = 0usize;
            let mut got: Vec<usize> = Vec::new();
            let mut want: Vec<usize> = Vec::new();
            let drain_model = |model: &mut Vec<(Cycle, usize)>, now: Cycle,
                                   want: &mut Vec<usize>| {
                let mut i = 0;
                while i < model.len() {
                    if model[i].0 == now {
                        want.push(model.remove(i).1);
                    } else {
                        i += 1;
                    }
                }
            };
            for op in ops {
                if op >= 24 {
                    w.drain_due_into(now, &mut got);
                    drain_model(&mut model, now, &mut want);
                    prop_assert_eq!(&got, &want, "divergence at cycle {}", now);
                    prop_assert_eq!(w.len(), model.len());
                    now += 1;
                } else {
                    let arrival = now + op;
                    w.push(arrival, next_id);
                    model.push((arrival, next_id));
                    next_id += 1;
                }
            }
            // Flush: drain far enough to deliver every pending entry.
            for _ in 0..32 {
                w.drain_due_into(now, &mut got);
                drain_model(&mut model, now, &mut want);
                now += 1;
            }
            prop_assert_eq!(got, want);
            prop_assert!(w.is_empty());
            prop_assert!(model.is_empty());
        }

        #[test]
        /// Same-cycle FIFO survives arbitrary growth points: entries pushed
        /// for one cycle interleave with far-future pushes (each forcing a
        /// re-bucketing) and still drain in push order.
        fn fifo_within_cycle_survives_growth(
            (target, far) in (1u64..16, prop::collection::vec(16u64..4096, 0..8)),
        ) {
            let mut w: Inbox<u64> = Inbox::new();
            let mut far_it = far.iter();
            for i in 0..12u64 {
                w.push(target, i);
                if let Some(&f) = far_it.next() {
                    w.push(target + f, 1000 + f); // may trigger growth
                }
            }
            let mut out = Vec::new();
            let mut same_cycle = Vec::new();
            for now in 0..=target {
                out.clear();
                w.drain_due_into(now, &mut out);
                if now == target {
                    same_cycle = out.clone();
                }
            }
            prop_assert_eq!(same_cycle, (0..12u64).collect::<Vec<_>>());
        }

        #[test]
        /// `retime_due_at` conserves entries: whatever subset is
        /// accelerated, every id is delivered exactly once, accelerated
        /// ones at their new cycle.
        fn retime_delivers_every_entry_once(
            (at, delta, mask) in (2u64..20, 1u64..5, 0u32..256),
        ) {
            let mut w: Inbox<u32> = Inbox::new();
            for i in 0..8u32 {
                w.push(at, i);
            }
            let early = at - delta.min(at - 1);
            w.retime_due_at(at, |&i| {
                if mask & (1 << i) != 0 { Some(early) } else { None }
            });
            prop_assert_eq!(w.len(), 8);
            let mut delivered: Vec<(Cycle, u32)> = Vec::new();
            let mut out = Vec::new();
            for now in 0..=at {
                out.clear();
                w.drain_due_into(now, &mut out);
                delivered.extend(out.iter().map(|&i| (now, i)));
            }
            prop_assert!(w.is_empty());
            let mut ids: Vec<u32> = delivered.iter().map(|&(_, i)| i).collect();
            ids.sort_unstable();
            prop_assert_eq!(ids, (0..8u32).collect::<Vec<_>>());
            for (cycle, i) in delivered {
                let expect = if mask & (1 << i) != 0 { early } else { at };
                prop_assert_eq!(cycle, expect, "id {} at wrong cycle", i);
            }
        }
    }
}
