//! Virtual channels.
//!
//! The paper's buffer organization (Table 4) is virtual cut-through with a
//! single packet per VC: a VC is allocated to a whole packet when its head
//! flit wins switch allocation upstream, and is freed when the tail flit
//! departs.

use noc_types::{Cycle, Flit, PacketId, PortId};
use std::collections::VecDeque;

/// Downstream allocation of an input VC: where flits of the resident packet
/// are being switched to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct VcRoute {
    /// Output port of this router.
    pub out_port: PortId,
    /// VC index at the downstream input port (or ejection-VC index when
    /// `out_port` is the local port).
    pub out_vc: usize,
    /// True when `out_vc` names an escape VC (routing stays west-first
    /// downstream).
    pub escape: bool,
}

/// One input virtual channel of a router.
#[derive(Clone, Debug, Default)]
pub struct VirtualChannel {
    /// Buffered flits, in packet order. With single-packet VCT at most one
    /// packet's flits are ever resident.
    pub buf: VecDeque<Flit>,
    /// The packet this VC is currently allocated to (set by the upstream
    /// router when it picked this VC, observed here when the head arrives;
    /// `Some` from head arrival until tail departure).
    pub resident: Option<PacketId>,
    /// Downstream route + VC chosen for the resident packet; `None` until
    /// VC allocation succeeds.
    pub route: Option<VcRoute>,
    /// True while the resident packet occupies this VC *as an escape VC*:
    /// its routing is restricted to west-first.
    pub is_escape_resident: bool,
    /// Output port chosen by route computation for the resident head; sticks
    /// until VC allocation succeeds (Garnet computes the route once per
    /// router visit).
    pub pending_port: Option<noc_types::PortId>,
    /// Cycle the current head flit arrived at the front of this VC with no
    /// grant yet — drives SPIN's deadlock-detection timeout and the watchdog.
    pub head_wait_since: Option<Cycle>,
    /// Number of flits of the resident packet that have already departed
    /// downstream (for virtual cut-through streaming).
    pub flits_sent: u8,
    /// True while a Free-Flow *stream* is capturing this VC (§3.11 wormhole
    /// upgrade): switch allocation skips it, and the SEEC mechanism pops
    /// arriving flits straight into the FF flight.
    pub ff_capture: bool,
}

impl VirtualChannel {
    /// True when the VC holds no flits and is not reserved by an in-flight
    /// packet — i.e. an upstream router may allocate it.
    pub fn is_free(&self) -> bool {
        self.buf.is_empty() && self.resident.is_none()
    }

    /// True when a head flit sits at the front and no downstream VC has been
    /// allocated yet.
    pub fn needs_route(&self) -> bool {
        self.route.is_none() && self.buf.front().is_some_and(|f| f.kind.is_head())
    }

    /// The flit that would depart next, if any.
    pub fn front(&self) -> Option<&Flit> {
        self.buf.front()
    }

    /// True when *all* flits of the resident packet are buffered here (the
    /// packet is not streaming across the upstream link). Seekers only
    /// upgrade, and forced moves only relocate, fully-buffered packets.
    pub fn packet_fully_buffered(&self) -> bool {
        match self.buf.front() {
            Some(f) => f.kind.is_head() && self.buf.len() == f.len as usize,
            None => false,
        }
    }

    /// Accepts an arriving flit. Sets `resident` on head arrival.
    pub fn push(&mut self, flit: Flit) {
        if flit.kind.is_head() {
            debug_assert!(
                self.is_free(),
                "head flit arriving into a non-free VC violates VCT"
            );
            self.resident = Some(flit.packet);
            self.is_escape_resident = flit.escape;
            self.flits_sent = 0;
        } else {
            debug_assert_eq!(
                self.resident,
                Some(flit.packet),
                "interleaved packets in VC"
            );
        }
        self.buf.push_back(flit);
    }

    /// Removes the front flit after it won switch traversal. Frees the VC on
    /// tail departure and returns `true` in that case (caller returns a
    /// credit upstream).
    pub fn pop_front_sent(&mut self) -> (Flit, bool) {
        let flit = self.buf.pop_front().expect("pop from empty VC");
        self.head_wait_since = None;
        self.flits_sent += 1;
        let freed = flit.kind.is_tail();
        if freed {
            self.release();
        }
        (flit, freed)
    }

    /// Drains the *entire* resident packet out of the VC (used when a seeker
    /// upgrades it to Free Flow, or a subactive scheme relocates it).
    /// The VC becomes free. Panics if the packet is not fully buffered.
    pub fn drain_packet(&mut self) -> Vec<Flit> {
        assert!(
            self.packet_fully_buffered(),
            "draining a VC whose packet is still streaming"
        );
        let flits: Vec<Flit> = self.buf.drain(..).collect();
        self.release();
        flits
    }

    /// Clears allocation state, making the VC free for the next packet.
    fn release(&mut self) {
        self.resident = None;
        self.route = None;
        self.is_escape_resident = false;
        self.pending_port = None;
        self.head_wait_since = None;
        self.flits_sent = 0;
        self.ff_capture = false;
    }

    /// Pops every currently-buffered flit of a captured VC (wormhole FF
    /// streaming). Releases the VC once the tail has been taken; until then
    /// the VC stays resident so trailing flits keep arriving into it.
    pub fn take_captured(&mut self) -> Vec<Flit> {
        debug_assert!(self.ff_capture);
        let mut out = Vec::with_capacity(self.buf.len());
        let mut saw_tail = false;
        while let Some(f) = self.buf.pop_front() {
            saw_tail |= f.kind.is_tail();
            out.push(f);
        }
        if saw_tail {
            self.release();
        }
        out
    }

    /// Installs a full packet into an idle VC (used by forced-move schemes:
    /// SWAP, DRAIN, SPIN rotations).
    pub fn install_packet(&mut self, flits: Vec<Flit>) {
        assert!(self.is_free(), "installing into a busy VC");
        assert!(!flits.is_empty());
        assert!(flits[0].kind.is_head());
        self.resident = Some(flits[0].packet);
        self.route = None;
        self.is_escape_resident = flits[0].escape;
        self.pending_port = None;
        self.flits_sent = 0;
        self.buf.extend(flits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_types::{FlitKind, MessageClass, NodeId, Packet, PacketId};

    fn make_flits(id: u64, len: u8) -> Vec<Flit> {
        let p = Packet {
            id: PacketId(id),
            src: NodeId(0),
            dest: NodeId(3),
            class: MessageClass(0),
            len_flits: len,
            birth: 0,
            measured: true,
        };
        (0..len).map(|s| Flit::from_packet(&p, s, 1)).collect()
    }

    #[test]
    fn vct_lifecycle() {
        let mut vc = VirtualChannel::default();
        assert!(vc.is_free());
        for f in make_flits(1, 3) {
            vc.push(f);
        }
        assert!(!vc.is_free());
        assert!(vc.needs_route());
        assert!(vc.packet_fully_buffered());
        assert_eq!(vc.resident, Some(PacketId(1)));

        let (h, freed) = vc.pop_front_sent();
        assert_eq!(h.kind, FlitKind::Head);
        assert!(!freed);
        let (_, freed) = vc.pop_front_sent();
        assert!(!freed);
        let (t, freed) = vc.pop_front_sent();
        assert_eq!(t.kind, FlitKind::Tail);
        assert!(freed);
        assert!(vc.is_free());
        assert_eq!(vc.flits_sent, 0);
    }

    #[test]
    fn partial_packet_is_not_fully_buffered() {
        let mut vc = VirtualChannel::default();
        let flits = make_flits(2, 5);
        vc.push(flits[0]);
        vc.push(flits[1]);
        assert!(!vc.packet_fully_buffered());
        vc.push(flits[2]);
        vc.push(flits[3]);
        vc.push(flits[4]);
        assert!(vc.packet_fully_buffered());
    }

    #[test]
    fn drain_and_install_roundtrip() {
        let mut vc = VirtualChannel::default();
        for f in make_flits(3, 5) {
            vc.push(f);
        }
        let flits = vc.drain_packet();
        assert_eq!(flits.len(), 5);
        assert!(vc.is_free());

        let mut other = VirtualChannel::default();
        other.install_packet(flits);
        assert!(other.packet_fully_buffered());
        assert_eq!(other.resident, Some(PacketId(3)));
    }

    #[test]
    #[should_panic(expected = "draining a VC")]
    fn drain_streaming_packet_panics() {
        let mut vc = VirtualChannel::default();
        let flits = make_flits(4, 5);
        vc.push(flits[0]);
        let _ = vc.drain_packet();
    }

    #[test]
    fn single_flit_packet_frees_immediately() {
        let mut vc = VirtualChannel::default();
        for f in make_flits(5, 1) {
            vc.push(f);
        }
        assert!(vc.packet_fully_buffered());
        let (f, freed) = vc.pop_front_sent();
        assert_eq!(f.kind, FlitKind::HeadTail);
        assert!(freed);
    }
}
