//! Runtime invariant checking (the `check-invariants` feature).
//!
//! When enabled, [`Sim::step`](crate::Sim::step) sweeps the whole network
//! state at the end of every cycle and records violations of the structural
//! invariants the simulator's correctness rests on:
//!
//! * **VC occupancy bounds** — an input VC never holds more flits than its
//!   capacity (one packet under VCT, `vc_depth` under wormhole), and all its
//!   flits belong to the resident packet.
//! * **Credit conservation** — every router's per-VC in-flight counter
//!   equals the number of flits actually on the wire toward that VC.
//! * **Claim consistency** — a claimed downstream VC is only ever occupied
//!   by the claiming packet; ejection VCs never interleave packets.
//! * **Flit conservation** (*strict* mode) — every injected flit is either
//!   still in the network or has been consumed: `injected = consumed +
//!   in-flight`, exactly, every cycle.
//! * **Hop-count ceiling** (*strict* mode) — a delivered packet never took
//!   more link hops than its Manhattan distance (all base routing
//!   algorithms are minimal).
//!
//! Strict mode ([`InvariantState::strict`]) is opt-in because mechanisms
//! that take custody of packets (SEEC Free Flow, SPIN, SWAP, DRAIN) move
//! flits outside the `Network`-visible buffers and deliberately exceed
//! minimal hop counts; it is sound for `NoMechanism`, escape-VC and TFC
//! runs, where the network alone owns every flit.

use crate::network::Network;
use crate::stats::DeliveredPacket;
use noc_types::{BufferOrg, Direction, NodeId};

/// Maximum number of violation messages retained (the count keeps rising).
const MAX_RECORDED: usize = 32;

/// Counters and findings of the invariant layer. Lives in
/// [`Network`](crate::network::Network) when `check-invariants` is enabled.
#[derive(Clone, Debug, Default)]
pub struct InvariantState {
    /// Enables flit conservation and the hop ceiling — sound only when no
    /// mechanism takes custody of flits (see module docs).
    pub strict: bool,
    /// Flits pushed onto the injection link since construction.
    pub injected_flits: u64,
    /// Flits of consumed packets since construction.
    pub consumed_flits: u64,
    /// First [`MAX_RECORDED`] violation messages.
    pub violations: Vec<String>,
    /// Total violations observed (may exceed `violations.len()`).
    pub violation_count: u64,
    /// Number of end-of-cycle sweeps performed.
    pub sweeps: u64,
}

impl InvariantState {
    fn record(&mut self, msg: String) {
        self.violation_count += 1;
        if self.violations.len() < MAX_RECORDED {
            self.violations.push(msg);
        }
    }

    /// Bookkeeping at packet consumption; checks the hop ceiling in strict
    /// mode. `detours_legal` suspends the ceiling — set on degraded meshes,
    /// where routing around dead links legitimately exceeds the Manhattan
    /// distance (transient-fault retransmissions never add hops, so the
    /// ceiling stays in force for them).
    pub fn on_consume(&mut self, d: &DeliveredPacket, cols: u8, detours_legal: bool) {
        self.consumed_flits += u64::from(d.len_flits);
        if self.strict && !detours_legal {
            let s = d.src.to_coord(cols);
            let t = d.dest.to_coord(cols);
            let manhattan = s.x.abs_diff(t.x) as u16 + s.y.abs_diff(t.y) as u16;
            if u16::from(d.hops) > manhattan {
                self.record(format!(
                    "hop ceiling: packet {:?} {}->{} took {} hops, Manhattan {}",
                    d.id, d.src.0, d.dest.0, d.hops, manhattan
                ));
            }
        }
    }

    /// Panics with every recorded violation if any sweep found one.
    pub fn assert_clean(&self) {
        assert!(
            self.violation_count == 0,
            "{} invariant violations over {} sweeps:\n{}",
            self.violation_count,
            self.sweeps,
            self.violations.join("\n")
        );
    }
}

impl Network {
    /// End-of-cycle invariant sweep (see module docs). Findings accumulate
    /// in [`Network::inv`]; call [`InvariantState::assert_clean`] to fail
    /// loudly.
    pub fn check_invariants(&mut self) {
        let mut found: Vec<String> = Vec::new();
        let now = self.cycle;
        let wormhole = self.cfg.buffer_org == BufferOrg::Wormhole;
        let depth = self.cfg.vc_depth as usize;

        for (i, r) in self.routers.iter().enumerate() {
            // Occupancy + single-resident packet per input VC.
            for (p, port) in r.inputs.iter().enumerate() {
                for (v, vc) in port.vcs.iter().enumerate() {
                    if let Some(front) = vc.buf.front() {
                        let cap = if wormhole { depth } else { front.len as usize };
                        if vc.buf.len() > cap {
                            found.push(format!(
                                "occupancy: router {i} in[{p}] vc {v} holds {} flits, cap {cap}",
                                vc.buf.len()
                            ));
                        }
                        match vc.resident {
                            Some(res) => {
                                if vc.buf.iter().any(|f| f.packet != res) {
                                    found.push(format!(
                                        "residency: router {i} in[{p}] vc {v} mixes packets"
                                    ));
                                }
                            }
                            None => found.push(format!(
                                "residency: router {i} in[{p}] vc {v} buffers flits with no resident"
                            )),
                        }
                    }
                }
            }
            // Credit conservation + claim consistency per cardinal output.
            for dir in Direction::CARDINAL {
                let p = dir.index();
                let out = &r.outputs[p];
                let Some(nb) = out.neighbor else { continue };
                let their_in = dir.opposite().index();
                let down = &self.routers[nb.idx()].inputs[their_in];
                for v in 0..out.inflight.len() {
                    // Under retransmission, flits between send and
                    // acceptance live in the link-layer windows, not the
                    // inboxes; the counter must match that view instead.
                    let flying = match self.fault.as_ref().and_then(|f| f.retrans.as_ref()) {
                        Some(rt) => rt.wire_in_flight_vc(i, p, v),
                        None => self.inbox_router[nb.idx()]
                            .iter()
                            .filter(|(_, (port, f))| *port == their_in && f.vc as usize == v)
                            .count(),
                    };
                    if usize::from(out.inflight[v]) != flying {
                        found.push(format!(
                            "credits: router {i} out[{p}] vc {v} inflight {} but {flying} on the wire",
                            out.inflight[v]
                        ));
                    }
                    if let Some(pkt) = out.vc_claimed[v] {
                        if down.vcs[v].resident.is_some_and(|res| res != pkt) {
                            found.push(format!(
                                "claims: router {i} out[{p}] vc {v} claimed by {pkt:?} \
                                 but occupied by {:?}",
                                down.vcs[v].resident
                            ));
                        }
                    }
                }
            }
        }
        // NIC side: injection claims and ejection VC integrity.
        for (i, nic) in self.nics.iter().enumerate() {
            let lp = Direction::Local.index();
            for (v, claim) in nic.local_claims.iter().enumerate() {
                if let Some(pkt) = *claim {
                    let down = &self.routers[i].inputs[lp].vcs[v];
                    if down.resident.is_some_and(|res| res != pkt) {
                        found.push(format!(
                            "claims: nic {i} local vc {v} claimed by {pkt:?} \
                             but occupied by {:?}",
                            down.resident
                        ));
                    }
                }
            }
            for (e, ej) in nic.ejection.iter().enumerate() {
                if let Some(front) = ej.buf.front() {
                    if ej.buf.iter().any(|f| f.packet != front.packet) {
                        found.push(format!("ejection: nic {i} ej vc {e} mixes packets"));
                    }
                }
            }
        }
        // Occupancy-counter coherence: the running per-port counts that gate
        // the empty router/port skips in router compute must match the
        // buffers.
        for (i, r) in self.routers.iter().enumerate() {
            let tracked = self.buffered_count(i);
            for (p, port) in r.inputs.iter().enumerate() {
                let actual: u16 = port.vcs.iter().map(|vc| vc.buf.len() as u16).sum();
                if tracked[p] != actual {
                    found.push(format!(
                        "occupancy counter: router {i} in[{p}] tracked {} but buffers hold \
                         {actual}",
                        tracked[p]
                    ));
                }
            }
        }
        // Credit-snapshot coherence: a router whose dirty bit is clear claims
        // "nothing my snapshot reads has changed since my last refresh" — so
        // a fresh recompute must match exactly. Dirty routers are refreshed
        // before the next SA pass and are skipped here. The recompute runs
        // in place on the SoA lanes and the original is restored afterwards,
        // so the sweep itself never perturbs engine state.
        for i in 0..self.routers.len() {
            if self.credit_is_dirty(i) {
                continue;
            }
            let (free, slots) = self.credits.router_lanes(i);
            self.credits.recompute_router(
                &self.routers,
                &self.nics,
                i,
                wormhole,
                self.cfg.vc_depth,
                self.fault.as_ref().map(|f| &f.dead),
            );
            let (fresh_free, fresh_slots) = self.credits.router_lanes(i);
            if fresh_free != free || (wormhole && fresh_slots != slots) {
                found.push(format!(
                    "credit snapshot: router {i} marked clean but snapshot is stale"
                ));
            }
            self.credits.restore_router_lanes(i, &free, &slots);
        }
        // Strict: exact flit conservation across the whole network.
        if self.inv.strict {
            let in_network = self.flits_in_network() as u64
                + self.inbox_nic.iter().map(|b| b.len() as u64).sum::<u64>()
                + self
                    .nics
                    .iter()
                    .flat_map(|n| n.ejection.iter())
                    .map(|e| e.buf.len() as u64)
                    .sum::<u64>();
            // Flits removed by the chaos stranded-purge left the network by
            // design (their route was severed); they are accounted for
            // explicitly rather than silently lost.
            let accounted = self.inv.consumed_flits + in_network + self.stats.chaos_purged_flits;
            if self.inv.injected_flits != accounted {
                found.push(format!(
                    "conservation: injected {} but consumed {} + in-network {} + purged {} \
                     = {accounted}",
                    self.inv.injected_flits,
                    self.inv.consumed_flits,
                    in_network,
                    self.stats.chaos_purged_flits
                ));
            }
        }
        self.inv.sweeps += 1;
        for msg in found {
            self.inv.record(format!("cycle {now}: {msg}"));
        }
    }
}

/// Manhattan-distance helper reused by tests.
pub fn manhattan(a: NodeId, b: NodeId, cols: u8) -> u16 {
    let (s, t) = (a.to_coord(cols), b.to_coord(cols));
    s.x.abs_diff(t.x) as u16 + s.y.abs_diff(t.y) as u16
}
