//! The VC-based mesh router: route computation, combined VA+SA (1-cycle
//! pipeline), and the data structures the network engine drives.

use crate::routing::{candidates, west_first, Candidates};
use crate::soa::CreditView;
use crate::vc::VirtualChannel;
use noc_types::{
    BaseRouting, Coord, Direction, Flit, NetConfig, NodeId, PacketId, PortId, NUM_PORTS,
};
use rand::rngs::SmallRng;
use rand::Rng;

/// One router input port and its virtual channels.
#[derive(Clone, Debug)]
pub struct InputPort {
    pub vcs: Vec<VirtualChannel>,
}

/// One router output port: the neighbour it connects to and this router's
/// outstanding claims on the downstream input VCs.
///
/// A claim is set when this router (the unique upstream of that input port)
/// allocates a downstream VC to a packet, and cleared when the packet's tail
/// flit is sent. Claims close the window between allocation and the head
/// flit's arrival during which the downstream VC still *looks* empty.
#[derive(Clone, Debug)]
pub struct OutputPort {
    /// Downstream router for cardinal ports; `None` for the local port and
    /// for ports that would leave the mesh.
    pub neighbor: Option<NodeId>,
    /// Per-downstream-VC claims. For the local port this is sized and
    /// indexed like the NIC's flattened ejection VCs.
    pub vc_claimed: Vec<Option<PacketId>>,
    /// Flits sent toward each downstream VC that have not yet arrived
    /// (wormhole flit-credit accounting; unused for the local port).
    pub inflight: Vec<u8>,
}

/// A mesh router.
#[derive(Clone, Debug)]
pub struct Router {
    pub id: NodeId,
    pub coord: Coord,
    pub inputs: Vec<InputPort>,
    pub outputs: Vec<OutputPort>,
    /// Per-input-port round-robin pointer over VCs (switch-allocation stage 1).
    pub sa_in_rr: [usize; NUM_PORTS],
    /// Per-output-port round-robin pointer over input ports (stage 2).
    pub sa_out_rr: [usize; NUM_PORTS],
}

impl Router {
    pub fn new(id: NodeId, cfg: &NetConfig) -> Router {
        let coord = id.to_coord(cfg.cols);
        let vcs = cfg.vcs_per_port();
        let inputs = (0..NUM_PORTS)
            .map(|_| InputPort {
                vcs: vec![VirtualChannel::default(); vcs],
            })
            .collect();
        let outputs = Direction::ALL
            .iter()
            .map(|&d| {
                let neighbor = if d.is_cardinal() {
                    d.step(coord, cfg.cols, cfg.rows)
                        .map(|c| c.to_node(cfg.cols))
                } else {
                    None
                };
                let claim_slots = if d == Direction::Local {
                    cfg.classes as usize * cfg.ejection_vcs_per_class as usize
                } else {
                    vcs
                };
                OutputPort {
                    neighbor,
                    vc_claimed: vec![None; claim_slots],
                    inflight: vec![0; claim_slots],
                }
            })
            .collect();
        Router {
            id,
            coord,
            inputs,
            outputs,
            sa_in_rr: [0; NUM_PORTS],
            sa_out_rr: [0; NUM_PORTS],
        }
    }

    /// Total buffered flits (diagnostics / invariant checks).
    pub fn buffered_flits(&self) -> usize {
        self.inputs
            .iter()
            .flat_map(|p| p.vcs.iter())
            .map(|vc| vc.buf.len())
            .sum()
    }
}

/// A granted switch-allocation move, produced by [`decide_router`] and
/// applied by the network engine.
#[derive(Clone, Copy, Debug)]
pub struct Move {
    pub node: usize,
    pub in_port: PortId,
    pub in_vc: usize,
    pub out_port: PortId,
    /// `Some((out_vc, escape))` when this move also performs VC allocation
    /// (head flits); `None` for body/tail flits following an allocated route.
    pub alloc: Option<(usize, bool)>,
}

/// Route computation: picks the output port for the packet in `(in_port,vc)`.
/// Called once per router visit (the choice then sticks, as in Garnet).
/// Adaptive routing consults the credit view for free-VC counts; oblivious
/// picks uniformly at random; XY/west-first are (near-)deterministic.
///
/// On a degraded mesh (`mask` present) the candidate set becomes the mask's
/// distance-decreasing live directions — the detours around dead links —
/// intersected with the algorithm's own candidates where that intersection
/// is non-empty (so XY stays XY wherever its path is live). Degraded
/// configurations are certified routable up front, so the masked set is
/// never empty.
#[allow(clippy::too_many_arguments)]
pub fn route_compute(
    algo: BaseRouting,
    from: Coord,
    dest: Coord,
    vnet: u8,
    down: CreditView<'_>,
    mask: Option<&crate::fault::RouteMask>,
    rng: &mut SmallRng,
) -> PortId {
    debug_assert_ne!(from, dest);
    let cands = match mask {
        None => candidates(algo, from, dest),
        Some(m) => {
            let masked = m.candidates(from, dest);
            let both: Candidates = candidates(algo, from, dest)
                .as_slice()
                .iter()
                .copied()
                .filter(|d| masked.contains(*d))
                .collect();
            if both.is_empty() {
                masked
            } else {
                both
            }
        }
    };
    assert!(
        !cands.is_empty(),
        "no live route from {from} to {dest}: degraded mesh not certified"
    );
    let slice = cands.as_slice();
    if slice.len() == 1 {
        return slice[0].index();
    }
    match algo {
        BaseRouting::AdaptiveMinimal | BaseRouting::WestFirst => {
            // Weight by downstream free VCs; random tie-break. Allocation-
            // free: this runs once per waiting head per cycle.
            let mut tied = [Direction::Local; 4];
            let mut n = 0;
            let mut best = 0usize;
            for &d in slice {
                let free = down.free_normal(d.index(), vnet);
                if n == 0 || free > best {
                    best = free;
                    tied[0] = d;
                    n = 1;
                } else if free == best {
                    tied[n] = d;
                    n += 1;
                }
            }
            tied[rng.gen_range(0..n)].index()
        }
        _ => slice[rng.gen_range(0..slice.len())].index(),
    }
}

/// Attempted VC allocation for a head flit whose output port has been chosen
/// (`pending`). Returns `(out_port, out_vc, escape)`.
///
/// Duato escape fallback: when no normal VC is free on the pending port, the
/// packet may instead enter the *escape VC* of any west-first-legal
/// productive port (and then stays in escape VCs until ejection).
pub fn try_alloc(
    flit: &Flit,
    in_escape: bool,
    pending: PortId,
    here: Coord,
    cfg: &NetConfig,
    down: CreditView<'_>,
) -> Option<(PortId, usize, bool)> {
    let vnet = cfg.vnet_of(flit.class);
    if in_escape {
        // Restricted to west-first candidates, escape VCs only.
        let dest = flit.dest.to_coord(cfg.cols);
        for &d in west_first(here, dest).as_slice() {
            if let Some(vc) = down.free_escape(d.index(), vnet) {
                return Some((d.index(), vc, true));
            }
        }
        return None;
    }
    if let Some(vc) = down.first_free_normal(pending, vnet) {
        return Some((pending, vc, false));
    }
    if cfg.routing.has_escape() {
        let dest = flit.dest.to_coord(cfg.cols);
        for &d in west_first(here, dest).as_slice() {
            if let Some(vc) = down.free_escape(d.index(), vnet) {
                return Some((d.index(), vc, true));
            }
        }
    }
    None
}

/// Attempted ejection-VC allocation for a head flit at its destination
/// router. The local-port lane mask is indexed like flattened NIC ejection
/// VCs.
pub fn try_alloc_ejection(flit: &Flit, cfg: &NetConfig, down: CreditView<'_>) -> Option<usize> {
    let per = cfg.ejection_vcs_per_class as usize;
    let s = flit.class.idx() * per;
    down.first_free_in(Direction::Local.index(), s, per)
}

/// The west-first candidate set from `here` toward `dest` (exposed for the
/// escape-VC and TFC baselines).
pub fn wf_candidates(here: Coord, dest: Coord) -> Candidates {
    west_first(here, dest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::soa::CreditSoA;
    use noc_types::{MessageClass, Packet, PacketId, RoutingAlgo};
    use rand::SeedableRng;

    fn cfg() -> NetConfig {
        NetConfig::synth(4, 2)
    }

    fn port_lanes(cfg: &NetConfig, p: usize) -> usize {
        if p == Direction::Local.index() {
            cfg.classes as usize * cfg.ejection_vcs_per_class as usize
        } else {
            cfg.vcs_per_port()
        }
    }

    fn credits_all(cfg: &NetConfig, free: bool) -> CreditSoA {
        let mut soa = CreditSoA::new(cfg, 1);
        for p in 0..NUM_PORTS {
            for v in 0..port_lanes(cfg, p) {
                soa.set_free(0, p, v, free);
            }
        }
        soa
    }

    fn flit_to(dest: NodeId) -> Flit {
        let p = Packet {
            id: PacketId(1),
            src: NodeId(0),
            dest,
            class: MessageClass(0),
            len_flits: 1,
            birth: 0,
            measured: true,
        };
        Flit::from_packet(&p, 0, 0)
    }

    #[test]
    fn router_construction_wires_neighbors() {
        let c = cfg();
        let r = Router::new(NodeId(5), &c); // coord (1,1)
        assert_eq!(r.coord, Coord::new(1, 1));
        assert_eq!(
            r.outputs[Direction::North.index()].neighbor,
            Some(NodeId(1))
        );
        assert_eq!(
            r.outputs[Direction::South.index()].neighbor,
            Some(NodeId(9))
        );
        assert_eq!(r.outputs[Direction::East.index()].neighbor, Some(NodeId(6)));
        assert_eq!(r.outputs[Direction::West.index()].neighbor, Some(NodeId(4)));
        assert_eq!(r.outputs[Direction::Local.index()].neighbor, None);

        let corner = Router::new(NodeId(0), &c);
        assert_eq!(corner.outputs[Direction::North.index()].neighbor, None);
        assert_eq!(corner.outputs[Direction::West.index()].neighbor, None);
    }

    #[test]
    fn route_compute_xy_is_deterministic() {
        let c = cfg().with_routing(RoutingAlgo::Uniform(BaseRouting::Xy));
        let d = credits_all(&c, true);
        let mut rng = SmallRng::seed_from_u64(0);
        let p = route_compute(
            BaseRouting::Xy,
            Coord::new(0, 0),
            Coord::new(3, 2),
            0,
            d.view(0),
            None,
            &mut rng,
        );
        assert_eq!(p, Direction::East.index());
    }

    #[test]
    fn adaptive_prefers_less_congested_port() {
        let c = cfg();
        let mut d = credits_all(&c, true);
        // Congest East entirely; South stays free.
        for v in 0..c.vcs_per_port() {
            d.set_free(0, Direction::East.index(), v, false);
        }
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..20 {
            let p = route_compute(
                BaseRouting::AdaptiveMinimal,
                Coord::new(0, 0),
                Coord::new(2, 2),
                0,
                d.view(0),
                None,
                &mut rng,
            );
            assert_eq!(p, Direction::South.index());
        }
    }

    #[test]
    fn try_alloc_picks_first_free_normal_vc() {
        let c = cfg();
        let mut d = credits_all(&c, true);
        d.set_free(0, Direction::East.index(), 0, false);
        let f = flit_to(NodeId(3));
        let got = try_alloc(
            &f,
            false,
            Direction::East.index(),
            Coord::new(0, 0),
            &c,
            d.view(0),
        );
        assert_eq!(got, Some((Direction::East.index(), 1, false)));
    }

    #[test]
    fn escape_fallback_requires_west_first_legality() {
        let mut c = cfg();
        c.routing = RoutingAlgo::EscapeVc {
            normal: BaseRouting::AdaptiveMinimal,
        };
        // All normal VCs busy everywhere; only escape VCs free.
        let mut d = credits_all(&c, false);
        for p in 0..4 {
            d.set_free(0, p, c.vcs_per_port() - 1, true);
        }
        // Dest to the south-east: WF candidates are E and S.
        let f = flit_to(NodeId(10)); // (2,2) from (0,0)
        let got = try_alloc(
            &f,
            false,
            Direction::East.index(),
            Coord::new(0, 0),
            &c,
            d.view(0),
        );
        let (port, vc, esc) = got.unwrap();
        assert!(esc);
        assert_eq!(vc, c.vcs_per_port() - 1);
        assert!(port == Direction::East.index() || port == Direction::South.index());

        // Dest to the west: WF forces West.
        let f2 = flit_to(NodeId(4)); // (0,1) from coord (2,1)
        let got2 = try_alloc(
            &f2,
            false,
            Direction::West.index(),
            Coord::new(2, 1),
            &c,
            d.view(0),
        );
        assert_eq!(got2.unwrap().0, Direction::West.index());
    }

    #[test]
    fn escape_resident_stays_in_escape() {
        let mut c = cfg();
        c.routing = RoutingAlgo::EscapeVc {
            normal: BaseRouting::AdaptiveMinimal,
        };
        let d = credits_all(&c, true); // everything free
        let f = flit_to(NodeId(10));
        let got = try_alloc(
            &f,
            true,
            Direction::East.index(),
            Coord::new(0, 0),
            &c,
            d.view(0),
        );
        let (_, vc, esc) = got.unwrap();
        assert!(esc, "escape resident must stay in escape VCs");
        assert_eq!(vc, c.vcs_per_port() - 1);
    }

    #[test]
    fn ejection_alloc_is_class_scoped() {
        let c = NetConfig::full_system(4, 6, 2);
        let mut d = credits_all(&c, true);
        let mut f = flit_to(NodeId(0));
        f.class = MessageClass(3);
        d.set_free(0, Direction::Local.index(), 6, false);
        assert_eq!(try_alloc_ejection(&f, &c, d.view(0)), Some(7));
        d.set_free(0, Direction::Local.index(), 7, false);
        assert_eq!(try_alloc_ejection(&f, &c, d.view(0)), None);
    }
}
