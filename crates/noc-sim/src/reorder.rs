//! Point-to-point ordering support (§3.7).
//!
//! Free Flow can deliver a rescued packet ahead of earlier packets from the
//! same source (so can adaptive routing). Protocols that require
//! point-to-point ordering within a message class put a *reorder buffer* in
//! front of the consumer: packets surface strictly in per-(source, class)
//! send order, identified by a dense per-stream sequence number the sender
//! maintains (0, 1, 2, ...).

use crate::stats::DeliveredPacket;
use noc_types::{MessageClass, NodeId};
use std::collections::{BTreeMap, HashMap};

/// One destination's reorder buffer across all (source, class) streams.
#[derive(Debug, Default)]
pub struct ReorderBuffer {
    streams: HashMap<(NodeId, MessageClass), Stream>,
    held: usize,
}

#[derive(Debug, Default)]
struct Stream {
    /// Next sequence number to surface.
    next: u64,
    /// Held-back packets, keyed by sequence number.
    pending: BTreeMap<u64, DeliveredPacket>,
}

impl ReorderBuffer {
    pub fn new() -> Self {
        Self::default()
    }

    /// Offers a delivery carrying per-stream sequence number `seq`; returns
    /// every packet that is now in order (possibly none, possibly several),
    /// paired with its sequence number.
    ///
    /// The caller must feed every delivery of the streams it manages;
    /// sequence numbers within a (source, class) stream must be dense from 0.
    pub fn offer(&mut self, p: &DeliveredPacket, seq: u64) -> Vec<(u64, DeliveredPacket)> {
        let s = self.streams.entry((p.src, p.class)).or_default();
        debug_assert!(seq >= s.next, "duplicate or replayed sequence number");
        s.pending.insert(seq, *p);
        self.held += 1;
        let mut out = Vec::new();
        while let Some(pkt) = s.pending.remove(&s.next) {
            out.push((s.next, pkt));
            self.held -= 1;
            s.next += 1;
        }
        out
    }

    /// Packets currently held back waiting for predecessors.
    pub fn held(&self) -> usize {
        self.held
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_types::{Cycle, PacketId};

    fn pkt(id: u64, src: u16, eject: Cycle) -> DeliveredPacket {
        DeliveredPacket {
            id: PacketId(id),
            src: NodeId(src),
            dest: NodeId(9),
            class: MessageClass(0),
            len_flits: 1,
            birth: 0,
            inject: 0,
            eject,
            hops: 1,
            ff_upgrade: None,
            measured: true,
        }
    }

    #[test]
    fn reorder_restores_send_order() {
        let mut rb = ReorderBuffer::new();
        // Stream sent 0,1,2,3 — network delivers 1,3,0,2.
        assert!(rb.offer(&pkt(11, 2, 10), 1).is_empty());
        assert!(rb.offer(&pkt(13, 2, 11), 3).is_empty());
        let out = rb.offer(&pkt(10, 2, 12), 0);
        assert_eq!(out.iter().map(|(s, _)| *s).collect::<Vec<_>>(), vec![0, 1]);
        let out = rb.offer(&pkt(12, 2, 13), 2);
        assert_eq!(out.iter().map(|(s, _)| *s).collect::<Vec<_>>(), vec![2, 3]);
        assert_eq!(rb.held(), 0);
    }

    #[test]
    fn streams_are_independent() {
        let mut rb = ReorderBuffer::new();
        assert!(rb.offer(&pkt(5, 1, 1), 1).is_empty());
        // A different source's seq-0 surfaces immediately.
        let out = rb.offer(&pkt(6, 2, 2), 0);
        assert_eq!(out.len(), 1);
        assert_eq!(rb.held(), 1);
    }

    #[test]
    fn in_order_stream_passes_through() {
        let mut rb = ReorderBuffer::new();
        for seq in 0..5 {
            let out = rb.offer(&pkt(100 + seq, 3, seq), seq);
            assert_eq!(out.len(), 1);
            assert_eq!(out[0].0, seq);
        }
        assert_eq!(rb.held(), 0);
    }
}
