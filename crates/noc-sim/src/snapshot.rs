//! Compact state snapshot / restore over the live engine.
//!
//! The bounded model checker (`noc-model`) certifies *abstract* states; its
//! concrete counterpart needs to drive the real engine through candidate
//! traces and rewind — replaying a reachable-deadlock witness from several
//! branch points without rebuilding the [`Network`] each time. A
//! [`NetSnapshot`] captures every dynamic field of the engine (buffers,
//! in-flight inboxes, credits are recomputed, RNG, statistics) so that
//! `restore` + identical inputs reproduce identical behaviour,
//! bit-for-bit.
//!
//! **Scope boundary.** Snapshots cover the core engine only: the
//! fault-injection layer, the runtime recovery layer and the flight
//! recorder hold their own evolving state and are *not* captured.
//! [`Network::snapshot`] therefore refuses (panics on) networks with an
//! active fault or recovery layer — exactly the configurations the model
//! checker targets (mechanism-free wedge replay). Mechanism state
//! (`seec`, baselines) lives outside the [`Network`] and is likewise out
//! of scope; replay harnesses drive `NoMechanism` runs.

use crate::inbox::Inbox;
use crate::network::Network;
use crate::nic::Nic;
use crate::reservation::ReservationTable;
use crate::router::Router;
use crate::soa::CreditSoA;
use crate::stats::Stats;
use noc_types::fault::fnv1a;
use noc_types::{Cycle, Flit, PortId};
use rand::rngs::SmallRng;

/// A point-in-time copy of every dynamic engine field. Opaque by design:
/// the only supported operations are [`Network::restore`] and dropping it.
#[derive(Clone, Debug)]
pub struct NetSnapshot {
    cycle: Cycle,
    routers: Vec<Router>,
    nics: Vec<Nic>,
    credits: CreditSoA,
    inbox_router: Vec<Inbox<(PortId, Flit)>>,
    inbox_nic: Vec<Inbox<(usize, Flit)>>,
    reservations: ReservationTable,
    stats: Stats,
    rng: SmallRng,
    last_progress: Cycle,
}

impl Network {
    /// Captures the engine's dynamic state. Panics when the fault or
    /// recovery layer is active (see the module docs for the scope
    /// boundary).
    pub fn snapshot(&self) -> NetSnapshot {
        assert!(
            self.fault.is_none() && self.recovery.is_none(),
            "snapshots cover the core engine only; fault/recovery layers \
             hold unsnapshotted state"
        );
        NetSnapshot {
            cycle: self.cycle,
            routers: self.routers.clone(),
            nics: self.nics.clone(),
            credits: self.credits.clone(),
            inbox_router: self.inbox_router.clone(),
            inbox_nic: self.inbox_nic.clone(),
            reservations: self.reservations.clone(),
            stats: self.stats.clone(),
            rng: self.rng.clone(),
            last_progress: self.last_progress,
        }
    }

    /// Rewinds the engine to `snap`. The snapshot must come from this very
    /// network (same configuration); the derived caches (credit snapshots,
    /// buffered-flit counts) are conservatively recomputed rather than
    /// copied, which the next `step` folds back into the exact state.
    pub fn restore(&mut self, snap: &NetSnapshot) {
        assert_eq!(
            self.routers.len(),
            snap.routers.len(),
            "snapshot belongs to a different network"
        );
        self.cycle = snap.cycle;
        self.routers.clone_from(&snap.routers);
        self.nics.clone_from(&snap.nics);
        self.credits.clone_from(&snap.credits);
        self.inbox_router.clone_from(&snap.inbox_router);
        self.inbox_nic.clone_from(&snap.inbox_nic);
        self.reservations = snap.reservations.clone();
        self.stats = snap.stats.clone();
        self.rng = snap.rng.clone();
        self.last_progress = snap.last_progress;
        // Derived caches: mark every credit snapshot stale and recount the
        // buffered-flit totals from the restored buffers.
        self.credit_mark_all();
        self.recount_buffered();
    }

    /// Stable 64-bit digest of the observable engine state (everything a
    /// snapshot captures except the RNG). Two runs that restore the same
    /// snapshot and step identically produce identical digests; divergence
    /// pinpoints the first cycle at which determinism broke.
    pub fn state_digest(&self) -> u64 {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = write!(s, "c={};lp={};", self.cycle, self.last_progress);
        let _ = write!(s, "r={:?};", self.routers);
        let _ = write!(s, "n={:?};", self.nics);
        let _ = write!(s, "d={:?};", self.credits);
        for ib in &self.inbox_router {
            for (at, item) in ib.iter() {
                let _ = write!(s, "ir={at}:{item:?};");
            }
        }
        for ib in &self.inbox_nic {
            for (at, item) in ib.iter() {
                let _ = write!(s, "in={at}:{item:?};");
            }
        }
        let _ = write!(s, "res={:?};", self.reservations);
        fnv1a(s.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use crate::network::Sim;
    use crate::workload::IdleWorkload;
    use noc_types::{MessageClass, NetConfig, NodeId, Packet, PacketId};

    fn packet(id: u64, src: u16, dest: u16, len: u8, birth: u64) -> Packet {
        Packet {
            id: PacketId(id),
            src: NodeId(src),
            dest: NodeId(dest),
            class: MessageClass(0),
            len_flits: len,
            birth,
            measured: true,
        }
    }

    fn busy_sim() -> Sim {
        let cfg = NetConfig::synth(4, 2);
        let mut sim = Sim::new(cfg, Box::new(IdleWorkload), Box::new(crate::NoMechanism));
        for i in 0..8u16 {
            let dest = 15 - i;
            sim.net.nics[i as usize].enqueue(packet(u64::from(i), i, dest, 3, 0));
        }
        sim
    }

    #[test]
    fn restore_replays_bit_identically() {
        let mut sim = busy_sim();
        for _ in 0..10 {
            sim.step();
        }
        let snap = sim.net.snapshot();
        let base = sim.net.state_digest();

        // First run: twenty further steps, recording the digest stream.
        let first: Vec<u64> = (0..20)
            .map(|_| {
                sim.step();
                sim.net.state_digest()
            })
            .collect();

        // Rewind and replay: the digest stream must match exactly.
        sim.net.restore(&snap);
        assert_eq!(sim.net.state_digest(), base, "restore must be lossless");
        let second: Vec<u64> = (0..20)
            .map(|_| {
                sim.step();
                sim.net.state_digest()
            })
            .collect();
        assert_eq!(first, second, "replay diverged after restore");
    }

    #[test]
    fn digest_tracks_state_changes() {
        let mut sim = busy_sim();
        let d0 = sim.net.state_digest();
        sim.step();
        sim.step();
        assert_ne!(d0, sim.net.state_digest(), "injection must change state");
    }

    #[test]
    #[should_panic(expected = "core engine only")]
    fn snapshot_refuses_fault_layer() {
        use noc_types::FaultConfig;
        let cfg = NetConfig::synth(4, 2).with_fault(FaultConfig::transient(0.01));
        let sim = Sim::new(cfg, Box::new(IdleWorkload), Box::new(crate::NoMechanism));
        let _ = sim.net.snapshot();
    }
}
