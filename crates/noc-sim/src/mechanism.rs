//! The mechanism SPI: how deadlock-freedom / flow-control schemes plug into
//! the simulation loop.
//!
//! A mechanism runs twice per cycle around the routers' compute phase. It may
//! mutate the network freely through the public fields and the forced-move
//! helpers on [`crate::network::Network`]: drain packets out of VCs, install
//! them elsewhere, reserve ejection VCs and link slots, and feed statistics.

use crate::network::Network;
use noc_types::{PacketId, SchemeKind};

/// A deadlock-freedom / flow-control scheme.
pub trait Mechanism {
    /// Which scheme this is (for labelling and the area/energy models).
    fn kind(&self) -> SchemeKind;

    /// Runs after flit arrivals and traffic generation, before routers
    /// compute. Seeker movement, FF flit movement, probes and forced moves
    /// happen here; switch allocation this cycle observes the effects.
    fn pre_cycle(&mut self, net: &mut Network) {
        let _ = net;
    }

    /// Runs after routers, injection and consumption.
    fn post_cycle(&mut self, net: &mut Network) {
        let _ = net;
    }

    /// Whether this mechanism mutates state the per-router credit snapshot
    /// reads: input-VC occupancy, output claims, wormhole in-flight counts,
    /// or NIC ejection VCs / reservations. When `true` (the conservative
    /// default) the engine invalidates every router's snapshot each cycle;
    /// mechanisms that only observe, or only touch in-flight timing, return
    /// `false` to keep the dirty-tracking fast path (the engine then
    /// refreshes only routers marked dirty). A mechanism that mutates a
    /// *known*
    /// node may instead return `false` and call
    /// [`Network::credit_touch`] itself.
    fn touches_credits(&self) -> bool {
        true
    }

    /// Idle-cycle skipping input: `true` when `pre_cycle` and `post_cycle`
    /// are guaranteed no-ops — no state mutation, no RNG draws — for as
    /// long as the network itself stays quiet (no buffered flits, no
    /// in-flight traffic, no pending reservations). The engine only skips
    /// cycles when every layer reports quiescence, and a skipped cycle runs
    /// *nothing*, so answering `true` while holding a live timer or probe
    /// breaks byte-for-byte determinism. The default is the safe `false`,
    /// which pins the engine to stepping every cycle.
    fn quiescent(&self) -> bool {
        false
    }

    /// Called by the runtime recovery layer immediately after it has drained
    /// `victim` out of its VC into the recovery channel. The packet no longer
    /// exists anywhere in router buffers; any mechanism state that names it —
    /// a pending escape reservation, an in-flight probe targeting its VC —
    /// must be dropped or reset here, or the mechanism will act on a ghost.
    /// The default assumes the mechanism keeps no per-packet state.
    fn on_recovery_drain(&mut self, net: &mut Network, victim: PacketId) {
        let _ = (net, victim);
    }

    /// A human-readable snapshot of the mechanism's internal state (seeker
    /// tables, tokens, probes in flight, …) for the watchdog's black-box
    /// dump. The default says nothing; schemes with interesting state
    /// override it.
    fn debug_state(&self) -> String {
        String::new()
    }
}

/// The null mechanism: a plain VC router network. Deadlock-free only if the
/// routing algorithm is.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoMechanism;

impl Mechanism for NoMechanism {
    fn kind(&self) -> SchemeKind {
        SchemeKind::None
    }

    fn touches_credits(&self) -> bool {
        false
    }

    fn quiescent(&self) -> bool {
        true
    }
}
