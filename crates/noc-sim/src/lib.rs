//! # noc-sim — a cycle-accurate 2D-mesh `NoC` simulator
//!
//! The substrate of the SEEC reproduction: a Garnet2.0-class network model
//! built from scratch. VC routers with credit flow control, virtual
//! cut-through buffering (single packet per VC), per-VNet virtual channels,
//! 1-cycle routers and 1-cycle links, NICs with per-message-class ejection
//! VCs, minimal routing algorithms (XY, west-first, oblivious/adaptive random,
//! Duato escape-VC), and a mechanism SPI through which the SEEC and baseline
//! deadlock-freedom schemes plug into the cycle loop.
//!
//! Entry point: [`network::Sim`]. A simulation is
//! `Sim::new(config, workload, mechanism)` followed by [`network::Sim::run`].

#![forbid(unsafe_code)]
// The simulator proper never unwraps; invariant-backed Options use
// `expect` with the invariant spelled out. Unit tests are exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod batch;
pub mod chaos;
pub mod fault;
pub mod inbox;
#[cfg(feature = "check-invariants")]
pub mod invariants;
pub mod mechanism;
pub mod network;
pub mod nic;
pub mod recovery;
pub mod reorder;
pub mod reservation;
pub mod router;
pub mod routing;
pub mod snapshot;
pub mod soa;
pub mod stats;
pub mod vc;
pub mod watchdog;
pub mod workload;

pub use batch::{LockstepBatch, ShapeKey};
pub use chaos::ChaosState;
pub use fault::{DeadSet, FaultLayer, RouteMask, Unroutable};
pub use inbox::Inbox;
pub use mechanism::{Mechanism, NoMechanism};
pub use network::{Network, NocModel, Sim, HOP_LATENCY, LOCAL_LATENCY};
pub use nic::{EjReserve, EjVc, Nic};
pub use recovery::RecoveryState;
pub use reorder::ReorderBuffer;
pub use reservation::ReservationTable;
pub use router::Router;
pub use snapshot::NetSnapshot;
pub use soa::{CreditSoA, CreditView};
pub use stats::{DeliveredPacket, Stats};
pub use vc::{VcRoute, VirtualChannel};
pub use workload::{IdleWorkload, PacketFactory, Workload};
