//! Space-time reservation of output links for Free-Flow traversals.
//!
//! A Free-Flow packet moves one hop per cycle with absolute priority; the
//! upgrade logic therefore knows, at upgrade time, exactly which directed
//! link it will use at which cycle. Reserving those `(link, cycle)` slots and
//! having switch allocation skip them models the paper's lookahead signal
//! (§3.5): the lookahead arrives one cycle ahead and overrides the local
//! switch-allocation grant.
//!
//! The same table guarantees mSEEC's "no two FF packets ever collide"
//! invariant structurally: an upgrade first *probes* its whole path and is
//! delayed if any slot is taken.
//!
//! Storage is a flat per-link vector of closed intervals — `is_reserved` is
//! on the switch-allocation fast path (one call per nomination per cycle),
//! so lookups must be an array index plus an almost-always-empty scan.

use noc_types::{Cycle, NodeId, PortId, NUM_PORTS};

/// Reservation table mapping directed links to reserved cycle intervals.
///
/// Intervals are closed `[from, to]`. The table is empty unless a mechanism
/// that uses FF (or probe traffic) is active.
#[derive(Clone, Debug, Default)]
pub struct ReservationTable {
    /// `links[node * NUM_PORTS + port]` → live intervals.
    links: Vec<Vec<(Cycle, Cycle)>>,
    /// Total live intervals (fast emptiness check).
    live: usize,
}

impl ReservationTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-sizes the table for `num_nodes` routers (the engine does this).
    pub fn with_nodes(num_nodes: usize) -> Self {
        ReservationTable {
            links: vec![Vec::new(); num_nodes * NUM_PORTS],
            live: 0,
        }
    }

    #[inline]
    fn idx(node: NodeId, port: PortId) -> usize {
        node.idx() * NUM_PORTS + port
    }

    fn slot_mut(&mut self, node: NodeId, port: PortId) -> &mut Vec<(Cycle, Cycle)> {
        let i = Self::idx(node, port);
        if i >= self.links.len() {
            self.links.resize(i + 1, Vec::new());
        }
        &mut self.links[i]
    }

    /// True if `link` is reserved at `cycle` — switch allocation must not
    /// send a flit onto it.
    #[inline]
    pub fn is_reserved(&self, node: NodeId, port: PortId, cycle: Cycle) -> bool {
        if self.live == 0 {
            return false;
        }
        match self.links.get(Self::idx(node, port)) {
            None => false,
            Some(iv) => iv.iter().any(|&(a, b)| a <= cycle && cycle <= b),
        }
    }

    /// True if any cycle of `[from, to]` on `link` is already reserved.
    pub fn conflicts(&self, node: NodeId, port: PortId, from: Cycle, to: Cycle) -> bool {
        if self.live == 0 {
            return false;
        }
        match self.links.get(Self::idx(node, port)) {
            None => false,
            Some(iv) => iv.iter().any(|&(a, b)| a <= to && from <= b),
        }
    }

    /// Reserves `[from, to]` on `link`.
    ///
    /// # Panics
    /// Panics (in debug builds) if the interval overlaps an existing
    /// reservation — callers must probe with [`Self::conflicts`] first; an
    /// overlap would mean two FF packets collide, violating the paper's
    /// core invariant.
    pub fn reserve(&mut self, node: NodeId, port: PortId, from: Cycle, to: Cycle) {
        debug_assert!(
            !self.conflicts(node, port, from, to),
            "FF link reservation collision on {node}:{port} [{from},{to}]"
        );
        self.slot_mut(node, port).push((from, to));
        self.live += 1;
    }

    /// Drops every interval that ends before `cycle`. Called once per cycle
    /// by the engine to keep the table tiny.
    pub fn prune(&mut self, cycle: Cycle) {
        if self.live == 0 {
            return;
        }
        let mut live = 0;
        for iv in &mut self.links {
            iv.retain(|&(_, b)| b >= cycle);
            live += iv.len();
        }
        self.live = live;
    }

    /// Total number of live intervals (diagnostics/tests).
    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: NodeId = NodeId(3);

    #[test]
    fn reserve_and_query() {
        let mut t = ReservationTable::new();
        assert!(!t.is_reserved(N, 2, 10));
        t.reserve(N, 2, 10, 14);
        assert!(t.is_reserved(N, 2, 10));
        assert!(t.is_reserved(N, 2, 14));
        assert!(!t.is_reserved(N, 2, 15));
        assert!(!t.is_reserved(N, 1, 12));
        assert!(!t.is_reserved(NodeId(4), 2, 12));
    }

    #[test]
    fn conflict_detection() {
        let mut t = ReservationTable::new();
        t.reserve(N, 0, 5, 9);
        assert!(t.conflicts(N, 0, 9, 12));
        assert!(t.conflicts(N, 0, 1, 5));
        assert!(t.conflicts(N, 0, 6, 8));
        assert!(!t.conflicts(N, 0, 10, 12));
        assert!(!t.conflicts(N, 0, 0, 4));
    }

    #[test]
    fn prune_drops_stale_intervals() {
        let mut t = ReservationTable::new();
        t.reserve(N, 0, 5, 9);
        t.reserve(N, 0, 20, 24);
        assert_eq!(t.len(), 2);
        t.prune(10);
        assert_eq!(t.len(), 1);
        assert!(!t.is_reserved(N, 0, 7));
        assert!(t.is_reserved(N, 0, 22));
        t.prune(25);
        assert!(t.is_empty());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "collision")]
    fn overlapping_reservation_panics() {
        let mut t = ReservationTable::new();
        t.reserve(N, 0, 5, 9);
        t.reserve(N, 0, 9, 11);
    }
}
