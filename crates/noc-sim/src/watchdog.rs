//! Deadlock detection for tests and experiments.
//!
//! Two views:
//! * a cheap *progress watchdog* — the network is stuck when flits are
//!   buffered but nothing has moved for a threshold number of cycles;
//! * an exact *wait-for graph* cycle check over blocked head packets, used
//!   by correctness tests to distinguish a true routing deadlock from mere
//!   congestion.

use crate::network::Network;
use noc_types::{Direction, NodeId, PortId, NUM_PORTS};

/// Conservative default threshold: with fully adaptive routing and 5-flit
/// packets nothing legitimately waits this long on the meshes we simulate
/// unless it is deadlocked (or starved behind one).
pub const DEFAULT_STUCK_THRESHOLD: u64 = 2_000;

/// Progress watchdog: flits are in the network but nothing has moved for
/// `threshold` cycles.
pub fn looks_stuck(net: &Network, threshold: u64) -> bool {
    net.flits_in_network() > 0 && net.quiescent_for() >= threshold
}

/// A blocked-VC node in the wait-for graph.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct WaitNode {
    pub node: NodeId,
    pub port: PortId,
    pub vc: usize,
}

/// Builds the wait-for graph over *allocated-or-blocked* packet heads and
/// reports whether it contains a cycle (a true routing deadlock).
///
/// Edges: a VC whose head wants output `d` waits on every VC of the
/// downstream input port that currently holds a packet (it needs one of them
/// to free). A cycle in this relation in which every involved VC is full
/// means no packet can ever move — deadlock.
pub fn find_deadlock_cycle(net: &Network) -> Option<Vec<WaitNode>> {
    // Enumerate blocked VCs and their wanted outputs.
    let mut nodes: Vec<WaitNode> = Vec::new();
    let mut wanted: Vec<(usize, Direction)> = Vec::new(); // per node index
    for (i, r) in net.routers.iter().enumerate() {
        for p in 0..NUM_PORTS {
            for (v, vc) in r.inputs[p].vcs.iter().enumerate() {
                let Some(front) = vc.front() else { continue };
                if !front.kind.is_head() || vc.route.is_some() {
                    // Moving or mid-stream packets are not deadlock suspects.
                    continue;
                }
                let dest = front.dest.to_coord(net.cfg.cols);
                if dest == r.coord {
                    continue; // waits only on ejection, which always drains
                }
                // The packet waits on whichever port it would pick; for the
                // wait-for graph we conservatively use every productive
                // direction it is allowed to take — a deadlock requires all
                // of them blocked, so we add edges for each and require the
                // cycle to pass through full VCs only.
                let algo = if vc.is_escape_resident {
                    noc_types::BaseRouting::WestFirst
                } else {
                    net.cfg.routing.normal()
                };
                for &d in crate::routing::candidates(algo, r.coord, dest).as_slice() {
                    nodes.push(WaitNode {
                        node: NodeId(i as u16),
                        port: p,
                        vc: v,
                    });
                    wanted.push((i, d));
                }
            }
        }
    }
    if nodes.is_empty() {
        return None;
    }

    // Adjacency: blocked VC -> occupied VCs at the downstream input port.
    let index_of = |w: &WaitNode| -> Vec<usize> {
        nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| **n == *w)
            .map(|(k, _)| k)
            .collect()
    };
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (k, &(i, d)) in wanted.iter().enumerate() {
        let Some(nb) = net.neighbor(NodeId(i as u16), d) else {
            continue;
        };
        let their_in = d.opposite().index();
        let down = &net.routers[nb.idx()].inputs[their_in];
        for (v, vc) in down.vcs.iter().enumerate() {
            if vc.front().is_some() {
                let w = WaitNode {
                    node: nb,
                    port: their_in,
                    vc: v,
                };
                for t in index_of(&w) {
                    adj[k].push(t);
                }
            }
        }
    }

    // DFS cycle detection.
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let mut mark = vec![Mark::White; nodes.len()];
    let mut stack: Vec<usize> = Vec::new();

    fn dfs(
        u: usize,
        adj: &[Vec<usize>],
        mark: &mut [Mark],
        stack: &mut Vec<usize>,
    ) -> Option<Vec<usize>> {
        mark[u] = Mark::Grey;
        stack.push(u);
        for &w in &adj[u] {
            match mark[w] {
                Mark::Grey => {
                    let pos = stack
                        .iter()
                        .position(|&x| x == w)
                        .expect("grey node is on the DFS stack by definition");
                    return Some(stack[pos..].to_vec());
                }
                Mark::White => {
                    if let Some(c) = dfs(w, adj, mark, stack) {
                        return Some(c);
                    }
                }
                Mark::Black => {}
            }
        }
        stack.pop();
        mark[u] = Mark::Black;
        None
    }

    for u in 0..nodes.len() {
        if mark[u] == Mark::White {
            if let Some(cycle) = dfs(u, &adj, &mut mark, &mut stack) {
                return Some(cycle.into_iter().map(|k| nodes[k]).collect());
            }
            stack.clear();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_types::NetConfig;

    #[test]
    fn empty_network_is_not_stuck() {
        let net = Network::new(NetConfig::synth(4, 2));
        assert!(!looks_stuck(&net, 10));
        assert!(find_deadlock_cycle(&net).is_none());
    }
}
