//! Deadlock detection and black-box dumps for tests and experiments.
//!
//! Three views:
//! * a cheap *progress watchdog* — the network is stuck when flits are
//!   buffered but nothing has moved for a threshold number of cycles;
//! * an exact *wait-for graph* cycle check over blocked head packets, used
//!   by correctness tests to distinguish a true routing deadlock from mere
//!   congestion;
//! * a *black box*: when the watchdog fires, [`BlackBox::capture`] snapshots
//!   everything a post-mortem needs — per-VC occupancy, blocked heads, a
//!   wait-for cycle witness, the mechanism's own debug state and the last-N
//!   switch traversals from the optional [`FlightRecorder`] — and renders it
//!   as a JSON file, so a hung experiment leaves evidence instead of a bare
//!   panic message (schema: `DESIGN.md` §9).

use crate::network::Network;
use noc_types::{Direction, NodeId, PortId, NUM_PORTS};
use std::collections::VecDeque;
use std::fmt::Write as _;

/// Conservative default threshold: with fully adaptive routing and 5-flit
/// packets nothing legitimately waits this long on the meshes we simulate
/// unless it is deadlocked (or starved behind one).
pub const DEFAULT_STUCK_THRESHOLD: u64 = 2_000;

/// Extra patience granted when the stall is explained by a slow sink: a
/// complete packet parked in an ejection VC means consumption is the
/// workload's choice, so the network only counts as stuck after
/// `SLOW_SINK_GRACE * threshold` quiescent cycles instead of `threshold`.
pub const SLOW_SINK_GRACE: u64 = 4;

/// Progress watchdog: flits are in the network but nothing has moved for
/// `threshold` cycles.
///
/// A protocol workload may legitimately refuse deliveries for long windows
/// (e.g. a controller that back-pressures until an earlier transaction
/// retires). A complete packet parked in an ejection VC keeps the whole
/// path behind it quiet without being a deadlock, so while one exists the
/// threshold is stretched by [`SLOW_SINK_GRACE`]. It is stretched, not
/// waived: sinks refusing consumption while the network backs up behind
/// them is exactly how a *protocol* deadlock presents, and those must
/// still be reported.
pub fn looks_stuck(net: &Network, threshold: u64) -> bool {
    if net.flits_in_network() == 0 {
        return false;
    }
    let patience = if has_unconsumed_delivery(net) {
        threshold.saturating_mul(SLOW_SINK_GRACE)
    } else {
        threshold
    };
    net.quiescent_for() >= patience
}

/// True when any NIC ejection VC holds a complete packet the workload has
/// not consumed yet (a slow sink, not a stuck network).
pub fn has_unconsumed_delivery(net: &Network) -> bool {
    net.nics
        .iter()
        .any(|n| n.ejection.iter().any(super::nic::EjVc::complete_packet))
}

/// One switch traversal, as kept by the [`FlightRecorder`].
#[derive(Clone, Copy, Debug)]
pub struct MoveRecord {
    pub cycle: noc_types::Cycle,
    pub node: NodeId,
    pub in_port: PortId,
    pub in_vc: usize,
    pub out_port: PortId,
}

/// Ring buffer of the last N switch traversals, feeding the black box's
/// `recent_moves` section. Off by default (`Network::recorder == None`);
/// enable via [`Network::enable_flight_recorder`] when running under a
/// watchdog that should dump on escalation.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    cap: usize,
    buf: VecDeque<MoveRecord>,
}

impl FlightRecorder {
    pub fn new(cap: usize) -> FlightRecorder {
        FlightRecorder {
            cap: cap.max(1),
            buf: VecDeque::with_capacity(cap.max(1)),
        }
    }

    /// Appends a traversal, evicting the oldest once full.
    pub fn record(
        &mut self,
        cycle: noc_types::Cycle,
        node: NodeId,
        in_port: PortId,
        in_vc: usize,
        out_port: PortId,
    ) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back(MoveRecord {
            cycle,
            node,
            in_port,
            in_vc,
            out_port,
        });
    }

    /// Oldest-to-newest records.
    pub fn iter(&self) -> impl Iterator<Item = &MoveRecord> {
        self.buf.iter()
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Escapes a string for inclusion in a JSON document.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A post-mortem snapshot of a stuck network, rendered to JSON by
/// [`BlackBox::to_json`]. Field-by-field schema in `DESIGN.md` §9.
pub struct BlackBox {
    json: String,
}

impl BlackBox {
    /// Captures the black box from a (presumably stuck) network.
    ///
    /// `scheme` labels the mechanism (its `kind()` debug string);
    /// `mech_state` is the mechanism's own [`crate::Mechanism::debug_state`]
    /// dump (seeker tables, token state, …).
    pub fn capture(net: &Network, scheme: &str, mech_state: &str) -> BlackBox {
        let mut j = String::with_capacity(4096);
        j.push_str("{\n  \"schema\": \"noc-blackbox-v1\",\n");
        let _ = write!(
            j,
            "  \"cycle\": {},\n  \"last_progress\": {},\n  \"quiescent_for\": {},\n",
            net.cycle,
            net.last_progress,
            net.quiescent_for()
        );
        let _ = writeln!(
            j,
            "  \"config\": {{\"cols\": {}, \"rows\": {}, \"scheme\": \"{}\", \
             \"digest\": \"{:016x}\", \"fault\": \"{}\"}},",
            net.cfg.cols,
            net.cfg.rows,
            json_escape(scheme),
            net.cfg.digest(),
            json_escape(&net.cfg.fault.canonical())
        );
        let _ = writeln!(j, "  \"flits_in_network\": {},", net.flits_in_network());

        // Per-VC occupancy: every non-empty router input VC.
        j.push_str("  \"occupancy\": [");
        let mut first = true;
        for (i, r) in net.routers.iter().enumerate() {
            for p in 0..NUM_PORTS {
                for (v, vc) in r.inputs[p].vcs.iter().enumerate() {
                    if vc.buf.is_empty() {
                        continue;
                    }
                    if !first {
                        j.push(',');
                    }
                    first = false;
                    let _ = write!(
                        j,
                        "\n    {{\"node\": {i}, \"port\": {p}, \"vc\": {v}, \"len\": {}, \
                         \"packet\": {}, \"routed\": {}, \"escape\": {}, \"head_wait_since\": {}}}",
                        vc.buf.len(),
                        vc.resident.map_or(0, |p| p.0),
                        vc.route.is_some(),
                        vc.is_escape_resident,
                        vc.head_wait_since
                            .map_or_else(|| "null".to_string(), |c| c.to_string()),
                    );
                }
            }
        }
        j.push_str("\n  ],\n");

        // Blocked heads: head at front, no route allocated.
        j.push_str("  \"blocked_heads\": [");
        let mut first = true;
        for (i, r) in net.routers.iter().enumerate() {
            for p in 0..NUM_PORTS {
                for (v, vc) in r.inputs[p].vcs.iter().enumerate() {
                    let Some(front) = vc.front() else { continue };
                    if !front.kind.is_head() || vc.route.is_some() {
                        continue;
                    }
                    if !first {
                        j.push(',');
                    }
                    first = false;
                    let _ = write!(
                        j,
                        "\n    {{\"node\": {i}, \"port\": {p}, \"vc\": {v}, \"packet\": {}, \
                         \"dest\": {}, \"pending_port\": {}}}",
                        front.packet.0,
                        front.dest.0,
                        vc.pending_port
                            .map_or_else(|| "null".to_string(), |p| p.to_string()),
                    );
                }
            }
        }
        j.push_str("\n  ],\n");

        // Wait-for cycle witness, if one exists right now.
        match find_deadlock_cycle(net) {
            Some(cycle) => {
                j.push_str("  \"wait_cycle\": [");
                for (k, w) in cycle.iter().enumerate() {
                    if k > 0 {
                        j.push(',');
                    }
                    let _ = write!(
                        j,
                        "\n    {{\"node\": {}, \"port\": {}, \"vc\": {}}}",
                        w.node.0, w.port, w.vc
                    );
                }
                j.push_str("\n  ],\n");
            }
            None => j.push_str("  \"wait_cycle\": null,\n"),
        }

        // Mechanism self-description (seeker state etc).
        let _ = writeln!(j, "  \"mechanism\": \"{}\",", json_escape(mech_state));

        // Fault-layer counters, when the fault layer is active.
        match &net.fault {
            Some(_) => {
                let _ = writeln!(
                    j,
                    "  \"fault_counters\": {{\"corrupted\": {}, \"retransmitted\": {}, \
                     \"acks\": {}, \"nacks\": {}}},",
                    net.stats.corrupted_flits,
                    net.stats.retransmitted_flits,
                    net.stats.link_acks,
                    net.stats.link_nacks
                );
            }
            None => j.push_str("  \"fault_counters\": null,\n"),
        }

        // Last-N switch traversals from the flight recorder.
        j.push_str("  \"recent_moves\": [");
        if let Some(rec) = &net.recorder {
            for (k, m) in rec.iter().enumerate() {
                if k > 0 {
                    j.push(',');
                }
                let _ = write!(
                    j,
                    "\n    {{\"cycle\": {}, \"node\": {}, \"in_port\": {}, \"in_vc\": {}, \
                     \"out_port\": {}}}",
                    m.cycle, m.node.0, m.in_port, m.in_vc, m.out_port
                );
            }
        }
        j.push_str("\n  ]\n}\n");
        BlackBox { json: j }
    }

    /// The rendered JSON document.
    pub fn to_json(&self) -> &str {
        &self.json
    }

    /// Writes the dump to `path` atomically (temp + fsync + rename),
    /// creating parent directories as needed. A dump that exists is whole:
    /// a crash mid-write can never leave a half-rendered black box for the
    /// schema tests (or a human mid-incident) to misread.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        noc_store::active().write_atomic(path, self.json.as_bytes())
    }
}

/// A blocked-VC node in the wait-for graph.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct WaitNode {
    pub node: NodeId,
    pub port: PortId,
    pub vc: usize,
}

/// Builds the wait-for graph over *allocated-or-blocked* packet heads and
/// reports whether it contains a cycle (a true routing deadlock).
///
/// Edges: a VC whose head wants output `d` waits on every VC of the
/// downstream input port that currently holds a packet (it needs one of them
/// to free). A cycle in this relation in which every involved VC is full
/// means no packet can ever move — deadlock.
pub fn find_deadlock_cycle(net: &Network) -> Option<Vec<WaitNode>> {
    // Enumerate blocked VCs and their wanted outputs.
    let mut nodes: Vec<WaitNode> = Vec::new();
    let mut wanted: Vec<(usize, Direction)> = Vec::new(); // per node index
    for (i, r) in net.routers.iter().enumerate() {
        for p in 0..NUM_PORTS {
            for (v, vc) in r.inputs[p].vcs.iter().enumerate() {
                let Some(front) = vc.front() else { continue };
                if !front.kind.is_head() || vc.route.is_some() {
                    // Moving or mid-stream packets are not deadlock suspects.
                    continue;
                }
                let dest = front.dest.to_coord(net.cfg.cols);
                if dest == r.coord {
                    continue; // waits only on ejection, which always drains
                }
                // The packet waits on whichever port it would pick; for the
                // wait-for graph we conservatively use every productive
                // direction it is allowed to take — a deadlock requires all
                // of them blocked, so we add edges for each and require the
                // cycle to pass through full VCs only.
                let algo = if vc.is_escape_resident {
                    noc_types::BaseRouting::WestFirst
                } else {
                    net.cfg.routing.normal()
                };
                for &d in crate::routing::candidates(algo, r.coord, dest).as_slice() {
                    nodes.push(WaitNode {
                        node: NodeId(i as u16),
                        port: p,
                        vc: v,
                    });
                    wanted.push((i, d));
                }
            }
        }
    }
    if nodes.is_empty() {
        return None;
    }

    // Adjacency: blocked VC -> occupied VCs at the downstream input port.
    let index_of = |w: &WaitNode| -> Vec<usize> {
        nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| **n == *w)
            .map(|(k, _)| k)
            .collect()
    };
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (k, &(i, d)) in wanted.iter().enumerate() {
        let Some(nb) = net.neighbor(NodeId(i as u16), d) else {
            continue;
        };
        let their_in = d.opposite().index();
        let down = &net.routers[nb.idx()].inputs[their_in];
        for (v, vc) in down.vcs.iter().enumerate() {
            if vc.front().is_some() {
                let w = WaitNode {
                    node: nb,
                    port: their_in,
                    vc: v,
                };
                for t in index_of(&w) {
                    adj[k].push(t);
                }
            }
        }
    }

    // DFS cycle detection.
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let mut mark = vec![Mark::White; nodes.len()];
    let mut stack: Vec<usize> = Vec::new();

    fn dfs(
        u: usize,
        adj: &[Vec<usize>],
        mark: &mut [Mark],
        stack: &mut Vec<usize>,
    ) -> Option<Vec<usize>> {
        mark[u] = Mark::Grey;
        stack.push(u);
        for &w in &adj[u] {
            match mark[w] {
                Mark::Grey => {
                    let pos = stack
                        .iter()
                        .position(|&x| x == w)
                        .expect("grey node is on the DFS stack by definition");
                    return Some(stack[pos..].to_vec());
                }
                Mark::White => {
                    if let Some(c) = dfs(w, adj, mark, stack) {
                        return Some(c);
                    }
                }
                Mark::Black => {}
            }
        }
        stack.pop();
        mark[u] = Mark::Black;
        None
    }

    for u in 0..nodes.len() {
        if mark[u] == Mark::White {
            if let Some(cycle) = dfs(u, &adj, &mut mark, &mut stack) {
                return Some(cycle.into_iter().map(|k| nodes[k]).collect());
            }
            stack.clear();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Sim;
    use crate::workload::Workload;
    use noc_types::{Cycle, MessageClass, NetConfig, Packet, PacketId};

    #[test]
    fn empty_network_is_not_stuck() {
        let net = Network::new(NetConfig::synth(4, 2));
        assert!(!looks_stuck(&net, 10));
        assert!(find_deadlock_cycle(&net).is_none());
    }

    /// A sink that refuses every delivery — models a protocol endpoint that
    /// back-pressures indefinitely.
    struct RefusingSink;
    impl Workload for RefusingSink {
        fn generate(&mut self, _c: Cycle, _i: &mut dyn FnMut(noc_types::NodeId, Packet)) {}
        fn deliver(&mut self, _c: Cycle, _p: &crate::stats::DeliveredPacket) -> bool {
            false
        }
    }

    #[test]
    fn slow_sink_is_not_reported_stuck() {
        let mut cfg = NetConfig::synth(4, 2);
        cfg.warmup = 0;
        let mut sim = Sim::new(cfg, Box::new(RefusingSink), Box::new(crate::NoMechanism));
        sim.net.nics[0].enqueue(Packet {
            id: PacketId(1),
            src: NodeId(0),
            dest: NodeId(3),
            class: MessageClass(0),
            len_flits: 1,
            birth: 0,
            measured: true,
        });
        sim.run(60);
        // The packet is parked, complete, in an ejection VC; nothing else
        // moves. The old watchdog called this deadlock; the delivered-but-
        // unconsumed exclusion must not.
        assert!(has_unconsumed_delivery(&sim.net));
        assert!(!looks_stuck(&sim.net, 10));
        // A genuinely empty-but-quiet network stays not-stuck too.
        assert!(find_deadlock_cycle(&sim.net).is_none());
    }

    /// A refusing sink with traffic wedged *behind* the parked delivery is
    /// how a protocol deadlock presents: the grace window stretches the
    /// threshold but must not waive it.
    #[test]
    fn refusing_sink_with_backpressure_escalates_after_grace() {
        let mut cfg = NetConfig::synth(4, 2);
        cfg.warmup = 0;
        let mut sim = Sim::new(cfg, Box::new(RefusingSink), Box::new(crate::NoMechanism));
        for i in 0..6u64 {
            sim.net.nics[0].enqueue(Packet {
                id: PacketId(i + 1),
                src: NodeId(0),
                dest: NodeId(3),
                class: MessageClass(0),
                len_flits: 5,
                birth: 0,
                measured: true,
            });
        }
        sim.run(400);
        assert!(has_unconsumed_delivery(&sim.net));
        assert!(
            sim.net.flits_in_network() > 0,
            "expected the line behind the refused delivery to wedge in-network"
        );
        let q = sim.net.quiescent_for();
        assert!(q > 40, "expected a long stall, got {q}");
        // Quiet past the plain threshold but within the stretched one:
        // still the sink's choice, not a network failure.
        assert!(!looks_stuck(&sim.net, q / 2));
        // Past the stretched threshold it is reported stuck.
        assert!(looks_stuck(&sim.net, q / SLOW_SINK_GRACE));
    }

    #[test]
    fn flight_recorder_keeps_last_n() {
        let mut rec = FlightRecorder::new(3);
        for c in 0..10u64 {
            rec.record(c, NodeId(0), 0, 0, 1);
        }
        assert_eq!(rec.len(), 3);
        let cycles: Vec<u64> = rec.iter().map(|m| m.cycle).collect();
        assert_eq!(cycles, vec![7, 8, 9]);
    }

    #[test]
    fn black_box_renders_valid_shape() {
        let mut cfg = NetConfig::synth(4, 2);
        cfg.warmup = 0;
        let mut sim = Sim::new(cfg, Box::new(RefusingSink), Box::new(crate::NoMechanism));
        sim.net.enable_flight_recorder(16);
        sim.net.nics[0].enqueue(Packet {
            id: PacketId(1),
            src: NodeId(0),
            dest: NodeId(3),
            class: MessageClass(0),
            len_flits: 5,
            birth: 0,
            measured: true,
        });
        sim.run(20);
        let bb = BlackBox::capture(&sim.net, "none", "state with \"quotes\"\nand newline");
        let j = bb.to_json();
        assert!(j.starts_with('{') && j.trim_end().ends_with('}'));
        assert!(j.contains("\"schema\": \"noc-blackbox-v1\""));
        assert!(j.contains("\"recent_moves\""));
        assert!(j.contains("\\\"quotes\\\""), "string escaping broken");
        assert!(
            !j.contains("state with \"quotes\""),
            "unescaped quote leaked"
        );
        // Balanced braces/brackets (cheap well-formedness check; the full
        // parser lives in noc-experiments' jsonio tests).
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn json_escape_handles_control_chars() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
