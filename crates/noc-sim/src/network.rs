//! The cycle-driven network engine.
//!
//! Each cycle proceeds in fixed phases (see [`Sim::step`]):
//!
//! 1. **deliver** — flits whose link traversal completes this cycle enter
//!    input VCs / NIC ejection VCs.
//! 2. **generate** — the workload pushes new packets into NIC queues.
//! 3. **mechanism pre** — seekers, FF flits, probes, forced moves.
//! 4. **credit snapshot** — every router's view of downstream VC
//!    availability is refreshed.
//! 5. **router compute** — combined RC/VA/SA (1-cycle router), winners move.
//! 6. **injection** — NICs stream flits into their router's local port.
//! 7. **consume** — complete packets in ejection VCs are offered to the
//!    workload.
//! 8. **mechanism post**.
//!
//! All inter-router communication travels through timestamped inboxes, so
//! router evaluation order never matters and runs are bit-reproducible for a
//! given seed.

use crate::inbox::Inbox;
use crate::mechanism::Mechanism;
use crate::nic::{InjProgress, Nic};
use crate::reservation::ReservationTable;
use crate::router::{route_compute, try_alloc, try_alloc_ejection, Move, Router};
use crate::soa::{CreditSoA, CreditView};
use crate::stats::Stats;
use crate::vc::VcRoute;
use crate::workload::Workload;
use noc_types::{Cycle, Direction, Flit, NetConfig, NodeId, PortId, NUM_PORTS};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Extra cycles a flit spends per router-to-router hop at the default
/// 1-cycle router: 1 cycle in the pipeline plus 1 on the link. Deeper
/// routers (`NetConfig::router_latency > 1`) add to this — see
/// [`Network::hop_latency`].
pub const HOP_LATENCY: Cycle = 2;
/// Latency of the NIC↔router links (injection and ejection).
pub const LOCAL_LATENCY: Cycle = 1;

/// The simulated network: routers, NICs, in-flight flits, reservations and
/// statistics. Fields are public — they form the SPI that mechanisms
/// (`seec`, `noc-baselines`) program against.
pub struct Network {
    pub cfg: NetConfig,
    pub cycle: Cycle,
    pub routers: Vec<Router>,
    pub nics: Vec<Nic>,
    /// The `SoA` hot core: per-`(router, port)` free-VC bitmasks and wormhole
    /// credit slots (refreshed each cycle before SA), per-port occupancy
    /// counters, and per-router dirty bits — flat contiguous arrays instead
    /// of per-router structs.
    pub credits: CreditSoA,
    /// Flits in flight toward router input ports, bucketed by arrival
    /// cycle: each entry is `(in_port, flit)`. Same-cycle entries deliver
    /// in push order (FIFO within a cycle).
    pub inbox_router: Vec<Inbox<(PortId, Flit)>>,
    /// Flits in flight toward NIC ejection VCs: `(ej_vc, flit)` entries
    /// bucketed by arrival cycle.
    pub inbox_nic: Vec<Inbox<(usize, Flit)>>,
    /// Space-time link reservations made by Free-Flow traversals.
    pub reservations: ReservationTable,
    pub stats: Stats,
    pub rng: SmallRng,
    /// Last cycle any flit moved anywhere (watchdog input).
    pub last_progress: Cycle,
    /// Fault-injection runtime (`None` when `cfg.fault` is disabled; the
    /// engine then takes no fault branches and is bit-identical to a build
    /// without the fault layer).
    pub fault: Option<Box<crate::fault::FaultLayer>>,
    /// Optional flight recorder feeding black-box dumps (`None` by default:
    /// zero overhead). Enable with [`Network::enable_flight_recorder`].
    pub recorder: Option<crate::watchdog::FlightRecorder>,
    /// Runtime recovery layer (`None` when `cfg.recovery` is fully disabled;
    /// the engine then takes no recovery branches and is bit-identical to a
    /// build without it).
    pub recovery: Option<Box<crate::recovery::RecoveryState>>,
    /// Invariant-layer counters and findings (`check-invariants` feature).
    #[cfg(feature = "check-invariants")]
    pub inv: crate::invariants::InvariantState,
    /// Scratch for SA winners, reused across cycles.
    moves: Vec<Move>,
    /// Scratch for the delivery phase's post-insert bookkeeping
    /// (`(node, port, vc, is_tail)`), reused across cycles.
    scratch_arrivals: Vec<(usize, PortId, usize, bool)>,
    /// Scratch the inbox wheels drain into, reused across cycles.
    scratch_due: Vec<(PortId, Flit)>,
}

impl Network {
    pub fn new(cfg: NetConfig) -> Network {
        let n = cfg.num_nodes();
        assert!(n >= 2, "a network needs at least two nodes");
        if let Err(e) = cfg.recovery.validate() {
            panic!("{e}");
        }
        let mut routers: Vec<Router> = (0..n)
            .map(|i| Router::new(NodeId(i as u16), &cfg))
            .collect();
        let fault = crate::fault::FaultLayer::build(&cfg);
        if let Some(f) = &fault {
            // Dead links lose their wiring on both sides: `refresh_downfree`
            // then reports every VC through them permanently un-free, so no
            // allocation ever targets a dead link.
            for (i, r) in routers.iter_mut().enumerate() {
                for d in Direction::CARDINAL {
                    if f.dead.link_dead(i, d) {
                        r.outputs[d.index()].neighbor = None;
                    }
                }
            }
        }
        let nics = (0..n).map(|i| Nic::new(NodeId(i as u16), &cfg)).collect();
        let credits = CreditSoA::new(&cfg, n);
        let rng = SmallRng::seed_from_u64(cfg.seed);
        let recovery = cfg
            .recovery
            .any()
            .then(|| Box::new(crate::recovery::RecoveryState::new(cfg.recovery.clone())));
        Network {
            cycle: 0,
            routers,
            nics,
            credits,
            inbox_router: vec![Inbox::new(); n],
            inbox_nic: vec![Inbox::new(); n],
            reservations: ReservationTable::with_nodes(n),
            stats: Stats::default(),
            rng,
            last_progress: 0,
            fault,
            recorder: None,
            recovery,
            #[cfg(feature = "check-invariants")]
            inv: crate::invariants::InvariantState::default(),
            moves: Vec::new(),
            scratch_arrivals: Vec::new(),
            scratch_due: Vec::new(),
            cfg,
        }
    }

    /// The neighbour of `node` in direction `d`, if on the mesh.
    pub fn neighbor(&self, node: NodeId, d: Direction) -> Option<NodeId> {
        self.routers[node.idx()].outputs[d.index()].neighbor
    }

    /// Cycles between a flit winning switch allocation and becoming
    /// SA-eligible at the next router: the link plus the downstream router's
    /// pipeline.
    pub fn hop_latency(&self) -> Cycle {
        1 + self.cfg.router_latency as Cycle
    }

    /// Phase 1: deliver due flits into router VCs and NIC ejection VCs.
    ///
    /// Same-cycle arrivals at one node enter their VCs in send order (the
    /// wheels preserve push order within a cycle — see [`Inbox`]).
    fn deliver_arrivals(&mut self) {
        let now = self.cycle;
        // Link-layer retransmission first: process the wire events due this
        // cycle so freshly accepted flits join this cycle's deliveries (the
        // fault-free path's timing, just via the protocol).
        let has_retrans = match &mut self.fault {
            Some(f) => match &mut f.retrans {
                Some(rt) => {
                    rt.tick(now, &mut self.stats);
                    true
                }
                None => false,
            },
            None => false,
        };
        // Both scratch buffers are taken out of `self` so the loop bodies can
        // borrow the rest of the network freely; they go back at the end, so
        // steady-state delivery allocates nothing.
        let mut due = std::mem::take(&mut self.scratch_due);
        let mut arrivals = std::mem::take(&mut self.scratch_arrivals);
        arrivals.clear();
        // Claims on router-to-router VCs are released only when the tail flit
        // *arrives* (clearing at send would open a window where the VC looks
        // free while flits are still on the link); every arrival also returns
        // its wormhole flit credit (decrements the upstream in-flight count).
        for i in 0..self.inbox_router.len() {
            due.clear();
            self.inbox_router[i].drain_due_into(now, &mut due);
            if has_retrans {
                if let Some(f) = &mut self.fault {
                    if let Some(rt) = &mut f.retrans {
                        rt.drain_accepted_into(i, &mut due);
                    }
                }
            }
            if due.is_empty() {
                continue;
            }
            let r = &mut self.routers[i];
            for &(port, flit) in &due {
                let vcid = flit_target_vc(r, port, &flit);
                r.inputs[port].vcs[vcid].push(flit);
                self.stats.buffer_writes += 1;
                arrivals.push((i, port, vcid, flit.kind.is_tail()));
            }
            self.last_progress = now;
            for &(port, _) in &due {
                self.credits.occ_add(i, port, 1);
            }
            self.credit_touch(i);
        }
        let Network { routers, nics, .. } = self;
        for &(i, port, vcid, is_tail) in &arrivals {
            if port == Direction::Local.index() {
                // Injection link: the NIC's claim clears when the tail lands
                // (clearing at send reopens the in-flight window once the
                // router pipeline is deeper than one cycle).
                if is_tail {
                    nics[i].local_claims[vcid] = None;
                }
                continue;
            }
            // The flit arrived *from* direction `port`, so the upstream
            // router is the neighbour in that direction, and its output port
            // toward us is the opposite one.
            let dir = Direction::from_index(port);
            if let Some(up) = routers[i].outputs[dir.index()].neighbor {
                let out = &mut routers[up.idx()].outputs[dir.opposite().index()];
                out.inflight[vcid] = out.inflight[vcid].saturating_sub(1);
                if is_tail {
                    out.vc_claimed[vcid] = None;
                }
            }
        }
        for i in 0..self.inbox_nic.len() {
            due.clear();
            self.inbox_nic[i].drain_due_into(now, &mut due);
            if due.is_empty() {
                continue;
            }
            for &(ej, flit) in &due {
                self.nics[i].receive(ej, flit);
            }
            self.last_progress = now;
            // Ejection VC occupancy feeds this node's local-port snapshot.
            self.credits.mark_dirty(i);
        }
        self.scratch_due = due;
        self.scratch_arrivals = arrivals;
    }

    /// Marks `node`'s credit snapshot stale, plus its cardinal neighbours'
    /// (their snapshots read this node's input-VC occupancy as downstream
    /// state). Mechanisms mutating buffers or claims through the SPI for a
    /// known node may call this instead of blanket
    /// [`Network::credit_mark_all`].
    pub fn credit_touch(&mut self, node: usize) {
        self.credits.mark_dirty(node);
        for d in Direction::CARDINAL {
            if let Some(nb) = self.routers[node].outputs[d.index()].neighbor {
                self.credits.mark_dirty(nb.idx());
            }
        }
    }

    /// Marks every router's credit snapshot stale. [`Sim::step`] calls this
    /// each cycle for mechanisms whose
    /// [`Mechanism::touches_credits`](crate::Mechanism::touches_credits)
    /// reports `true` (the conservative default).
    pub fn credit_mark_all(&mut self) {
        self.credits.mark_all_dirty();
    }

    /// Whether `node`'s credit snapshot is pending a refresh (invariant
    /// layer: a *clean* snapshot must match a fresh recompute).
    #[cfg(feature = "check-invariants")]
    pub(crate) fn credit_is_dirty(&self, node: usize) -> bool {
        self.credits.is_dirty(node)
    }

    /// The engine's running buffered-flit counts for `node`, per input port
    /// (invariant layer: must match the buffers at every end of cycle).
    #[cfg(feature = "check-invariants")]
    pub(crate) fn buffered_count(&self, node: usize) -> [u16; NUM_PORTS] {
        self.credits.occ_array(node)
    }

    /// Recounts every router's per-port buffered-flit totals from the
    /// buffers themselves. [`Sim::step`] calls this around mechanism phases
    /// that may push or pop input-VC flits without going through the
    /// engine's tracked sites (`touches_credits`), keeping the empty
    /// router/port skips in `compute_routers` sound.
    pub fn recount_buffered(&mut self) {
        let Network {
            routers, credits, ..
        } = self;
        credits.recount_occupancy(routers);
    }

    /// Phase 4: refresh the downstream-availability snapshot of every router
    /// whose inputs changed since its last refresh (see `credit_dirty`; a
    /// snapshot only depends on this router's outputs, its NIC's ejection
    /// VCs, and its cardinal neighbours' input VCs, and every mutation of
    /// those marks the affected routers via [`Network::credit_touch`]).
    fn refresh_downfree(&mut self) {
        let Network {
            routers,
            nics,
            credits,
            fault,
            ..
        } = self;
        let wormhole = self.cfg.buffer_org == noc_types::BufferOrg::Wormhole;
        let depth = self.cfg.vc_depth;
        let dead = fault.as_ref().map(|f| &f.dead);
        for i in 0..routers.len() {
            if !credits.is_dirty(i) {
                continue;
            }
            credits.clear_dirty(i);
            credits.recompute_router(routers, nics, i, wormhole, depth, dead);
        }
    }

    /// Phase 5: per-router combined RC/VA/SA and switch traversal.
    fn compute_routers(&mut self) {
        let now = self.cycle;
        let Network {
            cfg,
            routers,
            credits,
            inbox_router,
            inbox_nic,
            reservations,
            stats,
            rng,
            last_progress,
            fault,
            recorder,
            moves,
            ..
        } = self;
        // Split the fault layer into its two independently borrowed halves:
        // the routing mask feeds route decisions, the retransmission state
        // replaces the direct inbox push at the send site.
        let (mask, mut retrans) = match fault {
            Some(f) => (f.mask.as_ref(), f.retrans.as_mut()),
            None => (None, None),
        };

        for i in 0..routers.len() {
            if !credits.router_busy(i) {
                continue;
            }
            moves.clear();
            let occ = credits.occ_array(i);
            decide_router(
                i,
                &mut routers[i],
                &occ,
                credits.view(i),
                cfg,
                mask,
                reservations,
                rng,
                now,
                moves,
            );
            if !moves.is_empty() {
                // Moves change this router's outputs (claims, inflight) and
                // its input-VC occupancy, which its neighbours snapshot.
                credits.mark_dirty(i);
                for d in Direction::CARDINAL {
                    if let Some(nb) = routers[i].outputs[d.index()].neighbor {
                        credits.mark_dirty(nb.idx());
                    }
                }
            }
            let r = &mut routers[i];
            for m in moves.iter() {
                let vc = &mut r.inputs[m.in_port].vcs[m.in_vc];
                if let Some((out_vc, escape)) = m.alloc {
                    vc.route = Some(VcRoute {
                        out_port: m.out_port,
                        out_vc,
                        escape,
                    });
                    let pkt = vc.front().expect("allocating empty VC").packet;
                    r.outputs[m.out_port].vc_claimed[out_vc] = Some(pkt);
                }
                let route = vc.route.expect("moving flit without route");
                let (mut flit, _freed) = vc.pop_front_sent();
                credits.occ_sub(i, m.in_port, 1);
                flit.escape = route.escape;
                flit.vc = route.out_vc as u8;
                stats.buffer_reads += 1;
                // Ejection claims clear at send (the NIC link delivers before
                // the next credit snapshot); router-to-router claims clear at
                // tail *delivery* in `deliver_arrivals`.
                if flit.kind.is_tail() && m.out_port == Direction::Local.index() {
                    r.outputs[route.out_port].vc_claimed[route.out_vc] = None;
                }
                if m.out_port == Direction::Local.index() {
                    inbox_nic[i].push(now + LOCAL_LATENCY, (route.out_vc, flit));
                } else {
                    flit.hops += 1;
                    stats.count_link_hop_at(now, r.id, route.out_port);
                    r.outputs[route.out_port].inflight[route.out_vc] += 1;
                    let nb = r.outputs[route.out_port].neighbor.expect("move off-mesh");
                    let their_in = Direction::from_index(m.out_port).opposite().index();
                    match &mut retrans {
                        // Faulty links: the flit enters the link-layer
                        // protocol instead of the inbox; it surfaces in
                        // `deliver_arrivals` once *accepted* downstream.
                        Some(rt) => rt.send(now, i, route.out_port, flit, stats),
                        None => {
                            let hop = 1 + cfg.router_latency as Cycle;
                            inbox_router[nb.idx()].push(now + hop, (their_in, flit));
                        }
                    }
                }
                if let Some(rec) = recorder {
                    rec.record(now, r.id, m.in_port, m.in_vc, m.out_port);
                }
                *last_progress = now;
            }
            // Mark heads that did not move this cycle (SPIN / watchdog input).
            for port in &mut r.inputs {
                for vc in &mut port.vcs {
                    if vc.front().is_some() && vc.head_wait_since.is_none() {
                        vc.head_wait_since = Some(now);
                    }
                }
            }
        }
    }

    /// Phase 6: NICs stream packet flits into their router's local port.
    fn compute_injection(&mut self) {
        let now = self.cycle;
        #[cfg(feature = "check-invariants")]
        let mut injected_now: u64 = 0;
        let Network {
            cfg,
            routers,
            nics,
            inbox_router,
            stats,
            last_progress,
            recovery,
            fault,
            ..
        } = self;
        let lp = Direction::Local.index();
        for (i, nic) in nics.iter_mut().enumerate() {
            // A dead router's NIC picks no new packets (its queues hold);
            // an in-progress injection still finishes streaming so the
            // local input VC is never wedged with a partial packet.
            let router_dead = fault.as_ref().is_some_and(|f| f.dead.router_dead(i));
            if nic.inj_active.is_none() && !router_dead {
                // Pick the next packet: round-robin over classes, allocate a
                // free local-input VC in the packet's VNet.
                let classes = nic.inj_queues.len();
                'pick: for k in 0..classes {
                    let cls = (nic.inj_rr + k) % classes;
                    let Some(&pkt) = nic.inj_queues[cls].front() else {
                        continue;
                    };
                    let vnet = cfg.vnet_of(pkt.class);
                    let range = cfg.vc_range(vnet);
                    let esc = cfg.escape_vc(vnet).map(|e| range.start + e);
                    // Normal VCs first, escape as fallback.
                    let pick = range
                        .clone()
                        .filter(|&v| Some(v) != esc)
                        .chain(esc)
                        .find(|&v| {
                            routers[i].inputs[lp].vcs[v].is_free() && nic.local_claims[v].is_none()
                        });
                    if let Some(v) = pick {
                        nic.inj_queues[cls].pop_front();
                        nic.local_claims[v] = Some(pkt.id);
                        nic.inj_rr = (cls + 1) % classes;
                        nic.inj_active = Some(InjProgress {
                            packet: pkt,
                            next_seq: 0,
                            vc: v,
                            inject: now,
                        });
                        break 'pick;
                    }
                }
            }
            if let Some(prog) = &mut nic.inj_active {
                let mut flit = Flit::from_packet(&prog.packet, prog.next_seq, prog.inject);
                let vnet = cfg.vnet_of(prog.packet.class);
                let range = cfg.vc_range(vnet);
                flit.escape = cfg.escape_vc(vnet).map(|e| range.start + e) == Some(prog.vc);
                flit.vc = prog.vc as u8;
                // Direct flits to the VC the NIC allocated: record it so the
                // delivery phase can place them (head marks the VC resident;
                // bodies follow the resident packet).
                inbox_router[i].push(now + cfg.router_latency as Cycle, (lp, flit));
                stats.record_injected_flit(&flit);
                #[cfg(feature = "check-invariants")]
                {
                    injected_now += 1;
                }
                *last_progress = now;
                prog.next_seq += 1;
                if prog.next_seq == prog.packet.len_flits {
                    if let Some(rec) = recovery {
                        // End-to-end layer: the delivery timer starts when
                        // the whole packet has left the NIC.
                        rec.register_sent(&prog.packet, now);
                    }
                    // The claim on the local input VC clears when the tail
                    // *arrives* (see deliver_arrivals), not here.
                    nic.inj_active = None;
                }
            }
        }
        #[cfg(feature = "check-invariants")]
        {
            self.inv.injected_flits += injected_now;
        }
    }

    /// Phase 7: offer complete ejected packets to the workload.
    fn consume(&mut self, workload: &mut dyn Workload) {
        let now = self.cycle;
        for i in 0..self.nics.len() {
            // A dead router's NIC delivers nothing; complete ejection
            // packets sit until the stranded purge lifts them (or the
            // router heals and delivery resumes).
            if self.fault.as_ref().is_some_and(|f| f.dead.router_dead(i)) {
                continue;
            }
            for ej in 0..self.nics[i].ejection.len() {
                if self.nics[i].ejection[ej].complete_packet() {
                    let mut d = self.nics[i].consume_peek(ej, now);
                    let raw = d.id;
                    if let Some(rec) = &self.recovery {
                        // The workload must see the original id; retry
                        // copies carry a distinct wire id (claims and
                        // residency are keyed by it) that is unmasked here.
                        let (logical, dup) = rec.classify_delivery(raw);
                        d.id = logical;
                        if dup {
                            // Exactly-once delivery: a copy of this packet
                            // already reached the workload. Discard silently;
                            // the flits still count as consumed for
                            // conservation.
                            self.nics[i].consume_commit(ej);
                            self.stats.e2e_duplicates_dropped += 1;
                            self.last_progress = now;
                            self.credits.mark_dirty(i);
                            #[cfg(feature = "check-invariants")]
                            {
                                self.inv.consumed_flits += u64::from(d.len_flits);
                            }
                            continue;
                        }
                    }
                    if workload.deliver(now, &d) {
                        self.nics[i].consume_commit(ej);
                        if let Some(rec) = &mut self.recovery {
                            rec.on_delivered(raw);
                        }
                        self.stats.record_delivery(&d);
                        self.last_progress = now;
                        // Freeing an ejection VC changes this node's
                        // local-port snapshot.
                        self.credits.mark_dirty(i);
                        #[cfg(feature = "check-invariants")]
                        {
                            let cols = self.cfg.cols;
                            let detours = self.fault.as_ref().is_some_and(|f| f.mask.is_some());
                            self.inv.on_consume(&d, cols, detours);
                        }
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Forced-move helpers (SPI for SEEC, SPIN, SWAP, DRAIN).
    // ------------------------------------------------------------------

    /// True when a packet could be installed into `(node, port, vc)`: the VC
    /// is empty and its upstream (router or NIC) holds no claim on it.
    pub fn vc_installable(&self, node: NodeId, port: PortId, vc: usize) -> bool {
        let r = &self.routers[node.idx()];
        if !r.inputs[port].vcs[vc].is_free() {
            return false;
        }
        self.upstream_claim(node, port, vc).is_none()
    }

    /// The upstream claim (if any) on input VC `(node, port, vc)`.
    pub fn upstream_claim(
        &self,
        node: NodeId,
        port: PortId,
        vc: usize,
    ) -> Option<noc_types::PacketId> {
        if port == Direction::Local.index() {
            return self.nics[node.idx()].local_claims[vc];
        }
        let dir = Direction::from_index(port);
        match self.neighbor(node, dir) {
            Some(nb) => self.routers[nb.idx()].outputs[dir.opposite().index()].vc_claimed[vc],
            None => None,
        }
    }

    /// Drains the fully-buffered packet out of `(node, port, vc)`, freeing
    /// the VC. Panics if the packet is still streaming or has begun moving.
    pub fn drain_packet(&mut self, node: NodeId, port: PortId, vc: usize) -> Vec<Flit> {
        let v = &mut self.routers[node.idx()].inputs[port].vcs[vc];
        assert!(v.route.is_none(), "draining a packet that began moving");
        let flits = v.drain_packet();
        self.credits.occ_sub(node.idx(), port, flits.len() as u16);
        self.credit_touch(node.idx());
        flits
    }

    /// Installs a fully-buffered packet into a free, unclaimed VC.
    pub fn install_packet(&mut self, node: NodeId, port: PortId, vc: usize, flits: Vec<Flit>) {
        assert!(
            self.vc_installable(node, port, vc),
            "installing into unavailable VC"
        );
        self.credits.occ_add(node.idx(), port, flits.len() as u16);
        self.routers[node.idx()].inputs[port].vcs[vc].install_packet(flits);
        self.last_progress = self.cycle;
        self.credit_touch(node.idx());
    }

    /// Flits currently buffered in routers plus flits in flight (watchdog /
    /// invariants; excludes NIC queues and ejection VCs).
    pub fn flits_in_network(&self) -> usize {
        let buffered: usize = self.routers.iter().map(Router::buffered_flits).sum();
        let flying: usize = self.inbox_router.iter().map(Inbox::len).sum();
        // Under retransmission, flits between send and downstream acceptance
        // live in the link-layer windows instead of the inboxes.
        let in_protocol = self
            .fault
            .as_ref()
            .and_then(|f| f.retrans.as_ref())
            .map_or(0, crate::fault::Retrans::in_flight_total);
        // A victim in the recovery channel is in the network too, just not
        // in any router buffer or inbox.
        let in_recovery = self.recovery.as_ref().map_or(0, |r| r.custody_flits());
        buffered + flying + in_protocol + in_recovery
    }

    /// Turns on the flight recorder keeping the last `cap` switch-traversal
    /// records for black-box dumps.
    pub fn enable_flight_recorder(&mut self, cap: usize) {
        self.recorder = Some(crate::watchdog::FlightRecorder::new(cap));
    }

    /// Cycles since anything moved.
    pub fn quiescent_for(&self) -> u64 {
        self.cycle.saturating_sub(self.last_progress)
    }
}

/// Which VC an arriving flit belongs to: the VC id written into the flit
/// header by the sender (exactly what a real head flit carries on the wire).
fn flit_target_vc(router: &Router, port: PortId, flit: &Flit) -> usize {
    let v = flit.vc as usize;
    debug_assert!(
        flit.kind.is_head() || router.inputs[port].vcs[v].resident == Some(flit.packet),
        "body flit arrived at a VC not holding its packet"
    );
    v
}

/// Stage-1 nomination: `(in_vc, out_port, alloc)` where `alloc` is the
/// freshly granted `(downstream VC, is_escape)` pair for head flits (body
/// flits already hold their route and carry `None`).
type Nomination = (usize, PortId, Option<(usize, bool)>);

/// One router's combined route-compute / VC-allocation / switch-allocation
/// decision for this cycle (1-cycle router pipeline).
///
/// Stage 1 nominates at most one VC per input port (round-robin over VCs):
/// a VC is eligible when its front flit can actually move this cycle — its
/// route is allocated, or it is a head for which a downstream VC (or ejection
/// VC) can be allocated right now — and the target output link is not
/// reserved for a Free-Flow traversal. Stage 2 arbitrates each output port
/// among nominating inputs (round-robin over ports).
#[allow(clippy::too_many_arguments)]
fn decide_router(
    node: usize,
    r: &mut Router,
    occ: &[u16; NUM_PORTS],
    down: CreditView<'_>,
    cfg: &NetConfig,
    mask: Option<&crate::fault::RouteMask>,
    reservations: &ReservationTable,
    rng: &mut SmallRng,
    now: Cycle,
    moves: &mut Vec<Move>,
) {
    use noc_types::BaseRouting;

    // Cheap per-port pre-filter: a head can only allocate through a port
    // with at least one free downstream VC. In a saturated network this
    // skips route computation for almost every blocked head — and with the
    // SoA lane masks each test is a single compare.
    let mut port_has_free = [false; NUM_PORTS];
    for (p, has) in port_has_free.iter_mut().enumerate() {
        *has = down.any_free(p);
    }

    // Stage 1: nominations — (in_vc, out_port, alloc). `nominated` holds a
    // bit per *output* port so stage 2 can skip uncontested outputs.
    let mut nominee: [Option<Nomination>; NUM_PORTS] = [None; NUM_PORTS];
    let mut nominated: u8 = 0;
    for (p, nom) in nominee.iter_mut().enumerate() {
        if occ[p] == 0 {
            continue; // no flits behind this port: nothing to nominate
        }
        let nvcs = r.inputs[p].vcs.len();
        for k in 0..nvcs {
            let v = (r.sa_in_rr[p] + k) % nvcs;
            if r.inputs[p].vcs[v].ff_capture {
                continue; // flits here belong to an FF stream, not to SA
            }
            let Some(front) = r.inputs[p].vcs[v].front().copied() else {
                continue;
            };
            if let Some(route) = r.inputs[p].vcs[v].route {
                // Wormhole: body flits advance only when the downstream VC
                // has a free slot (flit-granularity credits). The local port
                // ejects into packet-deep NIC buffers.
                let has_slot = cfg.buffer_org != noc_types::BufferOrg::Wormhole
                    || route.out_port == Direction::Local.index()
                    || down.slot(route.out_port, route.out_vc) > 0;
                if has_slot && !reservations.is_reserved(r.id, route.out_port, now) {
                    *nom = Some((v, route.out_port, None));
                    nominated |= 1 << route.out_port;
                    break;
                }
                continue;
            }
            if !front.kind.is_head() {
                continue;
            }
            let here = r.coord;
            let dest = front.dest.to_coord(cfg.cols);
            if dest == here {
                let lp = Direction::Local.index();
                if !port_has_free[lp] {
                    continue;
                }
                if let Some(ej) = try_alloc_ejection(&front, cfg, down) {
                    if !reservations.is_reserved(r.id, lp, now) {
                        *nom = Some((v, lp, Some((ej, false))));
                        nominated |= 1 << lp;
                        break;
                    }
                }
                continue;
            }
            // Pre-filter: every legal next hop (for any algorithm, escape
            // included) is a productive direction — or, on a degraded mesh,
            // a mask-allowed one; if none has a free VC, allocation is
            // impossible this cycle.
            let can_progress = match mask {
                Some(m) => {
                    let bits = m.allowed(here, dest);
                    Direction::CARDINAL
                        .into_iter()
                        .any(|d| bits & (1 << d.index()) != 0 && port_has_free[d.index()])
                }
                None => crate::routing::productive(here, dest)
                    .as_slice()
                    .iter()
                    .any(|d| port_has_free[d.index()]),
            };
            if !can_progress {
                continue;
            }
            let in_escape = r.inputs[p].vcs[v].is_escape_resident;
            let algo = if in_escape {
                BaseRouting::WestFirst
            } else {
                cfg.routing.normal()
            };
            // Adaptive routing re-evaluates its port choice every cycle a
            // head waits (it adapts to congestion); the other algorithms
            // compute the route once per router visit and stick (Garnet).
            let adaptive = matches!(algo, BaseRouting::AdaptiveMinimal | BaseRouting::WestFirst);
            let pending = match r.inputs[p].vcs[v].pending_port {
                Some(pp) if !adaptive => pp,
                _ => {
                    let vnet = cfg.vnet_of(front.class);
                    let pp = route_compute(algo, here, dest, vnet, down, mask, rng);
                    r.inputs[p].vcs[v].pending_port = Some(pp);
                    pp
                }
            };
            if let Some((port, out_vc, esc)) =
                try_alloc(&front, in_escape, pending, here, cfg, down)
            {
                if !reservations.is_reserved(r.id, port, now) {
                    *nom = Some((v, port, Some((out_vc, esc))));
                    nominated |= 1 << port;
                    break;
                }
            }
        }
    }

    // Stage 2: output arbitration (round-robin over input ports), only for
    // outputs somebody nominated.
    for o in 0..NUM_PORTS {
        if nominated & (1 << o) == 0 {
            continue;
        }
        let mut winner = None;
        for k in 0..NUM_PORTS {
            let p = (r.sa_out_rr[o] + k) % NUM_PORTS;
            if let Some((_, port, _)) = nominee[p] {
                if port == o {
                    winner = nominee[p].take().map(|n| (p, n));
                    break;
                }
            }
        }
        if let Some((p, (v, _, alloc))) = winner {
            moves.push(Move {
                node,
                in_port: p,
                in_vc: v,
                out_port: o,
                alloc,
            });
            r.sa_in_rr[p] = (v + 1) % r.inputs[p].vcs.len();
            r.sa_out_rr[o] = (p + 1) % NUM_PORTS;
        }
    }
}

/// A complete simulation: network + workload + mechanism, driven cycle by
/// cycle.
pub struct Sim {
    pub net: Network,
    pub mech: Box<dyn Mechanism>,
    pub workload: Box<dyn Workload>,
    /// Idle-cycle skipping: when set, `run` / `run_until_done` fast-forward
    /// the clock across cycles on which every layer is provably inert (see
    /// [`Sim::skip_target`]) instead of stepping through them. Off by
    /// default — the scalar engine then executes the exact historical cycle
    /// loop. Skipping is observationally invisible (same stats, same RNG
    /// stream, same final state); the flag exists so the default path stays
    /// trivially auditable and the property tests have both sides to
    /// compare.
    pub idle_skip: bool,
    /// Cycles the clock jumped over instead of stepping (diagnostic only —
    /// not part of the simulation state or any digest). Always zero with
    /// `idle_skip` off.
    pub skipped_cycles: u64,
}

impl Sim {
    pub fn new(cfg: NetConfig, workload: Box<dyn Workload>, mech: Box<dyn Mechanism>) -> Sim {
        let mut net = Network::new(cfg);
        net.stats.measure_start = net.cfg.warmup;
        Sim {
            net,
            mech,
            workload,
            idle_skip: false,
            skipped_cycles: 0,
        }
    }

    /// Builder-style toggle for [`Sim::idle_skip`].
    #[must_use]
    pub fn with_idle_skip(mut self, on: bool) -> Sim {
        self.idle_skip = on;
        self
    }

    /// Advances the simulation by one cycle (all eight phases).
    pub fn step(&mut self) {
        let net = &mut self.net;
        if net.cycle == net.cfg.warmup {
            net.stats.measure_start = net.cycle;
        }
        // Dynamic fault schedules reconfigure the topology before anything
        // moves this cycle (no-op without a schedule).
        crate::chaos::tick(net);
        net.deliver_arrivals();
        {
            let Network {
                nics, stats, cycle, ..
            } = net;
            self.workload.generate(*cycle, &mut |node, pkt| {
                debug_assert_ne!(pkt.src, pkt.dest, "self-addressed packet");
                if pkt.measured {
                    stats.generated_packets += 1;
                }
                nics[node.idx()].enqueue(pkt);
            });
        }
        self.mech.pre_cycle(net);
        if self.mech.touches_credits() {
            // The mechanism may have moved flits in or out of input VCs
            // without the engine seeing it: re-derive the per-router
            // occupancy counts before they gate router compute.
            net.recount_buffered();
        }
        net.refresh_downfree();
        net.compute_routers();
        net.compute_injection();
        net.consume(self.workload.as_mut());
        self.mech.post_cycle(net);
        if self.mech.touches_credits() {
            // The mechanism may have mutated buffers, claims or ejection
            // reservations anywhere. One blanket invalidation here covers
            // both this post_cycle and the next cycle's pre_cycle (no
            // refresh happens in between); mechanisms that only observe, or
            // only touch inbox timing, opt out via `touches_credits`.
            net.credit_mark_all();
            net.recount_buffered();
        }
        if net.recovery.is_some() {
            // Runtime recovery observes the same end-of-cycle state the
            // watchdog would; on a healthy network it does nothing.
            crate::recovery::tick(net, self.mech.as_mut());
        }
        #[cfg(feature = "check-invariants")]
        net.check_invariants();
        let c = net.cycle;
        net.reservations.prune(c);
        net.cycle += 1;
    }

    /// The furthest cycle the clock may jump to right now without changing
    /// any observable behaviour, at most `end`. Returns the current cycle
    /// when skipping is unsound — some layer does (or may do) real work on
    /// the very next cycle.
    ///
    /// A cycle is skippable iff `step` at that cycle would be a pure
    /// `cycle += 1`: no flit moves, no queue drains, no timer fires, no RNG
    /// byte is drawn. That requires *all* of:
    ///
    /// * a quiescent mechanism (its pre/post hooks are no-ops on a quiet
    ///   network — [`Mechanism::quiescent`]),
    /// * an idle recovery layer (no drain in progress, empty outstanding
    ///   table) and an idle fault layer (no retransmission state; chaos
    ///   bounded by its next schedule event),
    /// * a fully drained network: zero buffered flits, no reservations, and
    ///   every NIC with an empty injection queue, no half-injected packet
    ///   and empty ejection VCs (the compute/consume phases are then
    ///   guaranteed no-ops),
    /// * in-flight flits only as far as their wheel horizon: the jump stops
    ///   at the earliest `next_due` over all inboxes,
    /// * the workload quiet until its own declared horizon
    ///   ([`Workload::next_activity`]; the conservative default pins the
    ///   clock), and
    /// * not crossing the warmup boundary, where measurement resets.
    pub(crate) fn skip_target(&self, end: Cycle) -> Cycle {
        let net = &self.net;
        let now = net.cycle;
        // The target is a min over horizons with vetoes contributing `now`,
        // so evaluation order is free to put the cheap, commonly-pinning
        // checks first — this runs on every cycle skipping fails, and that
        // overhead is what the batched bench pays during busy windows.
        let mut target = end;
        if let Some(c) = self.workload.next_activity(now) {
            if c <= now {
                return now;
            }
            target = target.min(c);
        }
        // Layers that may act every cycle veto skipping outright.
        if !self.mech.quiescent() {
            return now;
        }
        if net.recovery.as_ref().is_some_and(|r| !r.is_idle()) {
            return now;
        }
        if net.credits.total_buffered() != 0 || !net.reservations.is_empty() {
            return now;
        }
        if net.nics.iter().any(|nic| {
            nic.backlog() != 0
                || nic.inj_active.is_some()
                || nic.ejection.iter().any(|e| !e.buf.is_empty())
        }) {
            return now;
        }
        if let Some(fl) = &net.fault {
            match fl.quiet_until() {
                None => return now,
                Some(c) => target = target.min(c),
            }
        }
        for ib in &net.inbox_router {
            if let Some(c) = ib.next_due() {
                target = target.min(c);
            }
        }
        for ib in &net.inbox_nic {
            if let Some(c) = ib.next_due() {
                target = target.min(c);
            }
        }
        if now < net.cfg.warmup {
            target = target.min(net.cfg.warmup);
        }
        // Horizons are contracts (`>= now`); clamp so a buggy implementor
        // can only lose the optimization, never rewind the clock.
        target.max(now)
    }

    /// Fast-forwards the clock to [`Sim::skip_target`] when idle skipping
    /// is enabled. `last_progress` is deliberately untouched: skipped
    /// cycles are idle by proof, exactly as if they had been stepped.
    pub(crate) fn maybe_skip(&mut self, end: Cycle) {
        if !self.idle_skip {
            return;
        }
        let target = self.skip_target(end);
        if target > self.net.cycle {
            // Fold the derived credit caches forward before jumping. On the
            // skipped cycles a stepping run would refresh each dirty
            // router's credit snapshot exactly once and then find nothing
            // further to do (the network is inert by proof); one refresh
            // here reproduces that fixpoint, so snapshots and state digests
            // taken right after the jump match the stepped run bit for bit.
            self.net.refresh_downfree();
            self.skipped_cycles += target - self.net.cycle;
            self.net.cycle = target;
        }
    }

    /// Runs for `cycles` cycles.
    pub fn run(&mut self, cycles: u64) {
        let end = self.net.cycle + cycles;
        while self.net.cycle < end {
            self.maybe_skip(end);
            if self.net.cycle >= end {
                break;
            }
            self.step();
        }
    }

    /// Runs until the workload reports completion or `max_cycles` elapse.
    /// Returns `true` if the workload finished.
    ///
    /// With idle skipping enabled, jumped cycles cannot flip `finished`:
    /// the workload's state is untouched on cycles its own `next_activity`
    /// horizon declared inert, so the answer is constant across the jump.
    pub fn run_until_done(&mut self, max_cycles: u64) -> bool {
        let end = self.net.cycle + max_cycles;
        while self.net.cycle < end {
            if self.workload.finished() == Some(true) {
                return true;
            }
            self.maybe_skip(end);
            if self.net.cycle >= end {
                break;
            }
            self.step();
        }
        self.workload.finished() == Some(true)
    }

    /// Finalizes and returns the statistics.
    pub fn finish(&mut self) -> &Stats {
        let c = self.net.cycle;
        self.net.stats.finish(c);
        &self.net.stats
    }
}

/// Uniform driver interface over network models (the VC-router [`Sim`] and
/// the deflection networks in `noc-baselines`), used by the experiment
/// harness.
pub trait NocModel {
    /// Advances one cycle.
    fn tick(&mut self);
    /// Current cycle.
    fn now(&self) -> Cycle;
    /// Statistics so far.
    fn stats(&self) -> &Stats;
    /// Finalizes and returns statistics.
    fn finalize(&mut self) -> Stats;

    /// Runs for `cycles` cycles.
    fn run_for(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.tick();
        }
    }
}

impl NocModel for Sim {
    fn tick(&mut self) {
        self.step();
    }

    fn run_for(&mut self, cycles: u64) {
        // Route through `run` so idle-cycle skipping applies to
        // harness-driven slices too (a no-op when `idle_skip` is off).
        self.run(cycles);
    }

    fn now(&self) -> Cycle {
        self.net.cycle
    }

    fn stats(&self) -> &Stats {
        &self.net.stats
    }

    fn finalize(&mut self) -> Stats {
        self.finish().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DeliveredPacket;
    use crate::workload::IdleWorkload;
    use noc_types::{MessageClass, NetConfig, Packet, PacketId};

    fn packet(id: u64, src: u16, dest: u16, len: u8, birth: Cycle) -> Packet {
        Packet {
            id: PacketId(id),
            src: NodeId(src),
            dest: NodeId(dest),
            class: MessageClass(0),
            len_flits: len,
            birth,
            measured: true,
        }
    }

    fn sim(cfg: NetConfig) -> Sim {
        Sim::new(cfg, Box::new(IdleWorkload), Box::new(crate::NoMechanism))
    }

    /// A collecting workload that records deliveries.
    struct Collect(std::rc::Rc<std::cell::RefCell<Vec<DeliveredPacket>>>);
    impl Workload for Collect {
        fn generate(&mut self, _c: Cycle, _i: &mut dyn FnMut(NodeId, Packet)) {}
        fn deliver(&mut self, _c: Cycle, p: &DeliveredPacket) -> bool {
            self.0.borrow_mut().push(*p);
            true
        }
    }

    #[test]
    fn single_packet_timing_is_deterministic() {
        // 4x4 XY: node 0 → node 3 is 3 hops east.
        let mut cfg = NetConfig::synth(4, 2);
        cfg.routing = noc_types::RoutingAlgo::Uniform(noc_types::BaseRouting::Xy);
        cfg.warmup = 0;
        let got = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut sim = Sim::new(
            cfg,
            Box::new(Collect(got.clone())),
            Box::new(crate::NoMechanism),
        );
        sim.net.nics[0].enqueue(packet(1, 0, 3, 1, 0));
        sim.run(40);
        let got = got.borrow();
        assert_eq!(got.len(), 1);
        let d = got[0];
        assert_eq!(d.hops, 3);
        // Timing: inject at 0, +1 NIC link (at router 0 at cycle 1), three
        // 2-cycle hops win SA at cycles 1/3/5, arrive at the edge router at
        // 7, eject over the 1-cycle local link → consumed at 8.
        assert_eq!(d.inject, 0);
        assert_eq!(d.eject, 8, "timing model changed unexpectedly");
    }

    #[test]
    fn five_flit_packet_streams_back_to_back() {
        let mut cfg = NetConfig::synth(4, 2);
        cfg.routing = noc_types::RoutingAlgo::Uniform(noc_types::BaseRouting::Xy);
        cfg.warmup = 0;
        let got = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut sim = Sim::new(
            cfg,
            Box::new(Collect(got.clone())),
            Box::new(crate::NoMechanism),
        );
        sim.net.nics[0].enqueue(packet(1, 0, 1, 5, 0));
        sim.run(40);
        let got = got.borrow();
        assert_eq!(got.len(), 1);
        // One hop: the head is consumed at +4; the tail trails it by exactly
        // 4 cycles (full pipelining, one flit per cycle) → +8.
        assert_eq!(got[0].eject - got[0].inject, 8);
    }

    #[test]
    fn claims_block_reallocation_until_tail_arrives() {
        let mut s = sim(NetConfig::synth(4, 1));
        s.net.nics[0].enqueue(packet(1, 0, 3, 5, 0));
        s.net.nics[0].enqueue(packet(2, 0, 3, 5, 0));
        // Run a few cycles: packet 1 allocates router 0's east VC; packet 2
        // must not interleave into the same VC (single VC per port!).
        for _ in 0..8 {
            s.step();
            // Invariant enforced by debug_assert in push(); additionally,
            // every VC holds flits of at most one packet.
            for r in &s.net.routers {
                for p in &r.inputs {
                    for vc in &p.vcs {
                        let ids: std::collections::HashSet<u64> =
                            vc.buf.iter().map(|f| f.packet.0).collect();
                        assert!(ids.len() <= 1);
                    }
                }
            }
        }
    }

    #[test]
    fn reservations_block_switch_allocation() {
        let mut cfg = NetConfig::synth(4, 2);
        cfg.routing = noc_types::RoutingAlgo::Uniform(noc_types::BaseRouting::Xy);
        cfg.warmup = 0;
        let mut s = sim(cfg);
        s.net.nics[0].enqueue(packet(1, 0, 3, 1, 0));
        // Reserve router 0's east output for a long window before the flit
        // can use it; the packet must be delayed by roughly that window.
        s.net
            .reservations
            .reserve(NodeId(0), Direction::East.index(), 0, 20);
        let mut delivered_at = None;
        for _ in 0..60 {
            s.step();
            if s.net.stats.ejected_packets > 0 && delivered_at.is_none() {
                delivered_at = Some(s.net.cycle);
            }
        }
        let t = delivered_at.expect("packet never delivered");
        assert!(t > 20, "reservation did not delay SA: delivered at {t}");
    }

    #[test]
    fn wormhole_credits_gate_body_flits() {
        // Depth-1 wormhole: consecutive flits of one packet must be spaced
        // by the credit round trip, not back-to-back.
        let mut cfg = NetConfig::synth(4, 1).with_wormhole(1);
        cfg.routing = noc_types::RoutingAlgo::Uniform(noc_types::BaseRouting::Xy);
        cfg.warmup = 0;
        let got = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut sim = Sim::new(
            cfg,
            Box::new(Collect(got.clone())),
            Box::new(crate::NoMechanism),
        );
        sim.net.nics[0].enqueue(packet(1, 0, 2, 5, 0));
        sim.run(120);
        let got = got.borrow();
        assert_eq!(got.len(), 1, "wormhole packet lost");
        // With depth-1 VCs the worm serializes: strictly slower than the
        // fully-pipelined VCT delivery of eject-inject = 2 hops + 4 flits.
        assert!(
            got[0].eject - got[0].inject > 12,
            "depth-1 wormhole too fast: {}",
            got[0].eject - got[0].inject
        );
    }

    #[test]
    fn injection_round_robins_across_classes() {
        let mut cfg = NetConfig::full_system(4, 6, 1);
        cfg.warmup = 0;
        let mut s = sim(cfg);
        for c in 0..6u8 {
            let mut p = packet(c as u64, 0, 1, 1, 0);
            p.class = MessageClass(c);
            s.net.nics[0].enqueue(p);
        }
        // Six classes, one flit each, one injection per cycle → all gone
        // within ~8 cycles and each class's queue drains exactly once.
        s.run(10);
        assert_eq!(s.net.nics[0].backlog(), 0);
    }

    #[test]
    fn local_port_never_routes_off_mesh() {
        // Saturate a corner node toward the opposite corner; no panics and
        // no flit loss means edge ports are never selected.
        let mut cfg = NetConfig::synth(4, 2);
        cfg.warmup = 0;
        let mut s = sim(cfg);
        for i in 0..10 {
            s.net.nics[0].enqueue(packet(i, 0, 15, 5, 0));
        }
        s.run(300);
        assert_eq!(s.net.stats.ejected_packets, 10);
    }
}
