//! Fault injection and self-healing links.
//!
//! This module implements the runtime half of the fault model described by
//! [`noc_types::FaultConfig`] (see `DESIGN.md` §9):
//!
//! * **Transient faults** corrupt individual link traversals. A go-back-N
//!   link-layer retransmission protocol ([`Retrans`]) heals them
//!   transparently: every flit crossing a router-to-router link carries a
//!   sequence number and a checksum; the receiver accepts flits strictly in
//!   sequence order, nacks the first corrupted or missing one, and the
//!   sender re-sends everything unacknowledged (with a timeout-and-backoff
//!   path for lost control races). Per-link FIFO order is preserved, so the
//!   engine above sees exactly the fault-free flit stream, only later —
//!   latency cost, never loss, duplication or reordering.
//! * **Permanent faults** kill physical links or whole routers for the run
//!   ([`DeadSet`]). The engine nulls the corresponding `neighbor` wiring and
//!   routes around the holes with a [`RouteMask`]: a per-destination table
//!   of minimal productive directions from which the rest of the path is
//!   still live. When no such direction exists for a live source/destination
//!   pair the configuration is *unroutable* and construction fails loudly
//!   (the degraded channel-dependency graph is re-certified by `noc-verify`
//!   before experiments trust such a mesh).
//!
//! Scope: only router-to-router data links fault. NIC↔router links, the
//! seeker side-band ring and the ack/nack control wires are assumed
//! protected (they are narrow and cheap to harden); acks and nacks are
//! therefore never lost, and the timeout path exists only for the window
//! where a resend races an ack already in flight.
//!
//! All randomness comes from a dedicated RNG seeded by
//! `FaultConfig::fault_seed` — never from the traffic RNG — so with faults
//! disabled the engine's RNG stream, and hence its output, is bit-identical
//! to a build without this module.

use crate::inbox::Inbox;
use crate::routing::{west_first, Candidates};
use crate::stats::Stats;
use noc_types::{Coord, Cycle, Direction, Flit, NetConfig, NodeId, PortId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// XOR mask applied to a transmitted checksum when the fault RNG corrupts a
/// traversal (the corruption model is checksum-detectable by construction;
/// silent data corruption is out of scope).
const CORRUPT: u64 = 0xDEAD_BEEF_DEAD_BEEF;

/// Content checksum of a flit as transmitted on a link (FNV-1a over the
/// header fields a real link-layer CRC would cover).
pub fn flit_checksum(f: &Flit) -> u64 {
    let mut bytes = [0u8; 24];
    bytes[..8].copy_from_slice(&f.packet.0.to_le_bytes());
    bytes[8..10].copy_from_slice(&f.src.0.to_le_bytes());
    bytes[10..12].copy_from_slice(&f.dest.0.to_le_bytes());
    bytes[12] = f.seq;
    bytes[13] = f.len;
    bytes[14] = f.vc;
    bytes[15] = f.class.0;
    bytes[16..24].copy_from_slice(&f.birth.to_le_bytes());
    noc_types::fault::fnv1a(&bytes)
}

/// A live source/destination pair with no surviving minimal path — the
/// degraded mesh cannot carry this traffic and the config must be rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Unroutable {
    pub src: NodeId,
    pub dest: NodeId,
}

/// The resolved set of permanently dead hardware: explicit link kills,
/// router kills (which take all four of the router's links down), and the
/// random kills drawn from the fault seed.
#[derive(Clone, Debug)]
pub struct DeadSet {
    /// `links[node][dir]`: the physical link leaving `node` in cardinal
    /// direction `dir` is dead. Symmetric: both endpoints are marked.
    links: Vec<[bool; 4]>,
    /// Dead routers (neither inject, eject, nor forward).
    routers: Vec<bool>,
}

impl DeadSet {
    /// Resolves `cfg.fault` into a concrete dead set. Random kills are drawn
    /// deterministically from the fault seed over the links still alive
    /// after the explicit kills.
    ///
    /// # Panics
    /// Panics when a listed link/router is off-mesh or when more random
    /// kills are requested than live links exist.
    pub fn resolve(cfg: &NetConfig) -> DeadSet {
        let n = cfg.num_nodes();
        let (cols, rows) = (cfg.cols, cfg.rows);
        let mut set = DeadSet {
            links: vec![[false; 4]; n],
            routers: vec![false; n],
        };
        let kill = |set: &mut DeadSet, node: NodeId, d: Direction| {
            let c = node.to_coord(cols);
            let nb = d
                .step(c, cols, rows)
                .unwrap_or_else(|| panic!("fault config kills off-mesh link ({node}, {d})"))
                .to_node(cols);
            set.links[node.idx()][d.index()] = true;
            set.links[nb.idx()][d.opposite().index()] = true;
        };
        for &(node, d) in &cfg.fault.dead_links {
            assert!(d.is_cardinal(), "fault config kills a non-mesh link");
            assert!(node.idx() < n, "fault config kills link of off-mesh node");
            kill(&mut set, node, d);
        }
        for &node in &cfg.fault.dead_routers {
            assert!(node.idx() < n, "fault config kills off-mesh router");
            set.routers[node.idx()] = true;
            let c = node.to_coord(cols);
            for d in Direction::CARDINAL {
                if d.step(c, cols, rows).is_some() {
                    kill(&mut set, node, d);
                }
            }
        }
        if cfg.fault.random_dead_links > 0 {
            // Canonical candidate list (each physical link once, named from
            // its west/north endpoint) so the draw order is well-defined.
            let mut live: Vec<(NodeId, Direction)> = Vec::new();
            for i in 0..n {
                let c = NodeId(i as u16).to_coord(cols);
                for d in [Direction::East, Direction::South] {
                    if d.step(c, cols, rows).is_some() && !set.links[i][d.index()] {
                        live.push((NodeId(i as u16), d));
                    }
                }
            }
            assert!(
                usize::from(cfg.fault.random_dead_links) <= live.len(),
                "fault config kills {} random links but only {} are alive",
                cfg.fault.random_dead_links,
                live.len()
            );
            let mut rng = SmallRng::seed_from_u64(cfg.fault.fault_seed ^ 0x9E37_79B9_7F4A_7C15);
            for _ in 0..cfg.fault.random_dead_links {
                let k = rng.gen_range(0..live.len());
                let (node, d) = live.swap_remove(k);
                kill(&mut set, node, d);
            }
        }
        set
    }

    /// Whether the link leaving `node` in direction `d` is dead.
    pub fn link_dead(&self, node: usize, d: Direction) -> bool {
        self.links[node][d.index()]
    }

    /// Whether router `node` is dead.
    pub fn router_dead(&self, node: usize) -> bool {
        self.routers[node]
    }

    /// True when anything at all is dead.
    pub fn any(&self) -> bool {
        self.routers.iter().any(|&r| r) || self.links.iter().any(|l| l.iter().any(|&d| d))
    }

    /// An all-alive dead set for an `n`-node mesh (chaos runs that start
    /// healthy and only kill hardware mid-run).
    pub fn all_alive(n: usize) -> DeadSet {
        DeadSet {
            links: vec![[false; 4]; n],
            routers: vec![false; n],
        }
    }

    /// Sets the liveness of the physical link leaving `node` in direction
    /// `d`, symmetrically (both endpoints). Epoch reconfiguration only; the
    /// caller rebuilds the routing mask afterwards.
    ///
    /// # Panics
    /// Panics when the link points off the mesh.
    pub fn set_link(&mut self, node: usize, d: Direction, cols: u8, rows: u8, dead: bool) {
        let c = NodeId(node as u16).to_coord(cols);
        let nb = d
            .step(c, cols, rows)
            .unwrap_or_else(|| panic!("set_link on off-mesh link ({node}, {d})"))
            .to_node(cols);
        self.links[node][d.index()] = dead;
        self.links[nb.idx()][d.opposite().index()] = dead;
    }

    /// Sets the liveness of router `node` (the flag only; its links are
    /// killed/restored individually by the epoch logic, which knows which of
    /// them are independently dead).
    pub fn set_router(&mut self, node: usize, dead: bool) {
        self.routers[node] = dead;
    }

    /// Every dead physical link once, named from its west/north endpoint
    /// (reporting and the degraded-CDG build).
    pub fn dead_link_list(&self, cols: u8, rows: u8) -> Vec<(NodeId, Direction)> {
        let mut out = Vec::new();
        for (i, l) in self.links.iter().enumerate() {
            let c = NodeId(i as u16).to_coord(cols);
            for d in [Direction::East, Direction::South] {
                if l[d.index()] && d.step(c, cols, rows).is_some() {
                    out.push((NodeId(i as u16), d));
                }
            }
        }
        out
    }
}

/// Per-(source, destination) table of allowed directions on the degraded
/// mesh.
///
/// The main mask ([`RouteMask::build`]) is *shortest-path on the degraded
/// graph*: a direction is allowed at `u` toward `t` when its link is live
/// and it strictly decreases the BFS distance to `t` over live links and
/// routers. On a fault-free mesh this coincides with the productive
/// (Manhattan-minimal) set; with dead links it admits exactly the detours
/// needed to route around the holes, and a pair is unroutable only when
/// the degraded graph disconnects it. Distance strictly decreases along
/// every allowed hop, so masked routing is livelock-free per destination;
/// deadlock freedom of the resulting channel usage is re-certified by
/// `noc-verify` against the degraded channel-dependency graph.
///
/// [`RouteMask::build_west_first`] builds the stricter mask for the
/// west-first escape layer by backward induction over Manhattan rings —
/// west-first cannot detour, so a dead link on a required west-first path
/// makes the escape layer (and hence the escape-VC scheme) unroutable.
#[derive(Clone, Debug)]
pub struct RouteMask {
    cols: u8,
    n: usize,
    /// `bits[u * n + t]`: bitmask over [`Direction::index`] of allowed
    /// directions at node `u` toward destination `t`.
    bits: Vec<u8>,
}

impl RouteMask {
    /// Builds the degraded-graph shortest-path mask (see type docs).
    pub fn build(cols: u8, rows: u8, dead: &DeadSet) -> Result<RouteMask, Unroutable> {
        match RouteMask::build_impl(cols, rows, dead, false) {
            Ok(m) => Ok(m),
            Err(u) => Err(u),
        }
    }

    /// Builds the mask like [`RouteMask::build`] but tolerates disconnected
    /// pairs: their mask bits stay zero instead of failing the build. Epoch
    /// reconfiguration uses this — a mid-run kill may legitimately strand a
    /// pair, and the chaos layer purges (then e2e-retransmits) the affected
    /// packets rather than refusing the topology.
    pub fn build_partial(cols: u8, rows: u8, dead: &DeadSet) -> RouteMask {
        match RouteMask::build_impl(cols, rows, dead, true) {
            Ok(m) => m,
            Err(_) => unreachable!("partial build never fails"),
        }
    }

    /// Whether every live source can reach every live destination under this
    /// mask (false only for partial builds over a disconnected mesh).
    pub fn fully_routable(&self, dead: &DeadSet) -> bool {
        for u in 0..self.n {
            if dead.router_dead(u) {
                continue;
            }
            for t in 0..self.n {
                if u == t || dead.router_dead(t) {
                    continue;
                }
                if self.bits[u * self.n + t] == 0 {
                    return false;
                }
            }
        }
        true
    }

    fn build_impl(
        cols: u8,
        rows: u8,
        dead: &DeadSet,
        partial: bool,
    ) -> Result<RouteMask, Unroutable> {
        let n = cols as usize * rows as usize;
        let mut bits = vec![0u8; n * n];
        let mut dist = vec![u32::MAX; n];
        let mut queue: VecDeque<usize> = VecDeque::new();
        for t in 0..n {
            if dead.router_dead(t) {
                continue;
            }
            dist.iter_mut().for_each(|d| *d = u32::MAX);
            dist[t] = 0;
            queue.clear();
            queue.push_back(t);
            while let Some(u) = queue.pop_front() {
                let uc = NodeId(u as u16).to_coord(cols);
                for d in Direction::CARDINAL {
                    if dead.link_dead(u, d) {
                        continue;
                    }
                    let Some(nc) = d.step(uc, cols, rows) else {
                        continue;
                    };
                    let v = nc.to_node(cols).idx();
                    if !dead.router_dead(v) && dist[v] == u32::MAX {
                        dist[v] = dist[u] + 1;
                        queue.push_back(v);
                    }
                }
            }
            for u in 0..n {
                if u == t || dead.router_dead(u) {
                    continue;
                }
                if dist[u] == u32::MAX {
                    if partial {
                        continue;
                    }
                    return Err(Unroutable {
                        src: NodeId(u as u16),
                        dest: NodeId(t as u16),
                    });
                }
                let uc = NodeId(u as u16).to_coord(cols);
                let mut m = 0u8;
                for d in Direction::CARDINAL {
                    if dead.link_dead(u, d) {
                        continue;
                    }
                    let Some(nc) = d.step(uc, cols, rows) else {
                        continue;
                    };
                    let v = nc.to_node(cols).idx();
                    if !dead.router_dead(v) && dist[v] != u32::MAX && dist[v] < dist[u] {
                        m |= 1 << d.index();
                    }
                }
                debug_assert!(m != 0, "reachable node with no distance-decreasing hop");
                bits[u * n + t] = m;
            }
        }
        Ok(RouteMask { cols, n, bits })
    }

    /// Builds the mask for west-first routing (the escape-VC layer):
    /// backward induction over Manhattan rings, candidate set restricted to
    /// west-first-legal directions (which cannot detour).
    pub fn build_west_first(cols: u8, rows: u8, dead: &DeadSet) -> Result<RouteMask, Unroutable> {
        RouteMask::build_with(cols, rows, dead, west_first)
    }

    fn build_with(
        cols: u8,
        rows: u8,
        dead: &DeadSet,
        f: fn(Coord, Coord) -> Candidates,
    ) -> Result<RouteMask, Unroutable> {
        let n = cols as usize * rows as usize;
        let mut bits = vec![0u8; n * n];
        let mut ok = vec![false; n];
        for t in 0..n {
            if dead.router_dead(t) {
                continue;
            }
            let tc = NodeId(t as u16).to_coord(cols);
            ok.iter_mut().for_each(|s| *s = false);
            ok[t] = true;
            for dist in 1..=u32::from(cols) + u32::from(rows) {
                for u in 0..n {
                    if dead.router_dead(u) {
                        continue;
                    }
                    let uc = NodeId(u as u16).to_coord(cols);
                    if uc.manhattan(tc) != dist {
                        continue;
                    }
                    let mut m = 0u8;
                    for &d in f(uc, tc).as_slice() {
                        if dead.link_dead(u, d) {
                            continue;
                        }
                        let Some(nc) = d.step(uc, cols, rows) else {
                            continue;
                        };
                        if ok[nc.to_node(cols).idx()] {
                            m |= 1 << d.index();
                        }
                    }
                    if m == 0 {
                        return Err(Unroutable {
                            src: NodeId(u as u16),
                            dest: NodeId(t as u16),
                        });
                    }
                    bits[u * n + t] = m;
                    ok[u] = true;
                }
            }
        }
        Ok(RouteMask { cols, n, bits })
    }

    /// Allowed-direction bitmask at `from` toward `dest`.
    #[inline]
    pub fn allowed(&self, from: Coord, dest: Coord) -> u8 {
        self.bits[from.to_node(self.cols).idx() * self.n + dest.to_node(self.cols).idx()]
    }

    /// Whether direction `d` is allowed at `from` toward `dest`.
    #[inline]
    pub fn permits(&self, from: Coord, dest: Coord, d: Direction) -> bool {
        self.allowed(from, dest) & (1 << d.index()) != 0
    }

    /// The allowed directions as a candidate set (in [`Direction::CARDINAL`]
    /// order).
    pub fn candidates(&self, from: Coord, dest: Coord) -> Candidates {
        let m = self.allowed(from, dest);
        Direction::CARDINAL
            .into_iter()
            .filter(|d| m & (1 << d.index()) != 0)
            .collect()
    }
}

/// A wire-level event on a faulty link. `Data` travels sender→receiver over
/// the data link; `Ack`/`Nack` travel receiver→sender over the (protected)
/// control wires.
#[derive(Clone, Copy, Debug)]
enum Wire {
    Data {
        /// Input port at the receiver (the direction the flit arrives from).
        in_port: u8,
        /// Link generation the event belongs to (bumped by
        /// [`Retrans::reset_link`]; stale-generation events are dropped so an
        /// in-flight ack or duplicate from before a heal can never touch the
        /// fresh sequence space).
        gen: u32,
        seq: u32,
        csum: u64,
        flit: Flit,
    },
    Ack {
        /// Output port at the receiving *sender* this ack belongs to.
        out_dir: u8,
        gen: u32,
        /// Cumulative: everything `<= seq` is acknowledged.
        seq: u32,
    },
    Nack {
        out_dir: u8,
        gen: u32,
        /// The receiver's next expected sequence number; the sender re-sends
        /// everything from here (go-back-N).
        seq: u32,
    },
}

/// Sender-side state of one directed link.
#[derive(Clone, Debug, Default)]
struct LinkTx {
    next_seq: u32,
    gen: u32,
    unacked: VecDeque<TxEntry>,
}

#[derive(Clone, Copy, Debug)]
struct TxEntry {
    seq: u32,
    flit: Flit,
    last_sent: Cycle,
    attempts: u32,
}

/// Receiver-side state of one directed link.
#[derive(Clone, Copy, Debug, Default)]
struct LinkRx {
    next_expected: u32,
    gen: u32,
    /// Sequence number already nacked (suppresses duplicate nacks for the
    /// same gap; after a nacked resend arrives corrupted again, recovery
    /// falls to the sender's timeout).
    nacked: Option<u32>,
}

/// Go-back-N link-layer retransmission state for the whole mesh. Present on
/// [`crate::Network`] only when `FaultConfig::transient_rate > 0`.
pub struct Retrans {
    rate: f64,
    timeout: Cycle,
    backoff: Cycle,
    hop: Cycle,
    rng: SmallRng,
    /// Per directed link `node * 4 + dir`.
    tx: Vec<LinkTx>,
    rx: Vec<LinkRx>,
    /// In-flight wire events toward each node.
    wire: Vec<Inbox<Wire>>,
    /// Flits accepted this cycle, per node, drained by the engine's
    /// delivery phase.
    accepted: Vec<Vec<(PortId, Flit)>>,
    /// Geometric neighbour table (dead links never carry sends, so the
    /// pre-fault wiring is sufficient).
    nbr: Vec<[Option<u16>; 4]>,
    scratch: Vec<Wire>,
}

impl Retrans {
    fn new(cfg: &NetConfig) -> Retrans {
        let n = cfg.num_nodes();
        let mut nbr = vec![[None; 4]; n];
        for (i, slots) in nbr.iter_mut().enumerate() {
            let c = NodeId(i as u16).to_coord(cfg.cols);
            for d in Direction::CARDINAL {
                slots[d.index()] = d.step(c, cfg.cols, cfg.rows).map(|s| s.to_node(cfg.cols).0);
            }
        }
        Retrans {
            rate: cfg.fault.transient_rate,
            timeout: Cycle::from(cfg.fault.retransmit_timeout.max(1)),
            backoff: Cycle::from(cfg.fault.resend_backoff),
            hop: 1 + Cycle::from(cfg.router_latency),
            rng: SmallRng::seed_from_u64(cfg.fault.fault_seed),
            tx: vec![LinkTx::default(); n * 4],
            rx: vec![LinkRx::default(); n * 4],
            wire: vec![Inbox::new(); n],
            accepted: vec![Vec::new(); n],
            nbr,
            scratch: Vec::new(),
        }
    }

    /// First transmission of a flit over the directed link `(from,
    /// out_dir)`, called by the engine at switch traversal in place of the
    /// direct inbox push. The engine has already counted the link hop and
    /// incremented the in-flight credit counter (which now stays up until
    /// *acceptance*, not first arrival).
    pub fn send(
        &mut self,
        now: Cycle,
        from: usize,
        out_dir: PortId,
        flit: Flit,
        stats: &mut Stats,
    ) {
        let l = from * 4 + out_dir;
        let seq = self.tx[l].next_seq;
        let gen = self.tx[l].gen;
        self.tx[l].next_seq += 1;
        let nb = usize::from(self.nbr[from][out_dir].expect("send over off-mesh link"));
        let mut csum = flit_checksum(&flit);
        if self.rng.gen_bool(self.rate) {
            csum ^= CORRUPT;
            stats.corrupted_flits += 1;
        }
        self.tx[l].unacked.push_back(TxEntry {
            seq,
            flit,
            last_sent: now,
            attempts: 0,
        });
        let in_port = Direction::from_index(out_dir).opposite().index() as u8;
        self.wire[nb].push(
            now + self.hop,
            Wire::Data {
                in_port,
                gen,
                seq,
                csum,
                flit,
            },
        );
    }

    /// Processes every wire event due at `now` (acceptance, ack/nack
    /// bookkeeping, nack-triggered resends) and fires timeout resends.
    /// Called by the engine at the top of the delivery phase; accepted flits
    /// are then collected per node via [`Retrans::drain_accepted_into`].
    pub fn tick(&mut self, now: Cycle, stats: &mut Stats) {
        let n = self.wire.len();
        let mut ev = std::mem::take(&mut self.scratch);
        for i in 0..n {
            ev.clear();
            self.wire[i].drain_due_into(now, &mut ev);
            for &e in &ev {
                self.handle(now, i, e, stats);
            }
        }
        self.scratch = ev;
        // Timeout path: the oldest unacked flit of a link has waited past
        // its (backed-off) deadline — re-send the whole window.
        for node in 0..n {
            for d in 0..4 {
                let l = node * 4 + d;
                let Some(front) = self.tx[l].unacked.front() else {
                    continue;
                };
                let wait = self.timeout + self.backoff * Cycle::from(front.attempts);
                let (deadline, from_seq) = (front.last_sent + wait, front.seq);
                if now >= deadline {
                    stats.recovery_events += 1;
                    self.resend_from(now, node, d, from_seq, stats);
                }
            }
        }
    }

    fn handle(&mut self, now: Cycle, node: usize, e: Wire, stats: &mut Stats) {
        match e {
            Wire::Data {
                in_port,
                gen,
                seq,
                csum,
                flit,
            } => {
                let p = usize::from(in_port);
                let sender = usize::from(self.nbr[node][p].expect("data from off-mesh"));
                let out_dir = Direction::from_index(p).opposite().index() as u8;
                let rx = &mut self.rx[node * 4 + p];
                if gen != rx.gen {
                    // In flight across a heal's link reset: its sequence
                    // number is meaningless in the fresh space. Drop.
                    return;
                }
                let good = csum == flit_checksum(&flit);
                if good && seq == rx.next_expected {
                    rx.next_expected += 1;
                    rx.nacked = None;
                    self.accepted[node].push((p, flit));
                    stats.link_acks += 1;
                    self.wire[sender].push(now + 1, Wire::Ack { out_dir, gen, seq });
                } else if seq >= rx.next_expected {
                    // Corrupted, or a gap (an earlier flit was dropped):
                    // nack the first missing sequence number, once.
                    if rx.nacked != Some(rx.next_expected) {
                        rx.nacked = Some(rx.next_expected);
                        let seq = rx.next_expected;
                        stats.link_nacks += 1;
                        self.wire[sender].push(now + 1, Wire::Nack { out_dir, gen, seq });
                    }
                }
                // seq < next_expected: stale duplicate from a resend race —
                // already accepted and acked; drop silently.
            }
            Wire::Ack { out_dir, gen, seq } => {
                let tx = &mut self.tx[node * 4 + usize::from(out_dir)];
                if gen != tx.gen {
                    return;
                }
                while tx.unacked.front().is_some_and(|e| e.seq <= seq) {
                    tx.unacked.pop_front();
                }
            }
            Wire::Nack { out_dir, gen, seq } => {
                if gen != self.tx[node * 4 + usize::from(out_dir)].gen {
                    return;
                }
                self.resend_from(now, node, usize::from(out_dir), seq, stats);
            }
        }
    }

    /// Go-back-N: re-sends every unacked entry with sequence `>= from_seq`
    /// on the directed link `(node, d)`, re-rolling corruption per
    /// traversal and re-counting the link energy.
    fn resend_from(&mut self, now: Cycle, node: usize, d: usize, from_seq: u32, stats: &mut Stats) {
        let l = node * 4 + d;
        let nb = usize::from(self.nbr[node][d].expect("resend over off-mesh link"));
        let in_port = Direction::from_index(d).opposite().index() as u8;
        let gen = self.tx[l].gen;
        for k in 0..self.tx[l].unacked.len() {
            let (seq, flit) = {
                let e = &mut self.tx[l].unacked[k];
                if e.seq < from_seq {
                    continue;
                }
                e.attempts = e.attempts.saturating_add(1);
                e.last_sent = now;
                (e.seq, e.flit)
            };
            let mut csum = flit_checksum(&flit);
            if self.rng.gen_bool(self.rate) {
                csum ^= CORRUPT;
                stats.corrupted_flits += 1;
            }
            stats.retransmitted_flits += 1;
            stats.count_link_hop_at(now, NodeId(node as u16), d);
            self.wire[nb].push(
                now + self.hop,
                Wire::Data {
                    in_port,
                    gen,
                    seq,
                    csum,
                    flit,
                },
            );
        }
    }

    /// Whether the physical link `(node, d)` is quiet: no unacknowledged
    /// flit on either directed half. Epoch reconfiguration waits for this
    /// before cutting a link's wiring so no accepted-but-unacked flit is
    /// stranded inside the protocol.
    pub fn link_quiet(&self, node: usize, d: Direction) -> bool {
        let Some(nb) = self.nbr[node][d.index()] else {
            return true;
        };
        self.tx[node * 4 + d.index()].unacked.is_empty()
            && self.tx[usize::from(nb) * 4 + d.opposite().index()]
                .unacked
                .is_empty()
    }

    /// Idle-cycle skipping input: `true` when a retransmission `tick` is a
    /// guaranteed no-op — every send window empty (no timeout can fire, no
    /// RNG re-roll pending), no wire event in flight, and no accepted flit
    /// awaiting pickup by the engine's delivery phase.
    pub fn is_idle(&self) -> bool {
        self.tx.iter().all(|t| t.unacked.is_empty())
            && self.wire.iter().all(Inbox::is_empty)
            && self.accepted.iter().all(Vec::is_empty)
    }

    /// Resets both directed halves of the physical link `(node, d)` to a
    /// fresh sequence space and bumps their generation, invalidating every
    /// wire event still in flight from before the reset. Called on link heal
    /// (the link was cut quiet, so nothing undelivered is discarded).
    pub fn reset_link(&mut self, node: usize, d: Direction) {
        let Some(nb) = self.nbr[node][d.index()] else {
            return;
        };
        let nb = usize::from(nb);
        for (tx_node, dir) in [(node, d), (nb, d.opposite())] {
            let rx_node = if tx_node == node { nb } else { node };
            let tx = &mut self.tx[tx_node * 4 + dir.index()];
            let gen = tx.gen.wrapping_add(1);
            *tx = LinkTx {
                gen,
                ..LinkTx::default()
            };
            self.rx[rx_node * 4 + dir.opposite().index()] = LinkRx {
                gen,
                ..LinkRx::default()
            };
        }
    }

    /// Moves the flits accepted at `node` this cycle into `out` (in
    /// per-link sequence order; deterministic).
    pub fn drain_accepted_into(&mut self, node: usize, out: &mut Vec<(PortId, Flit)>) {
        out.append(&mut self.accepted[node]);
    }

    /// Receiver's next expected sequence number for the directed link
    /// leaving `node` through `out_dir`.
    fn peer_expected(&self, node: usize, out_dir: usize) -> u32 {
        let nb = usize::from(self.nbr[node][out_dir].expect("dead-end link"));
        let p = Direction::from_index(out_dir).opposite().index();
        self.rx[nb * 4 + p].next_expected
    }

    /// Flits genuinely in flight (sent, not yet accepted downstream) on the
    /// directed link `(node, out_dir)` toward downstream VC `vc`. Mirrors
    /// the engine's `inflight` credit counters under retransmission.
    pub fn wire_in_flight_vc(&self, node: usize, out_dir: usize, vc: usize) -> usize {
        if self.nbr[node][out_dir].is_none() {
            return 0;
        }
        let expected = self.peer_expected(node, out_dir);
        self.tx[node * 4 + out_dir]
            .unacked
            .iter()
            .filter(|e| e.seq >= expected && usize::from(e.flit.vc) == vc)
            .count()
    }

    /// Total flits in flight across all links (flit-conservation input).
    pub fn in_flight_total(&self) -> usize {
        let mut total = 0;
        for node in 0..self.nbr.len() {
            for d in 0..4 {
                if self.nbr[node][d].is_none() {
                    continue;
                }
                let expected = self.peer_expected(node, d);
                total += self.tx[node * 4 + d]
                    .unacked
                    .iter()
                    .filter(|e| e.seq >= expected)
                    .count();
            }
        }
        total
    }
}

/// The complete runtime fault layer carried by [`crate::Network`] (`None`
/// when `FaultConfig` is disabled — the engine then takes none of the fault
/// branches and stays bit-identical to a fault-free build).
pub struct FaultLayer {
    /// The *currently effective* dead set. With a fault schedule this is
    /// mutated at each epoch (kills and heals); without one it is the
    /// construction-time resolution and never changes.
    pub dead: DeadSet,
    /// Degraded-mesh routing mask; `Some` iff anything is permanently dead
    /// or a fault schedule can make it so mid-run.
    pub mask: Option<RouteMask>,
    /// Link-layer retransmission; `Some` iff `transient_rate > 0`.
    pub retrans: Option<Retrans>,
    /// Dynamic-schedule state; `Some` iff the config carries a
    /// [`noc_types::FaultSchedule`].
    pub chaos: Option<Box<crate::chaos::ChaosState>>,
}

impl FaultLayer {
    /// Builds the fault layer for `cfg`, or `None` when faults are
    /// disabled.
    ///
    /// # Panics
    /// Panics when the permanent faults disconnect a live
    /// source/destination pair (the config is unroutable; `noc-verify`'s
    /// degraded certification reports the same condition without
    /// constructing a network).
    pub fn build(cfg: &NetConfig) -> Option<Box<FaultLayer>> {
        if !cfg.fault.enabled() {
            return None;
        }
        if let Err(e) = cfg.fault.validate(cfg.cols, cfg.rows) {
            panic!("{e}");
        }
        let dead = DeadSet::resolve(cfg);
        let mask = if dead.any() {
            match RouteMask::build(cfg.cols, cfg.rows, &dead) {
                Ok(m) => Some(m),
                Err(u) => panic!(
                    "fault config unroutable: no live minimal path from {} to {} \
                     (dead links: {:?})",
                    u.src,
                    u.dest,
                    dead.dead_link_list(cfg.cols, cfg.rows)
                ),
            }
        } else if cfg.fault.has_schedule() {
            // Schedule but nothing initially dead: start from the
            // full-connectivity mask so the routed path never changes shape
            // when the first kill arrives — only the mask contents do.
            Some(RouteMask::build_partial(cfg.cols, cfg.rows, &dead))
        } else {
            None
        };
        let retrans = (cfg.fault.transient_rate > 0.0).then(|| Retrans::new(cfg));
        let chaos = cfg
            .fault
            .has_schedule()
            .then(|| Box::new(crate::chaos::ChaosState::new(cfg, &dead)));
        Some(Box::new(FaultLayer {
            dead,
            mask,
            retrans,
            chaos,
        }))
    }

    /// Idle-cycle skipping horizon for the whole fault layer. `None` while
    /// the retransmission protocol holds any live state (windows, wire
    /// events, accepted flits) — its tick then does real work every cycle.
    /// Otherwise the chaos schedule's quiet horizon, or `Cycle::MAX` when
    /// no dynamic schedule exists (a static dead set never acts on its
    /// own).
    pub fn quiet_until(&self) -> Option<Cycle> {
        if self.retrans.as_ref().is_some_and(|r| !r.is_idle()) {
            return None;
        }
        match &self.chaos {
            Some(c) => c.quiet_until(),
            None => Some(Cycle::MAX),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_types::FaultConfig;

    fn cfg_with(fault: FaultConfig) -> NetConfig {
        NetConfig::synth(4, 2).with_fault(fault)
    }

    #[test]
    fn disabled_fault_builds_nothing() {
        assert!(FaultLayer::build(&NetConfig::synth(4, 2)).is_none());
    }

    #[test]
    fn dead_set_is_symmetric_and_deterministic() {
        let f = FaultConfig::default().with_dead_links(vec![(NodeId(5), Direction::East)]);
        let set = DeadSet::resolve(&cfg_with(f));
        assert!(set.link_dead(5, Direction::East));
        assert!(set.link_dead(6, Direction::West));
        assert!(!set.link_dead(5, Direction::West));

        let f = FaultConfig::default()
            .with_random_dead_links(3)
            .with_fault_seed(42);
        let a = DeadSet::resolve(&cfg_with(f.clone()));
        let b = DeadSet::resolve(&cfg_with(f));
        assert_eq!(
            a.dead_link_list(4, 4),
            b.dead_link_list(4, 4),
            "random kills must be reproducible from the seed"
        );
        assert_eq!(a.dead_link_list(4, 4).len(), 3);
    }

    #[test]
    fn dead_router_kills_all_its_links() {
        let f = FaultConfig {
            dead_routers: vec![NodeId(5)],
            ..FaultConfig::default()
        };
        let set = DeadSet::resolve(&cfg_with(f));
        assert!(set.router_dead(5));
        for d in Direction::CARDINAL {
            assert!(set.link_dead(5, d));
        }
        assert!(set.link_dead(1, Direction::South));
        assert!(set.link_dead(4, Direction::East));
    }

    #[test]
    fn fault_free_mask_matches_productive_set() {
        let dead = DeadSet::resolve(&NetConfig::synth(4, 2));
        let mask = RouteMask::build(4, 4, &dead).expect("fault-free mesh routable");
        for u in 0..16u16 {
            for t in 0..16u16 {
                if u == t {
                    continue;
                }
                let (uc, tc) = (NodeId(u).to_coord(4), NodeId(t).to_coord(4));
                let mut want = 0u8;
                for &d in crate::routing::productive(uc, tc).as_slice() {
                    want |= 1 << d.index();
                }
                assert_eq!(mask.allowed(uc, tc), want, "{uc} -> {tc}");
            }
        }
    }

    #[test]
    fn route_mask_detours_around_interior_dead_link() {
        // Kill the (1,1)-E-(2,1) link. The same-row pair (1,1) -> (2,1) has
        // no minimal path any more, but the degraded-graph mask admits the
        // two symmetric 3-hop detours: leave via North or South.
        let f = FaultConfig::default().with_dead_links(vec![(NodeId(5), Direction::East)]);
        let cfg = cfg_with(f);
        let mask = RouteMask::build(4, 4, &DeadSet::resolve(&cfg)).expect("still connected");
        let (from, to) = (Coord::new(1, 1), Coord::new(2, 1));
        assert!(!mask.permits(from, to, Direction::East), "dead link used");
        assert!(mask.permits(from, to, Direction::North));
        assert!(mask.permits(from, to, Direction::South));
        assert!(
            !mask.permits(from, to, Direction::West),
            "West never shortens"
        );
        // Unaffected pairs keep the plain productive set.
        assert!(mask.permits(Coord::new(0, 3), Coord::new(2, 0), Direction::East));
        assert!(mask.permits(Coord::new(0, 3), Coord::new(2, 0), Direction::North));
    }

    #[test]
    fn route_mask_rejects_disconnected_corner() {
        // Kill both links of corner (0,0): the graph disconnects and the
        // build must name a pair involving the isolated corner.
        let f = FaultConfig::default().with_dead_links(vec![
            (NodeId(0), Direction::East),
            (NodeId(0), Direction::South),
        ]);
        let cfg = cfg_with(f);
        let err = RouteMask::build(4, 4, &DeadSet::resolve(&cfg)).unwrap_err();
        assert!(err.src == NodeId(0) || err.dest == NodeId(0));
    }

    #[test]
    fn west_first_mask_is_stricter_than_minimal() {
        let dead = DeadSet::resolve(&NetConfig::synth(4, 2));
        let wf = RouteMask::build_west_first(4, 4, &dead).expect("fault-free WF routable");
        // Westward dest: WF allows only West.
        assert_eq!(
            wf.allowed(Coord::new(3, 1), Coord::new(0, 3)),
            1 << Direction::West.index()
        );
    }

    #[test]
    fn checksum_detects_field_changes() {
        let p = noc_types::Packet {
            id: noc_types::PacketId(9),
            src: NodeId(1),
            dest: NodeId(14),
            class: noc_types::MessageClass(0),
            len_flits: 5,
            birth: 7,
            measured: true,
        };
        let a = Flit::from_packet(&p, 2, 10);
        let mut b = a;
        b.vc = a.vc + 1;
        assert_ne!(flit_checksum(&a), flit_checksum(&b));
        assert_eq!(flit_checksum(&a), flit_checksum(&a));
    }
}
