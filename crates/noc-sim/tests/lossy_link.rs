//! Lossy-link harness: end-to-end validation of the go-back-N link-layer
//! retransmission protocol (`noc_sim::fault`).
//!
//! Every test injects a known packet population, corrupts link traversals at
//! rates up to 10%, and asserts the protocol's contract: every packet is
//! delivered **exactly once** — no loss, no duplication — and per-pair FIFO
//! order survives where the fault-free network guarantees it. Under the
//! `check-invariants` feature the strict conservation sweep runs as well
//! (transient faults never take custody of flits, so strict mode is sound).

use noc_sim::network::Sim;
use noc_sim::stats::DeliveredPacket;
use noc_sim::workload::Workload;
use noc_sim::NoMechanism;
use noc_types::{
    BaseRouting, Cycle, FaultConfig, MessageClass, NetConfig, NodeId, Packet, PacketId, RoutingAlgo,
};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Collects every delivery.
struct Collect(Rc<RefCell<Vec<DeliveredPacket>>>);
impl Workload for Collect {
    fn generate(&mut self, _c: Cycle, _i: &mut dyn FnMut(NodeId, Packet)) {}
    fn deliver(&mut self, _c: Cycle, p: &DeliveredPacket) -> bool {
        self.0.borrow_mut().push(*p);
        true
    }
}

fn packet(id: u64, src: u16, dest: u16, len: u8) -> Packet {
    Packet {
        id: PacketId(id),
        src: NodeId(src),
        dest: NodeId(dest),
        class: MessageClass(0),
        len_flits: len,
        birth: 0,
        measured: true,
    }
}

/// A deterministic all-to-some population: every node sends `per_node`
/// packets, alternating 1- and 5-flit, to spread-out destinations.
fn population(nodes: u16, per_node: u64) -> Vec<Packet> {
    let mut pkts = Vec::new();
    let mut id = 0u64;
    for src in 0..nodes {
        for k in 0..per_node {
            let dest = (src + 1 + (k as u16 * 5) % (nodes - 1)) % nodes;
            let len = if (src as u64 + k).is_multiple_of(2) {
                1
            } else {
                5
            };
            pkts.push(packet(id, src, dest, len));
            id += 1;
        }
    }
    pkts
}

/// Runs `pkts` through a network with the given fault config; returns the
/// deliveries and the final sim (for stats / invariant checks).
fn run_lossy(
    mut cfg: NetConfig,
    fault: FaultConfig,
    pkts: &[Packet],
    cycles: u64,
) -> (Vec<DeliveredPacket>, Sim) {
    cfg.warmup = 0;
    let cfg = cfg.with_fault(fault);
    let got = Rc::new(RefCell::new(Vec::new()));
    let mut sim = Sim::new(cfg, Box::new(Collect(got.clone())), Box::new(NoMechanism));
    #[cfg(feature = "check-invariants")]
    {
        sim.net.inv.strict = true;
    }
    for p in pkts {
        sim.net.nics[p.src.idx()].enqueue(*p);
        #[cfg(feature = "check-invariants")]
        {
            // strict conservation counts injected flits at the NIC link;
            // the engine does this itself.
        }
    }
    sim.run(cycles);
    #[cfg(feature = "check-invariants")]
    sim.net.inv.assert_clean();
    let out = got.borrow().clone();
    (out, sim)
}

/// Asserts the exactly-once contract: the delivered multiset of packet ids
/// equals the injected set.
fn assert_exactly_once(pkts: &[Packet], got: &[DeliveredPacket]) {
    let mut counts: HashMap<u64, u32> = HashMap::new();
    for d in got {
        *counts.entry(d.id.0).or_insert(0) += 1;
    }
    for p in pkts {
        match counts.get(&p.id.0) {
            Some(1) => {}
            Some(n) => panic!("packet {} delivered {n} times", p.id.0),
            None => panic!("packet {} lost", p.id.0),
        }
    }
    assert_eq!(got.len(), pkts.len(), "spurious deliveries");
}

#[test]
fn every_packet_delivered_exactly_once_across_rates_and_seeds() {
    let pkts = population(16, 6);
    for &rate in &[0.01f64, 0.05, 0.10] {
        for seed in [1u64, 2, 3] {
            let fault = FaultConfig::transient(rate).with_fault_seed(seed);
            let (got, sim) = run_lossy(NetConfig::synth(4, 2), fault, &pkts, 6_000);
            assert_exactly_once(&pkts, &got);
            assert!(
                sim.net.stats.corrupted_flits > 0,
                "rate {rate} seed {seed}: no corruption ever drawn (dead fault layer?)"
            );
            assert!(
                sim.net.stats.retransmitted_flits > 0,
                "rate {rate} seed {seed}: corruption without retransmission"
            );
        }
    }
}

#[test]
fn per_pair_fifo_survives_ten_percent_corruption() {
    // Single VC per port + XY: the fault-free network delivers each
    // (src, dest) pair's packets in injection order (one path, one VC, no
    // overtaking). The retransmission layer must preserve that.
    let mut cfg = NetConfig::synth(4, 1);
    cfg.routing = RoutingAlgo::Uniform(BaseRouting::Xy);
    let pkts = population(16, 6);
    let fault = FaultConfig::transient(0.10).with_fault_seed(7);
    let (got, _) = run_lossy(cfg, fault, &pkts, 12_000);
    assert_exactly_once(&pkts, &got);

    // Injection order per pair is ascending packet id (population() emits
    // them that way); deliveries must match.
    let mut last_seen: HashMap<(u16, u16), u64> = HashMap::new();
    for d in &got {
        let key = (d.src.0, d.dest.0);
        if let Some(&prev) = last_seen.get(&key) {
            assert!(
                d.id.0 > prev,
                "pair {key:?}: packet {} overtook {}",
                d.id.0,
                prev
            );
        }
        last_seen.insert(key, d.id.0);
    }
}

#[test]
fn faulty_runs_are_reproducible_from_the_fault_seed() {
    let pkts = population(16, 4);
    let fault = FaultConfig::transient(0.05).with_fault_seed(99);
    let (a, sim_a) = run_lossy(NetConfig::synth(4, 2), fault.clone(), &pkts, 5_000);
    let (b, sim_b) = run_lossy(NetConfig::synth(4, 2), fault, &pkts, 5_000);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.id, y.id);
        assert_eq!(
            x.eject, y.eject,
            "packet {} ejected at different cycles",
            x.id.0
        );
    }
    assert_eq!(
        sim_a.net.stats.corrupted_flits,
        sim_b.net.stats.corrupted_flits
    );
    assert_eq!(
        sim_a.net.stats.retransmitted_flits,
        sim_b.net.stats.retransmitted_flits
    );
}

#[test]
fn transient_faults_cost_latency_not_hops() {
    // Same traffic with and without faults: identical delivery sets, no
    // extra link hops on any packet (go-back-N re-sends the same minimal
    // path), and at least as much total latency.
    let mut cfg = NetConfig::synth(4, 2);
    cfg.routing = RoutingAlgo::Uniform(BaseRouting::Xy);
    let pkts = population(16, 4);
    let (clean, _) = run_lossy(cfg.clone(), FaultConfig::default(), &pkts, 6_000);
    let (faulty, _) = run_lossy(
        cfg,
        FaultConfig::transient(0.08).with_fault_seed(5),
        &pkts,
        6_000,
    );
    assert_exactly_once(&pkts, &clean);
    assert_exactly_once(&pkts, &faulty);
    let hops = |v: &[DeliveredPacket]| -> HashMap<u64, u8> {
        v.iter().map(|d| (d.id.0, d.hops)).collect()
    };
    let (ch, fh) = (hops(&clean), hops(&faulty));
    for (id, h) in &fh {
        assert_eq!(
            ch[id], *h,
            "packet {id} took a different path under faults (XY is fixed)"
        );
    }
    let total = |v: &[DeliveredPacket]| -> u64 { v.iter().map(|d| d.eject - d.inject).sum() };
    assert!(
        total(&faulty) >= total(&clean),
        "retransmission made the network faster?"
    );
}

#[test]
fn disabled_fault_config_changes_nothing() {
    // FaultConfig with rate 0 and no kills must be byte-identical to the
    // default path (the fault layer is not even built).
    let pkts = population(16, 4);
    let (a, sim_a) = run_lossy(NetConfig::synth(4, 2), FaultConfig::default(), &pkts, 4_000);
    assert!(
        sim_a.net.fault.is_none(),
        "disabled fault config built a fault layer"
    );
    let (b, _) = run_lossy(
        NetConfig::synth(4, 2),
        FaultConfig::default().with_fault_seed(12345),
        &pkts,
        4_000,
    );
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!((x.id, x.eject), (y.id, y.eject));
    }
}

#[test]
fn dead_links_route_around_and_still_deliver_everything() {
    // Adaptive minimal routing on a mesh with two dead links: the route
    // mask detours and every packet still arrives exactly once.
    let fault = FaultConfig::default().with_dead_links(vec![
        (NodeId(5), noc_types::Direction::East),
        (NodeId(10), noc_types::Direction::South),
    ]);
    let pkts = population(16, 6);
    let (got, sim) = run_lossy(NetConfig::synth(4, 2), fault, &pkts, 8_000);
    assert_exactly_once(&pkts, &got);
    assert!(sim.net.fault.as_ref().is_some_and(|f| f.mask.is_some()));
    // The dead link carried nothing.
    use noc_types::Direction;
    assert_eq!(
        sim.net
            .stats
            .link_use_at(NodeId(5), Direction::East.index()),
        0
    );
    assert_eq!(
        sim.net
            .stats
            .link_use_at(NodeId(6), Direction::West.index()),
        0
    );
}

#[test]
fn dead_links_plus_transient_faults_compose() {
    let fault = FaultConfig::transient(0.05)
        .with_dead_links(vec![(NodeId(5), noc_types::Direction::East)])
        .with_fault_seed(11);
    let pkts = population(16, 5);
    let (got, sim) = run_lossy(NetConfig::synth(4, 2), fault, &pkts, 10_000);
    assert_exactly_once(&pkts, &got);
    assert!(sim.net.stats.retransmitted_flits > 0);
}
