//! Chaos harness: end-to-end validation of dynamic fault schedules and epoch
//! reconfiguration (`noc_sim::chaos`).
//!
//! Every test drives a [`noc_types::FaultSchedule`] against a live network
//! and asserts the reconfiguration contract: kills drain-cut (no packet is
//! ever truncated mid-worm), heals restore service (the healed link is
//! actually *reused*), the epoch trace records every event, and the
//! end-to-end delivery guarantees survive — exactly-once with recovery
//! armed, loss only through the accounted stranded purge without it.

use noc_sim::fault::{DeadSet, RouteMask};
use noc_sim::network::Sim;
use noc_sim::stats::DeliveredPacket;
use noc_sim::workload::Workload;
use noc_sim::NoMechanism;
use noc_types::{
    BaseRouting, Coord, Cycle, Direction, FaultAction, FaultConfig, FaultEvent, FaultSchedule,
    MessageClass, NetConfig, NodeId, Packet, PacketId, RecoveryConfig, RoutingAlgo,
};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Collects every delivery.
struct Collect(Rc<RefCell<Vec<DeliveredPacket>>>);
impl Workload for Collect {
    fn generate(&mut self, _c: Cycle, _i: &mut dyn FnMut(NodeId, Packet)) {}
    fn deliver(&mut self, _c: Cycle, p: &DeliveredPacket) -> bool {
        self.0.borrow_mut().push(*p);
        true
    }
}

fn packet(id: u64, src: u16, dest: u16, len: u8) -> Packet {
    Packet {
        id: PacketId(id),
        src: NodeId(src),
        dest: NodeId(dest),
        class: MessageClass(0),
        len_flits: len,
        birth: 0,
        measured: true,
    }
}

/// A deterministic all-to-some population: every node sends `per_node`
/// packets, alternating 1- and 5-flit, to spread-out destinations.
fn population(nodes: u16, per_node: u64) -> Vec<Packet> {
    let mut pkts = Vec::new();
    let mut id = 0u64;
    for src in 0..nodes {
        for k in 0..per_node {
            let dest = (src + 1 + (k as u16 * 5) % (nodes - 1)) % nodes;
            let len = if (src as u64 + k).is_multiple_of(2) {
                1
            } else {
                5
            };
            pkts.push(packet(id, src, dest, len));
            id += 1;
        }
    }
    pkts
}

/// Asserts the exactly-once contract: the delivered multiset of packet ids
/// equals the injected set.
fn assert_exactly_once(pkts: &[Packet], got: &[DeliveredPacket]) {
    let mut counts: HashMap<u64, u32> = HashMap::new();
    for d in got {
        *counts.entry(d.id.0).or_insert(0) += 1;
    }
    for p in pkts {
        match counts.get(&p.id.0) {
            Some(1) => {}
            Some(n) => panic!("packet {} delivered {n} times", p.id.0),
            None => panic!("packet {} lost", p.id.0),
        }
    }
    assert_eq!(got.len(), pkts.len(), "spurious deliveries");
}

fn adaptive_cfg() -> NetConfig {
    let mut cfg = NetConfig::synth(4, 2)
        .with_routing(RoutingAlgo::Uniform(BaseRouting::AdaptiveMinimal))
        .with_seed(7);
    cfg.warmup = 0;
    cfg
}

fn new_sim(cfg: NetConfig) -> (Rc<RefCell<Vec<DeliveredPacket>>>, Sim) {
    let got = Rc::new(RefCell::new(Vec::new()));
    let sim = Sim::new(cfg, Box::new(Collect(got.clone())), Box::new(NoMechanism));
    (got, sim)
}

// --- RouteMask under multiple simultaneous dead links (satellite) ---------

#[test]
fn route_mask_reroutes_around_multiple_simultaneous_dead_links() {
    // Three of the four east links of column 1 die at once: a near-wall with
    // one surviving gap in row 3. BFS must still connect every pair, and
    // every eastbound route through the dead rows must detour via the gap.
    let mut dead = DeadSet::all_alive(16);
    for node in [1usize, 5, 9] {
        dead.set_link(node, Direction::East, 4, 4, true);
    }
    let mask = RouteMask::build(4, 4, &dead).expect("gap in row 3 keeps the mesh connected");
    assert!(mask.fully_routable(&dead));
    // From (1,0) to (2,0) the direct east hop is gone: only a detour toward
    // the surviving row-3 crossing may be offered.
    let bits = mask.allowed(Coord::new(1, 0), Coord::new(2, 0));
    assert_ne!(bits, 0, "pair disconnected despite surviving gap");
    assert_eq!(
        bits & (1 << Direction::East.index()),
        0,
        "mask offers the dead east link"
    );
    // Sealing the gap partitions the mesh: full build refuses, the partial
    // build degrades per-pair.
    dead.set_link(13, Direction::East, 4, 4, true);
    assert!(RouteMask::build(4, 4, &dead).is_err());
    let partial = RouteMask::build_partial(4, 4, &dead);
    assert!(!partial.fully_routable(&dead));
    // Across the wall: nothing. Within the west side: still routable.
    assert_eq!(partial.allowed(Coord::new(0, 0), Coord::new(3, 0)), 0);
    assert_ne!(partial.allowed(Coord::new(0, 0), Coord::new(1, 3)), 0);
}

// --- Heal restores a severed path; the healed link is reused (satellite) --

#[test]
fn heal_restores_severed_path_and_the_healed_link_is_reused() {
    // Row-1 traffic 4 -> 7 is forced over links 4E, 5E, 6E by minimal
    // routing. Kill 5E mid-run (traffic detours), heal it, then verify new
    // traffic crosses the healed link again: `link_use_at(5, East)` must
    // grow after the heal.
    let cfg = adaptive_cfg().with_fault(FaultConfig::default().with_schedule(
        FaultSchedule::link_flap(NodeId(5), Direction::East, 200, 1200),
    ));
    let (got, mut sim) = new_sim(cfg);
    #[cfg(feature = "check-invariants")]
    {
        sim.net.inv.strict = true;
    }
    let batch_a: Vec<Packet> = (0..10).map(|k| packet(k, 4, 7, 5)).collect();
    for p in &batch_a {
        sim.net.nics[p.src.idx()].enqueue(*p);
    }
    sim.run(1_100); // kill applied at 200; heal (at 1200) not yet
    let used_at_kill = sim
        .net
        .stats
        .link_use_at(NodeId(5), Direction::East.index());
    assert_eq!(
        sim.net.stats.epochs.len(),
        1,
        "kill epoch missing before the heal fires"
    );
    assert!(
        sim.net.stats.epochs[0].cut_done_at.is_some(),
        "link never drained to its cut"
    );

    // Inject the second wave only once the heal has taken effect, so its
    // minimal row-1 path is live again and must be taken.
    sim.run(200);
    let batch_b: Vec<Packet> = (100..110).map(|k| packet(k, 4, 7, 5)).collect();
    for p in &batch_b {
        sim.net.nics[p.src.idx()].enqueue(*p);
    }
    sim.run(2_000);
    let used_after_heal = sim
        .net
        .stats
        .link_use_at(NodeId(5), Direction::East.index());

    let all: Vec<Packet> = batch_a.iter().chain(batch_b.iter()).copied().collect();
    assert_exactly_once(&all, &got.borrow());
    assert!(
        used_after_heal > used_at_kill,
        "healed link 5-East was never reused ({used_at_kill} -> {used_after_heal})"
    );
    let st = &sim.net.stats;
    assert_eq!((st.chaos_links_killed, st.chaos_links_healed), (1, 1));
    assert_eq!(st.epochs.len(), 2);
    assert!(st.epochs[0].action.contains(":kl:"));
    assert!(st.epochs[1].action.contains(":hl:"));
    // One link kill never partitions a 4x4 mesh.
    assert!(st.epochs.iter().all(|e| e.routable));
    assert!(sim
        .net
        .fault
        .as_ref()
        .and_then(|f| f.chaos.as_ref())
        .is_some_and(|c| c.settled()));
    #[cfg(feature = "check-invariants")]
    sim.net.inv.assert_clean();
}

// --- Acceptance: kill+heal flap on an escape-path link -------------------

#[test]
fn escape_path_flap_delivers_exactly_once_with_full_epoch_trace() {
    // Duato escape VCs restrict the escape layer to west-first routing;
    // killing 5-East severs a west-first-critical link mid-run. Exactly-once
    // must survive the flap (wedged escape residents fall to the armed
    // recovery layer), and the epoch trace must record both events.
    let run = || {
        let mut cfg = NetConfig::synth(4, 2)
            .with_routing(RoutingAlgo::EscapeVc {
                normal: BaseRouting::AdaptiveMinimal,
            })
            .with_seed(21)
            .with_recovery(RecoveryConfig::drain().with_e2e(800, 20))
            .with_fault(
                FaultConfig::default().with_schedule(FaultSchedule::link_flap(
                    NodeId(5),
                    Direction::East,
                    300,
                    1_500,
                )),
            );
        cfg.warmup = 0;
        let pkts = population(16, 4);
        let (got, mut sim) = new_sim(cfg);
        for p in &pkts {
            sim.net.nics[p.src.idx()].enqueue(*p);
        }
        sim.run(12_000);
        assert_exactly_once(&pkts, &got.borrow());
        let trace: Vec<(Cycle, String, bool, bool)> = sim
            .net
            .stats
            .epochs
            .iter()
            .map(|e| (e.cycle, e.action.clone(), e.routable, e.escape_ok))
            .collect();
        assert_eq!(trace.len(), 2, "flap must open exactly two epochs");
        assert_eq!(trace[0].0, 300);
        assert_eq!(trace[1].0, 1_500);
        assert!(trace[0].1.contains(":kl:") && trace[1].1.contains(":hl:"));
        assert!(trace[1].3, "escape layer still severed after the heal");
        assert!(
            sim.net.stats.epochs[0].cut_done_at.is_some(),
            "kill never completed its drain-cut"
        );
        assert_eq!(sim.net.stats.e2e_abandoned, 0);
        let deliveries: Vec<(u64, Cycle)> =
            got.borrow().iter().map(|d| (d.id.0, d.eject)).collect();
        (deliveries, trace)
    };
    // Chaos runs replay bit-identically from the config.
    assert_eq!(run(), run());
}

// --- Router flap: graceful drain, purge accounting, e2e re-delivery ------

#[test]
fn router_flap_purges_marooned_traffic_and_e2e_redelivers_after_heal() {
    let mut cfg = adaptive_cfg()
        .with_recovery(RecoveryConfig::drain().with_e2e(500, 100))
        .with_fault(
            FaultConfig::default().with_schedule(FaultSchedule::new(vec![
                FaultEvent {
                    at: 400,
                    action: FaultAction::KillRouter(NodeId(5)),
                },
                FaultEvent {
                    at: 3_000,
                    action: FaultAction::HealRouter(NodeId(5)),
                },
            ])),
        );
    cfg.warmup = 0;
    let (got, mut sim) = new_sim(cfg);
    let base = population(16, 2);
    for p in &base {
        sim.net.nics[p.src.idx()].enqueue(*p);
    }
    sim.run(600); // router 5 is down now
                  // Traffic aimed straight at (and sourced from) the dead router.
    let wave: Vec<Packet> = (1_000..1_006)
        .map(|k| packet(k, (k % 4) as u16, 5, 5))
        .chain((2_000..2_004).map(|k| packet(k, 5, (k % 16) as u16, 1)))
        .collect();
    for p in &wave {
        sim.net.nics[p.src.idx()].enqueue(*p);
    }
    sim.run(30_000);

    let all: Vec<Packet> = base.iter().chain(wave.iter()).copied().collect();
    assert_exactly_once(&all, &got.borrow());
    let st = &sim.net.stats;
    assert_eq!((st.chaos_routers_killed, st.chaos_routers_healed), (1, 1));
    assert_eq!(st.epochs.len(), 2);
    // `routable` quantifies over *live* pairs (dead-router endpoints are
    // excluded by definition), so a single dead router keeps it true; the
    // stranded purge is driven by the router-down flag instead.
    assert!(st.epochs.iter().all(|e| e.routable));
    assert!(
        st.chaos_purged_flits > 0,
        "nothing was purged at the dead router despite targeted traffic"
    );
    assert!(
        st.e2e_retransmits > 0,
        "purged packets were never re-sent end-to-end"
    );
    assert_eq!(st.e2e_abandoned, 0, "packet abandoned despite the heal");
}

// --- Property: exactly-once under corruption + flap, across seeds --------

#[test]
fn exactly_once_survives_transient_corruption_plus_mid_run_flap() {
    // Link-layer corruption (go-back-N retransmission) and a kill/heal flap
    // train on the same link, together, across seeds. The heal resets the
    // link's sequence space (generation-stamped), so stale wire events from
    // before each kill must be inert — any protocol leak shows up as loss or
    // duplication here.
    for seed in 1u64..=5 {
        let mut cfg = adaptive_cfg()
            .with_seed(seed)
            .with_recovery(RecoveryConfig::drain().with_e2e(900, 30));
        cfg.warmup = 0;
        let cfg = cfg.with_fault(
            FaultConfig::transient(0.05)
                .with_fault_seed(seed)
                .with_schedule(FaultSchedule::flap_train(
                    NodeId(5),
                    Direction::East,
                    250,
                    450,
                    350,
                    2,
                )),
        );
        let pkts = population(16, 5);
        let (got, mut sim) = new_sim(cfg);
        for p in &pkts {
            sim.net.nics[p.src.idx()].enqueue(*p);
        }
        sim.run(20_000);
        assert_exactly_once(&pkts, &got.borrow());
        let st = &sim.net.stats;
        assert!(
            st.corrupted_flits > 0,
            "seed {seed}: no corruption ever drawn"
        );
        assert_eq!(
            (st.chaos_links_killed, st.chaos_links_healed),
            (2, 2),
            "seed {seed}: flap train misapplied"
        );
        assert_eq!(st.epochs.len(), 4);
        assert_eq!(st.e2e_abandoned, 0);
    }
}

// --- Schedules fold into determinism like every other config ------------

#[test]
fn scheduled_runs_are_reproducible_and_schedule_free_runs_untouched() {
    // A config without a schedule must not even allocate chaos state.
    let (_, sim) = new_sim(adaptive_cfg().with_fault(FaultConfig::transient(0.02)));
    assert!(sim
        .net
        .fault
        .as_ref()
        .is_some_and(|f| f.chaos.is_none() && f.mask.is_none()));

    // With a schedule the partial mask exists from cycle 0 and the epoch
    // counters replay identically.
    let run = || {
        let cfg = adaptive_cfg().with_fault(FaultConfig::default().with_schedule(
            FaultSchedule::brownout(
                &[(NodeId(5), Direction::East), (NodeId(9), Direction::East)],
                200,
                600,
            ),
        ));
        let pkts = population(16, 3);
        let (got, mut sim) = new_sim(cfg);
        assert!(sim.net.fault.as_ref().is_some_and(|f| f.mask.is_some()));
        for p in &pkts {
            sim.net.nics[p.src.idx()].enqueue(*p);
        }
        sim.run(8_000);
        assert_exactly_once(&pkts, &got.borrow());
        // Brownout: both kills share cycle 200, both heals share cycle 800,
        // and every epoch leaves the mesh routable (two east links of a 4x4
        // never partition it).
        let st = &sim.net.stats;
        assert_eq!(st.epochs.len(), 4);
        assert!(st.epochs.iter().all(|e| e.routable && e.escape_ok));
        assert_eq!(st.chaos_epochs, 4);
        let deliveries: Vec<(u64, Cycle)> =
            got.borrow().iter().map(|d| (d.id.0, d.eject)).collect();
        deliveries
    };
    assert_eq!(run(), run());
}
