//! Runtime-recovery harness: end-to-end validation of the drain-and-reinject
//! recovery channel and the NIC end-to-end retransmission layer
//! (`noc_sim::recovery`).
//!
//! The drain tests run a statically-Deadlockable configuration (adaptive
//! minimal routing, a single VC per port — `noc-verify` refuses to certify
//! it) under a burst that provably wedges it, and assert that arming drain
//! recovery converts the wedge into completion: every packet delivered
//! exactly once, `drain_recoveries > 0`, deterministic across runs. The
//! end-to-end tests inject controlled losses and delays and assert the
//! exactly-once contract of the retransmission layer.

use noc_sim::network::Sim;
use noc_sim::stats::DeliveredPacket;
use noc_sim::workload::Workload;
use noc_sim::{recovery, watchdog, NoMechanism};
use noc_types::{
    BaseRouting, Cycle, MessageClass, NetConfig, NodeId, Packet, PacketId, RecoveryConfig,
    RoutingAlgo,
};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

/// Collects every delivery.
struct Collect(Rc<RefCell<Vec<DeliveredPacket>>>);
impl Workload for Collect {
    fn generate(&mut self, _c: Cycle, _i: &mut dyn FnMut(NodeId, Packet)) {}
    fn deliver(&mut self, _c: Cycle, p: &DeliveredPacket) -> bool {
        self.0.borrow_mut().push(*p);
        true
    }
}

/// A sink behind a gate: refuses every delivery while closed (modelling a
/// back-pressuring endpoint), collects them once opened.
struct GatedSink {
    got: Rc<RefCell<Vec<DeliveredPacket>>>,
    open: Rc<Cell<bool>>,
}
impl Workload for GatedSink {
    fn generate(&mut self, _c: Cycle, _i: &mut dyn FnMut(NodeId, Packet)) {}
    fn deliver(&mut self, _c: Cycle, p: &DeliveredPacket) -> bool {
        if !self.open.get() {
            return false;
        }
        self.got.borrow_mut().push(*p);
        true
    }
}

fn packet(id: u64, src: u16, dest: u16, len: u8) -> Packet {
    Packet {
        id: PacketId(id),
        src: NodeId(src),
        dest: NodeId(dest),
        class: MessageClass(0),
        len_flits: len,
        birth: 0,
        measured: true,
    }
}

/// A deterministic burst population: every node sends `per_node` packets,
/// alternating 1- and 5-flit, to spread-out destinations.
fn population(nodes: u16, per_node: u64) -> Vec<Packet> {
    let mut pkts = Vec::new();
    let mut id = 0u64;
    for src in 0..nodes {
        for k in 0..per_node {
            let dest = (src + 1 + (k as u16 * 5) % (nodes - 1)) % nodes;
            let len = if (src as u64 + k).is_multiple_of(2) {
                1
            } else {
                5
            };
            pkts.push(packet(id, src, dest, len));
            id += 1;
        }
    }
    pkts
}

/// Adaptive minimal routing with a single VC per port: no escape channel, no
/// VC ordering — the channel dependency graph is cyclic and a saturating
/// burst wedges it. This is exactly the class of configuration the static
/// certifier rejects; the recovery layer must keep it live anyway.
fn deadlockable_cfg(seed: u64) -> NetConfig {
    let mut cfg = NetConfig::synth(4, 1)
        .with_routing(RoutingAlgo::Uniform(BaseRouting::AdaptiveMinimal))
        .with_seed(seed);
    cfg.warmup = 0;
    cfg
}

/// Runs `pkts` through `cfg` and returns deliveries plus the final sim.
fn run(cfg: NetConfig, pkts: &[Packet], cycles: u64) -> (Vec<DeliveredPacket>, Sim) {
    let got = Rc::new(RefCell::new(Vec::new()));
    let mut sim = Sim::new(cfg, Box::new(Collect(got.clone())), Box::new(NoMechanism));
    for p in pkts {
        sim.net.nics[p.src.idx()].enqueue(*p);
    }
    sim.run(cycles);
    let out = got.borrow().clone();
    (out, sim)
}

/// Asserts the exactly-once contract: the delivered multiset of packet ids
/// equals the injected set.
fn assert_exactly_once(pkts: &[Packet], got: &[DeliveredPacket]) {
    let mut counts: HashMap<u64, u32> = HashMap::new();
    for d in got {
        *counts.entry(d.id.0).or_insert(0) += 1;
    }
    for p in pkts {
        match counts.get(&p.id.0) {
            Some(1) => {}
            Some(n) => panic!("packet {} delivered {n} times", p.id.0),
            None => panic!("packet {} lost", p.id.0),
        }
    }
    assert_eq!(got.len(), pkts.len(), "spurious deliveries");
}

/// The seed under which the Deadlockable control wedges (verified by
/// `deadlockable_config_wedges_without_recovery`). The recovery tests reuse
/// it so they demonstrably rescue a *real* deadlock, not a healthy run.
const WEDGE_SEED: u64 = 3;

#[test]
fn deadlockable_config_wedges_without_recovery() {
    let pkts = population(16, 8);
    let (got, sim) = run(deadlockable_cfg(WEDGE_SEED), &pkts, 20_000);
    assert!(
        watchdog::looks_stuck(&sim.net, 512),
        "control run did not wedge — recovery tests would prove nothing \
         ({} of {} delivered)",
        got.len(),
        pkts.len()
    );
    assert!(
        got.len() < pkts.len(),
        "wedged network still delivered everything?"
    );
    assert!(
        watchdog::find_deadlock_cycle(&sim.net).is_some(),
        "expected a wait-for cycle witness in the wedged network"
    );
}

#[test]
fn drain_recovery_completes_the_wedged_run() {
    let pkts = population(16, 8);
    let cfg = deadlockable_cfg(WEDGE_SEED)
        .with_recovery(RecoveryConfig::drain().with_stuck_threshold(128));
    let got = Rc::new(RefCell::new(Vec::new()));
    let mut sim = Sim::new(cfg, Box::new(Collect(got.clone())), Box::new(NoMechanism));
    for p in &pkts {
        sim.net.nics[p.src.idx()].enqueue(*p);
    }
    let mut done = false;
    for _ in 0..60 {
        sim.run(1_000);
        if got.borrow().len() == pkts.len() {
            done = true;
            break;
        }
    }
    assert!(
        done,
        "recovery failed to complete the run: {} of {} delivered, \
         {} drains",
        got.borrow().len(),
        pkts.len(),
        sim.net.stats.drain_recoveries
    );
    assert_exactly_once(&pkts, &got.borrow());
    let s = &sim.net.stats;
    assert!(s.drain_recoveries > 0, "completed without a single drain?");
    assert!(s.recovery_victim_hops >= s.drain_recoveries);
    assert!(s.recovery_cycles_lost > 0);
    // Conservation: nothing left in buffers, inboxes or recovery custody.
    assert_eq!(sim.net.flits_in_network(), 0);
}

#[test]
fn recovered_runs_are_deterministic() {
    let pkts = population(16, 8);
    let go = || {
        let cfg = deadlockable_cfg(WEDGE_SEED)
            .with_recovery(RecoveryConfig::drain().with_stuck_threshold(128));
        let (got, sim) = run(cfg, &pkts, 40_000);
        (got, sim.net.stats.drain_recoveries)
    };
    let (a, drains_a) = go();
    let (b, drains_b) = go();
    assert!(drains_a > 0);
    assert_eq!(drains_a, drains_b, "drain counts diverged between runs");
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(
            (x.id, x.eject, x.hops),
            (y.id, y.eject, y.hops),
            "recovered delivery schedule diverged"
        );
    }
}

#[test]
fn armed_recovery_is_byte_identical_on_a_healthy_mesh() {
    // XY on two VCs never wedges and never loses packets: with the drain
    // layer armed *and* the end-to-end layer on a generous timeout, neither
    // ever acts, and the full statistics block must match the unarmed run
    // exactly.
    let pkts = population(16, 6);
    let base = || {
        let mut cfg = NetConfig::synth(4, 2)
            .with_routing(RoutingAlgo::Uniform(BaseRouting::Xy))
            .with_seed(42);
        cfg.warmup = 0;
        cfg
    };
    let (got_off, mut sim_off) = run(base(), &pkts, 8_000);
    let armed = base().with_recovery(RecoveryConfig::drain().with_e2e(100_000, 4));
    let (got_on, mut sim_on) = run(armed, &pkts, 8_000);
    assert!(
        sim_on.net.recovery.is_some(),
        "recovery layer was not built"
    );
    assert_exactly_once(&pkts, &got_off);
    assert_exactly_once(&pkts, &got_on);
    for (x, y) in got_off.iter().zip(got_on.iter()) {
        assert_eq!((x.id, x.eject), (y.id, y.eject));
    }
    let (a, b) = (sim_off.finish(), sim_on.finish());
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "arming recovery perturbed a healthy run"
    );
}

/// Parks `n` packets in the destination's class-0 ejection VCs (the sink
/// refuses them while the gate is closed), so later arrivals of that class
/// wait fully buffered in the destination router — drainable, and losable.
fn park_fillers(sim: &mut Sim, dest: u16, n: u64) {
    for k in 0..n {
        sim.net.nics[(dest - 1) as usize].enqueue(packet(1_000 + k, dest - 1, dest, 1));
    }
    sim.run(50);
}

/// Locates the router VC currently holding `id` fully buffered with no route
/// assigned (the only state a packet can be drained from).
fn find_parked(sim: &Sim, id: u64) -> Option<(NodeId, usize, usize)> {
    for (i, r) in sim.net.routers.iter().enumerate() {
        for (p, port) in r.inputs.iter().enumerate() {
            for (v, vc) in port.vcs.iter().enumerate() {
                let held = vc
                    .front()
                    .is_some_and(|f| f.packet.0 == id && vc.route.is_none())
                    && vc.packet_fully_buffered();
                if held {
                    return Some((NodeId(i as u16), p, v));
                }
            }
        }
    }
    None
}

#[test]
fn e2e_retransmission_redelivers_a_lost_packet_exactly_once() {
    let mut cfg = NetConfig::synth(4, 2)
        .with_routing(RoutingAlgo::Uniform(BaseRouting::Xy))
        .with_seed(7)
        .with_recovery(RecoveryConfig::default().with_e2e(300, 4));
    cfg.warmup = 0;
    let got = Rc::new(RefCell::new(Vec::new()));
    let open = Rc::new(Cell::new(false));
    let wl = GatedSink {
        got: got.clone(),
        open: open.clone(),
    };
    let mut sim = Sim::new(cfg, Box::new(wl), Box::new(NoMechanism));
    // Both class-0 ejection VCs at node 15 fill with refused fillers, so the
    // probe packet parks in the destination router where it can be "lost".
    park_fillers(&mut sim, 15, 2);
    sim.net.nics[0].enqueue(packet(1, 0, 15, 3));
    let mut slot = None;
    for _ in 0..200 {
        sim.run(1);
        if let Some(s) = find_parked(&sim, 1) {
            slot = Some(s);
            break;
        }
    }
    let (n, p, v) = slot.expect("probe packet never parked in a router VC");
    // Simulate a router dying with the packet buffered inside: lift the
    // flits out and drop them. No in-network protocol can heal this.
    let lost = sim.net.drain_packet(n, p, v);
    assert_eq!(lost.len(), 3);
    #[cfg(feature = "check-invariants")]
    {
        // The test ate the flits; square the conservation ledger by hand.
        sim.net.inv.consumed_flits += lost.len() as u64;
    }
    drop(lost);
    open.set(true);
    sim.run(3_000);
    let got = got.borrow();
    let probe: Vec<_> = got.iter().filter(|d| d.id.0 == 1).collect();
    assert_eq!(
        probe.len(),
        1,
        "lost packet must be redelivered exactly once (got {})",
        probe.len()
    );
    // The workload observes the logical id, never a retry id.
    assert!(!recovery::is_retry(probe[0].id));
    let s = &sim.net.stats;
    assert!(s.e2e_retransmits >= 1, "no retransmission was scheduled");
    assert_eq!(s.e2e_abandoned, 0);
    assert_eq!(sim.net.flits_in_network(), 0);
}

#[test]
fn e2e_suppresses_the_duplicate_when_nothing_was_lost() {
    // The original is merely *delayed* past the timeout (parked at a closed
    // sink), so original and retransmission copy both eventually deliver —
    // the workload must see the packet exactly once.
    let mut cfg = NetConfig::synth(4, 2)
        .with_routing(RoutingAlgo::Uniform(BaseRouting::Xy))
        .with_seed(7)
        .with_recovery(RecoveryConfig::default().with_e2e(200, 4));
    cfg.warmup = 0;
    let got = Rc::new(RefCell::new(Vec::new()));
    let open = Rc::new(Cell::new(false));
    let wl = GatedSink {
        got: got.clone(),
        open: open.clone(),
    };
    let mut sim = Sim::new(cfg, Box::new(wl), Box::new(NoMechanism));
    sim.net.nics[0].enqueue(packet(1, 0, 15, 1));
    // Park past the timeout so a copy is scheduled while the original sits
    // refused in an ejection VC.
    for _ in 0..20 {
        sim.run(100);
        if sim.net.stats.e2e_retransmits > 0 {
            break;
        }
    }
    assert!(
        sim.net.stats.e2e_retransmits >= 1,
        "delayed original never triggered a retransmission"
    );
    open.set(true);
    sim.run(3_000);
    let got = got.borrow();
    let seen: Vec<_> = got.iter().filter(|d| d.id.0 == 1).collect();
    assert_eq!(seen.len(), 1, "duplicate leaked to the workload");
    let s = &sim.net.stats;
    assert!(
        s.e2e_duplicates_dropped >= 1,
        "both copies arrived but no duplicate was suppressed"
    );
    assert_eq!(s.e2e_abandoned, 0);
    assert_eq!(sim.net.flits_in_network(), 0);
}

#[test]
fn e2e_gives_up_after_the_retry_budget() {
    // A sink that never opens: the original parks forever, every copy parks
    // or waits behind it, and the source must eventually stop resending.
    let mut cfg = NetConfig::synth(4, 2)
        .with_routing(RoutingAlgo::Uniform(BaseRouting::Xy))
        .with_seed(7)
        .with_recovery(RecoveryConfig::default().with_e2e(64, 2));
    cfg.warmup = 0;
    let got = Rc::new(RefCell::new(Vec::new()));
    let open = Rc::new(Cell::new(false));
    let wl = GatedSink { got, open };
    let mut sim = Sim::new(cfg, Box::new(wl), Box::new(NoMechanism));
    sim.net.nics[0].enqueue(packet(1, 0, 15, 1));
    sim.run(5_000);
    let s = &sim.net.stats;
    assert_eq!(s.e2e_retransmits, 2, "retry budget not honoured");
    assert_eq!(s.e2e_abandoned, 1, "exhausted packet was not abandoned");
}

#[test]
fn retry_ids_round_trip_to_the_logical_id() {
    let orig = PacketId(0x0000_1234_5678_9abc);
    assert!(!recovery::is_retry(orig));
    assert_eq!(recovery::logical_id(orig), orig);
    let retry = PacketId(orig.0 | recovery::RETRY_BIT | (3 << 48));
    assert!(recovery::is_retry(retry));
    assert_eq!(recovery::logical_id(retry), orig);
}
