//! Full-system invariant runs (`--features check-invariants`).
//!
//! Seeded 8x8 meshes driven past saturation, with the end-of-cycle invariant
//! sweep on and strict mode enabled (custody-free mechanisms only): the runs
//! must finish with zero violations and *exact* flit conservation at drain.
#![cfg(feature = "check-invariants")]

use noc_sim::{NoMechanism, PacketFactory, Sim, Workload};
use noc_types::{BaseRouting, Cycle, MessageClass, NetConfig, NodeId, Packet, RoutingAlgo};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Open-loop Bernoulli source, stopping at `until` so the network can drain.
struct Bernoulli {
    rate: f64,
    until: Cycle,
    nodes: u16,
    cols: u8,
    transpose: bool,
    rng: SmallRng,
    factory: PacketFactory,
}

impl Bernoulli {
    fn new(cfg: &NetConfig, rate: f64, until: Cycle, transpose: bool, seed: u64) -> Bernoulli {
        Bernoulli {
            rate,
            until,
            nodes: cfg.num_nodes() as u16,
            cols: cfg.cols,
            transpose,
            rng: SmallRng::seed_from_u64(seed),
            factory: PacketFactory::new(),
        }
    }
}

impl Workload for Bernoulli {
    fn generate(&mut self, cycle: Cycle, inject: &mut dyn FnMut(NodeId, Packet)) {
        if cycle >= self.until {
            return;
        }
        for n in 0..self.nodes {
            if !self.rng.gen_bool(self.rate) {
                continue;
            }
            let dest = if self.transpose {
                let (x, y) = (n % self.cols as u16, n / self.cols as u16);
                y + x * self.cols as u16
            } else {
                self.rng.gen_range(0..self.nodes)
            };
            if dest == n {
                continue;
            }
            let p = self
                .factory
                .make(NodeId(n), NodeId(dest), MessageClass(0), 5, cycle, true);
            inject(NodeId(n), p);
        }
    }
}

/// Runs `cfg` under the given pattern past saturation, drains, and asserts a
/// clean invariant record plus exact conservation.
fn run_and_check(cfg: NetConfig, transpose: bool, seed: u64) {
    let inject_cycles: Cycle = 1_000;
    let wl = Bernoulli::new(&cfg, 0.30, inject_cycles, transpose, seed);
    let mut sim = Sim::new(cfg, Box::new(wl), Box::new(NoMechanism));
    sim.net.inv.strict = true;

    sim.run(inject_cycles);
    // Drain: sources are silent now; a certified-deadlock-free network must
    // clear its queues and buffers in bounded time.
    let mut drained = false;
    for _ in 0..40 {
        sim.run(5_000);
        let backlog: usize = sim.net.nics.iter().map(noc_sim::Nic::backlog).sum();
        let ejecting: usize = sim
            .net
            .nics
            .iter()
            .flat_map(|n| n.ejection.iter())
            .map(|e| e.buf.len())
            .sum();
        let flying: usize = sim.net.inbox_nic.iter().map(noc_sim::Inbox::len).sum();
        if backlog == 0
            && ejecting == 0
            && flying == 0
            && sim.net.flits_in_network() == 0
            && sim.net.nics.iter().all(|n| n.inj_active.is_none())
        {
            drained = true;
            break;
        }
    }
    assert!(drained, "network failed to drain after injection stopped");

    let inv = &sim.net.inv;
    inv.assert_clean();
    assert!(inv.sweeps > inject_cycles, "sweeps did not run every cycle");
    assert!(
        inv.injected_flits > 10_000,
        "run too light to be meaningful: {} flits",
        inv.injected_flits
    );
    assert_eq!(
        inv.injected_flits, inv.consumed_flits,
        "flit conservation broken at drain"
    );
}

fn mesh8(routing: RoutingAlgo) -> NetConfig {
    let mut cfg = NetConfig::synth(8, 4)
        .with_routing(routing)
        .with_seed(0x5EEC);
    cfg.warmup = 0;
    cfg
}

#[test]
fn xy_uniform_random_past_saturation_is_clean() {
    run_and_check(mesh8(RoutingAlgo::Uniform(BaseRouting::Xy)), false, 11);
}

#[test]
fn xy_transpose_past_saturation_is_clean() {
    run_and_check(mesh8(RoutingAlgo::Uniform(BaseRouting::Xy)), true, 12);
}

#[test]
fn escape_vc_uniform_random_past_saturation_is_clean() {
    run_and_check(
        mesh8(RoutingAlgo::EscapeVc {
            normal: BaseRouting::AdaptiveMinimal,
        }),
        false,
        13,
    );
}

#[test]
fn escape_vc_transpose_past_saturation_is_clean() {
    run_and_check(
        mesh8(RoutingAlgo::EscapeVc {
            normal: BaseRouting::AdaptiveMinimal,
        }),
        true,
        14,
    );
}

#[test]
fn checker_catches_seeded_corruption() {
    // Sanity: the sweep is not vacuous — corrupt a credit counter and the
    // checker must flag it.
    let cfg = mesh8(RoutingAlgo::Uniform(BaseRouting::Xy));
    let wl = Bernoulli::new(&cfg, 0.10, 50, false, 7);
    let mut sim = Sim::new(cfg, Box::new(wl), Box::new(NoMechanism));
    sim.run(30);
    sim.net.routers[0].outputs[noc_types::Direction::East.index()].inflight[0] += 7;
    sim.run(1);
    assert!(
        sim.net.inv.violation_count > 0,
        "corrupted inflight counter went undetected"
    );
}
