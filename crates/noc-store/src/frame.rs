//! CRC32 record framing for JSONL journals.
//!
//! A sealed record is the payload line followed by a `#c=xxxxxxxx` trailer
//! (CRC32/IEEE of the payload bytes, 8 lowercase hex digits). The trailer
//! lives *outside* the JSON, which is what makes single-byte corruption
//! detectable everywhere: a flat JSON line must end with `}`, a sealed line
//! must end with a well-formed trailer, and any flip lands in one of three
//! detected buckets — CRC mismatch, malformed trailer, or a line that is
//! neither `}`-terminated JSON nor a sealed record.

/// CRC32 (IEEE 802.3, reflected), table-driven.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = build_table();
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// The trailer marker. Chosen so it can never terminate a flat JSON line
/// (those end with `}`), which keeps legacy journals unambiguous.
const MARKER: &str = "#c=";

/// Seals one record: `payload#c=<crc32 of payload, 8 hex digits>`.
/// `payload` must not contain a newline (it is one journal line).
pub fn seal_line(payload: &str) -> String {
    debug_assert!(!payload.contains('\n'), "journal records are single lines");
    format!("{payload}{MARKER}{:08x}", crc32(payload.as_bytes()))
}

/// Verdict of [`open_line`] on one journal line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LineCheck<'a> {
    /// A sealed record whose CRC verifies; the payload with the trailer
    /// stripped.
    Sealed(&'a str),
    /// No trailer at all: a record from a pre-CRC journal. The caller
    /// decides whether its parser accepts it (and counts it separately).
    Legacy(&'a str),
    /// A trailer is present but malformed, or the CRC does not match: the
    /// record is corrupt and must never be parsed as data.
    Corrupt,
}

/// Checks one journal line against its trailer. The *last* occurrence of
/// the marker is the trailer (the payload may contain the marker bytes
/// inside a JSON string).
pub fn open_line(line: &str) -> LineCheck<'_> {
    let Some(at) = line.rfind(MARKER) else {
        return LineCheck::Legacy(line);
    };
    let (payload, trailer) = line.split_at(at);
    let hex = &trailer[MARKER.len()..];
    if hex.len() != 8
        || !hex
            .bytes()
            .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
    {
        return LineCheck::Corrupt;
    }
    let Ok(expect) = u32::from_str_radix(hex, 16) else {
        return LineCheck::Corrupt;
    };
    if crc32(payload.as_bytes()) == expect {
        LineCheck::Sealed(payload)
    } else {
        LineCheck::Corrupt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn seal_then_open_round_trips() {
        for payload in ["", "{\"a\": 1}", "text with #c= inside", "{\"k\": \"v\"}"] {
            let sealed = seal_line(payload);
            assert_eq!(open_line(&sealed), LineCheck::Sealed(payload), "{payload}");
        }
    }

    #[test]
    fn unsealed_json_is_legacy_not_corrupt() {
        assert_eq!(open_line("{\"a\": 1}"), LineCheck::Legacy("{\"a\": 1}"));
        assert_eq!(open_line(""), LineCheck::Legacy(""));
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        // The core durability property: flip any single byte of a sealed
        // record (any position, any new value) and the line must come back
        // either Corrupt, or Legacy-with-unparseable-payload — never a
        // clean Sealed with different bytes.
        let payload = r#"{"key": "abc", "status": "ok", "n": 42}"#;
        let sealed = seal_line(payload);
        let bytes = sealed.as_bytes();
        for i in 0..bytes.len() {
            for flip in [0x01u8, 0x20, 0x80] {
                let mut mutated = bytes.to_vec();
                mutated[i] ^= flip;
                let Ok(line) = std::str::from_utf8(&mutated) else {
                    continue; // invalid UTF-8 never reaches the parser
                };
                match open_line(line) {
                    LineCheck::Sealed(p) => {
                        panic!("flip at {i} (^{flip:#x}) accepted as sealed: {p:?}")
                    }
                    LineCheck::Corrupt => {}
                    LineCheck::Legacy(l) => {
                        // Only reachable when the flip destroyed the
                        // marker; the payload then still carries the
                        // trailer bytes and cannot end with '}'.
                        assert!(
                            !l.ends_with('}'),
                            "flip at {i} looks like clean JSON: {l:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn truncated_seals_are_corrupt_or_non_json() {
        let sealed = seal_line(r#"{"key": "abc"}"#);
        for cut in 1..sealed.len() {
            let torn = &sealed[..cut];
            match open_line(torn) {
                LineCheck::Sealed(_) => panic!("torn at {cut} accepted"),
                LineCheck::Corrupt => {}
                LineCheck::Legacy(l) => {
                    assert!(
                        !l.ends_with('}') || l.len() == sealed.rfind(MARKER).unwrap(),
                        "torn at {cut} could parse as a full record: {l:?}"
                    );
                }
            }
        }
    }
}
