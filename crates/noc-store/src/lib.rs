//! Storage hardening layer for every artifact this workspace persists.
//!
//! The crash-tolerance story (checkpointed sweeps, `noc-serve` journal
//! replay, black-box dumps) is only as strong as the filesystem writes it
//! rides on. This crate makes those writes *verifiable*:
//!
//! * a [`Vfs`] abstraction every journal/checkpoint/dump/quarantine writer
//!   and reader goes through — a production [`StdVfs`] (temp file + fsync +
//!   atomic rename, directory fsync on Linux) and a seeded [`FaultVfs`]
//!   that injects ENOSPC, EIO, torn writes, slow writes and rename failures
//!   on a canonical, replayable schedule (same digest discipline as the
//!   simulator's `FaultSchedule`);
//! * CRC32 record framing ([`seal_line`] / [`open_line`]) so a torn **or
//!   corrupt** JSONL row is detected — never parsed as data;
//! * bounded write-retry with capped exponential backoff ([`with_retry`])
//!   before a failure escalates to the caller.
//!
//! The fault schedule is driven by two environment knobs, validated
//! eagerly by every binary (exit status 2 on garbage, like `NOC_THREADS`):
//!
//! * `NOC_VFS_FAULT_SCHEDULE` — explicit events, e.g.
//!   `"3:enospc,7:torn@12,9:rename,2:stuck,8:heal"` (op-indexed);
//! * `NOC_VFS_FAULT_SEED` — seeded pseudo-random faults for soaks.
//!
//! See DESIGN.md §15 for the fault matrix.

#![forbid(unsafe_code)]

pub mod fault;
pub mod frame;
pub mod vfs;

pub use fault::{FaultEvent, FaultKind, FaultPlan, FaultVfs};
pub use frame::{crc32, open_line, seal_line, LineCheck};
pub use vfs::{active, AppendLog, RetryPolicy, StdVfs, Vfs};

/// FNV-1a 64-bit — the workspace's canonical content-address hash, local
/// so this crate stays dependency-free.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}
