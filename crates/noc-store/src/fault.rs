//! Scheduled storage-fault injection.
//!
//! [`FaultVfs`] wraps the production write paths with a deterministic,
//! replayable fault plan, the same discipline as the simulator's
//! `FaultSchedule`: every *write operation* (one `append` call or one
//! `write_atomic` call) consumes one op index from a process-wide counter,
//! and the plan decides what happens at that index. Reads are never
//! faulted — corruption detection on the read side is exercised by the
//! artifacts the faulted writes leave behind.
//!
//! Two sources feed a plan, validated eagerly by binaries (exit 2):
//!
//! * `NOC_VFS_FAULT_SCHEDULE="3:enospc,7:torn@12,9:rename,2:stuck,8:heal"`
//!   — explicit op-indexed events;
//! * `NOC_VFS_FAULT_SEED=42` — seeded pseudo-random faults for soaks.
//!
//! When both are set, explicit events win at their op index and the seed
//! fills the rest. [`FaultPlan::canonical`] renders the plan to the exact
//! string that reproduces it and [`FaultPlan::digest`] fingerprints it for
//! repro records.

use std::collections::BTreeMap;
use std::io::{self, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::vfs::{atomic_write_steps, AppendLog, StdVfs, Vfs};

/// What happens to one write operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail with "no space left on device" before writing anything.
    Enospc,
    /// Fail with an I/O error before writing anything.
    Eio,
    /// Write only the first `n` bytes, then fail: a torn write.
    Torn(u32),
    /// Sleep this many milliseconds, then write normally.
    Slow(u64),
    /// Stage the artifact fully but fail the publishing rename
    /// (whole-file writes; behaves like [`FaultKind::Eio`] on appends).
    RenameFail,
    /// From this op onward every write fails — a persistently broken disk
    /// — until a [`FaultKind::Heal`] event.
    Stuck,
    /// Clear a [`FaultKind::Stuck`] condition; this op then succeeds.
    Heal,
}

impl FaultKind {
    fn parse(code: &str) -> Result<FaultKind, String> {
        let (name, arg) = match code.split_once('@') {
            Some((n, a)) => (n, Some(a)),
            None => (code, None),
        };
        let need_no_arg = |kind: FaultKind| match arg {
            None => Ok(kind),
            Some(a) => Err(format!("fault kind '{name}' takes no '@{a}' argument")),
        };
        match name {
            "enospc" => need_no_arg(FaultKind::Enospc),
            "eio" => need_no_arg(FaultKind::Eio),
            "rename" => need_no_arg(FaultKind::RenameFail),
            "stuck" => need_no_arg(FaultKind::Stuck),
            "heal" => need_no_arg(FaultKind::Heal),
            "torn" => {
                let a = arg.ok_or("fault kind 'torn' needs '@<bytes>'")?;
                let n: u32 = a
                    .parse()
                    .map_err(|_| format!("bad torn byte offset '{a}'"))?;
                Ok(FaultKind::Torn(n))
            }
            "slow" => {
                let a = arg.ok_or("fault kind 'slow' needs '@<millis>'")?;
                let ms: u64 = a.parse().map_err(|_| format!("bad slow millis '{a}'"))?;
                Ok(FaultKind::Slow(ms))
            }
            other => Err(format!(
                "unknown fault kind '{other}' (expected enospc|eio|torn@N|slow@MS|rename|stuck|heal)"
            )),
        }
    }

    fn canonical(self) -> String {
        match self {
            FaultKind::Enospc => "enospc".to_string(),
            FaultKind::Eio => "eio".to_string(),
            FaultKind::Torn(n) => format!("torn@{n}"),
            FaultKind::Slow(ms) => format!("slow@{ms}"),
            FaultKind::RenameFail => "rename".to_string(),
            FaultKind::Stuck => "stuck".to_string(),
            FaultKind::Heal => "heal".to_string(),
        }
    }
}

/// One scheduled event: at write op `op` (0-based), do `kind`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// 0-based index into the process's write-operation sequence.
    pub op: u64,
    /// What to inject there.
    pub kind: FaultKind,
}

/// A validated, canonicalizable fault plan.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: BTreeMap<u64, FaultKind>,
    seed: Option<u64>,
}

impl FaultPlan {
    /// Parses an explicit `op:kind[,op:kind...]` schedule string.
    pub fn parse_schedule(s: &str) -> Result<FaultPlan, String> {
        if s.trim().is_empty() {
            return Err("empty fault schedule".to_string());
        }
        let mut events = BTreeMap::new();
        for part in s.split(',') {
            let part = part.trim();
            let (op_s, code) = part
                .split_once(':')
                .ok_or_else(|| format!("bad fault event '{part}' (expected op:kind)"))?;
            let op: u64 = op_s
                .trim()
                .parse()
                .map_err(|_| format!("bad op index '{op_s}' in '{part}'"))?;
            let kind = FaultKind::parse(code.trim())?;
            if events.insert(op, kind).is_some() {
                return Err(format!("duplicate fault event for op {op}"));
            }
        }
        Ok(FaultPlan { events, seed: None })
    }

    /// Builds a plan from the two environment knobs (either may be unset).
    /// `Ok(None)` means no fault injection is configured. Errors are the
    /// messages binaries print before exiting with status 2.
    pub fn from_env(
        schedule: Option<&str>,
        seed: Option<&str>,
    ) -> Result<Option<FaultPlan>, String> {
        let mut plan = match schedule {
            Some(s) => Some(
                FaultPlan::parse_schedule(s).map_err(|e| format!("NOC_VFS_FAULT_SCHEDULE: {e}"))?,
            ),
            None => None,
        };
        if let Some(s) = seed {
            let n: u64 = s
                .trim()
                .parse()
                .map_err(|_| format!("NOC_VFS_FAULT_SEED: '{s}' is not an unsigned integer"))?;
            plan.get_or_insert_with(FaultPlan::default).seed = Some(n);
        }
        Ok(plan)
    }

    /// Adds one explicit event (test/soak construction path).
    #[must_use]
    pub fn with_event(mut self, op: u64, kind: FaultKind) -> FaultPlan {
        self.events.insert(op, kind);
        self
    }

    /// Seeded-random plan with no explicit events.
    #[must_use]
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            events: BTreeMap::new(),
            seed: Some(seed),
        }
    }

    /// The exact string that reproduces this plan: the explicit events in
    /// op order (the `NOC_VFS_FAULT_SCHEDULE` syntax), then `seed=N` if a
    /// seed participates.
    pub fn canonical(&self) -> String {
        let mut parts: Vec<String> = self
            .events
            .iter()
            .map(|(op, kind)| format!("{op}:{}", kind.canonical()))
            .collect();
        if let Some(seed) = self.seed {
            parts.push(format!("seed={seed}"));
        }
        parts.join(",")
    }

    /// FNV-1a fingerprint of [`FaultPlan::canonical`], for repro records.
    pub fn digest(&self) -> u64 {
        crate::fnv1a(self.canonical().as_bytes())
    }

    /// What this plan injects at write op `op`, if anything. Explicit
    /// events win; otherwise the seed draws deterministically per op
    /// (≈1-in-8 fault rate over {enospc, eio, torn, slow@1}).
    pub fn kind_at(&self, op: u64) -> Option<FaultKind> {
        if let Some(&k) = self.events.get(&op) {
            return Some(k);
        }
        let seed = self.seed?;
        let r = splitmix64(seed ^ op.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        if !r.is_multiple_of(8) {
            return None;
        }
        Some(match (r >> 3) % 4 {
            0 => FaultKind::Enospc,
            1 => FaultKind::Eio,
            2 => FaultKind::Torn(u32::try_from((r >> 5) % 64).unwrap_or(0)),
            _ => FaultKind::Slow(1),
        })
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn enospc(op: u64) -> io::Error {
    io::Error::new(
        io::ErrorKind::StorageFull,
        format!("injected ENOSPC at write op {op}"),
    )
}

fn eio(op: u64) -> io::Error {
    io::Error::other(format!("injected EIO at write op {op}"))
}

fn stuck_err(op: u64) -> io::Error {
    io::Error::other(format!("injected persistent write failure at op {op}"))
}

/// Shared mutable state of one [`FaultVfs`]: the write-op counter and the
/// sticky broken-disk flag.
#[derive(Debug)]
struct FaultState {
    plan: FaultPlan,
    ops: AtomicU64,
    stuck: AtomicBool,
}

impl FaultState {
    /// Claims the next op index and resolves what to inject there,
    /// applying the sticky stuck/heal transitions.
    fn next_op(&self) -> (u64, Option<FaultKind>) {
        let op = self.ops.fetch_add(1, Ordering::SeqCst);
        let kind = self.plan.kind_at(op);
        match kind {
            Some(FaultKind::Stuck) => {
                self.stuck.store(true, Ordering::SeqCst);
                return (op, Some(FaultKind::Stuck));
            }
            Some(FaultKind::Heal) => {
                self.stuck.store(false, Ordering::SeqCst);
                return (op, None); // the healing op itself succeeds
            }
            _ => {}
        }
        if self.stuck.load(Ordering::SeqCst) {
            return (op, Some(FaultKind::Stuck));
        }
        (op, kind)
    }
}

/// A [`Vfs`] that injects the plan's faults into every write operation.
#[derive(Clone, Debug)]
pub struct FaultVfs {
    state: Arc<FaultState>,
}

impl FaultVfs {
    /// Wraps the production write paths with `plan`.
    #[must_use]
    pub fn new(plan: FaultPlan) -> FaultVfs {
        FaultVfs {
            state: Arc::new(FaultState {
                plan,
                ops: AtomicU64::new(0),
                stuck: AtomicBool::new(false),
            }),
        }
    }

    /// Write operations performed so far (the next op index). A probe run
    /// reads this to enumerate the write sites a workload touches.
    pub fn ops(&self) -> u64 {
        self.state.ops.load(Ordering::SeqCst)
    }

    /// The plan this instance replays.
    pub fn plan(&self) -> &FaultPlan {
        &self.state.plan
    }
}

struct FaultAppend {
    inner: Box<dyn AppendLog>,
    state: Arc<FaultState>,
}

impl AppendLog for FaultAppend {
    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        let (op, kind) = self.state.next_op();
        match kind {
            // next_op maps Heal to None, so the Heal arm is unreachable;
            // folding it in here keeps the match exhaustive regardless.
            None | Some(FaultKind::Heal) => self.inner.append(data),
            Some(FaultKind::Slow(ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                self.inner.append(data)
            }
            Some(FaultKind::Torn(n)) => {
                let cut = (n as usize).min(data.len());
                // The torn prefix really lands in the journal; the caller
                // sees an error with bytes-written unknown.
                let _ = self.inner.append(&data[..cut]);
                Err(eio(op))
            }
            Some(FaultKind::Enospc) => Err(enospc(op)),
            Some(FaultKind::Stuck) => Err(stuck_err(op)),
            Some(FaultKind::Eio | FaultKind::RenameFail) => Err(eio(op)),
        }
    }
}

impl Vfs for FaultVfs {
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        StdVfs.read_to_string(path)
    }

    fn write_atomic(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let (op, kind) = self.state.next_op();
        match kind {
            // Heal is unreachable here (next_op maps it to None).
            None | Some(FaultKind::Heal) => StdVfs.write_atomic(path, data),
            Some(FaultKind::Slow(ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                StdVfs.write_atomic(path, data)
            }
            Some(FaultKind::Enospc) => Err(enospc(op)),
            Some(FaultKind::Eio) => Err(eio(op)),
            Some(FaultKind::Stuck) => Err(stuck_err(op)),
            Some(FaultKind::Torn(n)) => {
                // The tear hits the *temp* file; the target must never see
                // a partial artifact. atomic_write_steps removes the temp
                // and surfaces the error.
                let cut = (n as usize).min(data.len());
                atomic_write_steps(
                    path,
                    data,
                    &|f, d| {
                        f.write_all(&d[..cut])?;
                        Err(eio(op))
                    },
                    true,
                )
            }
            Some(FaultKind::RenameFail) => {
                atomic_write_steps(path, data, &|f, d| f.write_all(d), false)
            }
        }
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn AppendLog>> {
        let inner = StdVfs.open_append(path)?;
        Ok(Box::new(FaultAppend {
            inner,
            state: Arc::clone(&self.state),
        }))
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        StdVfs.create_dir_all(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("noc_fault_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn schedule_parses_and_round_trips_canonically() {
        let plan =
            FaultPlan::parse_schedule("7:torn@12, 3:enospc ,9:rename,2:stuck,8:heal").unwrap();
        assert_eq!(
            plan.canonical(),
            "2:stuck,3:enospc,7:torn@12,8:heal,9:rename"
        );
        let again = FaultPlan::parse_schedule(&plan.canonical()).unwrap();
        assert_eq!(again, plan);
        assert_eq!(again.digest(), plan.digest());
    }

    #[test]
    fn schedule_rejects_garbage() {
        for bad in [
            "",
            "x:enospc",
            "3:whatever",
            "3:torn",
            "3:torn@many",
            "3:slow",
            "3:enospc@5",
            "3enospc",
            "3:enospc,3:eio",
        ] {
            assert!(FaultPlan::parse_schedule(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn from_env_combines_schedule_and_seed() {
        assert_eq!(FaultPlan::from_env(None, None).unwrap(), None);
        let p = FaultPlan::from_env(Some("0:eio"), Some("9"))
            .unwrap()
            .unwrap();
        assert_eq!(p.canonical(), "0:eio,seed=9");
        assert!(FaultPlan::from_env(Some("nope"), None).is_err());
        assert!(FaultPlan::from_env(None, Some("-1")).is_err());
        assert!(FaultPlan::from_env(None, Some("12x")).is_err());
    }

    #[test]
    fn seeded_draws_are_deterministic() {
        let a = FaultPlan::seeded(42);
        let b = FaultPlan::seeded(42);
        let c = FaultPlan::seeded(43);
        let draws_a: Vec<_> = (0..256).map(|op| a.kind_at(op)).collect();
        let draws_b: Vec<_> = (0..256).map(|op| b.kind_at(op)).collect();
        let draws_c: Vec<_> = (0..256).map(|op| c.kind_at(op)).collect();
        assert_eq!(draws_a, draws_b);
        assert_ne!(draws_a, draws_c);
        assert!(
            draws_a.iter().any(Option::is_some),
            "seed 42 injects nothing in 256 ops"
        );
        assert!(
            draws_a.iter().any(Option::is_none),
            "seed 42 faults every op"
        );
    }

    #[test]
    fn torn_append_leaves_a_real_prefix() {
        let dir = tmpdir("torn");
        let path = dir.join("j.jsonl");
        let vfs = FaultVfs::new(FaultPlan::default().with_event(1, FaultKind::Torn(4)));
        let mut log = vfs.open_append(&path).unwrap();
        log.append(b"first line\n").unwrap();
        let err = log.append(b"second line\n").unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
        log.append(b"third line\n").unwrap();
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            "first line\nsecothird line\n"
        );
        assert_eq!(vfs.ops(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn faulted_atomic_write_never_publishes_partial_content() {
        let dir = tmpdir("atomic");
        let path = dir.join("artifact.json");
        let vfs = FaultVfs::new(
            FaultPlan::default()
                .with_event(1, FaultKind::Torn(3))
                .with_event(2, FaultKind::RenameFail)
                .with_event(3, FaultKind::Enospc),
        );
        vfs.write_atomic(&path, b"good").unwrap();
        for _ in 0..3 {
            let _ = vfs.write_atomic(&path, b"evil").unwrap_err();
            assert_eq!(std::fs::read_to_string(&path).unwrap(), "good");
        }
        // No temp-file litter either.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(std::result::Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        // ENOSPC is distinguishable for operators.
        let err = FaultVfs::new(FaultPlan::default().with_event(0, FaultKind::Enospc))
            .write_atomic(&path, b"x")
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stuck_persists_until_heal() {
        let dir = tmpdir("stuck");
        let path = dir.join("a.txt");
        let vfs = FaultVfs::new(
            FaultPlan::default()
                .with_event(1, FaultKind::Stuck)
                .with_event(4, FaultKind::Heal),
        );
        vfs.write_atomic(&path, b"0").unwrap(); // op 0
        let _ = vfs.write_atomic(&path, b"1").unwrap_err(); // op 1: goes stuck
        let _ = vfs.write_atomic(&path, b"2").unwrap_err(); // op 2: still stuck
        let _ = vfs.write_atomic(&path, b"3").unwrap_err(); // op 3: still stuck
        vfs.write_atomic(&path, b"4").unwrap(); // op 4: heal succeeds
        vfs.write_atomic(&path, b"5").unwrap(); // op 5: healthy again
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "5");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
