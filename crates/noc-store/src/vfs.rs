//! The virtual filesystem the persistence paths write through.
//!
//! [`StdVfs`] is the production implementation: whole-file artifacts are
//! written to a temp file, fsync'd, atomically renamed into place, and the
//! containing directory is fsync'd (Linux) so the rename itself is durable.
//! Appends (`*.jsonl` journals) are `write_all` + flush per record.
//!
//! [`crate::FaultVfs`] wraps the same operations with scheduled fault
//! injection; [`active`] picks between them from the `NOC_VFS_FAULT_*`
//! environment knobs once per process.

use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// An open append-only journal handle.
pub trait AppendLog: Send {
    /// Appends `data` (`write_all` + flush). On error the number of bytes
    /// that actually landed is unknown — callers recover with the
    /// newline-resync protocol (see `noc_experiments::sweep::Checkpoint`),
    /// never by blindly re-appending.
    fn append(&mut self, data: &[u8]) -> io::Result<()>;
}

/// The filesystem operations every persistence path goes through.
pub trait Vfs: Send + Sync {
    /// Reads a whole file to a string.
    fn read_to_string(&self, path: &Path) -> io::Result<String>;

    /// Writes a whole-file artifact atomically: temp file in the same
    /// directory, `write_all`, fsync, rename over `path`, directory fsync.
    /// A crash at any point leaves either the old file or the new one —
    /// never a torn hybrid.
    fn write_atomic(&self, path: &Path, data: &[u8]) -> io::Result<()>;

    /// Opens (creating as needed) an append-only journal.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn AppendLog>>;

    /// `std::fs::create_dir_all`.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;

    /// Whether `path` exists.
    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

/// The production [`Vfs`].
#[derive(Clone, Copy, Debug, Default)]
pub struct StdVfs;

/// Unique-per-call temp-file suffix so concurrent atomic writers of the
/// same artifact never collide on the temp name.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// The temp-file path `write_atomic` stages into, visible so fault tests
/// can assert a failed rename left the target untouched.
pub(crate) fn tmp_path(path: &Path) -> PathBuf {
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("artifact");
    let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    path.with_file_name(format!(".{name}.tmp.{}.{seq}", std::process::id()))
}

/// Fsync the directory containing `path` so a just-performed rename is
/// durable (Linux semantics). Errors are reported: an undurable rename is
/// a storage fault, not a detail.
fn fsync_parent(path: &Path) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::File::open(dir)?.sync_all()?;
        }
    }
    Ok(())
}

/// The shared atomic-write sequence, also used by [`crate::FaultVfs`] with
/// fault hooks at the write and rename steps.
pub(crate) fn atomic_write_steps(
    path: &Path,
    data: &[u8],
    write_hook: &dyn Fn(&mut std::fs::File, &[u8]) -> io::Result<()>,
    rename_ok: bool,
) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let tmp = tmp_path(path);
    let staged = (|| -> io::Result<()> {
        let mut f = std::fs::File::create(&tmp)?;
        write_hook(&mut f, data)?;
        f.sync_all()
    })();
    if let Err(e) = staged {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    if !rename_ok {
        let _ = std::fs::remove_file(&tmp);
        return Err(io::Error::other(format!(
            "injected rename failure publishing {}",
            path.display()
        )));
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    fsync_parent(path)
}

struct StdAppend {
    file: std::fs::File,
}

impl AppendLog for StdAppend {
    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        self.file.write_all(data)?;
        self.file.flush()
    }
}

impl Vfs for StdVfs {
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        std::fs::read_to_string(path)
    }

    fn write_atomic(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        atomic_write_steps(path, data, &|f, d| f.write_all(d), true)
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn AppendLog>> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Box::new(StdAppend { file }))
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }
}

/// Bounded retry with capped exponential backoff: attempt `n` (1-based)
/// sleeps `base_ms << (n-1)` before retrying, capped at 64× the base.
/// The write paths use this before escalating a storage failure.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts (including the first).
    pub attempts: u32,
    /// Backoff base in milliseconds.
    pub base_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 3,
            base_ms: 5,
        }
    }
}

impl RetryPolicy {
    /// Runs `op` (receiving the 1-based attempt number) up to
    /// [`RetryPolicy::attempts`] times, sleeping the capped backoff between
    /// attempts. Returns the first success or the last error.
    pub fn run<T>(&self, mut op: impl FnMut(u32) -> io::Result<T>) -> io::Result<T> {
        let attempts = self.attempts.max(1);
        let mut last = None;
        for n in 1..=attempts {
            match op(n) {
                Ok(v) => return Ok(v),
                Err(e) => last = Some(e),
            }
            if n < attempts {
                let factor = 1u64 << (u64::from(n - 1)).min(6); // capped 64x
                std::thread::sleep(std::time::Duration::from_millis(
                    self.base_ms.saturating_mul(factor),
                ));
            }
        }
        Err(last.unwrap_or_else(|| io::Error::other("retry with zero attempts")))
    }
}

/// [`RetryPolicy::run`] with the default policy.
pub fn with_retry<T>(op: impl FnMut(u32) -> io::Result<T>) -> io::Result<T> {
    RetryPolicy::default().run(op)
}

static ACTIVE: OnceLock<Arc<dyn Vfs>> = OnceLock::new();

/// The process-wide [`Vfs`], chosen once from the environment:
/// [`crate::FaultVfs`] when `NOC_VFS_FAULT_SCHEDULE` or
/// `NOC_VFS_FAULT_SEED` is set (binaries validate both eagerly and exit 2
/// on garbage), [`StdVfs`] otherwise. Tests that need a specific fault
/// plan construct their own `FaultVfs` and pass it explicitly instead.
pub fn active() -> Arc<dyn Vfs> {
    Arc::clone(ACTIVE.get_or_init(|| {
        match crate::FaultPlan::from_env(
            std::env::var("NOC_VFS_FAULT_SCHEDULE").ok().as_deref(),
            std::env::var("NOC_VFS_FAULT_SEED").ok().as_deref(),
        ) {
            Ok(Some(plan)) => Arc::new(crate::FaultVfs::new(plan)),
            Ok(None) => Arc::new(StdVfs),
            // Binaries validate eagerly at startup; reaching this panic
            // means a library consumer skipped that gate.
            Err(e) => panic!("invalid storage-fault configuration: {e}"),
        }
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("noc_store_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_temp() {
        let dir = tmpdir("atomic");
        let path = dir.join("artifact.json");
        let vfs = StdVfs;
        vfs.write_atomic(&path, b"first\n").unwrap();
        assert_eq!(vfs.read_to_string(&path).unwrap(), "first\n");
        vfs.write_atomic(&path, b"second\n").unwrap();
        assert_eq!(vfs.read_to_string(&path).unwrap(), "second\n");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(std::result::Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_creates_parent_directories() {
        let dir = tmpdir("parents");
        let path = dir.join("a/b/c.json");
        StdVfs.write_atomic(&path, b"x").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "x");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_log_accumulates_records() {
        let dir = tmpdir("append");
        let path = dir.join("j.jsonl");
        let vfs = StdVfs;
        let mut log = vfs.open_append(&path).unwrap();
        log.append(b"one\n").unwrap();
        log.append(b"two\n").unwrap();
        drop(log);
        // Re-opening appends, never truncates.
        let mut log = vfs.open_append(&path).unwrap();
        log.append(b"three\n").unwrap();
        assert_eq!(vfs.read_to_string(&path).unwrap(), "one\ntwo\nthree\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retry_backs_off_and_surfaces_the_last_error() {
        let policy = RetryPolicy {
            attempts: 3,
            base_ms: 0,
        };
        let mut seen = Vec::new();
        let out = policy.run(|n| {
            seen.push(n);
            if n < 3 {
                Err(io::Error::other(format!("boom {n}")))
            } else {
                Ok(n * 10)
            }
        });
        assert_eq!(out.unwrap(), 30);
        assert_eq!(seen, vec![1, 2, 3]);
        let err = policy
            .run::<()>(|n| Err(io::Error::other(format!("always {n}"))))
            .unwrap_err();
        assert!(err.to_string().contains("always 3"), "{err}");
    }
}
