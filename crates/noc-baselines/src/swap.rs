//! SWAP (Parasar et al., MICRO '19) — subactive deadlock freedom by
//! periodically *swapping* a blocked packet with the packet occupying the
//! downstream buffer it wants. The blocked packet makes guaranteed forward
//! progress; the displaced packet is misrouted one hop backwards and
//! re-routes from its new position. Periodic swaps guarantee any dependency
//! cycle is eventually perturbed away without detection.

use noc_sim::network::Network;
use noc_sim::routing::candidates;
use noc_sim::Mechanism;
use noc_types::{Cycle, NodeId, SchemeKind};

/// The SWAP baseline mechanism.
pub struct SwapMechanism {
    /// Swap timer period (the artifact's `--whenToSwap`, default 1024).
    pub period: Cycle,
    /// How long a head must have been blocked to be eligible.
    pub min_wait: Cycle,
    /// Diagnostics.
    pub swaps_done: u64,
}

impl SwapMechanism {
    pub fn new(period: Cycle) -> SwapMechanism {
        SwapMechanism {
            period,
            min_wait: period / 2,
            swaps_done: 0,
        }
    }

    pub fn for_net(_cfg: &noc_types::NetConfig) -> SwapMechanism {
        SwapMechanism::new(1024)
    }
}

impl Mechanism for SwapMechanism {
    fn kind(&self) -> SchemeKind {
        SchemeKind::Swap
    }

    fn pre_cycle(&mut self, net: &mut Network) {
        let now = net.cycle;
        if now == 0 || !now.is_multiple_of(self.period) {
            return;
        }
        // One swap per router per event, scanning ports/VCs in order.
        let n = net.routers.len();
        for i in 0..n {
            let node = NodeId(i as u16);
            let mut chosen: Option<(usize, usize, NodeId, usize, usize)> = None;
            'scan: for p in 0..net.routers[i].inputs.len() {
                for v in 0..net.routers[i].inputs[p].vcs.len() {
                    let vc = &net.routers[i].inputs[p].vcs[v];
                    let Some(since) = vc.head_wait_since else {
                        continue;
                    };
                    if now.saturating_sub(since) < self.min_wait
                        || !vc.packet_fully_buffered()
                        || vc.route.is_some()
                    {
                        continue;
                    }
                    let front = vc.front().unwrap();
                    let dest = front.dest.to_coord(net.cfg.cols);
                    if dest == net.routers[i].coord {
                        continue; // ejection-blocked; swap cannot help
                    }
                    let algo = if vc.is_escape_resident {
                        noc_types::BaseRouting::WestFirst
                    } else {
                        net.cfg.routing.normal()
                    };
                    let vnet = net.cfg.vnet_of(front.class);
                    let range = net.cfg.vc_range(vnet);
                    for &d in candidates(algo, net.routers[i].coord, dest).as_slice() {
                        let Some(nb) = net.neighbor(node, d) else {
                            continue;
                        };
                        let their_in = d.opposite().index();
                        // Victim: a fully-buffered blocked packet downstream
                        // in the same VNet.
                        for dv in range.clone() {
                            let dvc = &net.routers[nb.idx()].inputs[their_in].vcs[dv];
                            if dvc.packet_fully_buffered()
                                && dvc.route.is_none()
                                && dvc
                                    .front()
                                    .is_some_and(|f| net.cfg.vnet_of(f.class) == vnet)
                            {
                                chosen = Some((p, v, nb, their_in, dv));
                                break 'scan;
                            }
                        }
                    }
                }
            }
            if let Some((p, v, nb, p2, v2)) = chosen {
                // Atomic pairwise exchange.
                let mut a = net.drain_packet(node, p, v);
                let mut b = net.drain_packet(nb, p2, v2);
                let fwd_productive = {
                    let f = &a[0];
                    let before = node
                        .to_coord(net.cfg.cols)
                        .manhattan(f.dest.to_coord(net.cfg.cols));
                    let after = nb
                        .to_coord(net.cfg.cols)
                        .manhattan(f.dest.to_coord(net.cfg.cols));
                    after < before
                };
                for f in &mut a {
                    f.hops = f.hops.saturating_add(1);
                }
                for f in &mut b {
                    f.hops = f.hops.saturating_add(1);
                }
                net.stats.link_flit_hops += (a.len() + b.len()) as u64;
                net.stats.forced_moves += 2;
                if !fwd_productive {
                    net.stats.misroute_hops += a.len() as u64;
                }
                // The displaced packet always misroutes (it moves upstream,
                // away from where it was heading).
                net.stats.misroute_hops += b.len() as u64;
                net.install_packet(nb, p2, v2, a);
                net.install_packet(node, p, v, b);
                self.swaps_done += 1;
                net.stats.recovery_events += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_types::NetConfig;

    #[test]
    fn quiet_network_never_swaps() {
        let cfg = NetConfig::synth(4, 2);
        let mut net = Network::new(cfg.clone());
        let mut swap = SwapMechanism::for_net(&cfg);
        for c in 0..3000 {
            net.cycle = c;
            swap.pre_cycle(&mut net);
        }
        assert_eq!(swap.swaps_done, 0);
    }
}
