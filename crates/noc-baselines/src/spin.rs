//! SPIN (Ramrakhyani et al., ISCA '18) — reactive deadlock recovery via
//! probes and synchronized packet movement.
//!
//! A router whose head packet has been blocked for `dd_thresh` cycles sends
//! a *probe* that walks the packet's dependency chain one hop per cycle on
//! the data links (stealing link bandwidth — this is where SPIN's energy
//! spike and tail-latency damage come from). If the probe returns to its
//! origin VC, a dependency cycle exists; the mechanism then performs a
//! *spin*: every packet on the recorded loop moves simultaneously one hop
//! forward into the buffer it was waiting for. Packets always move in their
//! desired direction, so SPIN never misroutes (Table 1).

use noc_sim::network::Network;
use noc_sim::routing::candidates;
use noc_sim::Mechanism;
use noc_types::{Cycle, Direction, NodeId, PacketId, PortId, SchemeKind};

/// One position in a dependency chain: a blocked packet's VC.
type Slot = (NodeId, PortId, usize);

/// State of the single outstanding probe (the paper serializes recovery with
/// rotating priority among routers; we model one probe at a time).
#[derive(Debug)]
enum ProbeState {
    Idle,
    /// Walking the chain; `path` holds visited slots, front is the origin.
    Walking {
        path: Vec<Slot>,
        started: Cycle,
    },
    /// Cycle found: synchronize for `ready_at`, then rotate the loop.
    Spinning {
        cycle_slots: Vec<Slot>,
        ready_at: Cycle,
    },
}

/// The SPIN baseline mechanism.
pub struct SpinMechanism {
    /// Deadlock-detection timeout (the artifact's `--dd-thresh`, 1024).
    pub dd_thresh: Cycle,
    state: ProbeState,
    /// Rotating scan start (the artifact's `--enable-rotating-priority`).
    scan_from: usize,
    /// Diagnostics.
    pub probes_sent: u64,
    pub spins_done: u64,
}

impl SpinMechanism {
    pub fn new(dd_thresh: Cycle) -> SpinMechanism {
        SpinMechanism {
            dd_thresh,
            state: ProbeState::Idle,
            scan_from: 0,
            probes_sent: 0,
            spins_done: 0,
        }
    }

    pub fn for_net(_cfg: &noc_types::NetConfig) -> SpinMechanism {
        SpinMechanism::new(1024)
    }

    /// Finds a VC whose head has been blocked past the threshold, scanning
    /// from the rotating start position.
    fn find_timed_out(&mut self, net: &Network) -> Option<Slot> {
        let n = net.routers.len();
        let now = net.cycle;
        for k in 0..n {
            let i = (self.scan_from + k) % n;
            let r = &net.routers[i];
            for p in 0..r.inputs.len() {
                for (v, vc) in r.inputs[p].vcs.iter().enumerate() {
                    let Some(since) = vc.head_wait_since else {
                        continue;
                    };
                    if now.saturating_sub(since) >= self.dd_thresh
                        && vc.packet_fully_buffered()
                        && vc.route.is_none()
                    {
                        self.scan_from = (i + 1) % n;
                        return Some((NodeId(i as u16), p, v));
                    }
                }
            }
        }
        None
    }

    /// One probe step: extend the chain from its last slot. Returns
    /// `Ok(true)` if a cycle closed, `Ok(false)` to keep walking, `Err(())`
    /// if the chain broke (no deadlock).
    fn extend_chain(net: &Network, path: &mut Vec<Slot>) -> Result<bool, ()> {
        let &(node, port, vc) = path.last().unwrap();
        let r = &net.routers[node.idx()];
        let v = &r.inputs[port].vcs[vc];
        let Some(front) = v.front() else {
            return Err(()); // packet moved; chain broken
        };
        if !front.kind.is_head() || v.route.is_some() {
            return Err(());
        }
        let dest = front.dest.to_coord(net.cfg.cols);
        if dest == r.coord {
            return Err(()); // waits on ejection, always drains
        }
        let algo = if v.is_escape_resident {
            noc_types::BaseRouting::WestFirst
        } else {
            net.cfg.routing.normal()
        };
        let vnet = net.cfg.vnet_of(front.class);
        let range = net.cfg.vc_range(vnet);
        // Follow the first desired direction whose downstream VCs (in this
        // VNet) are all occupied by blocked packets; the chain continues at
        // the longest-blocked of them.
        for &d in candidates(algo, r.coord, dest).as_slice() {
            let Some(nb) = net.neighbor(node, d) else {
                continue;
            };
            let their_in = d.opposite().index();
            let down = &net.routers[nb.idx()].inputs[their_in];
            let mut best: Option<(Cycle, usize)> = None;
            let mut all_occupied = true;
            for dv in range.clone() {
                let dvc = &down.vcs[dv];
                if dvc.is_free() {
                    all_occupied = false;
                    break;
                }
                if dvc.packet_fully_buffered() && dvc.route.is_none() {
                    let since = dvc.head_wait_since.unwrap_or(u64::MAX);
                    if best.is_none_or(|(b, _)| since < b) {
                        best = Some((since, dv));
                    }
                }
            }
            if !all_occupied {
                continue; // this direction has room; packet just lost SA
            }
            let Some((_, dv)) = best else {
                return Err(()); // occupied but by moving packets: transient
            };
            let next = (nb, their_in, dv);
            if let Some(pos) = path.iter().position(|s| *s == next) {
                // Cycle closed: keep only the loop.
                path.drain(..pos);
                return Ok(true);
            }
            path.push(next);
            return Ok(false);
        }
        Err(())
    }

    /// Executes the synchronized spin: every packet in the loop moves into
    /// the next slot (the buffer it was waiting for). The shift is a
    /// permutation along the loop, so it always succeeds if the loop is
    /// still intact; any disturbance aborts (a normal move already broke the
    /// deadlock).
    fn do_spin(net: &mut Network, slots: &[Slot]) -> bool {
        // Validate: every slot still holds a fully-buffered blocked packet.
        for &(n, p, v) in slots {
            let vc = &net.routers[n.idx()].inputs[p].vcs[v];
            if !vc.packet_fully_buffered() || vc.route.is_some() {
                return false;
            }
        }
        let k = slots.len();
        let mut packets = Vec::with_capacity(k);
        for &(n, p, v) in slots {
            packets.push(net.drain_packet(n, p, v));
        }
        let now = net.cycle;
        for i in 0..k {
            let (n2, p2, v2) = slots[(i + 1) % k];
            let mut flits = std::mem::take(&mut packets[i]);
            for f in &mut flits {
                f.hops = f.hops.saturating_add(1);
            }
            net.stats.link_flit_hops += flits.len() as u64;
            net.stats.forced_moves += 1;
            // All slots were just vacated, so installation cannot fail on
            // occupancy; upstream claims cannot exist for fully-buffered
            // packets' VCs... except the upstream may have *just* allocated
            // the vacated VC — in that case we abort that single move by
            // putting the packet back (its own slot is free).
            if net.vc_installable(n2, p2, v2) {
                net.install_packet(n2, p2, v2, flits);
            } else {
                let (n1, p1, v1) = slots[i];
                net.install_packet(n1, p1, v1, flits);
            }
            let _ = now;
        }
        true
    }
}

impl Mechanism for SpinMechanism {
    fn kind(&self) -> SchemeKind {
        SchemeKind::Spin
    }

    fn pre_cycle(&mut self, net: &mut Network) {
        let now = net.cycle;
        match std::mem::replace(&mut self.state, ProbeState::Idle) {
            ProbeState::Idle => {
                if let Some(origin) = self.find_timed_out(net) {
                    self.probes_sent += 1;
                    net.stats.recovery_events += 1;
                    self.state = ProbeState::Walking {
                        path: vec![origin],
                        started: now,
                    };
                }
            }
            ProbeState::Walking { mut path, started } => {
                // One chain hop per cycle, riding the data links with
                // priority (reserve the slot so SA yields — the probe's
                // bandwidth theft).
                net.stats.count_probe_hop(now);
                if let Some(&(n, _, _)) = path.last() {
                    // Reserve an arbitrary cardinal output of the current
                    // router for this cycle to model the stolen slot.
                    let port = Direction::East.index();
                    if !net.reservations.is_reserved(n, port, now) {
                        net.reservations.reserve(n, port, now, now);
                    }
                }
                match Self::extend_chain(net, &mut path) {
                    Ok(true) => {
                        // Synchronization takes one more round trip over the
                        // loop before the atomic move.
                        let ready_at = now + path.len() as Cycle;
                        self.state = ProbeState::Spinning {
                            cycle_slots: path,
                            ready_at,
                        };
                    }
                    Ok(false) => {
                        // Give up on absurdly long walks (the artifact's
                        // max-turn-capacity); the timeout will refire.
                        if now - started > 4 * net.routers.len() as Cycle {
                            self.state = ProbeState::Idle;
                        } else {
                            self.state = ProbeState::Walking { path, started };
                        }
                    }
                    Err(()) => self.state = ProbeState::Idle,
                }
            }
            ProbeState::Spinning {
                cycle_slots,
                ready_at,
            } => {
                if now < ready_at {
                    // Coordination traffic occupies the loop's links.
                    net.stats.count_probe_hop(now);
                    self.state = ProbeState::Spinning {
                        cycle_slots,
                        ready_at,
                    };
                } else {
                    if Self::do_spin(net, &cycle_slots) {
                        self.spins_done += 1;
                    }
                    self.state = ProbeState::Idle;
                }
            }
        }
    }

    fn on_recovery_drain(&mut self, _net: &mut Network, _victim: PacketId) {
        // The drained victim may sit on the probe's recorded chain. The
        // validation in `extend_chain` / `do_spin` would catch the ghost
        // slot and abort, but the walk itself is stolen link bandwidth —
        // restart from Idle and let the timeout refire if a cycle remains.
        self.state = ProbeState::Idle;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_types::NetConfig;

    #[test]
    fn idle_network_sends_no_probes() {
        let cfg = NetConfig::synth(4, 2);
        let mut net = Network::new(cfg.clone());
        let mut spin = SpinMechanism::for_net(&cfg);
        for _ in 0..10 {
            net.cycle += 1;
            spin.pre_cycle(&mut net);
        }
        assert_eq!(spin.probes_sent, 0);
    }
}
