//! Baseline deadlock-freedom and flow-control schemes the paper compares
//! SEEC against (Table 4):
//!
//! * **Turn models** — XY and West-first are routing algorithms in
//!   `noc-sim`; no mechanism object needed ([`noc_sim::NoMechanism`]).
//! * **Escape VC** (Duato) — also built into the router
//!   (`RoutingAlgo::EscapeVc`); [`escape::escape_vc_config`] builds the
//!   canonical configuration.
//! * **TFC** — token flow control, [`tfc::TfcMechanism`].
//! * **SPIN** — reactive probe-based synchronized progress,
//!   [`spin::SpinMechanism`].
//! * **SWAP** — subactive pairwise packet swaps, [`swap::SwapMechanism`].
//! * **DRAIN** — subactive network-wide ring drains,
//!   [`drain::DrainMechanism`].
//! * **`MinBD` / CHIPPER** — bufferless deflection routers, a separate
//!   network model: [`deflect::DeflectionSim`].

#![forbid(unsafe_code)]

pub mod deflect;
pub mod drain;
pub mod escape;
pub mod spin;
pub mod swap;
pub mod tfc;

pub use deflect::{DeflectionKind, DeflectionSim};
pub use drain::DrainMechanism;
pub use escape::escape_vc_config;
pub use spin::SpinMechanism;
pub use swap::SwapMechanism;
pub use tfc::TfcMechanism;
