//! Token Flow Control (TFC, Kumar et al. MICRO '08) — approximated.
//!
//! TFC broadcasts *tokens* (hints of buffer availability) so flits can
//! bypass the router pipeline and buffers along token-held paths. The SEEC
//! paper's own footnote 4 notes that against an optimized 1-cycle router —
//! which is exactly what this simulator models — TFC shows *no* low-load
//! latency improvement, because there is no pipeline left to skip. What
//! remains of TFC at this design point is (a) west-first routing for
//! deadlock freedom and (b) buffer read/write *energy* savings on bypassed
//! hops. We model exactly that: the mechanism tracks which outputs hold
//! tokens (≥ 2 free downstream VCs, refreshed each cycle with a one-cycle
//! lag like real token propagation) and counts flits that would have
//! traversed bufferlessly; the energy model credits them.

use noc_sim::network::Network;
use noc_sim::Mechanism;
use noc_types::{Direction, SchemeKind, NUM_PORTS};

/// Free downstream VCs needed before a token is advertised (the paper's TFC
/// uses a buffer-occupancy margin so in-flight flits cannot overrun).
pub const TOKEN_THRESHOLD: usize = 2;

/// The TFC baseline mechanism. Use with
/// `RoutingAlgo::Uniform(BaseRouting::WestFirst)`.
pub struct TfcMechanism {
    /// Token state per (router, output port), lagged one cycle.
    tokens: Vec<[bool; NUM_PORTS]>,
    /// Diagnostics: flits that traversed a token-held hop (bypassed buffers).
    pub bypassed_flits: u64,
}

impl TfcMechanism {
    pub fn new(num_nodes: usize) -> TfcMechanism {
        TfcMechanism {
            tokens: vec![[false; NUM_PORTS]; num_nodes],
            bypassed_flits: 0,
        }
    }

    pub fn for_net(cfg: &noc_types::NetConfig) -> TfcMechanism {
        TfcMechanism::new(cfg.num_nodes())
    }
}

impl Mechanism for TfcMechanism {
    fn kind(&self) -> SchemeKind {
        SchemeKind::Tfc
    }

    fn post_cycle(&mut self, net: &mut Network) {
        let now = net.cycle;
        let hop = net.hop_latency();
        let sent_at = now + hop;
        // Refresh token state from this cycle's credit snapshot.
        for (i, tokens) in self.tokens.iter_mut().enumerate() {
            for (p, t) in tokens.iter_mut().enumerate() {
                *t = net.credits.free_count(i, p) >= TOKEN_THRESHOLD;
            }
        }
        // Flits just sent toward token-holding routers traverse them
        // bufferlessly. With multi-cycle routers the bypass also skips the
        // pipeline: the flit is re-timed to arrive after the link plus a
        // single latch (footnote 4: against a 1-cycle router there is
        // nothing left to skip, so only the energy credit remains).
        let mut bypasses = 0;
        let bypass_arrival = now + 2; // link + latch
        for (j, inbox) in net.inbox_router.iter_mut().enumerate() {
            let tokens = &self.tokens[j];
            // Flits just sent arrive exactly at `sent_at`, so only that
            // bucket of the wheel needs visiting.
            inbox.retime_due_at(sent_at, |&(port, flit)| {
                if port == Direction::Local.index() || !tokens.iter().take(4).any(|&t| t) {
                    return None;
                }
                bypasses += 1;
                // Only heads may be accelerated (re-timing a body flit past
                // its head would break FIFO arrival within a VC).
                if flit.kind.is_head() && bypass_arrival < sent_at {
                    Some(bypass_arrival)
                } else {
                    None
                }
            });
        }
        self.bypassed_flits += bypasses;
        net.stats.tfc_bypasses += bypasses;
    }

    /// TFC only reads the snapshot and re-times in-flight flits; it never
    /// touches buffers, claims or ejection VCs. Arrivals mark their own
    /// routers dirty when the re-timed flits land.
    fn touches_credits(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_types::NetConfig;

    #[test]
    fn tokens_start_cleared_and_set_from_snapshot() {
        let cfg = NetConfig::synth(4, 4);
        let mut net = Network::new(cfg.clone());
        let mut tfc = TfcMechanism::for_net(&cfg);
        assert!(!tfc.tokens[0][2]);
        // Simulate the engine's snapshot having been refreshed: mark all
        // east VCs of router 0 free.
        for v in 0..cfg.vcs_per_port() {
            net.credits.set_free(0, 2, v, true);
        }
        tfc.post_cycle(&mut net);
        assert!(tfc.tokens[0][2]);
        assert!(!tfc.tokens[0][3], "edge port should never hold a token");
    }
}
