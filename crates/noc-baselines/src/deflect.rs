//! Bufferless deflection networks: CHIPPER (Fallin et al., HPCA '11) and
//! `MinBD` (Fallin et al., NOCS '12).
//!
//! A different router microarchitecture from the VC design: flits never wait
//! for credits. Each cycle, all flits present at a router are permuted onto
//! output ports — productive if possible, *deflected* otherwise. `MinBD` adds
//! a small side buffer that absorbs one would-be-deflected flit per cycle
//! and re-injects it when the router has a spare slot, cutting the
//! deflection rate. Livelock freedom comes from oldest-first priority (a
//! simplification of CHIPPER's golden-packet scheme with the same effect at
//! the loads we evaluate; see DESIGN.md). Flits route independently and are
//! reassembled at the destination NIC.

use noc_sim::network::{NocModel, HOP_LATENCY};
use noc_sim::stats::{DeliveredPacket, Stats};
use noc_sim::workload::Workload;
use noc_types::{Coord, Cycle, Direction, Flit, NetConfig, NodeId, PacketId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Which deflection design to model.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeflectionKind {
    /// Pure bufferless (CHIPPER).
    Chipper,
    /// Minimally-buffered: 4-flit side buffer per router.
    MinBd,
}

/// Per-destination packet reassembly slot.
#[derive(Clone, Debug)]
struct Reassembly {
    received: u8,
    head: Flit,
    max_hops: u8,
}

/// A deflection-network simulation (router + workload), driven via
/// [`NocModel`].
pub struct DeflectionSim {
    pub cfg: NetConfig,
    pub kind: DeflectionKind,
    pub cycle: Cycle,
    pub stats: Stats,
    workload: Box<dyn Workload>,
    rng: SmallRng,
    /// Flits in flight toward each router: `(arrival, flit)`.
    inflight: Vec<Vec<(Cycle, Flit)>>,
    /// `MinBD` side buffers.
    side: Vec<Vec<Flit>>,
    /// Per-node flit injection queues (packets are flitized on entry).
    inj: Vec<Vec<Flit>>,
    /// Per-node reassembly state.
    reasm: Vec<HashMap<PacketId, Reassembly>>,
    /// Ejected flits per node per cycle.
    eject_bw: usize,
    /// `MinBD` side-buffer capacity.
    side_cap: usize,
}

impl DeflectionSim {
    pub fn new(cfg: NetConfig, kind: DeflectionKind, workload: Box<dyn Workload>) -> Self {
        let n = cfg.num_nodes();
        let rng = SmallRng::seed_from_u64(cfg.seed ^ 0xDEF1EC7);
        let mut stats = Stats::default();
        stats.measure_start = cfg.warmup;
        DeflectionSim {
            kind,
            cycle: 0,
            stats,
            workload,
            rng,
            inflight: vec![Vec::new(); n],
            side: vec![Vec::new(); n],
            inj: vec![Vec::new(); n],
            reasm: vec![HashMap::new(); n],
            eject_bw: 1,
            side_cap: 4,
            cfg,
        }
    }

    fn coord(&self, n: usize) -> Coord {
        NodeId(n as u16).to_coord(self.cfg.cols)
    }

    /// Valid output directions at `c` (on-mesh only).
    fn valid_dirs(&self, c: Coord) -> Vec<Direction> {
        Direction::CARDINAL
            .iter()
            .copied()
            .filter(|d| d.step(c, self.cfg.cols, self.cfg.rows).is_some())
            .collect()
    }

    fn deliver_flit(&mut self, node: usize, flit: Flit, now: Cycle) {
        let entry = self.reasm[node]
            .entry(flit.packet)
            .or_insert_with(|| Reassembly {
                received: 0,
                head: flit,
                max_hops: 0,
            });
        entry.received += 1;
        entry.max_hops = entry.max_hops.max(flit.hops);
        if entry.received as usize == flit.len as usize {
            let r = self.reasm[node].remove(&flit.packet).unwrap();
            let d = DeliveredPacket {
                id: r.head.packet,
                src: r.head.src,
                dest: r.head.dest,
                class: r.head.class,
                len_flits: r.head.len,
                birth: r.head.birth,
                inject: r.head.inject,
                eject: now,
                hops: r.max_hops,
                ff_upgrade: None,
                measured: r.head.measured,
            };
            // Deflection networks in the paper run open-loop synthetic
            // traffic; consumption is unconditional.
            let _ = self.workload.deliver(now, &d);
            self.stats.record_delivery(&d);
        }
    }

    fn step_once(&mut self) {
        let now = self.cycle;
        if now == self.cfg.warmup {
            self.stats.measure_start = now;
        }
        let n = self.cfg.num_nodes();

        // Traffic generation: flitize packets straight into inj queues.
        {
            let mut new_pkts: Vec<(NodeId, noc_types::Packet)> = Vec::new();
            self.workload.generate(now, &mut |node, pkt| {
                new_pkts.push((node, pkt));
            });
            for (node, pkt) in new_pkts {
                if pkt.measured {
                    self.stats.generated_packets += 1;
                }
                for s in 0..pkt.len_flits {
                    self.inj[node.idx()].push(Flit::from_packet(&pkt, s, 0));
                }
            }
        }

        for i in 0..n {
            let c = self.coord(i);
            // Arrivals due now.
            let mut contenders: Vec<Flit> = Vec::new();
            let inbox = &mut self.inflight[i];
            let mut k = 0;
            while k < inbox.len() {
                if inbox[k].0 <= now {
                    contenders.push(inbox.swap_remove(k).1);
                } else {
                    k += 1;
                }
            }

            // Ejection (up to eject_bw flits destined here).
            let mut ejected = 0;
            let mut kept: Vec<Flit> = Vec::with_capacity(contenders.len());
            // Oldest first so reassembly drains in order.
            contenders.sort_by_key(|f| (f.inject, f.packet.0, f.seq));
            for f in contenders {
                if ejected < self.eject_bw && f.dest.idx() == i {
                    self.deliver_flit(i, f, now);
                    ejected += 1;
                } else {
                    kept.push(f);
                }
            }
            let mut contenders = kept;
            let degree = self.valid_dirs(c).len();

            // MinBD: re-inject one side-buffered flit if there is headroom.
            if self.kind == DeflectionKind::MinBd
                && contenders.len() < degree
                && !self.side[i].is_empty()
            {
                contenders.push(self.side[i].remove(0));
            }

            // Injection: one new flit if a slot remains.
            if contenders.len() < degree && !self.inj[i].is_empty() {
                let mut f = self.inj[i].remove(0);
                f.inject = now;
                self.stats.record_injected_flit(&f);
                contenders.push(f);
            }

            // MinBD: if more contenders than ports minus one would force
            // deflections, absorb one into the side buffer.
            if self.kind == DeflectionKind::MinBd
                && contenders.len() > 1
                && self.side[i].len() < self.side_cap
            {
                // Buffer the *youngest* flit (oldest keep moving — age
                // priority preserves livelock freedom).
                let will_deflect = contenders.iter().filter(|f| f.dest.idx() != i).count()
                    > degree.saturating_sub(1);
                if will_deflect {
                    let f = contenders.pop().unwrap();
                    self.side[i].push(f);
                    self.stats.buffer_writes += 1;
                }
            }

            // Permutation: oldest first takes a productive port if free.
            debug_assert!(contenders.len() <= degree, "router oversubscribed");
            let mut port_taken = [false; 4]; // indexed by Direction::index()
            for mut f in contenders {
                let dest = f.dest.to_coord(self.cfg.cols);
                let productive = noc_sim::routing::productive(c, dest);
                let mut pick: Option<Direction> = None;
                for &d in productive.as_slice() {
                    if d.step(c, self.cfg.cols, self.cfg.rows).is_some() && !port_taken[d.index()] {
                        pick = Some(d);
                        break;
                    }
                }
                let deflected = pick.is_none();
                if pick.is_none() {
                    // Deflect: random free valid port.
                    let free: Vec<Direction> = self
                        .valid_dirs(c)
                        .into_iter()
                        .filter(|d| !port_taken[d.index()])
                        .collect();
                    debug_assert!(!free.is_empty());
                    pick = Some(free[self.rng.gen_range(0..free.len())]);
                }
                let d = pick.unwrap();
                port_taken[d.index()] = true;
                let nb = d.step(c, self.cfg.cols, self.cfg.rows).unwrap();
                f.hops = f.hops.saturating_add(1);
                self.stats
                    .count_link_hop_at(now, NodeId(i as u16), d.index());
                if deflected {
                    self.stats.misroute_hops += 1;
                }
                self.inflight[nb.to_node(self.cfg.cols).idx()].push((now + HOP_LATENCY, f));
            }
        }
        self.cycle += 1;
    }

    /// Flits currently anywhere in the network (diagnostics).
    pub fn flits_in_network(&self) -> usize {
        self.inflight.iter().map(Vec::len).sum::<usize>()
            + self.side.iter().map(Vec::len).sum::<usize>()
    }
}

impl NocModel for DeflectionSim {
    fn tick(&mut self) {
        self.step_once();
    }

    fn now(&self) -> Cycle {
        self.cycle
    }

    fn stats(&self) -> &Stats {
        &self.stats
    }

    fn finalize(&mut self) -> Stats {
        let c = self.cycle;
        self.stats.finish(c);
        self.stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::network::NocModel;
    use noc_traffic::{SyntheticWorkload, TrafficPattern};

    fn sim(kind: DeflectionKind, rate: f64, seed: u64) -> DeflectionSim {
        let cfg = NetConfig::synth(4, 1).with_seed(seed);
        let wl =
            SyntheticWorkload::new(TrafficPattern::UniformRandom, rate, 4, 4, cfg.warmup, seed);
        DeflectionSim::new(cfg, kind, Box::new(wl))
    }

    #[test]
    fn chipper_delivers_at_low_load() {
        let mut s = sim(DeflectionKind::Chipper, 0.02, 3);
        s.run_for(20_000);
        let st = s.finalize();
        assert!(st.ejected_packets > 0);
        assert!(
            st.ejected_packets as f64 >= 0.95 * st.injected_packets as f64,
            "ejected {} of {}",
            st.ejected_packets,
            st.injected_packets
        );
    }

    #[test]
    fn minbd_deflects_less_than_chipper() {
        let mut a = sim(DeflectionKind::Chipper, 0.10, 5);
        a.run_for(20_000);
        let sa = a.finalize();
        let mut b = sim(DeflectionKind::MinBd, 0.10, 5);
        b.run_for(20_000);
        let sb = b.finalize();
        assert!(sa.misroute_hops > 0, "chipper never deflected at 10% load?");
        let ra = sa.misroute_hops as f64 / sa.link_flit_hops.max(1) as f64;
        let rb = sb.misroute_hops as f64 / sb.link_flit_hops.max(1) as f64;
        assert!(rb < ra, "minBD deflection rate {rb} !< chipper {ra}");
    }

    #[test]
    fn deflection_never_loses_flits() {
        let mut s = sim(DeflectionKind::MinBd, 0.15, 7);
        s.run_for(30_000);
        // Everything injected is either delivered or still in the network.
        let inflight = s.flits_in_network() as u64;
        let reasm: u64 = s
            .reasm
            .iter()
            .map(|m| m.values().map(|r| r.received as u64).sum::<u64>())
            .sum();
        let st = s.finalize();
        // Measured flits still travelling are a subset of everything inside.
        assert!(
            st.injected_flits - st.ejected_flits <= inflight + reasm,
            "flit conservation violated: {} injected, {} ejected, {} inside",
            st.injected_flits,
            st.ejected_flits,
            inflight + reasm
        );
    }
}
