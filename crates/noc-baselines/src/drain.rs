//! DRAIN (Parasar et al., HPCA '20) — subactive deadlock freedom via
//! periodic network-wide packet movement along an embedded Hamiltonian ring.
//!
//! Every `period` cycles (the artifact's `--spin-freq=1024`), a *drain
//! event* moves blocked packets one hop along the ring, obliviously — i.e.
//! regardless of where they want to go. Any routing-dependency cycle is
//! perturbed, so deadlocks dissolve without detection; the cost is periodic
//! misrouting, which shows up as DRAIN's elevated link energy and the worst
//! tail latency in the paper's Figs 11 and 15.

use noc_sim::network::Network;
use noc_sim::Mechanism;
use noc_types::{Cycle, Flit, NodeId, SchemeKind, NUM_PORTS};
use seec_ring::ring_successors;

/// Ring construction shared with the seec crate's seeker path concept but
/// kept dependency-free: boustrophedon successor mapping.
mod seec_ring {
    use noc_types::{Coord, NodeId};

    /// For each node, its successor along a Hamiltonian-ish ring (snake plus
    /// wrap through the first column).
    pub fn ring_successors(cols: u8, rows: u8) -> Vec<NodeId> {
        let n = cols as usize * rows as usize;
        let mut order = Vec::with_capacity(n);
        for y in 0..rows {
            if y % 2 == 0 {
                for x in 0..cols {
                    order.push(Coord::new(x, y).to_node(cols));
                }
            } else {
                for x in (0..cols).rev() {
                    order.push(Coord::new(x, y).to_node(cols));
                }
            }
        }
        let mut succ = vec![NodeId(0); n];
        for i in 0..n {
            succ[order[i].idx()] = order[(i + 1) % n];
        }
        succ
    }
}

/// The DRAIN baseline mechanism.
pub struct DrainMechanism {
    /// Drain period in cycles (`--spin-freq`).
    pub period: Cycle,
    /// Ring shifts per drain event (`--spin-mult`).
    pub shifts: u32,
    succ: Vec<NodeId>,
    /// Diagnostics.
    pub drains_done: u64,
    pub packets_moved: u64,
}

impl DrainMechanism {
    pub fn new(cols: u8, rows: u8, period: Cycle, shifts: u32) -> DrainMechanism {
        DrainMechanism {
            period,
            shifts,
            succ: ring_successors(cols, rows),
            drains_done: 0,
            packets_moved: 0,
        }
    }

    pub fn for_net(cfg: &noc_types::NetConfig) -> DrainMechanism {
        DrainMechanism::new(cfg.cols, cfg.rows, 1024, 1)
    }

    /// One synchronized ring shift: every *blocked, fully-buffered* packet
    /// is pulled out of its VC and re-installed at its router's ring
    /// successor. Packets that cannot be placed (successor full) return to
    /// their original slot — the network-wide vacate-then-place models
    /// DRAIN's lock-step circular movement.
    fn shift_once(&mut self, net: &mut Network) {
        let cols = net.cfg.cols;
        // Vacate.
        let mut staged: Vec<(NodeId, usize, usize, Vec<Flit>)> = Vec::new();
        for i in 0..net.routers.len() {
            let node = NodeId(i as u16);
            for p in 0..NUM_PORTS {
                for v in 0..net.routers[i].inputs[p].vcs.len() {
                    let vc = &net.routers[i].inputs[p].vcs[v];
                    if vc.packet_fully_buffered() && vc.route.is_none() {
                        let flits = net.drain_packet(node, p, v);
                        staged.push((node, p, v, flits));
                    }
                }
            }
        }
        // Place at successors. Placement cascades: successor first; packets
        // that do not fit stay at their own router; as a last resort (their
        // own slots stolen by predecessors' packets) any free slot in the
        // network takes them — guaranteed to exist because exactly as many
        // slots were vacated as packets staged.
        let mut unplaced: Vec<(NodeId, Vec<Flit>)> = Vec::new();
        for (node, _p, _v, flits) in staged {
            let to = self.succ[node.idx()];
            let productive = {
                let dest = flits[0].dest.to_coord(cols);
                to.to_coord(cols).manhattan(dest) < node.to_coord(cols).manhattan(dest)
            };
            match install_anywhere_at(net, to, flits, true) {
                Ok(len) => {
                    net.stats.link_flit_hops += len as u64;
                    if !productive {
                        // Oblivious ring moves usually point away from the
                        // destination — DRAIN's misroute cost.
                        net.stats.misroute_hops += len as u64;
                    }
                    net.stats.forced_moves += 1;
                    self.packets_moved += 1;
                }
                Err(flits) => unplaced.push((node, flits)),
            }
        }
        for (node, flits) in std::mem::take(&mut unplaced) {
            match install_anywhere_at(net, node, flits, false) {
                Ok(_) => {} // stayed home: no movement, no energy
                Err(flits) => unplaced.push((node, flits)),
            }
        }
        for (_, flits) in unplaced {
            let placed = (0..net.routers.len() as u16)
                .find_map(|r| install_anywhere_at(net, NodeId(r), flits.clone(), true).ok());
            assert!(
                placed.is_some(),
                "drain: no free slot anywhere despite vacating one per packet"
            );
            net.stats.forced_moves += 1;
        }
    }
}

/// Tries every input port/VC of `node` within the packet's `VNet`; installs
/// and returns the flit count, or hands the flits back on failure.
fn install_anywhere_at(
    net: &mut Network,
    node: NodeId,
    flits: Vec<Flit>,
    count_hop: bool,
) -> Result<usize, Vec<Flit>> {
    let vnet = net.cfg.vnet_of(flits[0].class);
    let range = net.cfg.vc_range(vnet);
    for p in 0..NUM_PORTS {
        for v in range.clone() {
            if net.vc_installable(node, p, v) {
                let len = flits.len();
                let mut fl = flits;
                if count_hop {
                    for f in &mut fl {
                        f.hops = f.hops.saturating_add(1);
                    }
                }
                net.install_packet(node, p, v, fl);
                return Ok(len);
            }
        }
    }
    Err(flits)
}

impl Mechanism for DrainMechanism {
    fn kind(&self) -> SchemeKind {
        SchemeKind::Drain
    }

    fn pre_cycle(&mut self, net: &mut Network) {
        let now = net.cycle;
        if now == 0 || !now.is_multiple_of(self.period) {
            return;
        }
        self.drains_done += 1;
        net.stats.recovery_events += 1;
        for _ in 0..self.shifts {
            self.shift_once(net);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_types::{Coord, NetConfig};

    #[test]
    fn ring_successors_form_one_cycle() {
        for (c, r) in [(4u8, 4u8), (8, 8), (3, 3)] {
            let succ = ring_successors(c, r);
            let n = c as usize * r as usize;
            let mut cur = NodeId(0);
            let mut seen = vec![false; n];
            for _ in 0..n {
                assert!(!seen[cur.idx()], "{c}x{r}: ring revisits {cur}");
                seen[cur.idx()] = true;
                cur = succ[cur.idx()];
            }
            assert_eq!(cur, NodeId(0), "{c}x{r}: ring does not close");
        }
    }

    #[test]
    fn successors_are_adjacent_except_wrap() {
        // Snake successors are mesh neighbours except the single wrap edge;
        // DRAIN treats the wrap as a multi-hop move, which we charge as one
        // (conservative for energy, irrelevant for correctness).
        let succ = ring_successors(4, 4);
        let mut non_adjacent = 0;
        for i in 0..16u16 {
            let a = NodeId(i).to_coord(4);
            let b = succ[i as usize].to_coord(4);
            if a.manhattan(b) != 1 {
                non_adjacent += 1;
                assert_eq!(b, Coord::new(0, 0), "only the wrap edge may jump");
            }
        }
        assert_eq!(non_adjacent, 1);
    }

    #[test]
    fn quiet_network_drains_nothing() {
        let cfg = NetConfig::synth(4, 2);
        let mut net = Network::new(cfg.clone());
        let mut drain = DrainMechanism::for_net(&cfg);
        for c in 0..4096 {
            net.cycle = c;
            drain.pre_cycle(&mut net);
        }
        assert!(drain.drains_done >= 3);
        assert_eq!(drain.packets_moved, 0);
    }
}
