//! The Escape-VC (Duato) baseline.
//!
//! The router support lives in `noc-sim` (`RoutingAlgo::EscapeVc`): the last
//! VC of every `VNet` routes west-first and packets that enter it stay in
//! escape VCs until ejection; all other VCs use fully-adaptive (or oblivious)
//! minimal random routing — exactly the paper's `Escape VC (P, Fully
//! adaptive random in regular VC, West-first in Esc VC)` configuration.
//! This module provides the canonical configuration builder used by the
//! experiments.

use noc_types::{BaseRouting, NetConfig, RoutingAlgo};

/// Builds the paper's Escape-VC configuration on top of `base`: `normal`
/// routing in the regular VCs, west-first in the per-VNet escape VC.
///
/// Note the paper's area comparison gives Escape VC 7 VCs (1 per `VNet` + 1
/// shared adaptive): here the escape VC is carved out of the configured
/// per-VNet VC count, so callers wanting "n adaptive VCs + 1 escape" should
/// configure `n + 1` VCs per `VNet`.
pub fn escape_vc_config(mut base: NetConfig, normal: BaseRouting) -> NetConfig {
    assert!(
        base.vcs_per_vnet >= 2,
        "escape VC needs at least 2 VCs per VNet (1 normal + 1 escape)"
    );
    base.routing = RoutingAlgo::EscapeVc { normal };
    base
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_marks_last_vc_as_escape() {
        let cfg = escape_vc_config(NetConfig::synth(8, 4), BaseRouting::AdaptiveMinimal);
        assert_eq!(cfg.escape_vc(0), Some(3));
        assert_eq!(cfg.routing.normal(), BaseRouting::AdaptiveMinimal);
        assert!(cfg.routing.has_escape());
    }

    #[test]
    #[should_panic(expected = "at least 2 VCs")]
    fn single_vc_cannot_host_escape() {
        escape_vc_config(NetConfig::synth(8, 1), BaseRouting::AdaptiveMinimal);
    }
}
