//! Deflection-network behaviour: livelock freedom under stress, reassembly
//! correctness, and the MinBD-vs-CHIPPER ordering the paper relies on.

use noc_baselines::{DeflectionKind, DeflectionSim};
use noc_sim::network::NocModel;
use noc_traffic::{SyntheticWorkload, TrafficPattern};
use noc_types::NetConfig;

fn sim(kind: DeflectionKind, k: u8, rate: f64, seed: u64) -> DeflectionSim {
    let cfg = NetConfig::synth(k, 1).with_seed(seed);
    let wl = SyntheticWorkload::new(TrafficPattern::UniformRandom, rate, k, k, cfg.warmup, seed);
    DeflectionSim::new(cfg, kind, Box::new(wl))
}

/// Oldest-first priority keeps the network livelock-free: even past
/// saturation, deliveries continue steadily.
#[test]
fn deflection_is_livelock_free_past_saturation() {
    for kind in [DeflectionKind::Chipper, DeflectionKind::MinBd] {
        let mut s = sim(kind, 4, 0.40, 3);
        let mut last = 0;
        for block in 1..=10 {
            s.run_for(3_000);
            let now = s.stats.ejected_packets_all;
            assert!(
                now > last,
                "{kind:?}: no deliveries in block {block} ({now} total)"
            );
            last = now;
        }
    }
}

/// Multi-flit packets reassemble exactly once each, with no flit loss, even
/// though flits route independently and arrive out of order.
#[test]
fn reassembly_delivers_every_packet_exactly_once() {
    let mut s = sim(DeflectionKind::Chipper, 4, 0.05, 9);
    s.run_for(30_000);
    let st = s.finalize();
    assert!(st.injected_packets > 500);
    // At 5% load the pipe drains: essentially everything injected arrives.
    assert!(
        st.ejected_packets as f64 >= 0.97 * st.injected_packets as f64,
        "{} of {}",
        st.ejected_packets,
        st.injected_packets
    );
    // Flit-level conservation: ejected flits ≤ injected flits.
    assert!(st.ejected_flits <= st.injected_flits);
}

/// `MinBD`'s side buffer pays off where it was designed to: accepted
/// throughput under heavy load (fewer deflections waste less bandwidth).
/// At light load the buffer can *add* latency — that is expected.
#[test]
fn minbd_throughput_beats_chipper_under_heavy_load() {
    let mut a = sim(DeflectionKind::Chipper, 4, 0.35, 5);
    a.run_for(30_000);
    let ca = a.finalize();
    let mut b = sim(DeflectionKind::MinBd, 4, 0.35, 5);
    b.run_for(30_000);
    let cb = b.finalize();
    assert!(
        cb.throughput(16) >= 0.95 * ca.throughput(16),
        "MinBD {:.4} vs CHIPPER {:.4}",
        cb.throughput(16),
        ca.throughput(16)
    );
}

/// Hop counts reflect deflections: average hops exceed the minimal distance
/// under contention (the deflection energy story of Fig 11).
#[test]
fn deflections_inflate_hop_counts() {
    let mut s = sim(DeflectionKind::Chipper, 4, 0.25, 7);
    s.run_for(20_000);
    let st = s.finalize();
    // 4x4 uniform random minimal average ≈ 2.67.
    assert!(
        st.avg_hops() > 2.8,
        "expected deflection-inflated hops, got {:.2}",
        st.avg_hops()
    );
    assert!(st.misroute_hops > 0);
}

/// Deflection runs are deterministic per seed (the permutation stage uses
/// the seeded RNG only).
#[test]
fn deflection_is_deterministic() {
    let go = |seed| {
        let mut s = sim(DeflectionKind::MinBd, 4, 0.20, seed);
        s.run_for(10_000);
        let st = s.finalize();
        (st.ejected_packets, st.misroute_hops, st.link_flit_hops)
    };
    assert_eq!(go(11), go(11));
    assert_ne!(go(11), go(12));
}
