//! Integration tests: every baseline keeps its claimed configuration
//! deadlock-free under sustained traffic.

use noc_baselines::{escape_vc_config, DrainMechanism, SpinMechanism, SwapMechanism, TfcMechanism};
use noc_sim::{watchdog, Mechanism, Sim};
use noc_traffic::{SyntheticWorkload, TrafficPattern};
use noc_types::{BaseRouting, NetConfig, RoutingAlgo};

fn run_live(cfg: NetConfig, rate: f64, mech: Box<dyn Mechanism>, blocks: u64) -> noc_sim::Stats {
    let seed = cfg.seed;
    let (c, r, w) = (cfg.cols, cfg.rows, cfg.warmup);
    let wl = SyntheticWorkload::new(TrafficPattern::UniformRandom, rate, c, r, w, seed);
    let mut sim = Sim::new(cfg, Box::new(wl), mech);
    for _ in 0..blocks {
        sim.run(1000);
        assert!(
            !watchdog::looks_stuck(&sim.net, watchdog::DEFAULT_STUCK_THRESHOLD),
            "wedged at cycle {}",
            sim.net.cycle
        );
    }
    sim.finish().clone()
}

fn deadlock_prone(vcs: u8, seed: u64) -> NetConfig {
    NetConfig::synth(4, vcs)
        .with_routing(RoutingAlgo::Uniform(BaseRouting::AdaptiveMinimal))
        .with_seed(seed)
}

#[test]
fn spin_recovers_deadlocks() {
    let s = run_live(
        deadlock_prone(1, 101),
        0.30,
        Box::new(SpinMechanism::new(256)),
        50,
    );
    assert!(s.ejected_packets > 500, "only {}", s.ejected_packets);
    assert!(s.recovery_events > 0, "SPIN never probed");
    assert!(s.probe_hops > 0, "probes never travelled");
}

#[test]
fn swap_recovers_deadlocks() {
    let s = run_live(
        deadlock_prone(1, 102),
        0.30,
        Box::new(SwapMechanism::new(256)),
        50,
    );
    assert!(s.ejected_packets > 500);
    assert!(s.forced_moves > 0, "SWAP never swapped");
    assert!(
        s.misroute_hops > 0,
        "swaps must misroute the displaced packet"
    );
}

#[test]
fn drain_recovers_deadlocks() {
    // 0.30 on a 1-VC network is far past saturation: source queues grow
    // without bound, so throughput is judged on all post-warm-up deliveries.
    let cfg = deadlock_prone(1, 103);
    let mech = DrainMechanism::new(cfg.cols, cfg.rows, 256, 1);
    let s = run_live(cfg, 0.30, Box::new(mech), 50);
    assert!(
        s.ejected_packets_all > 500,
        "only {}",
        s.ejected_packets_all
    );
    assert!(s.forced_moves > 0, "DRAIN never drained anything");
}

#[test]
fn escape_vc_prevents_deadlocks_proactively() {
    let cfg = escape_vc_config(deadlock_prone(2, 104), BaseRouting::AdaptiveMinimal);
    let s = run_live(cfg, 0.25, Box::new(noc_sim::NoMechanism), 50);
    assert!(s.ejected_packets > 500);
    // Proactive: no recovery events by construction.
    assert_eq!(s.recovery_events, 0);
}

#[test]
fn tfc_west_first_stays_live_and_counts_bypasses() {
    let cfg = NetConfig::synth(4, 2)
        .with_routing(RoutingAlgo::Uniform(BaseRouting::WestFirst))
        .with_seed(105);
    let mech = TfcMechanism::for_net(&cfg);
    let s = run_live(cfg, 0.10, Box::new(mech), 30);
    assert!(s.ejected_packets > 500);
    assert!(s.tfc_bypasses > 0, "tokens never held at 10% load?");
}

#[test]
fn recovery_schemes_are_deterministic() {
    let go = |seed: u64| {
        let cfg = deadlock_prone(1, seed);
        let wl = SyntheticWorkload::new(TrafficPattern::UniformRandom, 0.3, 4, 4, cfg.warmup, seed);
        let mut sim = Sim::new(cfg, Box::new(wl), Box::new(SpinMechanism::new(256)));
        sim.run(20_000);
        let s = sim.finish();
        (s.ejected_packets, s.sum_total_latency, s.probe_hops)
    };
    assert_eq!(go(7), go(7));
}
