//! End-to-end smoke tests of the network engine under synthetic traffic.

use noc_sim::{NoMechanism, Sim};
use noc_traffic::{SyntheticWorkload, TrafficPattern};
use noc_types::{BaseRouting, NetConfig, RoutingAlgo};

fn run(
    k: u8,
    vcs: u8,
    routing: RoutingAlgo,
    pattern: TrafficPattern,
    rate: f64,
    cycles: u64,
    seed: u64,
) -> noc_sim::Stats {
    let cfg = NetConfig::synth(k, vcs)
        .with_routing(routing)
        .with_seed(seed);
    let wl = SyntheticWorkload::new(pattern, rate, k, k, cfg.warmup, seed);
    let mut sim = Sim::new(cfg, Box::new(wl), Box::new(NoMechanism));
    sim.run(cycles);
    sim.finish().clone()
}

#[test]
fn xy_uniform_low_load_delivers_everything() {
    let s = run(
        4,
        2,
        RoutingAlgo::Uniform(BaseRouting::Xy),
        TrafficPattern::UniformRandom,
        0.02,
        20_000,
        7,
    );
    assert!(s.ejected_packets > 0, "nothing delivered");
    // At 2% load nearly everything injected must come out.
    assert!(
        s.ejected_packets as f64 >= 0.98 * s.injected_packets as f64,
        "ejected {} of {}",
        s.ejected_packets,
        s.injected_packets
    );
    // Zero-load-ish latency sanity: avg hops on 4x4 UR ≈ 2.67, hop = 2
    // cycles, plus inj/ej links and queueing.
    let lat = s.avg_total_latency();
    assert!((4.0..30.0).contains(&lat), "implausible latency {lat}");
}

#[test]
fn west_first_transpose_delivers() {
    let s = run(
        4,
        2,
        RoutingAlgo::Uniform(BaseRouting::WestFirst),
        TrafficPattern::Transpose,
        0.05,
        20_000,
        11,
    );
    assert!(s.ejected_packets as f64 >= 0.95 * s.injected_packets as f64);
}

#[test]
fn escape_vc_adaptive_uniform_survives_medium_load() {
    let s = run(
        4,
        2,
        RoutingAlgo::EscapeVc {
            normal: BaseRouting::AdaptiveMinimal,
        },
        TrafficPattern::UniformRandom,
        0.10,
        20_000,
        13,
    );
    assert!(s.ejected_packets as f64 >= 0.90 * s.injected_packets as f64);
}

#[test]
fn hop_counts_match_minimal_routing() {
    let s = run(
        8,
        2,
        RoutingAlgo::Uniform(BaseRouting::Xy),
        TrafficPattern::Transpose,
        0.02,
        20_000,
        5,
    );
    // Transpose on 8x8: every src (x,y), x≠y, travels |x-y|*2 hops plus 1
    // ejection-side hop is not counted; average over off-diagonal nodes is 6.
    let hops = s.avg_hops();
    assert!((5.0..7.0).contains(&hops), "avg hops {hops}");
}

#[test]
fn runs_are_reproducible_for_a_seed() {
    let a = run(
        4,
        2,
        RoutingAlgo::Uniform(BaseRouting::AdaptiveMinimal),
        TrafficPattern::UniformRandom,
        0.08,
        10_000,
        99,
    );
    let b = run(
        4,
        2,
        RoutingAlgo::Uniform(BaseRouting::AdaptiveMinimal),
        TrafficPattern::UniformRandom,
        0.08,
        10_000,
        99,
    );
    assert_eq!(a.ejected_packets, b.ejected_packets);
    assert_eq!(a.sum_total_latency, b.sum_total_latency);
    assert_eq!(a.link_flit_hops, b.link_flit_hops);
}

#[test]
fn throughput_saturates_but_network_keeps_moving_with_xy() {
    // XY is deadlock-free: even far past saturation the network must keep
    // delivering packets.
    let s = run(
        4,
        2,
        RoutingAlgo::Uniform(BaseRouting::Xy),
        TrafficPattern::UniformRandom,
        0.5,
        20_000,
        3,
    );
    assert!(s.throughput(16) > 0.05, "throughput {}", s.throughput(16));
}

#[test]
fn extra_patterns_flow_end_to_end() {
    // Tornado, neighbor and hotspot are not in the paper's headline sweeps
    // but ship with the generator; all must deliver cleanly at low load.
    for (pattern, rate) in [
        (TrafficPattern::Tornado, 0.04),
        (TrafficPattern::Neighbor, 0.08),
        (TrafficPattern::Hotspot, 0.02),
        (TrafficPattern::BitComplement, 0.03),
    ] {
        let s = run(
            8,
            2,
            RoutingAlgo::Uniform(BaseRouting::Xy),
            pattern,
            rate,
            15_000,
            17,
        );
        assert!(
            s.ejected_packets as f64 >= 0.95 * s.injected_packets as f64,
            "{pattern:?}: {} of {}",
            s.ejected_packets,
            s.injected_packets
        );
    }
}

#[test]
fn hotspot_concentrates_traffic_at_node_zero() {
    let s = run(
        8,
        2,
        RoutingAlgo::Uniform(BaseRouting::Xy),
        TrafficPattern::Hotspot,
        0.02,
        15_000,
        23,
    );
    // ~10% of hotspot traffic targets node 0: its ejection-side activity is
    // far above a uniform share (1/63). We can't see per-node ejections in
    // Stats directly, but hop counts skew toward the corner: average hops
    // must exceed the uniform-random mean.
    assert!(s.avg_hops() > 4.0, "avg hops {}", s.avg_hops());
}
