//! Traffic generation for the SEEC reproduction.
//!
//! Synthetic patterns match Garnet's `garnet_synth_traffic` definitions
//! (uniform random, transpose, bit rotation, shuffle, bit complement,
//! tornado, neighbor, hotspot) with Bernoulli injection and the paper's mix
//! of 1-flit and 5-flit packets. Application *profiles* for the PARSEC /
//! SPLASH-2 experiments live in [`apps`]; the closed-loop engine that drives
//! them is in the `noc-protocol` crate.

#![forbid(unsafe_code)]

pub mod apps;
pub mod burst;
pub mod pattern;
pub mod synth;

pub use burst::BurstWorkload;
pub use pattern::TrafficPattern;
pub use synth::{PacketMix, SyntheticWorkload};
