//! Synthetic traffic patterns (Garnet-compatible definitions).

use noc_types::{Coord, NodeId};
use rand::rngs::SmallRng;
use rand::Rng;

/// A synthetic destination pattern on a `cols`×`rows` mesh.
///
/// Bit-permutation patterns (`BitRotation`, `Shuffle`, `BitComplement`)
/// operate on the `log2(N)`-bit node id and therefore require a
/// power-of-two node count, as in Garnet.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TrafficPattern {
    /// Destination drawn uniformly among all other nodes.
    UniformRandom,
    /// `(x, y) → (y, x)`.
    Transpose,
    /// Rotate the node-id bits right by one.
    BitRotation,
    /// Rotate the node-id bits left by one (perfect shuffle).
    Shuffle,
    /// Complement every node-id bit.
    BitComplement,
    /// Half-way around the ring in X: `x → (x + ⌈k/2⌉ - 1) mod k`.
    Tornado,
    /// Nearest neighbour in X: `x → (x + 1) mod k`.
    Neighbor,
    /// A fraction of traffic targets node 0 (the hotspot), the rest is
    /// uniform random. Percentage is fixed at 10%.
    Hotspot,
}

impl TrafficPattern {
    /// All patterns exercised by the paper's synthetic experiments.
    pub const PAPER: [TrafficPattern; 4] = [
        TrafficPattern::UniformRandom,
        TrafficPattern::Transpose,
        TrafficPattern::BitRotation,
        TrafficPattern::Shuffle,
    ];

    /// Label used in result tables.
    pub fn label(self) -> &'static str {
        match self {
            TrafficPattern::UniformRandom => "uniform_random",
            TrafficPattern::Transpose => "transpose",
            TrafficPattern::BitRotation => "bit_rotation",
            TrafficPattern::Shuffle => "shuffle",
            TrafficPattern::BitComplement => "bit_complement",
            TrafficPattern::Tornado => "tornado",
            TrafficPattern::Neighbor => "neighbor",
            TrafficPattern::Hotspot => "hotspot",
        }
    }

    /// The destination for a packet injected at `src`, or `None` when the
    /// pattern maps `src` to itself (that node does not inject, matching
    /// Garnet). `cols`/`rows` describe the mesh; random patterns use `rng`.
    pub fn dest(self, src: NodeId, cols: u8, rows: u8, rng: &mut SmallRng) -> Option<NodeId> {
        let n = cols as u16 * rows as u16;
        let dest = match self {
            TrafficPattern::UniformRandom => {
                if n < 2 {
                    return None;
                }
                // Uniform among the other n-1 nodes.
                let mut d = rng.gen_range(0..n - 1);
                if d >= src.0 {
                    d += 1;
                }
                NodeId(d)
            }
            TrafficPattern::Transpose => {
                let c = src.to_coord(cols);
                debug_assert_eq!(cols, rows, "transpose needs a square mesh");
                Coord::new(c.y, c.x).to_node(cols)
            }
            TrafficPattern::BitRotation => {
                let bits = log2(n);
                NodeId((src.0 >> 1) | ((src.0 & 1) << (bits - 1)))
            }
            TrafficPattern::Shuffle => {
                let bits = log2(n);
                let mask = n - 1;
                NodeId(((src.0 << 1) | (src.0 >> (bits - 1))) & mask)
            }
            TrafficPattern::BitComplement => {
                let mask = n - 1;
                NodeId(!src.0 & mask)
            }
            TrafficPattern::Tornado => {
                let c = src.to_coord(cols);
                let shift = (cols as u16).div_ceil(2) - 1;
                let x = ((c.x as u16 + shift) % cols as u16) as u8;
                Coord::new(x, c.y).to_node(cols)
            }
            TrafficPattern::Neighbor => {
                let c = src.to_coord(cols);
                let x = ((c.x as u16 + 1) % cols as u16) as u8;
                Coord::new(x, c.y).to_node(cols)
            }
            TrafficPattern::Hotspot => {
                if rng.gen_bool(0.10) && src != NodeId(0) {
                    NodeId(0)
                } else {
                    return TrafficPattern::UniformRandom.dest(src, cols, rows, rng);
                }
            }
        };
        (dest != src).then_some(dest)
    }
}

fn log2(n: u16) -> u16 {
    debug_assert!(n.is_power_of_two(), "bit patterns need power-of-two nodes");
    n.trailing_zeros() as u16
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn uniform_random_never_self_and_covers_nodes() {
        let mut r = rng();
        let mut seen = [false; 16];
        for _ in 0..2000 {
            let d = TrafficPattern::UniformRandom
                .dest(NodeId(5), 4, 4, &mut r)
                .unwrap();
            assert_ne!(d, NodeId(5));
            seen[d.idx()] = true;
        }
        assert_eq!(seen.iter().filter(|&&s| s).count(), 15);
    }

    #[test]
    fn transpose_swaps_coordinates() {
        let mut r = rng();
        // (1,2) = node 9 on 4x4 → (2,1) = node 6.
        assert_eq!(
            TrafficPattern::Transpose.dest(NodeId(9), 4, 4, &mut r),
            Some(NodeId(6))
        );
        // Diagonal nodes map to themselves → no injection.
        assert_eq!(
            TrafficPattern::Transpose.dest(NodeId(5), 4, 4, &mut r),
            None
        );
    }

    #[test]
    fn bit_rotation_rotates_right() {
        let mut r = rng();
        // 16 nodes, 4 bits: 0b0011 → 0b1001.
        assert_eq!(
            TrafficPattern::BitRotation.dest(NodeId(0b0011), 4, 4, &mut r),
            Some(NodeId(0b1001))
        );
    }

    #[test]
    fn shuffle_rotates_left() {
        let mut r = rng();
        // 0b1001 → 0b0011.
        assert_eq!(
            TrafficPattern::Shuffle.dest(NodeId(0b1001), 4, 4, &mut r),
            Some(NodeId(0b0011))
        );
    }

    #[test]
    fn bit_complement_is_involution() {
        let mut r = rng();
        for s in 0..64u16 {
            if let Some(d) = TrafficPattern::BitComplement.dest(NodeId(s), 8, 8, &mut r) {
                assert_eq!(
                    TrafficPattern::BitComplement.dest(d, 8, 8, &mut r),
                    Some(NodeId(s))
                );
            }
        }
    }

    #[test]
    fn tornado_moves_halfway_in_x() {
        let mut r = rng();
        // 8 wide: shift = 3. (1,0)=node 1 → (4,0)=node 4.
        assert_eq!(
            TrafficPattern::Tornado.dest(NodeId(1), 8, 8, &mut r),
            Some(NodeId(4))
        );
    }

    #[test]
    fn neighbor_wraps_in_x() {
        let mut r = rng();
        assert_eq!(
            TrafficPattern::Neighbor.dest(NodeId(3), 4, 4, &mut r),
            Some(NodeId(0))
        );
    }

    #[test]
    fn patterns_always_stay_on_mesh() {
        let mut r = rng();
        for p in [
            TrafficPattern::UniformRandom,
            TrafficPattern::Transpose,
            TrafficPattern::BitRotation,
            TrafficPattern::Shuffle,
            TrafficPattern::BitComplement,
            TrafficPattern::Tornado,
            TrafficPattern::Neighbor,
            TrafficPattern::Hotspot,
        ] {
            for s in 0..64u16 {
                if let Some(d) = p.dest(NodeId(s), 8, 8, &mut r) {
                    assert!(d.0 < 64, "{p:?} left the mesh: {s} → {d}");
                    assert_ne!(d, NodeId(s));
                }
            }
        }
    }
}
