//! Open-loop synthetic workload: Bernoulli injection of mixed-size packets.

use crate::pattern::TrafficPattern;
use noc_sim::{PacketFactory, Workload};
use noc_types::{Cycle, MessageClass, NodeId, Packet};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The 1-flit / 5-flit packet mix of Table 4.
#[derive(Clone, Copy, Debug)]
pub struct PacketMix {
    pub short_len: u8,
    pub long_len: u8,
    /// Probability a packet is long.
    pub long_prob: f64,
}

impl Default for PacketMix {
    fn default() -> Self {
        // Requests/acks are 1 flit, responses 5; roughly half of synthetic
        // packets are data-carrying.
        PacketMix {
            short_len: 1,
            long_len: 5,
            long_prob: 0.5,
        }
    }
}

/// Open-loop synthetic traffic: every node flips a Bernoulli coin each cycle
/// (`rate` packets/node/cycle) and sends to the pattern's destination.
/// All packets travel in message class 0 (the paper's `--inj-vnet=0`).
pub struct SyntheticWorkload {
    pattern: TrafficPattern,
    rate: f64,
    mix: PacketMix,
    cols: u8,
    rows: u8,
    warmup: Cycle,
    rng: SmallRng,
    factory: PacketFactory,
}

impl SyntheticWorkload {
    /// `rate` is in packets per node per cycle, as in Garnet's
    /// `--injectionrate`.
    pub fn new(
        pattern: TrafficPattern,
        rate: f64,
        cols: u8,
        rows: u8,
        warmup: Cycle,
        seed: u64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0,1]");
        SyntheticWorkload {
            pattern,
            rate,
            mix: PacketMix::default(),
            cols,
            rows,
            warmup,
            // Decorrelate from the network's internal RNG.
            rng: SmallRng::seed_from_u64(seed ^ 0x5EEC_7AFF_1C00_0001),
            factory: PacketFactory::new(),
        }
    }

    /// Overrides the packet-size mix.
    pub fn with_mix(mut self, mix: PacketMix) -> Self {
        self.mix = mix;
        self
    }

    /// Packets generated so far (measured or not).
    pub fn generated(&self) -> u64 {
        self.factory.created()
    }
}

impl Workload for SyntheticWorkload {
    fn generate(&mut self, cycle: Cycle, inject: &mut dyn FnMut(NodeId, Packet)) {
        let n = self.cols as u16 * self.rows as u16;
        for s in 0..n {
            if !self.rng.gen_bool(self.rate) {
                continue;
            }
            let src = NodeId(s);
            let Some(dest) = self.pattern.dest(src, self.cols, self.rows, &mut self.rng) else {
                continue;
            };
            let len = if self.rng.gen_bool(self.mix.long_prob) {
                self.mix.long_len
            } else {
                self.mix.short_len
            };
            let pkt = self.factory.make(
                src,
                dest,
                MessageClass::SYNTH,
                len,
                cycle,
                cycle >= self.warmup,
            );
            inject(src, pkt);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injection_rate_is_respected() {
        let mut w = SyntheticWorkload::new(TrafficPattern::UniformRandom, 0.1, 8, 8, 0, 3);
        let mut count = 0u64;
        for c in 0..1000 {
            w.generate(c, &mut |_, _| count += 1);
        }
        // 64 nodes * 1000 cycles * 0.1 = 6400 expected.
        assert!((5800..7000).contains(&count), "got {count}");
    }

    #[test]
    fn warmup_packets_are_unmeasured() {
        let mut w = SyntheticWorkload::new(TrafficPattern::UniformRandom, 1.0, 4, 4, 100, 3);
        let mut pre = Vec::new();
        w.generate(99, &mut |_, p| pre.push(p));
        assert!(pre.iter().all(|p| !p.measured));
        let mut post = Vec::new();
        w.generate(100, &mut |_, p| post.push(p));
        assert!(post.iter().all(|p| p.measured));
    }

    #[test]
    fn packet_mix_produces_both_sizes() {
        let mut w = SyntheticWorkload::new(TrafficPattern::UniformRandom, 1.0, 4, 4, 0, 3);
        let mut lens = std::collections::HashSet::new();
        for c in 0..50 {
            w.generate(c, &mut |_, p| {
                lens.insert(p.len_flits);
            });
        }
        assert!(lens.contains(&1) && lens.contains(&5));
    }

    #[test]
    fn deterministic_given_seed() {
        let collect = |seed| {
            let mut w = SyntheticWorkload::new(TrafficPattern::UniformRandom, 0.3, 4, 4, 0, seed);
            let mut v = Vec::new();
            for c in 0..100 {
                w.generate(c, &mut |n, p| v.push((n, p.dest, p.len_flits)));
            }
            v
        };
        assert_eq!(collect(9), collect(9));
        assert_ne!(collect(9), collect(10));
    }
}
