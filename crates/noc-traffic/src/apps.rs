//! Application workload profiles standing in for PARSEC-3.0 / SPLASH-2.
//!
//! The paper runs full-system gem5 (x86, MOESI hammer) — unavailable here.
//! What the network experiments (Figs 14–15) actually exercise is the
//! *traffic* those applications impose: closed-loop request→response chains
//! over six message classes, mixed 1-/5-flit packets, directory-home
//! hotspots, and benchmark-to-benchmark load variation. Each profile
//! parameterizes the `noc-protocol` engine to produce exactly that; the
//! intensity numbers are chosen to span the light-to-heavy range reported
//! for these suites (misses per kilo-instruction × IPC at a 1 GHz `NoC`).

/// A statistical application profile for the closed-loop protocol engine.
#[derive(Clone, Copy, Debug)]
pub struct AppProfile {
    pub name: &'static str,
    /// Benchmark suite, for grouping in result tables.
    pub suite: Suite,
    /// Mean think time between a core's memory requests (cycles) once an
    /// MSHR is available: lower = heavier network load.
    pub think_time: f64,
    /// Fraction of requests that are reads (`GetS`) vs writes (`GetX`).
    pub read_frac: f64,
    /// Probability a request is owned by another core (directory forwards,
    /// 3-hop transaction) rather than answered from memory (2-hop).
    pub fwd_prob: f64,
    /// Probability a write hits shared data and triggers invalidations.
    pub inv_prob: f64,
    /// Mean sharers invalidated when `inv_prob` fires.
    pub sharers: f64,
    /// Zipf-like skew of home-directory popularity (0 = uniform). Models
    /// hot shared structures (locks, task queues).
    pub home_skew: f64,
}

/// Benchmark suite tag.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Suite {
    Parsec,
    Splash2,
}

/// The application set evaluated in the paper's Figs 14–15 (PARSEC-3.0 and
/// SPLASH-2 members commonly reported for 16-core runs).
pub const APPS: &[AppProfile] = &[
    AppProfile {
        name: "blackscholes",
        suite: Suite::Parsec,
        think_time: 220.0,
        read_frac: 0.80,
        fwd_prob: 0.05,
        inv_prob: 0.05,
        sharers: 1.2,
        home_skew: 0.1,
    },
    AppProfile {
        name: "bodytrack",
        suite: Suite::Parsec,
        think_time: 140.0,
        read_frac: 0.72,
        fwd_prob: 0.15,
        inv_prob: 0.12,
        sharers: 2.0,
        home_skew: 0.4,
    },
    AppProfile {
        name: "canneal",
        suite: Suite::Parsec,
        think_time: 45.0,
        read_frac: 0.65,
        fwd_prob: 0.25,
        inv_prob: 0.20,
        sharers: 1.6,
        home_skew: 0.2,
    },
    AppProfile {
        name: "dedup",
        suite: Suite::Parsec,
        think_time: 80.0,
        read_frac: 0.70,
        fwd_prob: 0.18,
        inv_prob: 0.15,
        sharers: 1.8,
        home_skew: 0.5,
    },
    AppProfile {
        name: "fluidanimate",
        suite: Suite::Parsec,
        think_time: 110.0,
        read_frac: 0.68,
        fwd_prob: 0.22,
        inv_prob: 0.18,
        sharers: 1.5,
        home_skew: 0.3,
    },
    AppProfile {
        name: "swaptions",
        suite: Suite::Parsec,
        think_time: 190.0,
        read_frac: 0.78,
        fwd_prob: 0.08,
        inv_prob: 0.06,
        sharers: 1.3,
        home_skew: 0.1,
    },
    AppProfile {
        name: "barnes",
        suite: Suite::Splash2,
        think_time: 90.0,
        read_frac: 0.70,
        fwd_prob: 0.30,
        inv_prob: 0.22,
        sharers: 2.4,
        home_skew: 0.5,
    },
    AppProfile {
        name: "fft",
        suite: Suite::Splash2,
        think_time: 60.0,
        read_frac: 0.66,
        fwd_prob: 0.12,
        inv_prob: 0.10,
        sharers: 1.4,
        home_skew: 0.2,
    },
    AppProfile {
        name: "lu",
        suite: Suite::Splash2,
        think_time: 100.0,
        read_frac: 0.74,
        fwd_prob: 0.16,
        inv_prob: 0.12,
        sharers: 1.7,
        home_skew: 0.3,
    },
    AppProfile {
        name: "radix",
        suite: Suite::Splash2,
        think_time: 55.0,
        read_frac: 0.60,
        fwd_prob: 0.10,
        inv_prob: 0.14,
        sharers: 1.5,
        home_skew: 0.2,
    },
    AppProfile {
        name: "water",
        suite: Suite::Splash2,
        think_time: 160.0,
        read_frac: 0.76,
        fwd_prob: 0.20,
        inv_prob: 0.14,
        sharers: 1.9,
        home_skew: 0.4,
    },
];

/// Looks up a profile by name.
pub fn by_name(name: &str) -> Option<&'static AppProfile> {
    APPS.iter().find(|a| a.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_well_formed() {
        for a in APPS {
            assert!(a.think_time > 0.0, "{}", a.name);
            assert!((0.0..=1.0).contains(&a.read_frac), "{}", a.name);
            assert!((0.0..=1.0).contains(&a.fwd_prob), "{}", a.name);
            assert!((0.0..=1.0).contains(&a.inv_prob), "{}", a.name);
            assert!(a.sharers >= 1.0, "{}", a.name);
            assert!((0.0..=1.0).contains(&a.home_skew), "{}", a.name);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("canneal").unwrap().suite, Suite::Parsec);
        assert_eq!(by_name("barnes").unwrap().suite, Suite::Splash2);
        assert!(by_name("doom").is_none());
    }

    #[test]
    fn suites_both_present() {
        assert!(APPS.iter().any(|a| a.suite == Suite::Parsec));
        assert!(APPS.iter().any(|a| a.suite == Suite::Splash2));
        assert!(APPS.len() >= 10);
    }
}
