//! Bursty open-loop traffic: Bernoulli injection gated to periodic windows.
//!
//! Real workloads are not steady-state: compute phases separate
//! communication phases, and the network spends much of its time provably
//! idle. [`BurstWorkload`] models that on/off structure — every `period`
//! cycles, nodes inject for `burst_len` cycles at the configured Bernoulli
//! rate, then go silent until the next window.
//!
//! The silent gaps are what makes this workload *skippable*: `generate` is
//! a guaranteed no-op outside a window — it returns before touching the
//! RNG — and [`Workload::next_activity`] reports the start of the next
//! window, so an idle-skipping engine can jump the clock straight across
//! the gap. A run that steps every cycle and a run that skips the gaps see
//! the identical packet stream, byte for byte.

use crate::pattern::TrafficPattern;
use crate::synth::PacketMix;
use noc_sim::{PacketFactory, Workload};
use noc_types::{Cycle, MessageClass, NodeId, Packet};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// On/off synthetic traffic: Bernoulli injection (`rate` packets/node/cycle)
/// during the first `burst_len` cycles of every `period`-cycle window,
/// silence otherwise. With `burst_len == period` this degenerates to the
/// steady [`crate::SyntheticWorkload`] schedule.
pub struct BurstWorkload {
    pattern: TrafficPattern,
    rate: f64,
    mix: PacketMix,
    period: Cycle,
    burst_len: Cycle,
    cols: u8,
    rows: u8,
    warmup: Cycle,
    rng: SmallRng,
    factory: PacketFactory,
}

impl BurstWorkload {
    /// `rate` applies within a burst window; the long-run average rate is
    /// `rate * burst_len / period`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        pattern: TrafficPattern,
        rate: f64,
        period: Cycle,
        burst_len: Cycle,
        cols: u8,
        rows: u8,
        warmup: Cycle,
        seed: u64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0,1]");
        assert!(burst_len >= 1, "a burst must span at least one cycle");
        assert!(
            period >= burst_len,
            "period {period} shorter than burst_len {burst_len}"
        );
        BurstWorkload {
            pattern,
            rate,
            mix: PacketMix::default(),
            period,
            burst_len,
            cols,
            rows,
            warmup,
            // Same stream discipline as SyntheticWorkload: decorrelate from
            // the network's internal RNG.
            rng: SmallRng::seed_from_u64(seed ^ 0x5EEC_7AFF_1C00_0002),
            factory: PacketFactory::new(),
        }
    }

    /// Overrides the packet-size mix.
    #[must_use]
    pub fn with_mix(mut self, mix: PacketMix) -> Self {
        self.mix = mix;
        self
    }

    /// Packets generated so far (measured or not).
    pub fn generated(&self) -> u64 {
        self.factory.created()
    }

    /// Whether `cycle` falls inside a burst window.
    fn active(&self, cycle: Cycle) -> bool {
        cycle % self.period < self.burst_len
    }
}

impl Workload for BurstWorkload {
    fn generate(&mut self, cycle: Cycle, inject: &mut dyn FnMut(NodeId, Packet)) {
        // The skip contract: outside a window this must be a total no-op —
        // in particular the RNG stream advances by exactly zero bytes, so
        // stepping through a gap and jumping over it are indistinguishable.
        if !self.active(cycle) {
            return;
        }
        let n = self.cols as u16 * self.rows as u16;
        for s in 0..n {
            if !self.rng.gen_bool(self.rate) {
                continue;
            }
            let src = NodeId(s);
            let Some(dest) = self.pattern.dest(src, self.cols, self.rows, &mut self.rng) else {
                continue;
            };
            let len = if self.rng.gen_bool(self.mix.long_prob) {
                self.mix.long_len
            } else {
                self.mix.short_len
            };
            let pkt = self.factory.make(
                src,
                dest,
                MessageClass::SYNTH,
                len,
                cycle,
                cycle >= self.warmup,
            );
            inject(src, pkt);
        }
    }

    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        if self.active(now) {
            Some(now)
        } else {
            // Silent until the next window opens.
            Some(now + self.period - now % self.period)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn burst(rate: f64, period: Cycle, len: Cycle, seed: u64) -> BurstWorkload {
        BurstWorkload::new(
            TrafficPattern::UniformRandom,
            rate,
            period,
            len,
            4,
            4,
            0,
            seed,
        )
    }

    #[test]
    fn silent_outside_windows() {
        let mut w = burst(1.0, 100, 10, 3);
        for c in 0..300 {
            let mut count = 0;
            w.generate(c, &mut |_, _| count += 1);
            if c % 100 < 10 {
                assert!(count > 0, "cycle {c} in-window but silent at rate 1.0");
            } else {
                assert_eq!(count, 0, "cycle {c} out-of-window but injected");
            }
        }
    }

    #[test]
    fn gap_cycles_consume_no_rng() {
        // Driving every cycle and driving only the in-window cycles must
        // produce the identical packet stream — the skip contract.
        let collect = |skip_gaps: bool| {
            let mut w = burst(0.7, 64, 8, 9);
            let mut v = Vec::new();
            for c in 0..640 {
                if skip_gaps && c % 64 >= 8 {
                    continue;
                }
                w.generate(c, &mut |n, p| v.push((c, n, p.dest, p.len_flits)));
            }
            v
        };
        let stepped = collect(false);
        assert!(!stepped.is_empty());
        assert_eq!(stepped, collect(true));
    }

    #[test]
    fn next_activity_points_at_window_starts() {
        let w = burst(0.5, 100, 10, 3);
        assert_eq!(w.next_activity(0), Some(0), "window start is active");
        assert_eq!(w.next_activity(9), Some(9), "last in-window cycle");
        assert_eq!(w.next_activity(10), Some(100), "first gap cycle");
        assert_eq!(w.next_activity(99), Some(100), "last gap cycle");
        assert_eq!(w.next_activity(250), Some(300));
    }

    #[test]
    fn full_duty_cycle_matches_steady_traffic() {
        // burst_len == period: active every cycle, horizon always `now`.
        let w = burst(0.5, 7, 7, 3);
        for c in 0..30 {
            assert_eq!(w.next_activity(c), Some(c));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let collect = |seed| {
            let mut w = burst(0.4, 32, 4, seed);
            let mut v = Vec::new();
            for c in 0..320 {
                w.generate(c, &mut |n, p| v.push((n, p.dest, p.len_flits)));
            }
            v
        };
        assert_eq!(collect(5), collect(5));
        assert_ne!(collect(5), collect(6));
    }
}
