//! Network configuration (the paper's Table 4).

use crate::fault::{fnv1a, FaultConfig};
use crate::message::MessageClass;
use crate::recovery::RecoveryConfig;
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Routing algorithm applied while a packet occupies *regular* VCs.
///
/// All algorithms are minimal. `Xy` and `WestFirst` are deadlock-free turn
/// models; the two random algorithms have full path diversity and are
/// deadlock-*prone* — they rely on a mechanism (escape VC, SPIN, SWAP, DRAIN,
/// SEEC, ...) for correctness.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum BaseRouting {
    /// Dimension-ordered: X first, then Y. Deadlock-free.
    Xy,
    /// West-first turn model: all westward hops first, then adaptive among
    /// the remaining productive directions. Deadlock-free.
    WestFirst,
    /// Minimal oblivious random: pick uniformly among productive directions.
    ObliviousMinimal,
    /// Minimal adaptive random: pick among productive directions weighted by
    /// downstream free-VC count (ties broken randomly).
    AdaptiveMinimal,
}

/// Full routing configuration, including the escape-VC composite used by the
/// Duato baseline.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum RoutingAlgo {
    /// Every VC uses the same base algorithm.
    Uniform(BaseRouting),
    /// Duato-style escape VC: the last VC of each `VNet` is an escape VC
    /// restricted to west-first routing; all other VCs use `normal`.
    /// Packets that enter the escape VC stay in escape VCs until ejection.
    EscapeVc { normal: BaseRouting },
}

impl RoutingAlgo {
    /// The algorithm used by regular (non-escape) VCs.
    pub fn normal(self) -> BaseRouting {
        match self {
            RoutingAlgo::Uniform(b) => b,
            RoutingAlgo::EscapeVc { normal } => normal,
        }
    }

    /// Whether the last VC of each `VNet` is a west-first escape VC.
    pub fn has_escape(self) -> bool {
        matches!(self, RoutingAlgo::EscapeVc { .. })
    }
}

/// Which deadlock-freedom / flow-control scheme a simulation runs. Used for
/// labelling results and by the area/energy models; the mechanism objects
/// themselves live in the `seec` and `noc-baselines` crates.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum SchemeKind {
    /// Plain VC router; correctness (if any) comes from the routing algorithm.
    None,
    EscapeVc,
    Tfc,
    Spin,
    Swap,
    Drain,
    Seec,
    MSeec,
    MinBd,
    Chipper,
}

impl SchemeKind {
    /// Short label used in result tables, matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            SchemeKind::None => "base",
            SchemeKind::EscapeVc => "EscVC",
            SchemeKind::Tfc => "TFC",
            SchemeKind::Spin => "SPIN",
            SchemeKind::Swap => "SWAP",
            SchemeKind::Drain => "DRAIN",
            SchemeKind::Seec => "SEEC",
            SchemeKind::MSeec => "mSEEC",
            SchemeKind::MinBd => "minBD",
            SchemeKind::Chipper => "CHIPPER",
        }
    }
}

/// Buffer management discipline (§3.11 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum BufferOrg {
    /// Virtual cut-through: a VC is allocated to a whole packet and is deep
    /// enough to hold it (Table 4's configuration).
    Vct,
    /// Wormhole: VCs may be shallower than the largest packet; body flits
    /// advance on flit-granularity credits. Still one packet per VC (the
    /// paper's constraint for adaptive routing under wormhole).
    Wormhole,
}

/// Full network configuration. Defaults mirror Table 4 of the paper.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NetConfig {
    /// Mesh columns.
    pub cols: u8,
    /// Mesh rows.
    pub rows: u8,
    /// Number of virtual networks the in-NoC VCs are partitioned into.
    /// Baselines that need protocol-deadlock freedom use one `VNet` per message
    /// class (6); DRAIN and SEEC use 1.
    pub vnets: u8,
    /// Number of protocol message classes carried (classes map onto `VNets` by
    /// `class % vnets`).
    pub classes: u8,
    /// VCs per `VNet` at every router input port.
    pub vcs_per_vnet: u8,
    /// VC buffer depth in flits. Virtual cut-through with a single packet per
    /// VC: the depth equals the largest packet (5 flits). Wormhole allows
    /// any depth ≥ 1.
    pub vc_depth: u8,
    /// Buffer management discipline.
    pub buffer_org: BufferOrg,
    /// Router pipeline depth in cycles (Table 4: 1). The TFC baseline's
    /// bypass only has something to skip when this exceeds 1 (footnote 4).
    pub router_latency: u8,
    /// Routing algorithm.
    pub routing: RoutingAlgo,
    /// Ejection VCs per message class at every NIC.
    pub ejection_vcs_per_class: u8,
    /// Link width in bits (used by the energy model only).
    pub link_width_bits: u16,
    /// Cycles of warm-up before statistics collection starts.
    pub warmup: u64,
    /// RNG seed; every run with the same config and seed is bit-identical.
    pub seed: u64,
    /// Fault-injection scenario. Defaults to fully disabled, in which case
    /// the simulator is bit-identical to a build without the fault layer.
    pub fault: FaultConfig,
    /// Runtime recovery scenario (drain recovery + end-to-end
    /// retransmission). Defaults to fully disabled, in which case the
    /// simulator is bit-identical to a build without the recovery layer.
    pub recovery: RecoveryConfig,
}

impl NetConfig {
    /// Synthetic-traffic configuration: `k`×`k` mesh, one `VNet` and one
    /// message class (the paper's `--inj-vnet=0` runs), `vcs` VCs per port.
    pub fn synth(k: u8, vcs: u8) -> NetConfig {
        NetConfig {
            cols: k,
            rows: k,
            vnets: 1,
            classes: 1,
            vcs_per_vnet: vcs,
            vc_depth: 5,
            buffer_org: BufferOrg::Vct,
            router_latency: 1,
            routing: RoutingAlgo::Uniform(BaseRouting::AdaptiveMinimal),
            ejection_vcs_per_class: 2,
            link_width_bits: 128,
            warmup: 1000,
            seed: 1,
            fault: FaultConfig::default(),
            recovery: RecoveryConfig::default(),
        }
    }

    /// Full-system-style configuration: `k`×`k` mesh, six message classes.
    /// `vnets` is 6 for the proactive/reactive baselines and 1 for
    /// DRAIN/SEEC/mSEEC; `vcs` is the per-VNet VC count.
    pub fn full_system(k: u8, vnets: u8, vcs: u8) -> NetConfig {
        NetConfig {
            cols: k,
            rows: k,
            vnets,
            classes: 6,
            vcs_per_vnet: vcs,
            vc_depth: 5,
            buffer_org: BufferOrg::Vct,
            router_latency: 1,
            routing: RoutingAlgo::Uniform(BaseRouting::AdaptiveMinimal),
            ejection_vcs_per_class: 2,
            link_width_bits: 128,
            warmup: 1000,
            seed: 1,
            fault: FaultConfig::default(),
            recovery: RecoveryConfig::default(),
        }
    }

    /// Builder-style override of the router pipeline depth.
    pub fn with_router_latency(mut self, cycles: u8) -> Self {
        assert!(cycles >= 1);
        self.router_latency = cycles;
        self
    }

    /// Builder-style override to wormhole buffering with `depth`-flit VCs.
    pub fn with_wormhole(mut self, depth: u8) -> Self {
        assert!(depth >= 1);
        self.buffer_org = BufferOrg::Wormhole;
        self.vc_depth = depth;
        self
    }

    /// Builder-style override of the routing algorithm.
    pub fn with_routing(mut self, routing: RoutingAlgo) -> Self {
        self.routing = routing;
        self
    }

    /// Builder-style override of the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style override of the fault scenario.
    pub fn with_fault(mut self, fault: FaultConfig) -> Self {
        self.fault = fault;
        self
    }

    /// Builder-style override of the recovery scenario.
    pub fn with_recovery(mut self, recovery: RecoveryConfig) -> Self {
        self.recovery = recovery;
        self
    }

    /// Validates the fault and recovery sub-configurations against this
    /// mesh, returning a descriptive error instead of letting a malformed
    /// scenario panic somewhere deep in network construction.
    pub fn validate(&self) -> Result<(), String> {
        self.fault.validate(self.cols, self.rows)?;
        self.recovery.validate()
    }

    /// Stable 64-bit digest of every behaviour-affecting field, used to key
    /// checkpoint rows so a resumed sweep never mixes incompatible configs.
    pub fn digest(&self) -> u64 {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = write!(
            s,
            "{}x{};vn={};cl={};vc={};d={};org={:?};rl={};rt={:?};ej={};lw={};wu={};seed={};",
            self.cols,
            self.rows,
            self.vnets,
            self.classes,
            self.vcs_per_vnet,
            self.vc_depth,
            self.buffer_org,
            self.router_latency,
            self.routing,
            self.ejection_vcs_per_class,
            self.link_width_bits,
            self.warmup,
            self.seed,
        );
        s.push_str(&self.fault.canonical());
        s.push(';');
        s.push_str(&self.recovery.canonical());
        fnv1a(s.as_bytes())
    }

    /// Total number of nodes (routers/NICs) on the mesh.
    pub fn num_nodes(&self) -> usize {
        self.cols as usize * self.rows as usize
    }

    /// Total VCs at each router input port (`vnets * vcs_per_vnet`).
    pub fn vcs_per_port(&self) -> usize {
        self.vnets as usize * self.vcs_per_vnet as usize
    }

    /// `VNet` a message class travels in.
    pub fn vnet_of(&self, class: MessageClass) -> u8 {
        class.0 % self.vnets
    }

    /// Range of VC indices (within a port) belonging to `vnet`.
    pub fn vc_range(&self, vnet: u8) -> Range<usize> {
        let per = self.vcs_per_vnet as usize;
        let start = vnet as usize * per;
        start..start + per
    }

    /// Index of the escape VC *within* `vnet`'s VC range (relative, add
    /// `vc_range(vnet).start` for the flattened port index), if the routing
    /// algorithm uses one — always the last VC of the `VNet`.
    pub fn escape_vc(&self, vnet: u8) -> Option<usize> {
        let _ = vnet;
        if self.routing.has_escape() {
            Some(self.vcs_per_vnet as usize - 1)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synth_preset_matches_table4() {
        let c = NetConfig::synth(8, 4);
        assert_eq!(c.num_nodes(), 64);
        assert_eq!(c.vnets, 1);
        assert_eq!(c.vc_depth, 5);
        assert_eq!(c.link_width_bits, 128);
        assert_eq!(c.warmup, 1000);
        assert_eq!(c.vcs_per_port(), 4);
    }

    #[test]
    fn vnet_partitioning() {
        let c = NetConfig::full_system(4, 6, 2);
        assert_eq!(c.vcs_per_port(), 12);
        assert_eq!(c.vnet_of(MessageClass(0)), 0);
        assert_eq!(c.vnet_of(MessageClass(5)), 5);
        assert_eq!(c.vc_range(0), 0..2);
        assert_eq!(c.vc_range(5), 10..12);

        let one = NetConfig::full_system(4, 1, 2);
        assert_eq!(one.vnet_of(MessageClass(5)), 0);
        assert_eq!(one.vcs_per_port(), 2);
    }

    #[test]
    fn escape_vc_is_last_of_vnet() {
        let mut c = NetConfig::synth(8, 2);
        assert_eq!(c.escape_vc(0), None);
        c.routing = RoutingAlgo::EscapeVc {
            normal: BaseRouting::AdaptiveMinimal,
        };
        assert_eq!(c.escape_vc(0), Some(1));
    }
}

#[cfg(test)]
mod escape_regression {
    use super::*;

    /// Regression: with multiple `VNets` the escape index must be *relative*
    /// to the `VNet`'s range — adding it to `range.start` must stay in bounds
    /// for every `VNet` (it used to be absolute, overflowing `VNet` 1+).
    #[test]
    fn escape_index_is_relative_across_vnets() {
        let mut c = NetConfig::full_system(4, 6, 2);
        c.routing = RoutingAlgo::EscapeVc {
            normal: BaseRouting::AdaptiveMinimal,
        };
        for vnet in 0..6 {
            let esc = c.escape_vc(vnet).unwrap();
            let flat = c.vc_range(vnet).start + esc;
            assert!(
                flat < c.vcs_per_port(),
                "vnet {vnet}: index {flat} overflows"
            );
            assert_eq!(flat, c.vc_range(vnet).end - 1);
        }
    }
}
