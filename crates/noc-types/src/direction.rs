//! Mesh router port directions.

use crate::geometry::Coord;
use std::fmt;

/// Number of ports on a mesh router: four cardinal neighbours plus the local
/// NIC port.
pub const NUM_PORTS: usize = 5;

/// Index of a router port. `0..=3` are the cardinal directions in the order of
/// [`Direction::ALL`], `4` is the local port.
pub type PortId = usize;

/// One of the five router ports of a 2D mesh router.
///
/// Directions are named from the router's point of view: a flit leaving
/// through the `East` output port arrives on the `West` input port of the
/// eastern neighbour. `North` decreases `y` (rows are numbered from the top,
/// matching the paper's figures).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Direction {
    North,
    South,
    East,
    West,
    /// The port that connects the router to its network interface (NIC).
    Local,
}

impl Direction {
    /// All ports, cardinal directions first, `Local` last. The order defines
    /// the [`PortId`] mapping.
    pub const ALL: [Direction; NUM_PORTS] = [
        Direction::North,
        Direction::South,
        Direction::East,
        Direction::West,
        Direction::Local,
    ];

    /// The four inter-router directions (everything except `Local`).
    pub const CARDINAL: [Direction; 4] = [
        Direction::North,
        Direction::South,
        Direction::East,
        Direction::West,
    ];

    /// Stable port index; inverse of [`Direction::from_index`].
    #[inline]
    pub const fn index(self) -> PortId {
        match self {
            Direction::North => 0,
            Direction::South => 1,
            Direction::East => 2,
            Direction::West => 3,
            Direction::Local => 4,
        }
    }

    /// Recovers a direction from its port index.
    ///
    /// # Panics
    /// Panics if `idx >= NUM_PORTS`.
    #[inline]
    pub const fn from_index(idx: PortId) -> Direction {
        match idx {
            0 => Direction::North,
            1 => Direction::South,
            2 => Direction::East,
            3 => Direction::West,
            4 => Direction::Local,
            _ => panic!("port index out of range"),
        }
    }

    /// The direction a flit sent this way arrives *from* at the neighbour.
    #[inline]
    pub const fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::South => Direction::North,
            Direction::East => Direction::West,
            Direction::West => Direction::East,
            Direction::Local => Direction::Local,
        }
    }

    /// The neighbour coordinate reached by leaving `from` through this port,
    /// or `None` when that would leave a `cols`×`rows` mesh (or for `Local`).
    pub fn step(self, from: Coord, cols: u8, rows: u8) -> Option<Coord> {
        match self {
            Direction::North if from.y > 0 => Some(Coord::new(from.x, from.y - 1)),
            Direction::South if from.y + 1 < rows => Some(Coord::new(from.x, from.y + 1)),
            Direction::East if from.x + 1 < cols => Some(Coord::new(from.x + 1, from.y)),
            Direction::West if from.x > 0 => Some(Coord::new(from.x - 1, from.y)),
            _ => None,
        }
    }

    /// True for the four inter-router directions.
    #[inline]
    pub const fn is_cardinal(self) -> bool {
        !matches!(self, Direction::Local)
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::North => "N",
            Direction::South => "S",
            Direction::East => "E",
            Direction::West => "W",
            Direction::Local => "L",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for d in Direction::ALL {
            assert_eq!(Direction::from_index(d.index()), d);
        }
    }

    #[test]
    fn opposite_is_involution() {
        for d in Direction::ALL {
            assert_eq!(d.opposite().opposite(), d);
        }
    }

    #[test]
    fn step_respects_mesh_edges() {
        let corner = Coord::new(0, 0);
        assert_eq!(Direction::North.step(corner, 4, 4), None);
        assert_eq!(Direction::West.step(corner, 4, 4), None);
        assert_eq!(Direction::South.step(corner, 4, 4), Some(Coord::new(0, 1)));
        assert_eq!(Direction::East.step(corner, 4, 4), Some(Coord::new(1, 0)));
        let far = Coord::new(3, 3);
        assert_eq!(Direction::South.step(far, 4, 4), None);
        assert_eq!(Direction::East.step(far, 4, 4), None);
    }

    #[test]
    fn step_and_opposite_agree() {
        // Walking one hop and then stepping back in the opposite direction
        // returns to the origin, wherever both hops stay on the mesh.
        for y in 0..4u8 {
            for x in 0..4u8 {
                let c = Coord::new(x, y);
                for d in Direction::CARDINAL {
                    if let Some(n) = d.step(c, 4, 4) {
                        assert_eq!(d.opposite().step(n, 4, 4), Some(c));
                    }
                }
            }
        }
    }
}
