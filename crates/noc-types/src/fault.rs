//! Fault-injection configuration.
//!
//! A [`FaultConfig`] rides on [`crate::NetConfig`] and describes which faults
//! the simulator must inject and how the recovery layer is tuned. The default
//! value is fully disabled; the engine promises bit-identical behaviour to a
//! fault-free build whenever [`FaultConfig::enabled`] is false.
//!
//! Two fault classes are modelled:
//!
//! * **Transient** — every link traversal independently corrupts the flit
//!   with probability [`FaultConfig::transient_rate`] (a soft error on the
//!   wires). The link-layer retransmission protocol in `noc-sim` detects the
//!   corruption by checksum and heals it by ack/nack + resend: latency cost,
//!   never loss.
//! * **Permanent** — whole physical links (both directions) or whole routers
//!   are dead for the entire run, either by explicit list or by drawing
//!   [`FaultConfig::random_dead_links`] kills from [`FaultConfig::fault_seed`].
//!   The simulator routes around dead hardware with a degraded-mesh routing
//!   mask, re-certified by `noc-verify`.
//!
//! All randomness (corruption draws, random kills) comes from a dedicated RNG
//! seeded by `fault_seed`, never from the traffic RNG, so a fault scenario is
//! reproducible independently of the workload seed.

use crate::direction::Direction;
use crate::geometry::NodeId;
use crate::schedule::FaultSchedule;
use serde::{Deserialize, Serialize};

/// Fault-injection knobs carried by [`crate::NetConfig`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Probability that a single inter-router link traversal corrupts the
    /// flit. `0.0` disables transient faults entirely.
    pub transient_rate: f64,
    /// Physical links to kill permanently, each named from one endpoint as
    /// `(node, direction)`. A dead link is dead in *both* directions.
    pub dead_links: Vec<(NodeId, Direction)>,
    /// Routers to kill permanently; all four of a dead router's mesh links
    /// die with it (its NIC neither injects nor receives).
    pub dead_routers: Vec<NodeId>,
    /// Number of additional physical links to kill at random, drawn
    /// deterministically from [`FaultConfig::fault_seed`].
    pub random_dead_links: u8,
    /// Seed for the dedicated fault RNG (corruption draws + random kills).
    pub fault_seed: u64,
    /// Cycles a sender waits for an ack before re-sending its oldest
    /// unacknowledged flit.
    pub retransmit_timeout: u32,
    /// Extra wait cycles added per further resend of the same flit, so a
    /// persistently unlucky flit backs off instead of hammering the link.
    pub resend_backoff: u32,
    /// Deterministic timeline of mid-run kill/heal events (fault epochs).
    /// Empty by default; see [`crate::schedule::FaultSchedule`].
    pub schedule: FaultSchedule,
}

impl Default for FaultConfig {
    /// Fully disabled: no transient faults, no dead hardware. The recovery
    /// knobs keep sane values so enabling faults later needs only a rate or
    /// a kill list.
    fn default() -> Self {
        FaultConfig {
            transient_rate: 0.0,
            dead_links: Vec::new(),
            dead_routers: Vec::new(),
            random_dead_links: 0,
            fault_seed: 0xFA17,
            retransmit_timeout: 16,
            resend_backoff: 8,
            schedule: FaultSchedule::none(),
        }
    }
}

impl FaultConfig {
    /// A transient-only fault scenario at the given corruption rate.
    pub fn transient(rate: f64) -> Self {
        FaultConfig {
            transient_rate: rate,
            ..FaultConfig::default()
        }
    }

    /// True when any fault is configured; false means the simulator must be
    /// bit-identical to a build without the fault layer.
    pub fn enabled(&self) -> bool {
        self.transient_rate > 0.0 || self.has_permanent() || self.has_schedule()
    }

    /// True when any permanent (link/router kill) fault is configured.
    pub fn has_permanent(&self) -> bool {
        !self.dead_links.is_empty() || !self.dead_routers.is_empty() || self.random_dead_links > 0
    }

    /// True when a dynamic fault schedule (mid-run kill/heal events) is set.
    pub fn has_schedule(&self) -> bool {
        !self.schedule.is_empty()
    }

    /// Builder: kill the listed physical links.
    #[must_use]
    pub fn with_dead_links(mut self, links: Vec<(NodeId, Direction)>) -> Self {
        self.dead_links = links;
        self
    }

    /// Builder: kill the listed routers (all their links die with them).
    #[must_use]
    pub fn with_dead_routers(mut self, routers: Vec<NodeId>) -> Self {
        self.dead_routers = routers;
        self
    }

    /// Builder: kill `n` physical links drawn from the fault seed.
    #[must_use]
    pub fn with_random_dead_links(mut self, n: u8) -> Self {
        self.random_dead_links = n;
        self
    }

    /// Builder: replace the fault RNG seed.
    #[must_use]
    pub fn with_fault_seed(mut self, seed: u64) -> Self {
        self.fault_seed = seed;
        self
    }

    /// Builder: attach a dynamic kill/heal schedule.
    #[must_use]
    pub fn with_schedule(mut self, schedule: FaultSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Validates the scenario against a `cols`×`rows` mesh, returning a
    /// descriptive error for configurations that could only fail later as a
    /// panic deep inside network construction: corruption rates outside
    /// [0, 1], dead links/routers that are not on the mesh (or listed twice),
    /// more random kills than physical links, retransmission windows of zero
    /// (the go-back-N sender would spin-resend every cycle), and inconsistent
    /// kill/heal schedules.
    pub fn validate(&self, cols: u8, rows: u8) -> Result<(), String> {
        let n = usize::from(cols) * usize::from(rows);
        if !self.transient_rate.is_finite() || !(0.0..=1.0).contains(&self.transient_rate) {
            return Err(format!(
                "fault config: transient_rate {} is not a probability in [0, 1]",
                self.transient_rate
            ));
        }
        // Canonical physical-link ids seen so far, endpoint-normalized so the
        // same link named from either side — (u, East) vs (u+1, West) —
        // collides. Duplicates are configuration bugs, not requests to kill
        // harder; reject them here instead of silently deduping when the
        // routing mask is built.
        let mut seen_links: Vec<(u16, u8)> = Vec::with_capacity(self.dead_links.len());
        for &(node, d) in &self.dead_links {
            if !d.is_cardinal() {
                return Err(format!(
                    "fault config: dead link ({node}, {d:?}) is not a mesh link \
                     (only cardinal directions name links)"
                ));
            }
            if node.idx() >= n {
                return Err(format!(
                    "fault config: dead link ({node}, {d:?}) names node {} outside \
                     the {cols}x{rows} mesh ({n} nodes)",
                    node.0
                ));
            }
            let Some(to) = d.step(node.to_coord(cols), cols, rows) else {
                return Err(format!(
                    "fault config: dead link ({node}, {d:?}) points off the edge of \
                     the {cols}x{rows} mesh"
                ));
            };
            let peer = to.to_node(cols);
            if peer == node {
                return Err(format!(
                    "fault config: dead link ({node}, {d:?}) is a self-loop"
                ));
            }
            let id = if peer.0 < node.0 {
                (peer.0, d.opposite().index() as u8)
            } else {
                (node.0, d.index() as u8)
            };
            if seen_links.contains(&id) {
                return Err(format!(
                    "fault config: dead link ({node}, {d:?}) names a physical link \
                     already listed (a dead link is dead in both directions; list \
                     each link once)"
                ));
            }
            seen_links.push(id);
        }
        let mut seen_routers: Vec<NodeId> = Vec::with_capacity(self.dead_routers.len());
        for &node in &self.dead_routers {
            if node.idx() >= n {
                return Err(format!(
                    "fault config: dead router {} is outside the {cols}x{rows} mesh \
                     ({n} nodes)",
                    node.0
                ));
            }
            if seen_routers.contains(&node) {
                return Err(format!(
                    "fault config: dead router {} is listed twice",
                    node.0
                ));
            }
            seen_routers.push(node);
        }
        if self.has_schedule() {
            if self.random_dead_links > 0 {
                return Err("fault config: a fault schedule cannot be combined with \
                     random_dead_links (the schedule's kill/heal consistency cannot \
                     be checked against random initial kills); list the initial dead \
                     links explicitly"
                    .to_string());
            }
            self.schedule
                .validate(cols, rows, &self.dead_links, &self.dead_routers)?;
        }
        let physical_links = usize::from(cols) * usize::from(rows.saturating_sub(1))
            + usize::from(rows) * usize::from(cols.saturating_sub(1));
        if usize::from(self.random_dead_links) > physical_links {
            return Err(format!(
                "fault config: {} random dead links requested but the {cols}x{rows} \
                 mesh only has {physical_links} physical links",
                self.random_dead_links
            ));
        }
        if self.transient_rate > 0.0 && self.retransmit_timeout == 0 {
            return Err(
                "fault config: retransmit_timeout of 0 with transient faults enabled \
                 would resend every cycle; use a window of at least 1"
                    .to_string(),
            );
        }
        Ok(())
    }

    /// Canonical single-line rendering, used in checkpoint keys and dump
    /// headers. Stable across runs: field order is fixed and floats are
    /// printed through their bit pattern.
    pub fn canonical(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = write!(s, "tr={:016x}", self.transient_rate.to_bits());
        let _ = write!(s, ";dl=");
        for (n, d) in &self.dead_links {
            let _ = write!(s, "{}:{},", n.0, d.index());
        }
        let _ = write!(s, ";dr=");
        for n in &self.dead_routers {
            let _ = write!(s, "{},", n.0);
        }
        let _ = write!(
            s,
            ";rk={};fs={};to={};bo={}",
            self.random_dead_links, self.fault_seed, self.retransmit_timeout, self.resend_backoff
        );
        // Schedules extend the digest; empty schedules keep pre-schedule
        // renderings (and therefore existing checkpoint keys) unchanged.
        if self.has_schedule() {
            let _ = write!(s, ";ev={}", self.schedule.canonical());
        }
        s
    }
}

/// FNV-1a hash of a byte string; used for stable config digests in
/// checkpoint keys (no external hash crates in the workspace).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled() {
        let f = FaultConfig::default();
        assert!(!f.enabled());
        assert!(!f.has_permanent());
    }

    #[test]
    fn transient_and_permanent_enable() {
        assert!(FaultConfig::transient(0.01).enabled());
        assert!(FaultConfig::default()
            .with_dead_links(vec![(NodeId(3), Direction::East)])
            .enabled());
        assert!(FaultConfig::default().with_random_dead_links(2).enabled());
    }

    #[test]
    fn validate_accepts_sane_scenarios() {
        assert!(FaultConfig::default().validate(4, 4).is_ok());
        assert!(FaultConfig::transient(0.1).validate(4, 4).is_ok());
        assert!(FaultConfig::default()
            .with_dead_links(vec![(NodeId(5), Direction::East)])
            .validate(4, 4)
            .is_ok());
        assert!(FaultConfig::default()
            .with_random_dead_links(3)
            .validate(4, 4)
            .is_ok());
    }

    #[test]
    fn validate_rejects_bad_rates() {
        for rate in [-0.1, 1.5, f64::NAN, f64::INFINITY] {
            let err = FaultConfig::transient(rate).validate(4, 4).unwrap_err();
            assert!(err.contains("transient_rate"), "{err}");
        }
    }

    #[test]
    fn validate_rejects_off_mesh_hardware() {
        let err = FaultConfig::default()
            .with_dead_links(vec![(NodeId(99), Direction::East)])
            .validate(4, 4)
            .unwrap_err();
        assert!(err.contains("outside the 4x4 mesh"), "{err}");

        // Node 3 is the NE corner of a 4x4 mesh: East points off the edge.
        let err = FaultConfig::default()
            .with_dead_links(vec![(NodeId(3), Direction::East)])
            .validate(4, 4)
            .unwrap_err();
        assert!(err.contains("off the edge"), "{err}");

        let err = FaultConfig::default()
            .with_dead_links(vec![(NodeId(3), Direction::Local)])
            .validate(4, 4)
            .unwrap_err();
        assert!(err.contains("not a mesh link"), "{err}");

        let err = FaultConfig::default()
            .with_dead_routers(vec![NodeId(16)])
            .validate(4, 4)
            .unwrap_err();
        assert!(err.contains("dead router"), "{err}");
    }

    #[test]
    fn validate_rejects_degenerate_windows_and_overkill() {
        let bad = FaultConfig {
            retransmit_timeout: 0,
            ..FaultConfig::transient(0.01)
        };
        assert!(bad
            .validate(4, 4)
            .unwrap_err()
            .contains("retransmit_timeout"));
        // ...but a zero window is fine when transients are off.
        let off = FaultConfig {
            retransmit_timeout: 0,
            ..FaultConfig::default()
        };
        assert!(off.validate(4, 4).is_ok());

        // A 2x2 mesh has 4 physical links.
        let err = FaultConfig::default()
            .with_random_dead_links(5)
            .validate(2, 2)
            .unwrap_err();
        assert!(err.contains("4 physical links"), "{err}");
    }

    #[test]
    fn validate_rejects_duplicate_and_aliased_dead_links() {
        // Exact duplicate.
        let err = FaultConfig::default()
            .with_dead_links(vec![
                (NodeId(5), Direction::East),
                (NodeId(5), Direction::East),
            ])
            .validate(4, 4)
            .unwrap_err();
        assert!(err.contains("already listed"), "{err}");

        // Same physical link named from the other endpoint.
        let err = FaultConfig::default()
            .with_dead_links(vec![
                (NodeId(5), Direction::East),
                (NodeId(6), Direction::West),
            ])
            .validate(4, 4)
            .unwrap_err();
        assert!(err.contains("already listed"), "{err}");

        // Vertical alias: (1, South) and (5, North) are one link.
        let err = FaultConfig::default()
            .with_dead_links(vec![
                (NodeId(1), Direction::South),
                (NodeId(5), Direction::North),
            ])
            .validate(4, 4)
            .unwrap_err();
        assert!(err.contains("already listed"), "{err}");

        // Two genuinely different links are fine.
        assert!(FaultConfig::default()
            .with_dead_links(vec![
                (NodeId(5), Direction::East),
                (NodeId(5), Direction::South),
            ])
            .validate(4, 4)
            .is_ok());

        // Duplicate dead routers.
        let err = FaultConfig::default()
            .with_dead_routers(vec![NodeId(3), NodeId(3)])
            .validate(4, 4)
            .unwrap_err();
        assert!(err.contains("listed twice"), "{err}");
    }

    #[test]
    fn validate_checks_schedules() {
        use crate::schedule::FaultSchedule;

        let ok = FaultConfig::default().with_schedule(FaultSchedule::link_flap(
            NodeId(5),
            Direction::East,
            100,
            200,
        ));
        assert!(ok.enabled());
        assert!(!ok.has_permanent());
        assert!(ok.has_schedule());
        assert!(ok.validate(4, 4).is_ok());

        // Schedule inconsistent with the initial dead set.
        let bad = FaultConfig::default()
            .with_dead_links(vec![(NodeId(5), Direction::East)])
            .with_schedule(FaultSchedule::link_flap(
                NodeId(5),
                Direction::East,
                100,
                200,
            ));
        assert!(bad.validate(4, 4).unwrap_err().contains("already-dead"));

        // Schedules cannot ride on random kills.
        let bad = FaultConfig::default()
            .with_random_dead_links(1)
            .with_schedule(FaultSchedule::link_flap(
                NodeId(5),
                Direction::East,
                100,
                200,
            ));
        assert!(bad
            .validate(4, 4)
            .unwrap_err()
            .contains("random_dead_links"));
    }

    #[test]
    fn canonical_folds_in_schedule() {
        use crate::schedule::FaultSchedule;

        let plain = FaultConfig::default();
        let flap = FaultConfig::default().with_schedule(FaultSchedule::link_flap(
            NodeId(5),
            Direction::East,
            100,
            200,
        ));
        assert!(!plain.canonical().contains(";ev="));
        assert!(flap.canonical().contains(";ev="));
        assert_ne!(plain.canonical(), flap.canonical());

        let other = FaultConfig::default().with_schedule(FaultSchedule::link_flap(
            NodeId(5),
            Direction::East,
            100,
            201,
        ));
        assert_ne!(flap.canonical(), other.canonical());
    }

    #[test]
    fn canonical_is_stable_and_distinguishes() {
        let a = FaultConfig::transient(0.05);
        let b = FaultConfig::transient(0.05);
        assert_eq!(a.canonical(), b.canonical());
        let c = FaultConfig::transient(0.06);
        assert_ne!(a.canonical(), c.canonical());
        assert_ne!(
            fnv1a(a.canonical().as_bytes()),
            fnv1a(c.canonical().as_bytes())
        );
    }
}
