//! Vocabulary types shared by every crate in the SEEC reproduction.
//!
//! This crate deliberately contains *no* behaviour beyond small, pure helpers:
//! coordinates and node identifiers on a 2D mesh, mesh port directions, flit
//! and packet descriptors, message classes, and the network configuration
//! structure. Everything is `Copy` or cheaply clonable so the simulator's hot
//! loop never allocates for bookkeeping.

#![forbid(unsafe_code)]

pub mod config;
pub mod direction;
pub mod fault;
pub mod flit;
pub mod geometry;
pub mod message;
pub mod recovery;
pub mod schedule;

pub use config::{BaseRouting, BufferOrg, NetConfig, RoutingAlgo, SchemeKind};
pub use direction::{Direction, PortId, NUM_PORTS};
pub use fault::FaultConfig;
pub use flit::{Flit, FlitKind, Packet};
pub use geometry::{Coord, NodeId};
pub use message::{MessageClass, PacketId};
pub use recovery::RecoveryConfig;
pub use schedule::{FaultAction, FaultEvent, FaultSchedule};

/// Simulation time, in router clock cycles.
pub type Cycle = u64;
