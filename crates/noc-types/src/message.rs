//! Message classes and packet identifiers.

use std::fmt;

/// Coherence-protocol message class (the paper's "message class" /
/// per-VNet partitioning unit). The MOESI-hammer-style protocol used for the
/// application experiments has six classes; synthetic traffic uses one.
///
/// Classes are ordered: higher-numbered classes are "closer to terminating"
/// in the protocol dependency chain (see `noc-protocol`). The class number is
/// what a seeker carries and what an ejection VC is reserved for.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct MessageClass(pub u8);

impl MessageClass {
    /// The single class used by synthetic traffic runs.
    pub const SYNTH: MessageClass = MessageClass(0);

    /// Raw index for table lookups.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MessageClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mc{}", self.0)
    }
}

/// Globally unique packet identifier, assigned at injection-queue entry.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct PacketId(pub u64);

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_ordering_follows_index() {
        assert!(MessageClass(0) < MessageClass(5));
        assert_eq!(MessageClass(3).idx(), 3);
    }
}
