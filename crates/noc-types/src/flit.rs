//! Packets and flits.
//!
//! Packets are broken into one or more flits to match the 128-bit link
//! bandwidth (Table 4 of the paper): requests and acks are 1 flit, data
//! responses are 5 flits.

use crate::geometry::NodeId;
use crate::message::{MessageClass, PacketId};
use crate::Cycle;

/// Position of a flit within its packet.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FlitKind {
    /// First flit of a multi-flit packet; carries the routable header.
    Head,
    /// Interior flit.
    Body,
    /// Last flit; releases the upstream VC when it departs.
    Tail,
    /// The only flit of a single-flit packet (head and tail at once).
    HeadTail,
}

impl FlitKind {
    /// True for `Head` and `HeadTail` — the flits that carry a header and may
    /// be selected by route computation or a seeker.
    #[inline]
    pub const fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::HeadTail)
    }

    /// True for `Tail` and `HeadTail` — the flits whose departure frees a VC.
    #[inline]
    pub const fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::HeadTail)
    }

    /// The kind of flit number `seq` inside a packet of `len` flits.
    pub const fn for_seq(seq: u8, len: u8) -> FlitKind {
        if len == 1 {
            FlitKind::HeadTail
        } else if seq == 0 {
            FlitKind::Head
        } else if seq + 1 == len {
            FlitKind::Tail
        } else {
            FlitKind::Body
        }
    }
}

/// A packet descriptor, as produced by a traffic generator and queued at the
/// source NIC. The NIC expands it into `len_flits` flits at injection.
#[derive(Clone, Copy, Debug)]
pub struct Packet {
    pub id: PacketId,
    pub src: NodeId,
    pub dest: NodeId,
    pub class: MessageClass,
    pub len_flits: u8,
    /// Cycle the packet entered the source NIC's injection queue.
    pub birth: Cycle,
    /// Whether the packet counts toward statistics (injected after warm-up).
    pub measured: bool,
}

/// A flit in flight. Each flit carries a copy of the header fields it needs so
/// the simulator never chases a pointer to a packet table in the hot loop.
#[derive(Clone, Copy, Debug)]
pub struct Flit {
    pub packet: PacketId,
    pub kind: FlitKind,
    /// Flit index within the packet, `0..len`.
    pub seq: u8,
    /// Total flits in the packet.
    pub len: u8,
    pub src: NodeId,
    pub dest: NodeId,
    pub class: MessageClass,
    /// Cycle the packet entered the source NIC's injection queue.
    pub birth: Cycle,
    /// Cycle this flit left the NIC and entered the network, filled at
    /// injection.
    pub inject: Cycle,
    /// Hops traversed so far (router-to-router link traversals).
    pub hops: u8,
    /// VC identifier carried in the flit header: the VC at the *next* input
    /// port this flit is destined for, written by the sender at switch
    /// traversal (real head flits carry exactly this field).
    pub vc: u8,
    /// True while the flit is part of a Free-Flow (FF) traversal.
    pub ff: bool,
    /// True while the packet travels in escape VCs (Duato baseline): set when
    /// the head is allocated an escape VC, so the downstream router applies
    /// west-first routing to it.
    pub escape: bool,
    /// Cycle the packet was upgraded to FF by a seeker, if it ever was.
    pub ff_upgrade: Option<Cycle>,
    /// Whether the packet counts toward statistics.
    pub measured: bool,
}

impl Flit {
    /// Expands flit `seq` of `packet`, stamped with injection cycle `inject`.
    pub fn from_packet(packet: &Packet, seq: u8, inject: Cycle) -> Flit {
        debug_assert!(seq < packet.len_flits);
        Flit {
            packet: packet.id,
            kind: FlitKind::for_seq(seq, packet.len_flits),
            seq,
            len: packet.len_flits,
            src: packet.src,
            dest: packet.dest,
            class: packet.class,
            birth: packet.birth,
            inject,
            hops: 0,
            vc: 0,
            ff: false,
            escape: false,
            ff_upgrade: None,
            measured: packet.measured,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flit_kinds_for_single_flit_packet() {
        assert_eq!(FlitKind::for_seq(0, 1), FlitKind::HeadTail);
        assert!(FlitKind::HeadTail.is_head());
        assert!(FlitKind::HeadTail.is_tail());
    }

    #[test]
    fn flit_kinds_for_five_flit_packet() {
        let kinds: Vec<_> = (0..5).map(|s| FlitKind::for_seq(s, 5)).collect();
        assert_eq!(kinds[0], FlitKind::Head);
        assert_eq!(kinds[1], FlitKind::Body);
        assert_eq!(kinds[3], FlitKind::Body);
        assert_eq!(kinds[4], FlitKind::Tail);
        assert!(kinds[0].is_head() && !kinds[0].is_tail());
        assert!(kinds[4].is_tail() && !kinds[4].is_head());
    }

    #[test]
    fn packet_expansion_copies_header() {
        let p = Packet {
            id: PacketId(7),
            src: NodeId(1),
            dest: NodeId(14),
            class: MessageClass(2),
            len_flits: 5,
            birth: 100,
            measured: true,
        };
        let f = Flit::from_packet(&p, 4, 123);
        assert_eq!(f.kind, FlitKind::Tail);
        assert_eq!(f.dest, NodeId(14));
        assert_eq!(f.inject, 123);
        assert_eq!(f.birth, 100);
        assert!(f.measured);
        assert!(!f.ff);
    }
}
