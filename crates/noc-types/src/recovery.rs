//! Runtime recovery configuration.
//!
//! A [`RecoveryConfig`] rides on [`crate::NetConfig`] and arms the runtime
//! recovery layer in `noc-sim::recovery`: instead of the watchdog dumping a
//! black box and panicking when the network wedges, the recovery layer
//! selects a victim packet from the wait-for cycle (or, for livelock, the
//! oldest blocked head), drains it through a reserved serialized XY recovery
//! channel, and lets the dependents make progress. The default value is
//! fully disabled; the engine promises bit-identical behaviour to a build
//! without the recovery layer whenever [`RecoveryConfig::enabled`] is false.
//!
//! Two independent sub-layers are configured here:
//!
//! * **Drain recovery** (`enabled` + `stuck_threshold`) — the in-network
//!   escape path for deadlock/livelock victims. The threshold must sit well
//!   below the watchdog's panic threshold so recovery fires first; the
//!   watchdog stays armed as the backstop for a recovery layer that cannot
//!   find a viable victim.
//! * **End-to-end retransmission** (`e2e_timeout` > 0) — NIC-level
//!   per-packet timeout retransmission with duplicate suppression at
//!   ejection, covering losses no link-layer protocol can heal (a router
//!   dying mid-flight with flits buffered inside it). Off by default: near
//!   saturation, honest queueing delay exceeds any fixed timeout, so e2e
//!   retransmission is a fault-scenario tool, not a general-traffic one.

use serde::{Deserialize, Serialize};

/// Runtime-recovery knobs carried by [`crate::NetConfig`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryConfig {
    /// Arms drain recovery. When false the whole layer is compiled out of
    /// the run: no recovery state is allocated and the cycle loop takes no
    /// recovery branches.
    pub enabled: bool,
    /// Cycles without global progress before the recovery layer looks for a
    /// victim. Must be below the watchdog's stuck threshold (the watchdog
    /// panics; recovery pre-empts it).
    pub stuck_threshold: u64,
    /// Base timeout (cycles) for NIC-level end-to-end retransmission of a
    /// whole packet; `0` disables the end-to-end layer.
    pub e2e_timeout: u64,
    /// Retransmission attempts per packet before the source NIC gives up
    /// and records the packet as abandoned.
    pub e2e_max_retries: u32,
}

impl Default for RecoveryConfig {
    /// Fully disabled. The thresholds keep sane values so arming recovery
    /// later needs only the `enabled` flag.
    fn default() -> Self {
        RecoveryConfig {
            enabled: false,
            stuck_threshold: 512,
            e2e_timeout: 0,
            e2e_max_retries: 4,
        }
    }
}

impl RecoveryConfig {
    /// Drain recovery armed at the default threshold, end-to-end layer off.
    pub fn drain() -> Self {
        RecoveryConfig {
            enabled: true,
            ..RecoveryConfig::default()
        }
    }

    /// True when any recovery machinery must be built for the run.
    pub fn any(&self) -> bool {
        self.enabled || self.e2e_timeout > 0
    }

    /// Builder: arm or disarm drain recovery.
    #[must_use]
    pub fn with_enabled(mut self, enabled: bool) -> Self {
        self.enabled = enabled;
        self
    }

    /// Builder: replace the drain stuck threshold.
    #[must_use]
    pub fn with_stuck_threshold(mut self, cycles: u64) -> Self {
        self.stuck_threshold = cycles;
        self
    }

    /// Builder: arm end-to-end retransmission with the given base timeout.
    #[must_use]
    pub fn with_e2e(mut self, timeout: u64, max_retries: u32) -> Self {
        self.e2e_timeout = timeout;
        self.e2e_max_retries = max_retries;
        self
    }

    /// Rejects configurations that would arm the layer with degenerate
    /// knobs (they would spin every cycle or retransmit forever).
    pub fn validate(&self) -> Result<(), String> {
        if self.enabled && self.stuck_threshold == 0 {
            return Err("recovery config: stuck_threshold must be > 0 when drain \
                 recovery is enabled"
                .to_string());
        }
        if self.e2e_timeout > 0 && self.e2e_max_retries == 0 {
            return Err("recovery config: e2e_max_retries must be > 0 when the \
                 end-to-end layer is enabled"
                .to_string());
        }
        Ok(())
    }

    /// Canonical single-line rendering, folded into the config digest so
    /// checkpoint keys distinguish recovery-armed runs. Stable across runs.
    pub fn canonical(&self) -> String {
        format!(
            "re={};st={};et={};er={}",
            u8::from(self.enabled),
            self.stuck_threshold,
            self.e2e_timeout,
            self.e2e_max_retries
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled() {
        let r = RecoveryConfig::default();
        assert!(!r.enabled);
        assert!(!r.any());
        assert!(r.validate().is_ok());
    }

    #[test]
    fn drain_arms_only_the_drain_layer() {
        let r = RecoveryConfig::drain();
        assert!(r.enabled && r.any());
        assert_eq!(r.e2e_timeout, 0);
        assert!(r.validate().is_ok());
    }

    #[test]
    fn degenerate_knobs_are_rejected() {
        let r = RecoveryConfig::drain().with_stuck_threshold(0);
        assert!(r.validate().unwrap_err().contains("stuck_threshold"));
        let r = RecoveryConfig::default().with_e2e(32, 0);
        assert!(r.validate().unwrap_err().contains("e2e_max_retries"));
    }

    #[test]
    fn canonical_is_stable_and_distinguishes() {
        let a = RecoveryConfig::drain();
        assert_eq!(a.canonical(), RecoveryConfig::drain().canonical());
        assert_ne!(a.canonical(), RecoveryConfig::default().canonical());
        assert_ne!(
            a.canonical(),
            RecoveryConfig::drain().with_e2e(64, 4).canonical()
        );
    }
}
