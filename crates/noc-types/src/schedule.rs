//! Dynamic fault schedules: a deterministic timeline of kill/heal events.
//!
//! A [`FaultSchedule`] rides on [`crate::fault::FaultConfig`] and turns the
//! static fault model of PR 3 (hardware dead at construction time, forever)
//! into a time-varying one: links and routers can die *and heal* mid-run at
//! pre-declared cycles. The engine applies each event at the start of its
//! cycle, opening a new **fault epoch** — routing masks are rebuilt, escape
//! paths re-armed, and (under `check-invariants`) the degraded mesh can be
//! re-certified online by the chaos harness.
//!
//! Schedules are plain data: ordered, validated against the mesh and against
//! the initial dead set, and folded into the config digest via
//! [`FaultSchedule::canonical`], so two runs with the same digest replay the
//! same timeline bit-for-bit. All the *choice* of what to kill lives in the
//! harness (noc-experiments' chaos generator); this type only records and
//! checks the outcome.

use crate::direction::Direction;
use crate::geometry::NodeId;
use crate::Cycle;
use serde::{Deserialize, Serialize};

/// One reconfiguration action applied at a scheduled cycle.
///
/// Link actions name a *physical* (bidirectional) link from one endpoint,
/// exactly like `FaultConfig::dead_links`; killing `(n, East)` severs both
/// directions between `n` and its eastern neighbour. Router actions take the
/// router's four links down (or restore them) together with its NIC.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum FaultAction {
    /// Sever a live physical link (both directions).
    KillLink(NodeId, Direction),
    /// Restore a previously-killed physical link.
    HealLink(NodeId, Direction),
    /// Take a live router (and its four links + NIC) offline.
    KillRouter(NodeId),
    /// Restore a previously-killed router.
    HealRouter(NodeId),
}

impl FaultAction {
    /// Short stable code used in canonical renderings and trace rows.
    pub fn code(&self) -> &'static str {
        match self {
            FaultAction::KillLink(..) => "kl",
            FaultAction::HealLink(..) => "hl",
            FaultAction::KillRouter(_) => "kr",
            FaultAction::HealRouter(_) => "hr",
        }
    }

    /// True for the two kill variants.
    pub fn is_kill(&self) -> bool {
        matches!(self, FaultAction::KillLink(..) | FaultAction::KillRouter(_))
    }
}

/// A single timed event in a fault schedule.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Cycle the action takes effect (applied at the start of this cycle,
    /// before any flit moves). Must be ≥ 1: cycle-0 state belongs to the
    /// static `FaultConfig` lists.
    pub at: Cycle,
    pub action: FaultAction,
}

/// A deterministic timeline of kill/heal events.
///
/// Events must be ordered by cycle (ties allowed — e.g. a brownout killing
/// several links in the same cycle — and applied in list order), and must
/// describe a *consistent* state machine: no killing dead hardware, no
/// healing live hardware. [`FaultSchedule::validate`] enforces both against
/// the initial dead set.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct FaultSchedule {
    pub events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// An empty schedule (no dynamic events; static fault model only).
    pub fn none() -> Self {
        FaultSchedule::default()
    }

    /// A schedule from an explicit event list.
    pub fn new(events: Vec<FaultEvent>) -> Self {
        FaultSchedule { events }
    }

    /// True when the schedule contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Cycle of the last event, or `None` for an empty schedule.
    pub fn last_event_cycle(&self) -> Option<Cycle> {
        self.events.last().map(|e| e.at)
    }

    /// A single kill + heal *flap* of one physical link.
    pub fn link_flap(node: NodeId, dir: Direction, kill_at: Cycle, heal_at: Cycle) -> Self {
        FaultSchedule::new(vec![
            FaultEvent {
                at: kill_at,
                action: FaultAction::KillLink(node, dir),
            },
            FaultEvent {
                at: heal_at,
                action: FaultAction::HealLink(node, dir),
            },
        ])
    }

    /// A periodic flap train: `count` kill/heal pairs on one link, each kill
    /// lasting `down` cycles with `up` live cycles between pairs.
    pub fn flap_train(
        node: NodeId,
        dir: Direction,
        start: Cycle,
        down: Cycle,
        up: Cycle,
        count: u32,
    ) -> Self {
        let mut events = Vec::with_capacity(count as usize * 2);
        let period = down + up;
        for i in 0..u64::from(count) {
            let kill = start + i * period;
            events.push(FaultEvent {
                at: kill,
                action: FaultAction::KillLink(node, dir),
            });
            events.push(FaultEvent {
                at: kill + down,
                action: FaultAction::HealLink(node, dir),
            });
        }
        FaultSchedule::new(events)
    }

    /// A brownout window: every listed link dies at `start` and heals at
    /// `start + duration` (all in the same pair of epochs).
    pub fn brownout(links: &[(NodeId, Direction)], start: Cycle, duration: Cycle) -> Self {
        let mut events = Vec::with_capacity(links.len() * 2);
        for &(n, d) in links {
            events.push(FaultEvent {
                at: start,
                action: FaultAction::KillLink(n, d),
            });
        }
        for &(n, d) in links {
            events.push(FaultEvent {
                at: start + duration,
                action: FaultAction::HealLink(n, d),
            });
        }
        FaultSchedule::new(events)
    }

    /// Merges another schedule into this one, re-sorting by cycle (stable, so
    /// same-cycle events keep their relative order: self's first).
    #[must_use]
    pub fn merged(mut self, other: FaultSchedule) -> Self {
        self.events.extend(other.events);
        self.events.sort_by_key(|e| e.at);
        self
    }

    /// Validates the schedule against a `cols`×`rows` mesh and the initial
    /// dead set, returning a descriptive error for:
    ///
    /// * events at cycle 0 (initial state belongs to the static lists),
    /// * out-of-order events,
    /// * link events that are non-cardinal, off-mesh, off-edge, or self-loops,
    /// * router events off the mesh,
    /// * state-machine violations: killing already-dead hardware, healing
    ///   live hardware, or touching a link whose endpoint router is down.
    ///
    /// `initial_links` / `initial_routers` are the statically-dead lists from
    /// the surrounding `FaultConfig` (assumed already validated). Schedules
    /// cannot be checked against *random* initial kills, so the caller must
    /// reject `random_dead_links > 0` alongside a non-empty schedule.
    pub fn validate(
        &self,
        cols: u8,
        rows: u8,
        initial_links: &[(NodeId, Direction)],
        initial_routers: &[NodeId],
    ) -> Result<(), String> {
        let n = usize::from(cols) * usize::from(rows);
        // Live-state tracking over canonical physical link ids and routers.
        let canon = |node: NodeId, d: Direction| -> Result<(u16, u8), String> {
            if !d.is_cardinal() {
                return Err(format!(
                    "fault schedule: link event ({node}, {d:?}) is not a mesh link \
                     (only cardinal directions name links)"
                ));
            }
            if node.idx() >= n {
                return Err(format!(
                    "fault schedule: link event ({node}, {d:?}) names node {} outside \
                     the {cols}x{rows} mesh ({n} nodes)",
                    node.0
                ));
            }
            let Some(to) = d.step(node.to_coord(cols), cols, rows) else {
                return Err(format!(
                    "fault schedule: link event ({node}, {d:?}) points off the edge \
                     of the {cols}x{rows} mesh"
                ));
            };
            let peer = to.to_node(cols);
            if peer == node {
                return Err(format!(
                    "fault schedule: link event ({node}, {d:?}) is a self-loop"
                ));
            }
            // Canonical id: the lower endpoint plus the direction leading to
            // the higher one, so (u, East) and (u+1, West) collide.
            if peer.0 < node.0 {
                Ok((peer.0, d.opposite().index() as u8))
            } else {
                Ok((node.0, d.index() as u8))
            }
        };

        let mut dead_links: Vec<(u16, u8)> = Vec::new();
        for &(node, d) in initial_links {
            let id = canon(node, d)?;
            if !dead_links.contains(&id) {
                dead_links.push(id);
            }
        }
        let mut dead_routers: Vec<NodeId> = initial_routers.to_vec();

        let mut prev_at: Cycle = 0;
        for ev in &self.events {
            if ev.at == 0 {
                return Err(format!(
                    "fault schedule: event {:?} at cycle 0; initial faults belong in \
                     dead_links/dead_routers",
                    ev.action
                ));
            }
            if ev.at < prev_at {
                return Err(format!(
                    "fault schedule: event {:?} at cycle {} is out of order (previous \
                     event was at cycle {prev_at}); sort events by cycle",
                    ev.action, ev.at
                ));
            }
            prev_at = ev.at;
            match ev.action {
                FaultAction::KillLink(node, d) | FaultAction::HealLink(node, d) => {
                    let id = canon(node, d)?;
                    let peer = d
                        .step(node.to_coord(cols), cols, rows)
                        .expect("canon validated the step")
                        .to_node(cols);
                    for r in [node, peer] {
                        if dead_routers.contains(&r) {
                            return Err(format!(
                                "fault schedule: link event ({node}, {d:?}) at cycle {} \
                                 touches router {} which is down at that point; heal the \
                                 router first",
                                ev.at, r.0
                            ));
                        }
                    }
                    let is_dead = dead_links.contains(&id);
                    if ev.action.is_kill() {
                        if is_dead {
                            return Err(format!(
                                "fault schedule: kill of already-dead link ({node}, {d:?}) \
                                 at cycle {}",
                                ev.at
                            ));
                        }
                        dead_links.push(id);
                    } else {
                        if !is_dead {
                            return Err(format!(
                                "fault schedule: heal of live link ({node}, {d:?}) at \
                                 cycle {}",
                                ev.at
                            ));
                        }
                        dead_links.retain(|&l| l != id);
                    }
                }
                FaultAction::KillRouter(node) | FaultAction::HealRouter(node) => {
                    if node.idx() >= n {
                        return Err(format!(
                            "fault schedule: router event for node {} outside the \
                             {cols}x{rows} mesh ({n} nodes)",
                            node.0
                        ));
                    }
                    let is_dead = dead_routers.contains(&node);
                    if ev.action.is_kill() {
                        if is_dead {
                            return Err(format!(
                                "fault schedule: kill of already-dead router {} at \
                                 cycle {}",
                                node.0, ev.at
                            ));
                        }
                        dead_routers.push(node);
                    } else {
                        if !is_dead {
                            return Err(format!(
                                "fault schedule: heal of live router {} at cycle {}",
                                node.0, ev.at
                            ));
                        }
                        dead_routers.retain(|&r| r != node);
                    }
                }
            }
        }
        Ok(())
    }

    /// Canonical single-line rendering folded into `FaultConfig::canonical`
    /// (and therefore the config digest). Empty schedules render as the empty
    /// string so pre-schedule digests are unchanged.
    pub fn canonical(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for ev in &self.events {
            let _ = match ev.action {
                FaultAction::KillLink(n, d) | FaultAction::HealLink(n, d) => {
                    write!(s, "{}:{}:{}:{},", ev.at, ev.action.code(), n.0, d.index())
                }
                FaultAction::KillRouter(n) | FaultAction::HealRouter(n) => {
                    write!(s, "{}:{}:{},", ev.at, ev.action.code(), n.0)
                }
            };
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kl(at: Cycle, node: u16, d: Direction) -> FaultEvent {
        FaultEvent {
            at,
            action: FaultAction::KillLink(NodeId(node), d),
        }
    }

    fn hl(at: Cycle, node: u16, d: Direction) -> FaultEvent {
        FaultEvent {
            at,
            action: FaultAction::HealLink(NodeId(node), d),
        }
    }

    #[test]
    fn flap_constructors_are_ordered_and_valid() {
        let s = FaultSchedule::link_flap(NodeId(5), Direction::East, 100, 200);
        assert_eq!(s.len(), 2);
        assert!(s.validate(4, 4, &[], &[]).is_ok());

        let t = FaultSchedule::flap_train(NodeId(5), Direction::East, 50, 20, 30, 3);
        assert_eq!(t.len(), 6);
        assert_eq!(t.last_event_cycle(), Some(50 + 2 * 50 + 20));
        assert!(t.validate(4, 4, &[], &[]).is_ok());

        let b = FaultSchedule::brownout(
            &[(NodeId(1), Direction::South), (NodeId(5), Direction::East)],
            80,
            40,
        );
        assert_eq!(b.len(), 4);
        assert!(b.validate(4, 4, &[], &[]).is_ok());
    }

    #[test]
    fn validate_rejects_structural_errors() {
        // Cycle-0 event.
        let s = FaultSchedule::new(vec![kl(0, 5, Direction::East)]);
        assert!(s.validate(4, 4, &[], &[]).unwrap_err().contains("cycle 0"));

        // Out of order.
        let s = FaultSchedule::new(vec![
            kl(200, 5, Direction::East),
            hl(100, 5, Direction::East),
        ]);
        assert!(s
            .validate(4, 4, &[], &[])
            .unwrap_err()
            .contains("out of order"));

        // Off-edge link.
        let s = FaultSchedule::new(vec![kl(10, 3, Direction::East)]);
        assert!(s
            .validate(4, 4, &[], &[])
            .unwrap_err()
            .contains("off the edge"));

        // Non-cardinal.
        let s = FaultSchedule::new(vec![kl(10, 3, Direction::Local)]);
        assert!(s
            .validate(4, 4, &[], &[])
            .unwrap_err()
            .contains("not a mesh link"));

        // Off-mesh router.
        let s = FaultSchedule::new(vec![FaultEvent {
            at: 10,
            action: FaultAction::KillRouter(NodeId(16)),
        }]);
        assert!(s
            .validate(4, 4, &[], &[])
            .unwrap_err()
            .contains("outside the 4x4"));
    }

    #[test]
    fn validate_tracks_live_state() {
        // Double kill, including via the aliased name from the other side:
        // (5, East) and (6, West) are the same physical link.
        let s = FaultSchedule::new(vec![kl(10, 5, Direction::East), kl(20, 6, Direction::West)]);
        assert!(s
            .validate(4, 4, &[], &[])
            .unwrap_err()
            .contains("already-dead"));

        // Heal of a live link.
        let s = FaultSchedule::new(vec![hl(10, 5, Direction::East)]);
        assert!(s
            .validate(4, 4, &[], &[])
            .unwrap_err()
            .contains("heal of live link"));

        // Heal of an *initially* dead link is legal.
        let s = FaultSchedule::new(vec![hl(10, 5, Direction::East)]);
        assert!(s
            .validate(4, 4, &[(NodeId(6), Direction::West)], &[])
            .is_ok());

        // Kill → heal → kill again is a legal flap.
        let s = FaultSchedule::new(vec![
            kl(10, 5, Direction::East),
            hl(20, 5, Direction::East),
            kl(30, 6, Direction::West),
        ]);
        assert!(s.validate(4, 4, &[], &[]).is_ok());

        // Router state machine.
        let s = FaultSchedule::new(vec![
            FaultEvent {
                at: 10,
                action: FaultAction::KillRouter(NodeId(5)),
            },
            FaultEvent {
                at: 20,
                action: FaultAction::KillRouter(NodeId(5)),
            },
        ]);
        assert!(s
            .validate(4, 4, &[], &[])
            .unwrap_err()
            .contains("already-dead router"));

        // Link event under a dead router is rejected.
        let s = FaultSchedule::new(vec![
            FaultEvent {
                at: 10,
                action: FaultAction::KillRouter(NodeId(5)),
            },
            kl(20, 5, Direction::East),
        ]);
        assert!(s
            .validate(4, 4, &[], &[])
            .unwrap_err()
            .contains("router 5 which is down"));
    }

    #[test]
    fn canonical_is_stable_and_distinguishes() {
        let a = FaultSchedule::link_flap(NodeId(5), Direction::East, 100, 200);
        let b = FaultSchedule::link_flap(NodeId(5), Direction::East, 100, 200);
        assert_eq!(a.canonical(), b.canonical());
        let c = FaultSchedule::link_flap(NodeId(5), Direction::East, 100, 201);
        assert_ne!(a.canonical(), c.canonical());
        assert_eq!(FaultSchedule::none().canonical(), "");
    }

    #[test]
    fn merged_keeps_cycle_order() {
        let a = FaultSchedule::link_flap(NodeId(5), Direction::East, 100, 300);
        let b = FaultSchedule::link_flap(NodeId(1), Direction::South, 150, 250);
        let m = a.merged(b);
        let cycles: Vec<Cycle> = m.events.iter().map(|e| e.at).collect();
        assert_eq!(cycles, vec![100, 150, 250, 300]);
        assert!(m.validate(4, 4, &[], &[]).is_ok());
    }
}
