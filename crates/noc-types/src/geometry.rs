//! Mesh coordinates and node identifiers.

use std::fmt;

/// A position on the 2D mesh. `x` is the column (0 = west edge), `y` is the
/// row (0 = north edge). Matches the orientation used in the paper's figures:
/// router 1 is the top-left corner, numbering proceeds row-major.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Coord {
    /// Column index, 0-based from the west edge.
    pub x: u8,
    /// Row index, 0-based from the north edge.
    pub y: u8,
}

impl Coord {
    /// Builds a coordinate from column `x` and row `y`.
    pub const fn new(x: u8, y: u8) -> Self {
        Coord { x, y }
    }

    /// Converts to a linear node id on a mesh with `cols` columns (row-major).
    pub fn to_node(self, cols: u8) -> NodeId {
        NodeId(self.y as u16 * cols as u16 + self.x as u16)
    }

    /// Manhattan distance between two coordinates — the minimal hop count on
    /// a mesh.
    pub fn manhattan(self, other: Coord) -> u32 {
        (self.x.abs_diff(other.x) as u32) + (self.y.abs_diff(other.y) as u32)
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// Linear identifier of a router/NIC pair on the mesh, row-major.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub u16);

impl NodeId {
    /// Recovers the mesh coordinate on a mesh with `cols` columns.
    pub fn to_coord(self, cols: u8) -> Coord {
        Coord {
            x: (self.0 % cols as u16) as u8,
            y: (self.0 / cols as u16) as u8,
        }
    }

    /// The raw index as `usize`, for table lookups.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u16> for NodeId {
    fn from(v: u16) -> Self {
        NodeId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coord_node_roundtrip() {
        for cols in [1u8, 3, 4, 8, 16] {
            for y in 0..cols {
                for x in 0..cols {
                    let c = Coord::new(x, y);
                    assert_eq!(c.to_node(cols).to_coord(cols), c);
                }
            }
        }
    }

    #[test]
    fn node_ids_are_row_major() {
        assert_eq!(Coord::new(0, 0).to_node(4), NodeId(0));
        assert_eq!(Coord::new(3, 0).to_node(4), NodeId(3));
        assert_eq!(Coord::new(0, 1).to_node(4), NodeId(4));
        assert_eq!(Coord::new(3, 3).to_node(4), NodeId(15));
    }

    #[test]
    fn manhattan_distance() {
        assert_eq!(Coord::new(0, 0).manhattan(Coord::new(3, 3)), 6);
        assert_eq!(Coord::new(2, 1).manhattan(Coord::new(2, 1)), 0);
        assert_eq!(Coord::new(5, 0).manhattan(Coord::new(0, 7)), 12);
    }
}
