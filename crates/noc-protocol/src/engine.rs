//! The closed-loop coherence engine (a [`Workload`] implementation).

use noc_sim::stats::DeliveredPacket;
use noc_sim::workload::{PacketFactory, Workload};
use noc_traffic::apps::AppProfile;
use noc_types::{Cycle, MessageClass, NodeId, Packet};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::collections::VecDeque;

/// Request (GetS/GetX): consumption gated on a free directory TBE.
pub const REQ: MessageClass = MessageClass(0);
/// Forward / invalidate: cores answer immediately.
pub const FWD: MessageClass = MessageClass(1);
/// Data response: MSHR reserved at request time, always consumable.
pub const DATA: MessageClass = MessageClass(2);
/// Ack (`InvAck` / WB-Ack / transfer notice): always consumable.
pub const ACK: MessageClass = MessageClass(3);
/// Writeback data: consumption gated on a free directory TBE.
pub const WB: MessageClass = MessageClass(4);
/// Unblock / completion: always consumable; frees the TBE.
pub const UNBLOCK: MessageClass = MessageClass(5);

/// Resource-induced message-class dependencies: `(gated, gating)` means the
/// *consumption* of a `gated`-class message can stall until some
/// `gating`-class message is delivered. These mirror exactly the two refusal
/// paths in [`ProtocolWorkload::deliver`]: `Request` and `WbData` bounce off
/// a full TBE pool, and only `Unblock` delivery frees a TBE. They are the
/// protocol-level half of the extended channel dependency graph the
/// `noc-verify` certifier builds: if `gated` and `gating` share a virtual
/// network, the dependency becomes a cycle through the network's buffers
/// (protocol-level deadlock exposure — the paper's motivation for running
/// the proactive baselines with one `VNet` per class).
pub const CLASS_RESOURCE_DEPS: &[(MessageClass, MessageClass)] = &[(REQ, UNBLOCK), (WB, UNBLOCK)];

/// Protocol resource limits and workload shape.
#[derive(Clone, Copy, Debug)]
pub struct ProtocolConfig {
    /// Outstanding-request capacity per core.
    pub mshrs: usize,
    /// Transaction-buffer entries per directory slice.
    pub tbes: usize,
    /// Transactions each core must complete; `None` = open-ended.
    pub txns_per_core: Option<u64>,
    /// Probability a completed transaction is followed by a writeback.
    pub wb_prob: f64,
    /// Number of "hot" home nodes the skewed fraction of requests target.
    pub hot_homes: usize,
    /// Livelock guard: consumption refusals a single Request/WbData message
    /// endures before the directory stops bouncing it. A refused message
    /// parks in its ejection VC and retries every cycle; past this bound a
    /// Request is consumed and nacked back to the requestor, a `WbData` is
    /// force-accepted (serviced from a reserved overflow slot). `0`
    /// disables both guards (a starving message retries forever — the
    /// pre-guard behaviour).
    pub nack_after: u32,
    /// Livelock guard: NACK-and-retry rounds a transaction endures before
    /// the requestor abandons it (frees the MSHR and lets the core re-issue
    /// fresh).
    pub max_retries: u32,
    /// Base backoff (cycles) before a nacked request re-issues; scaled
    /// linearly by the retry count so colliding requestors spread out.
    pub retry_backoff: Cycle,
    /// Anti-starvation rotation period for the hot home set: every this many
    /// cycles the set shifts by one node, so no directory slice absorbs the
    /// skewed traffic forever. `0` keeps the hot set fixed (the pre-guard
    /// behaviour).
    pub hot_rotation_period: Cycle,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            mshrs: 16,
            tbes: 8,
            txns_per_core: None,
            wb_prob: 0.2,
            hot_homes: 4,
            nack_after: 8,
            max_retries: 8,
            retry_backoff: 64,
            hot_rotation_period: 0,
        }
    }
}

/// What a packet means to the protocol.
#[derive(Clone, Copy, Debug)]
enum Msg {
    Request {
        txn: u64,
    },
    Forward {
        txn: u64,
    },
    Invalidate {
        txn: u64,
    },
    Data {
        txn: u64,
    },
    InvAck {
        txn: u64,
    },
    TransferAck {
        txn: u64,
    },
    Unblock {
        _txn: u64,
    },
    WbData,
    WbAck,
    /// Directory → requestor: the request bounced off a full TBE pool past
    /// the refusal bound; retry (or abandon) at the requestor. ACK class —
    /// always consumable, so the NACK itself can never starve.
    Nack {
        txn: u64,
    },
}

/// An outstanding transaction (one MSHR entry).
#[derive(Clone, Copy, Debug)]
struct Txn {
    requestor: NodeId,
    home: NodeId,
    is_write: bool,
    acks_needed: u32,
    acks_got: u32,
    got_data: bool,
    /// Cycle the MSHR was allocated (age tracking for the livelock guards).
    issued_at: Cycle,
    /// NACK-and-retry rounds so far; past `ProtocolConfig::max_retries` the
    /// requestor abandons.
    retries: u32,
}

/// Per-core state.
#[derive(Clone, Debug)]
struct Core {
    mshrs_in_use: usize,
    next_issue_at: Cycle,
    completed: u64,
}

/// Per-directory-slice state.
#[derive(Clone, Debug)]
struct Dir {
    tbes_in_use: usize,
}

/// The closed-loop coherence workload. Drives requests per the application
/// profile, gates consumption on directory resources (the source of
/// protocol-deadlock pressure), and reacts to deliveries with follow-up
/// messages.
pub struct ProtocolWorkload {
    profile: AppProfile,
    pcfg: ProtocolConfig,
    nodes: u16,
    warmup: Cycle,
    rng: SmallRng,
    factory: PacketFactory,
    meta: HashMap<noc_types::PacketId, Msg>,
    txns: HashMap<u64, Txn>,
    next_txn: u64,
    cores: Vec<Core>,
    dirs: Vec<Dir>,
    /// Messages to inject next `generate` (follow-ups and loopback).
    outbox: VecDeque<(NodeId, NodeId, MessageClass, u8, Msg)>,
    /// Messages held back until a release cycle (NACK retry backoff); moved
    /// into the outbox by `generate` once due, in queue order.
    delayed: VecDeque<(Cycle, NodeId, NodeId, MessageClass, u8, Msg)>,
    /// Consumption refusals per parked message (livelock guard input).
    refusal_counts: HashMap<noc_types::PacketId, u32>,
    /// Diagnostics.
    pub txns_completed: u64,
    pub consumption_refusals: u64,
    /// Requests bounced back to their requestor past the refusal bound.
    pub nacks_sent: u64,
    /// Transactions abandoned after exhausting their NACK retry budget.
    pub txns_abandoned: u64,
    /// Writebacks force-accepted past the refusal bound.
    pub wb_forced_accepts: u64,
}

impl ProtocolWorkload {
    pub fn new(
        profile: AppProfile,
        pcfg: ProtocolConfig,
        nodes: u16,
        warmup: Cycle,
        seed: u64,
    ) -> Self {
        assert!(nodes >= 2);
        ProtocolWorkload {
            profile,
            pcfg,
            nodes,
            warmup,
            rng: SmallRng::seed_from_u64(seed ^ 0xC0_4E4E4C),
            factory: PacketFactory::new(),
            meta: HashMap::new(),
            txns: HashMap::new(),
            next_txn: 0,
            cores: vec![
                Core {
                    mshrs_in_use: 0,
                    next_issue_at: 0,
                    completed: 0,
                };
                nodes as usize
            ],
            dirs: vec![Dir { tbes_in_use: 0 }; nodes as usize],
            outbox: VecDeque::new(),
            delayed: VecDeque::new(),
            refusal_counts: HashMap::new(),
            txns_completed: 0,
            consumption_refusals: 0,
            nacks_sent: 0,
            txns_abandoned: 0,
            wb_forced_accepts: 0,
        }
    }

    /// Age (cycles) of the oldest outstanding transaction, if any — the
    /// per-MSHR starvation signal surfaced to harnesses and tests.
    pub fn oldest_txn_age(&self, now: Cycle) -> Option<Cycle> {
        self.txns
            .values()
            .map(|t| now.saturating_sub(t.issued_at))
            .max()
    }

    /// Exponential think time with the profile's mean.
    fn think(&mut self) -> Cycle {
        let u: f64 = self.rng.gen_range(1e-9..1.0);
        (-self.profile.think_time * u.ln()).ceil() as Cycle
    }

    /// Picks a home directory, skewed toward the hot set; never the
    /// requestor itself (self-homed lines are serviced without the network).
    /// With `hot_rotation_period` set, the hot set's base node advances one
    /// position per period so the skewed load sweeps the mesh instead of
    /// starving a fixed set of directories.
    fn pick_home(&mut self, requestor: NodeId, cycle: Cycle) -> NodeId {
        let h = if self.rng.gen_bool(self.profile.home_skew) {
            let hot = self
                .rng
                .gen_range(0..self.pcfg.hot_homes.min(self.nodes as usize))
                as u16;
            let base = match self.pcfg.hot_rotation_period {
                0 => 0,
                period => ((cycle / period) % u64::from(self.nodes)) as u16,
            };
            NodeId((base + hot) % self.nodes)
        } else {
            NodeId(self.rng.gen_range(0..self.nodes))
        };
        if h == requestor {
            NodeId((h.0 + 1) % self.nodes)
        } else {
            h
        }
    }

    /// A random node other than `not`.
    fn pick_other(&mut self, not: NodeId) -> NodeId {
        let mut d = self.rng.gen_range(0..self.nodes - 1);
        if d >= not.0 {
            d += 1;
        }
        NodeId(d)
    }

    fn queue_msg(&mut self, from: NodeId, to: NodeId, class: MessageClass, len: u8, msg: Msg) {
        self.outbox.push_back((from, to, class, len, msg));
    }

    /// Directory-side handling once a Request/WbData is *accepted* (TBE held).
    fn dir_accept_request(&mut self, txn_id: u64) {
        let txn = self.txns[&txn_id];
        let home = txn.home;
        if self.rng.gen_bool(self.profile.fwd_prob) {
            // 3-hop: forward to the owner, who sends data + transfer ack.
            let owner = self.pick_other(txn.requestor);
            self.queue_msg(home, owner, FWD, 1, Msg::Forward { txn: txn_id });
        } else {
            // 2-hop: memory/dir responds with data, plus invalidations on
            // shared writes.
            let mut acks = 0;
            if txn.is_write && self.rng.gen_bool(self.profile.inv_prob) {
                let sharers = 1 + (self.rng.gen_range(0.0..2.0 * self.profile.sharers) as u32);
                for _ in 0..sharers {
                    let s = self.pick_other(txn.requestor);
                    self.queue_msg(home, s, FWD, 1, Msg::Invalidate { txn: txn_id });
                    acks += 1;
                }
            }
            self.txns
                .get_mut(&txn_id)
                .expect("txn registered before its acks are counted")
                .acks_needed = acks;
            self.queue_msg(home, txn.requestor, DATA, 5, Msg::Data { txn: txn_id });
        }
    }

    /// Requestor-side completion check: data plus all invalidation acks.
    fn maybe_complete(&mut self, txn_id: u64) {
        let Some(txn) = self.txns.get(&txn_id).copied() else {
            return;
        };
        if !txn.got_data || txn.acks_got < txn.acks_needed {
            return;
        }
        self.txns.remove(&txn_id);
        // Unblock frees the directory TBE on arrival.
        self.queue_msg(
            txn.requestor,
            txn.home,
            UNBLOCK,
            1,
            Msg::Unblock { _txn: txn_id },
        );
        let c = &mut self.cores[txn.requestor.idx()];
        c.mshrs_in_use -= 1;
        c.completed += 1;
        self.txns_completed += 1;
        // Occasional writeback of the displaced line.
        if self.rng.gen_bool(self.pcfg.wb_prob) {
            let home = self.pick_other(txn.requestor);
            self.queue_msg(txn.requestor, home, WB, 5, Msg::WbData);
        }
    }
}

impl Workload for ProtocolWorkload {
    fn generate(&mut self, cycle: Cycle, inject: &mut dyn FnMut(NodeId, Packet)) {
        // Release backed-off retries whose time has come (in queue order).
        for _ in 0..self.delayed.len() {
            let Some(entry) = self.delayed.pop_front() else {
                break;
            };
            if cycle >= entry.0 {
                let (_, from, to, class, len, msg) = entry;
                self.outbox.push_back((from, to, class, len, msg));
            } else {
                self.delayed.push_back(entry);
            }
        }
        // Drain follow-up messages first (loopback-safe: same-node messages
        // are handled synchronously below).
        let measured = cycle >= self.warmup;
        while let Some((from, to, class, len, msg)) = self.outbox.pop_front() {
            if from == to {
                // Local delivery: the protocol action happens without the
                // network next cycle; model as an immediate self-handled
                // message by re-dispatching through deliver-like logic.
                // (Home selection avoids this path; owners may collide.)
                let fake = DeliveredPacket {
                    id: noc_types::PacketId(u64::MAX),
                    src: from,
                    dest: to,
                    class,
                    len_flits: len,
                    birth: cycle,
                    inject: cycle,
                    eject: cycle,
                    hops: 0,
                    ff_upgrade: None,
                    measured: false,
                };
                self.meta.insert(fake.id, msg);
                if !self.deliver(cycle, &fake) {
                    // Local back-pressure (TBEs full): retry next cycle.
                    self.meta.remove(&fake.id);
                    self.outbox.push_back((from, to, class, len, msg));
                    break;
                }
                continue;
            }
            let pkt = self.factory.make(from, to, class, len, cycle, measured);
            self.meta.insert(pkt.id, msg);
            inject(from, pkt);
        }
        // Issue new requests.
        for i in 0..self.nodes as usize {
            let issue = {
                let c = &self.cores[i];
                let done = self
                    .pcfg
                    .txns_per_core
                    .is_some_and(|t| c.completed + (c.mshrs_in_use as u64) >= t);
                c.mshrs_in_use < self.pcfg.mshrs && cycle >= c.next_issue_at && !done
            };
            if !issue {
                continue;
            }
            let requestor = NodeId(i as u16);
            let home = self.pick_home(requestor, cycle);
            debug_assert_ne!(home, requestor);
            let is_write = !self.rng.gen_bool(self.profile.read_frac);
            let txn_id = self.next_txn;
            self.next_txn += 1;
            self.txns.insert(
                txn_id,
                Txn {
                    requestor,
                    home,
                    is_write,
                    acks_needed: 0,
                    acks_got: 0,
                    got_data: false,
                    issued_at: cycle,
                    retries: 0,
                },
            );
            self.cores[i].mshrs_in_use += 1;
            let gap = self.think();
            self.cores[i].next_issue_at = cycle + gap;
            let pkt = self.factory.make(requestor, home, REQ, 1, cycle, measured);
            self.meta.insert(pkt.id, Msg::Request { txn: txn_id });
            inject(requestor, pkt);
        }
    }

    fn deliver(&mut self, cycle: Cycle, p: &DeliveredPacket) -> bool {
        let Some(&msg) = self.meta.get(&p.id) else {
            debug_assert!(false, "unknown packet delivered");
            return true;
        };
        match msg {
            Msg::Request { txn } => {
                // Non-terminating: needs a directory TBE.
                let dir = &mut self.dirs[p.dest.idx()];
                if dir.tbes_in_use >= self.pcfg.tbes {
                    self.consumption_refusals += 1;
                    // Livelock guard: a refused request parks in its
                    // ejection VC and retries every cycle; past the bound
                    // the directory consumes it and bounces a NACK instead
                    // of letting it starve (and hold the VC) forever.
                    if self.pcfg.nack_after > 0 {
                        let n = self.refusal_counts.entry(p.id).or_insert(0);
                        *n += 1;
                        if *n >= self.pcfg.nack_after {
                            self.refusal_counts.remove(&p.id);
                            self.meta.remove(&p.id);
                            self.nacks_sent += 1;
                            self.queue_msg(p.dest, p.src, ACK, 1, Msg::Nack { txn });
                            return true;
                        }
                    }
                    return false;
                }
                dir.tbes_in_use += 1;
                self.refusal_counts.remove(&p.id);
                self.meta.remove(&p.id);
                self.dir_accept_request(txn);
                true
            }
            Msg::Forward { txn } => {
                self.meta.remove(&p.id);
                // Owner answers immediately: data to requestor, transfer
                // notice to the directory.
                if let Some(t) = self.txns.get(&txn).copied() {
                    let owner = p.dest;
                    self.queue_msg(owner, t.requestor, DATA, 5, Msg::Data { txn });
                    self.queue_msg(owner, t.home, ACK, 1, Msg::TransferAck { txn });
                }
                true
            }
            Msg::Invalidate { txn } => {
                self.meta.remove(&p.id);
                if let Some(t) = self.txns.get(&txn).copied() {
                    self.queue_msg(p.dest, t.requestor, ACK, 1, Msg::InvAck { txn });
                }
                true
            }
            Msg::Data { txn } => {
                self.meta.remove(&p.id);
                if let Some(t) = self.txns.get_mut(&txn) {
                    t.got_data = true;
                }
                self.maybe_complete(txn);
                true
            }
            Msg::InvAck { txn } => {
                self.meta.remove(&p.id);
                if let Some(t) = self.txns.get_mut(&txn) {
                    t.acks_got += 1;
                }
                self.maybe_complete(txn);
                true
            }
            Msg::TransferAck { txn } => {
                self.meta.remove(&p.id);
                // Ownership recorded; TBE stays until the unblock arrives.
                let _ = txn;
                true
            }
            Msg::Unblock { .. } => {
                self.meta.remove(&p.id);
                let dir = &mut self.dirs[p.dest.idx()];
                debug_assert!(dir.tbes_in_use > 0);
                dir.tbes_in_use = dir.tbes_in_use.saturating_sub(1);
                true
            }
            Msg::WbData => {
                // Non-terminating: needs a TBE, then acks immediately.
                let dir = &mut self.dirs[p.dest.idx()];
                if dir.tbes_in_use >= self.pcfg.tbes {
                    self.consumption_refusals += 1;
                    // Livelock guard: dirty data has nowhere else to go (no
                    // NACK path — the line must land), so past the bound the
                    // directory services it from a reserved overflow slot.
                    let forced = self.pcfg.nack_after > 0 && {
                        let n = self.refusal_counts.entry(p.id).or_insert(0);
                        *n += 1;
                        *n >= self.pcfg.nack_after
                    };
                    if !forced {
                        return false;
                    }
                    self.wb_forced_accepts += 1;
                }
                self.refusal_counts.remove(&p.id);
                self.meta.remove(&p.id);
                // WB is serviced without holding the TBE across the network
                // round trip: ack straight back.
                self.queue_msg(p.dest, p.src, ACK, 1, Msg::WbAck);
                true
            }
            Msg::WbAck => {
                self.meta.remove(&p.id);
                true
            }
            Msg::Nack { txn } => {
                self.meta.remove(&p.id);
                if let Some(t) = self.txns.get_mut(&txn) {
                    t.retries += 1;
                }
                if let Some(&t) = self.txns.get(&txn) {
                    if t.retries > self.pcfg.max_retries {
                        // Retry budget exhausted: free the MSHR and let the
                        // core issue a fresh transaction (new home draw)
                        // instead of hammering the same saturated directory.
                        self.txns.remove(&txn);
                        self.cores[t.requestor.idx()].mshrs_in_use -= 1;
                        self.txns_abandoned += 1;
                    } else {
                        // Linear backoff spreads colliding requestors out.
                        let delay = self.pcfg.retry_backoff * Cycle::from(t.retries);
                        self.delayed.push_back((
                            cycle + delay,
                            t.requestor,
                            t.home,
                            REQ,
                            1,
                            Msg::Request { txn },
                        ));
                    }
                }
                true
            }
        }
    }

    fn finished(&self) -> Option<bool> {
        let target = self.pcfg.txns_per_core?;
        Some(self.cores.iter().all(|c| c.completed >= target))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_traffic::apps;

    fn workload(think: f64) -> ProtocolWorkload {
        let mut prof = *apps::by_name("canneal").unwrap();
        prof.think_time = think;
        ProtocolWorkload::new(prof, ProtocolConfig::default(), 16, 0, 7)
    }

    #[test]
    fn requests_are_issued_with_mshr_limit() {
        let mut w = workload(1.0);
        let mut injected = Vec::new();
        w.generate(0, &mut |n, p| injected.push((n, p)));
        // Every core issues exactly one request initially (think gates the
        // next one).
        assert_eq!(injected.len(), 16);
        assert!(injected
            .iter()
            .all(|(_, p)| p.class == REQ && p.len_flits == 1));
        assert!(injected.iter().all(|(n, p)| *n == p.src && p.src != p.dest));
    }

    #[test]
    fn request_consumption_is_gated_on_tbes() {
        let mut w = workload(1.0);
        let mut injected = Vec::new();
        w.generate(0, &mut |n, p| injected.push((n, p)));
        // Fill the destination dir's TBEs.
        let victim = injected[0].1;
        w.dirs[victim.dest.idx()].tbes_in_use = w.pcfg.tbes;
        let d = DeliveredPacket {
            id: victim.id,
            src: victim.src,
            dest: victim.dest,
            class: victim.class,
            len_flits: 1,
            birth: 0,
            inject: 1,
            eject: 9,
            hops: 2,
            ff_upgrade: None,
            measured: true,
        };
        assert!(!w.deliver(9, &d), "request must be refused when TBEs full");
        assert_eq!(w.consumption_refusals, 1);
        w.dirs[victim.dest.idx()].tbes_in_use = 0;
        assert!(w.deliver(9, &d));
    }

    #[test]
    fn full_transaction_round_trip_completes() {
        // Drive the workload through a fake zero-latency network: every
        // injected packet is delivered next cycle.
        let mut w = workload(1e6); // one request per core, think ~forever
        let mut inflight: Vec<Packet> = Vec::new();
        for cycle in 0..64 {
            let mut newly = Vec::new();
            w.generate(cycle, &mut |_, p| newly.push(p));
            inflight.extend(newly);
            let batch: Vec<Packet> = std::mem::take(&mut inflight);
            for p in batch {
                let d = DeliveredPacket {
                    id: p.id,
                    src: p.src,
                    dest: p.dest,
                    class: p.class,
                    len_flits: p.len_flits,
                    birth: p.birth,
                    inject: p.birth,
                    eject: cycle + 1,
                    hops: 1,
                    ff_upgrade: None,
                    measured: true,
                };
                let ok = w.deliver(cycle + 1, &d);
                assert!(ok, "zero-contention delivery must be consumable");
            }
        }
        assert!(
            w.txns_completed >= 16,
            "txns completed: {}",
            w.txns_completed
        );
        // All TBEs and MSHRs returned.
        assert!(w.dirs.iter().all(|d| d.tbes_in_use == 0));
        assert!(w.cores.iter().all(|c| c.mshrs_in_use <= 1));
    }

    #[test]
    fn finished_tracks_target_transactions() {
        let mut prof = *apps::by_name("fft").unwrap();
        prof.think_time = 1.0;
        let pcfg = ProtocolConfig {
            txns_per_core: Some(1),
            ..ProtocolConfig::default()
        };
        let w = ProtocolWorkload::new(prof, pcfg, 4, 0, 1);
        assert_eq!(w.finished(), Some(false));
    }

    #[test]
    fn home_is_never_the_requestor() {
        let mut w = workload(1.0);
        for i in 0..16u16 {
            for _ in 0..200 {
                let h = w.pick_home(NodeId(i), 0);
                assert_ne!(h, NodeId(i));
                assert!(h.0 < 16);
            }
        }
    }

    /// Delivers `victim` against a full TBE pool `n` times, returning the
    /// result of the last attempt.
    fn bounce(w: &mut ProtocolWorkload, victim: &Packet, n: u32) -> bool {
        let d = DeliveredPacket {
            id: victim.id,
            src: victim.src,
            dest: victim.dest,
            class: victim.class,
            len_flits: victim.len_flits,
            birth: 0,
            inject: 1,
            eject: 9,
            hops: 2,
            ff_upgrade: None,
            measured: true,
        };
        let mut last = true;
        for _ in 0..n {
            last = w.deliver(9, &d);
        }
        last
    }

    #[test]
    fn starving_request_is_nacked_past_the_bound() {
        let mut w = workload(1.0);
        let mut injected = Vec::new();
        w.generate(0, &mut |n, p| injected.push((n, p)));
        let victim = injected[0].1;
        w.dirs[victim.dest.idx()].tbes_in_use = w.pcfg.tbes;
        let bound = w.pcfg.nack_after;
        // The first nack_after - 1 refusals bounce as before...
        assert!(!bounce(&mut w, &victim, bound - 1));
        assert_eq!(w.nacks_sent, 0);
        // ...then the directory consumes the request and NACKs it back.
        assert!(bounce(&mut w, &victim, 1));
        assert_eq!(w.nacks_sent, 1);
        assert!(w
            .outbox
            .iter()
            .any(|(from, to, class, _, m)| *from == victim.dest
                && *to == victim.src
                && *class == ACK
                && matches!(m, Msg::Nack { .. })));
    }

    #[test]
    fn nacked_request_retries_with_backoff_then_abandons() {
        let mut w = workload(1e6);
        let mut injected = Vec::new();
        w.generate(0, &mut |n, p| injected.push((n, p)));
        let victim = injected[0].1;
        let Msg::Request { txn } = w.meta[&victim.id] else {
            panic!("request packet carries non-request meta");
        };
        let requestor = victim.src;
        assert_eq!(w.cores[requestor.idx()].mshrs_in_use, 1);
        // Deliver NACKs until one past the retry budget: each retry is
        // scheduled with backoff, the last one abandons the transaction.
        let max = w.pcfg.max_retries;
        for round in 1..=max + 1 {
            let nack = w.factory.make(victim.dest, requestor, ACK, 1, 10, true);
            w.meta.insert(nack.id, Msg::Nack { txn });
            let d = DeliveredPacket {
                id: nack.id,
                src: nack.src,
                dest: nack.dest,
                class: ACK,
                len_flits: 1,
                birth: 10,
                inject: 11,
                eject: 20,
                hops: 2,
                ff_upgrade: None,
                measured: true,
            };
            assert!(w.deliver(20, &d), "NACKs must always be consumable");
            if round <= max {
                assert_eq!(w.delayed.len() as u32, round);
                let (release, .., last) = *w.delayed.back().unwrap();
                assert_eq!(release, 20 + w.pcfg.retry_backoff * u64::from(round));
                assert!(matches!(last, Msg::Request { .. }));
            }
        }
        assert_eq!(w.txns_abandoned, 1);
        assert_eq!(w.cores[requestor.idx()].mshrs_in_use, 0);
        assert!(!w.txns.contains_key(&txn), "abandoned txn must free state");
    }

    #[test]
    fn starving_writeback_is_force_accepted() {
        let mut w = workload(1.0);
        let wb = w.factory.make(NodeId(3), NodeId(7), WB, 5, 0, true);
        w.meta.insert(wb.id, Msg::WbData);
        w.dirs[7].tbes_in_use = w.pcfg.tbes;
        let bound = w.pcfg.nack_after;
        assert!(!bounce(&mut w, &wb, bound - 1));
        assert!(bounce(&mut w, &wb, 1), "WB must land past the bound");
        assert_eq!(w.wb_forced_accepts, 1);
        assert!(w
            .outbox
            .iter()
            .any(|(_, to, _, _, m)| *to == NodeId(3) && matches!(m, Msg::WbAck)));
    }

    #[test]
    fn guards_disabled_keep_refusing_forever() {
        let mut w = workload(1.0);
        w.pcfg.nack_after = 0;
        let mut injected = Vec::new();
        w.generate(0, &mut |n, p| injected.push((n, p)));
        let victim = injected[0].1;
        w.dirs[victim.dest.idx()].tbes_in_use = w.pcfg.tbes;
        assert!(!bounce(&mut w, &victim, 100));
        assert_eq!(w.nacks_sent, 0);
    }

    #[test]
    fn hot_home_set_rotates_with_the_period() {
        let mut prof = *apps::by_name("canneal").unwrap();
        prof.think_time = 1.0;
        prof.home_skew = 1.0; // every request targets the hot set
        let pcfg = ProtocolConfig {
            hot_homes: 2,
            hot_rotation_period: 100,
            ..ProtocolConfig::default()
        };
        let mut w = ProtocolWorkload::new(prof, pcfg, 16, 0, 7);
        for _ in 0..50 {
            let h = w.pick_home(NodeId(15), 0);
            assert!(h.0 < 2, "cycle 0 hot set is {{0, 1}}, got {h}");
            let h = w.pick_home(NodeId(15), 850);
            assert!(
                (8..10).contains(&h.0),
                "cycle 850 hot set is {{8, 9}}, got {h}"
            );
        }
    }

    #[test]
    fn oldest_txn_age_tracks_outstanding_mshrs() {
        let mut w = workload(1e6);
        assert_eq!(w.oldest_txn_age(50), None);
        w.generate(0, &mut |_, _| {});
        assert_eq!(w.oldest_txn_age(50), Some(50));
    }
}
