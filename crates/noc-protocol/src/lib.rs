//! A MOESI-flavoured directory-coherence substrate.
//!
//! The paper's application experiments run PARSEC/SPLASH-2 on gem5's Ruby
//! MOESI-hammer protocol with six message classes. This crate reproduces
//! what the *network* sees: closed-loop transactions whose messages form
//! dependency chains across six classes, finite MSHRs/TBEs that create real
//! back-pressure (and protocol-deadlock exposure when all classes share one
//! `VNet`), mixed 1-/5-flit packets, and directory-home hotspots.
//!
//! Message classes (→ `VNets` on the 6-VNet baselines):
//!
//! | class | message | flits | terminating? |
//! |-------|---------|-------|--------------|
//! | 0 | Request (GetS/GetX)   | 1 | no — needs a free directory TBE |
//! | 1 | Forward / Invalidate  | 1 | yes (cores answer immediately) |
//! | 2 | Data response         | 5 | yes (MSHR reserved at request) |
//! | 3 | Ack (InvAck / WB-Ack / transfer notice) | 1 | yes |
//! | 4 | Writeback data        | 5 | no — needs a free directory TBE |
//! | 5 | Unblock / completion  | 1 | yes (frees the TBE) |

#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![forbid(unsafe_code)]

pub mod engine;

pub use engine::{
    ProtocolConfig, ProtocolWorkload, ACK, CLASS_RESOURCE_DEPS, DATA, FWD, REQ, UNBLOCK, WB,
};
