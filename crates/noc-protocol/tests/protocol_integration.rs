//! Protocol-level integration: coherence transactions over the real network,
//! and the paper's protocol-deadlock claims (§3.7).

use noc_protocol::{ProtocolConfig, ProtocolWorkload};
use noc_sim::{watchdog, NoMechanism, Sim};
use noc_traffic::apps;
use noc_types::{BaseRouting, NetConfig, RoutingAlgo};
use seec::SeecMechanism;

fn proto(cfg: &NetConfig, think: f64, tbes: usize, seed: u64) -> ProtocolWorkload {
    let mut prof = *apps::by_name("canneal").unwrap();
    prof.think_time = think;
    let pcfg = ProtocolConfig {
        tbes,
        ..ProtocolConfig::default()
    };
    ProtocolWorkload::new(prof, pcfg, cfg.num_nodes() as u16, cfg.warmup, seed)
}

#[test]
fn six_vnet_baseline_completes_transactions() {
    // The paper's proactive baselines: one VNet per message class.
    let cfg = NetConfig::full_system(4, 6, 2)
        .with_routing(RoutingAlgo::Uniform(BaseRouting::Xy))
        .with_seed(11);
    let wl = proto(&cfg, 60.0, 8, 11);
    let mut sim = Sim::new(cfg, Box::new(wl), Box::new(NoMechanism));
    sim.run(40_000);
    let s = sim.finish();
    assert!(
        s.ejected_packets > 2000,
        "only {} packets delivered",
        s.ejected_packets
    );
    assert!(
        !watchdog::looks_stuck(&sim.net, watchdog::DEFAULT_STUCK_THRESHOLD),
        "6-VNet XY must never wedge"
    );
}

/// With a single `VNet` all six message classes share the same VCs; finite
/// directory TBEs then let requests block responses — protocol deadlock.
/// SEEC must keep exactly this configuration live (Lemmas 1–3).
#[test]
fn seec_breaks_protocol_deadlock_on_one_vnet() {
    let cfg = NetConfig::full_system(4, 1, 2)
        .with_routing(RoutingAlgo::Uniform(BaseRouting::AdaptiveMinimal))
        .with_seed(13);
    let wl = proto(&cfg, 20.0, 2, 13);
    let mech = SeecMechanism::for_net(&cfg);
    let mut sim = Sim::new(cfg, Box::new(wl), Box::new(mech));
    for _ in 0..50 {
        sim.run(1000);
        assert!(
            !watchdog::looks_stuck(&sim.net, watchdog::DEFAULT_STUCK_THRESHOLD),
            "SEEC wedged at cycle {}",
            sim.net.cycle
        );
    }
    let s = sim.finish();
    // Deeply saturated on purpose (2 TBEs, one VNet): judge liveness on all
    // post-warm-up deliveries plus FF activity.
    assert!(
        s.ejected_packets_all > 300,
        "only {}",
        s.ejected_packets_all
    );
    assert!(s.ff_packets > 0, "expected some FF rescues under pressure");
}

/// Control: the same 1-VNet configuration without any mechanism — and with
/// the protocol livelock guards disabled — wedges. (XY routing keeps it
/// *routing*-deadlock-free, so a wedge here is a *protocol* deadlock:
/// terminating messages stuck behind requests that the directory refuses to
/// consume.)
#[test]
fn one_vnet_without_mechanism_protocol_deadlocks() {
    let cfg = NetConfig::full_system(4, 1, 2)
        .with_routing(RoutingAlgo::Uniform(BaseRouting::Xy))
        .with_seed(13);
    let mut prof = *apps::by_name("canneal").unwrap();
    prof.think_time = 20.0;
    let pcfg = ProtocolConfig {
        tbes: 2,
        nack_after: 0, // pre-guard behaviour: refused requests park forever
        ..ProtocolConfig::default()
    };
    let wl = ProtocolWorkload::new(prof, pcfg, cfg.num_nodes() as u16, cfg.warmup, 13);
    let mut sim = Sim::new(cfg, Box::new(wl), Box::new(NoMechanism));
    let mut wedged = false;
    for _ in 0..50 {
        sim.run(1000);
        if watchdog::looks_stuck(&sim.net, watchdog::DEFAULT_STUCK_THRESHOLD) {
            wedged = true;
            break;
        }
    }
    assert!(
        wedged,
        "expected a protocol deadlock; {} delivered",
        sim.net.stats.ejected_packets
    );
}

/// The same configuration with the default livelock guards armed stays live
/// with *no* mechanism at all: requests that starve behind the full TBE pool
/// are nacked off the network instead of parking in ejection VCs, so the
/// terminating messages behind them keep draining.
#[test]
fn livelock_guards_keep_one_vnet_live_without_mechanism() {
    let cfg = NetConfig::full_system(4, 1, 2)
        .with_routing(RoutingAlgo::Uniform(BaseRouting::Xy))
        .with_seed(13);
    let wl = proto(&cfg, 20.0, 2, 13); // default guards: nack_after = 8
    let mut sim = Sim::new(cfg, Box::new(wl), Box::new(NoMechanism));
    for _ in 0..50 {
        sim.run(1000);
        assert!(
            !watchdog::looks_stuck(&sim.net, watchdog::DEFAULT_STUCK_THRESHOLD),
            "guards failed to keep the network live at cycle {}",
            sim.net.cycle
        );
    }
    let s = sim.finish();
    assert!(
        s.ejected_packets_all > 300,
        "only {}",
        s.ejected_packets_all
    );
}

#[test]
fn closed_loop_runtime_is_measurable() {
    // Fixed work per core: the Fig 14 "normalized runtime" metric.
    let cfg = NetConfig::full_system(4, 6, 2)
        .with_routing(RoutingAlgo::Uniform(BaseRouting::Xy))
        .with_seed(17);
    let mut prof = *apps::by_name("blackscholes").unwrap();
    prof.think_time = 30.0;
    let pcfg = ProtocolConfig {
        txns_per_core: Some(50),
        ..ProtocolConfig::default()
    };
    let wl = ProtocolWorkload::new(prof, pcfg, 16, cfg.warmup, 17);
    let mut sim = Sim::new(cfg, Box::new(wl), Box::new(NoMechanism));
    let done = sim.run_until_done(400_000);
    assert!(done, "workload did not finish");
    let runtime = sim.net.cycle;
    assert!(runtime > 1000, "suspiciously fast: {runtime}");
}

/// Regression: a six-VNet escape-VC router must run protocol traffic without
/// panicking (the escape index used to overflow the VC array for `VNets` > 0).
#[test]
fn six_vnet_escape_vc_runs_protocol_traffic() {
    let cfg = NetConfig::full_system(4, 6, 2)
        .with_routing(RoutingAlgo::EscapeVc {
            normal: BaseRouting::AdaptiveMinimal,
        })
        .with_seed(77);
    let wl = proto(&cfg, 15.0, 8, 77);
    let mut sim = Sim::new(cfg, Box::new(wl), Box::new(NoMechanism));
    sim.run(30_000);
    let s = sim.finish();
    assert!(s.ejected_packets > 1000, "only {}", s.ejected_packets);
}
