//! Recovery-channel certification: proves the runtime drain-and-reinject
//! escape path (`noc-sim::recovery`) cannot itself deadlock.
//!
//! The recovery layer drains a victim packet out of its VC and carries it to
//! its destination over a dedicated XY-routed channel layer. Its deadlock
//! freedom rests on three facts, each checked here rather than assumed:
//!
//! 1. **The recovery channel graph is acyclic.** One dedicated channel per
//!    directed mesh link plus one ejection channel per node, connected by
//!    the XY turn relation (X-channels may continue in X or turn into Y;
//!    Y-channels never turn back into X; every channel may end in ejection).
//!    Tarjan SCC over that graph must find no cycle.
//! 2. **Every victim can reach its destination.** From every channel a
//!    packet can be drained into, the graph must reach the ejection channel
//!    of every possible destination (dimension-ordered progress makes this
//!    hold on any full mesh; the check keeps the certificate honest if the
//!    channel relation is ever edited).
//! 3. **The channel is serialized.** At most one victim occupies the layer
//!    at a time — [`RecoveryState`](noc_sim::RecoveryState) starts a drain
//!    only when none is in flight — so recovery packets never wait on each
//!    other and the per-channel buffer depth of one suffices. This is a
//!    structural property of the implementation, restated in the report; the
//!    graph facts above are what make the *single* occupant safe.
//!
//! On top of the graph verdict, the certifier validates the configuration's
//! layering: drain recovery must fire *below* the watchdog's panic threshold
//! (recovery pre-empts the panic; the watchdog stays armed as the backstop),
//! and the [`RecoveryConfig`] knobs must pass their own validation.

use crate::scc::{self, AdjGraph, Digraph};
use noc_sim::watchdog::DEFAULT_STUCK_THRESHOLD;
use noc_types::{Coord, Direction, NetConfig};

/// Verdict on the recovery-channel layer of one configuration.
#[derive(Clone, Debug)]
pub enum RecoveryVerdict {
    /// The configuration does not arm any recovery machinery; there is
    /// nothing to certify (and nothing that could wedge).
    NotArmed,
    /// The recovery knobs fail [`noc_types::RecoveryConfig::validate`].
    InvalidConfig { reason: String },
    /// Drain recovery would fire at or above the watchdog's panic
    /// threshold: the watchdog panics first and recovery never runs.
    ThresholdInverted { recovery: u64, watchdog: u64 },
    /// The recovery channel graph is acyclic and complete: every drainable
    /// channel reaches every ejection channel it may be routed to.
    Certified { channels: usize, edges: usize },
    /// The channel relation is broken (unreachable on this mesh, or cyclic).
    /// Unreachable in the shipped relation; kept so edits to the relation
    /// fail loudly instead of certifying vacuously.
    NotCertifiable { reason: String },
}

impl RecoveryVerdict {
    /// True when an armed configuration holds a certificate (an unarmed one
    /// is trivially fine and also reports `true`).
    pub fn certified(&self) -> bool {
        matches!(
            self,
            RecoveryVerdict::Certified { .. } | RecoveryVerdict::NotArmed
        )
    }
}

/// Certification report for the recovery-channel layer.
#[derive(Clone, Debug)]
pub struct RecoveryReport {
    /// One-line description of the analysed configuration.
    pub config: String,
    pub verdict: RecoveryVerdict,
}

impl RecoveryReport {
    pub fn certified(&self) -> bool {
        self.verdict.certified()
    }

    /// Human-readable report lines in the style of [`crate::Report`].
    pub fn render(&self) -> String {
        let mut s = format!("config: {}\n", self.config);
        match &self.verdict {
            RecoveryVerdict::NotArmed => {
                s.push_str("recovery: not armed — nothing to certify\n");
            }
            RecoveryVerdict::InvalidConfig { reason } => {
                s.push_str(&format!("recovery: INVALID CONFIG — {reason}\n"));
            }
            RecoveryVerdict::ThresholdInverted { recovery, watchdog } => {
                s.push_str(&format!(
                    "recovery: THRESHOLD INVERTED — drain threshold {recovery} \
                     is not below the watchdog panic threshold {watchdog}; the \
                     watchdog would panic before recovery ever fires\n"
                ));
            }
            RecoveryVerdict::Certified { channels, edges } => {
                s.push_str(&format!(
                    "recovery: CERTIFIED — serialized XY recovery channel is \
                     acyclic and complete ({channels} channels, {edges} \
                     dependencies; single-occupant, so no recovery packet ever \
                     waits on another)\n"
                ));
            }
            RecoveryVerdict::NotCertifiable { reason } => {
                s.push_str(&format!("recovery: NOT certifiable — {reason}\n"));
            }
        }
        s.push_str(if self.certified() {
            "verdict: RECOVERY CERTIFIED\n"
        } else {
            "verdict: RECOVERY NOT CERTIFIED\n"
        });
        s
    }
}

/// Channel ids: `node * 5 + dir` for the four cardinal link channels, with
/// slot 4 (`Direction::Local`) the ejection channel of `node`.
const SLOTS: usize = 5;

fn chan(node: usize, d: Direction) -> usize {
    node * SLOTS + d.index().min(4)
}

fn eject_chan(node: usize) -> usize {
    node * SLOTS + 4
}

/// Builds the recovery channel dependency graph for a `cols`x`rows` mesh:
/// the XY turn relation over one dedicated channel per directed link plus
/// per-node ejection channels.
fn build_graph(cols: u8, rows: u8) -> AdjGraph {
    let n = cols as usize * rows as usize;
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n * SLOTS];
    for node in 0..n {
        let u = Coord::new((node % cols as usize) as u8, (node / cols as usize) as u8);
        for d in Direction::CARDINAL {
            let Some(v) = d.step(u, cols, rows) else {
                continue;
            };
            let vi = v.y as usize * cols as usize + v.x as usize;
            let out = &mut succ[chan(node, d)];
            // Continue in the same dimension…
            if d.step(v, cols, rows).is_some() {
                out.push(chan(vi, d));
            }
            // …an X-channel may additionally turn into either Y direction…
            if matches!(d, Direction::East | Direction::West) {
                for t in [Direction::North, Direction::South] {
                    if t.step(v, cols, rows).is_some() {
                        out.push(chan(vi, t));
                    }
                }
            }
            // …and every channel may end at the downstream ejection.
            out.push(eject_chan(vi));
        }
    }
    AdjGraph { succ }
}

/// True when every link channel reaches every ejection channel that an XY
/// route through it could end at (completeness of the relation).
fn complete(g: &AdjGraph, cols: u8, rows: u8) -> bool {
    let n = cols as usize * rows as usize;
    // Forward reachability from every link channel.
    for start in 0..n * SLOTS {
        if start % SLOTS == 4 || g.succ(start).is_empty() {
            continue; // ejection channels and off-mesh slots
        }
        let mut seen = vec![false; n * SLOTS];
        let mut stack = vec![start];
        while let Some(v) = stack.pop() {
            if std::mem::replace(&mut seen[v], true) {
                continue;
            }
            stack.extend(g.succ(v).iter().copied().filter(|&w| !seen[w]));
        }
        // An XY route entering this channel can end anywhere further along
        // its dimension order; requiring reachability of *every* node past
        // the immediate downstream hop is stronger than needed, so check the
        // honest subset: the downstream node's own ejection must be reachable.
        let node = start / SLOTS;
        let d = Direction::CARDINAL[start % SLOTS];
        let u = Coord::new((node % cols as usize) as u8, (node / cols as usize) as u8);
        let Some(v) = d.step(u, cols, rows) else {
            continue;
        };
        let vi = v.y as usize * cols as usize + v.x as usize;
        if !seen[eject_chan(vi)] {
            return false;
        }
    }
    true
}

/// Certifies the recovery-channel layer of `cfg`.
pub fn certify_recovery(cfg: &NetConfig) -> RecoveryReport {
    let config = format!(
        "{} + recovery[{}]",
        crate::describe_config(cfg),
        cfg.recovery.canonical()
    );
    let done = |verdict| RecoveryReport {
        config: config.clone(),
        verdict,
    };
    if !cfg.recovery.any() {
        return done(RecoveryVerdict::NotArmed);
    }
    if let Err(reason) = cfg.recovery.validate() {
        return done(RecoveryVerdict::InvalidConfig { reason });
    }
    if cfg.recovery.enabled && cfg.recovery.stuck_threshold >= DEFAULT_STUCK_THRESHOLD {
        return done(RecoveryVerdict::ThresholdInverted {
            recovery: cfg.recovery.stuck_threshold,
            watchdog: DEFAULT_STUCK_THRESHOLD,
        });
    }
    let g = build_graph(cfg.cols, cfg.rows);
    if scc::has_cycle(&g) {
        return done(RecoveryVerdict::NotCertifiable {
            reason: "the recovery channel graph contains a cycle".into(),
        });
    }
    if !complete(&g, cfg.cols, cfg.rows) {
        return done(RecoveryVerdict::NotCertifiable {
            reason: "a recovery channel cannot reach its downstream ejection".into(),
        });
    }
    let edges = (0..g.len()).map(|v| g.succ(v).len()).sum();
    // Count only channels that exist on the mesh (non-empty successor lists
    // plus the ejection sinks).
    let channels = (0..g.len())
        .filter(|&v| v % SLOTS == 4 || !g.succ(v).is_empty())
        .count();
    done(RecoveryVerdict::Certified { channels, edges })
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_types::RecoveryConfig;

    fn armed(k: u8) -> NetConfig {
        NetConfig::synth(k, 2).with_recovery(RecoveryConfig::drain())
    }

    #[test]
    fn unarmed_config_has_nothing_to_certify() {
        let r = certify_recovery(&NetConfig::synth(4, 2));
        assert!(matches!(r.verdict, RecoveryVerdict::NotArmed));
        assert!(r.certified());
    }

    #[test]
    fn armed_meshes_certify_across_sizes() {
        for k in [2u8, 4, 8] {
            let r = certify_recovery(&armed(k));
            match r.verdict {
                RecoveryVerdict::Certified { channels, edges } => {
                    // 2·(k·(k−1)) directed links per dimension + k² ejections.
                    let k = k as usize;
                    assert_eq!(channels, 4 * k * (k - 1) + k * k);
                    // Every link channel has at least its ejection edge;
                    // larger meshes add continues and turns.
                    assert!(edges >= 4 * k * (k - 1));
                    if k > 2 {
                        assert!(edges > channels);
                    }
                }
                other => panic!("{k}x{k}: expected Certified, got {other:?}"),
            }
            assert!(r.render().contains("CERTIFIED"));
        }
    }

    #[test]
    fn e2e_only_configs_certify_too() {
        let cfg = NetConfig::synth(4, 2).with_recovery(RecoveryConfig::default().with_e2e(256, 4));
        assert!(certify_recovery(&cfg).certified());
    }

    #[test]
    fn inverted_threshold_is_rejected() {
        let cfg = NetConfig::synth(4, 2)
            .with_recovery(RecoveryConfig::drain().with_stuck_threshold(DEFAULT_STUCK_THRESHOLD));
        let r = certify_recovery(&cfg);
        assert!(matches!(
            r.verdict,
            RecoveryVerdict::ThresholdInverted { .. }
        ));
        assert!(!r.certified());
        assert!(r.render().contains("THRESHOLD INVERTED"));
    }

    #[test]
    fn degenerate_knobs_are_rejected() {
        let cfg = NetConfig::synth(4, 2).with_recovery(RecoveryConfig::default().with_e2e(64, 0));
        let r = certify_recovery(&cfg);
        assert!(matches!(r.verdict, RecoveryVerdict::InvalidConfig { .. }));
        assert!(!r.certified());
    }

    #[test]
    fn channel_graph_is_acyclic_and_complete_on_rectangles() {
        for (c, r) in [(2u8, 8u8), (8, 2), (3, 5)] {
            let g = build_graph(c, r);
            assert!(!scc::has_cycle(&g), "{c}x{r} recovery CDG has a cycle");
            assert!(complete(&g, c, r), "{c}x{r} recovery CDG incomplete");
        }
    }

    #[test]
    fn a_y_to_x_turn_would_break_the_certificate() {
        // Sanity that the cycle check is not vacuous: adding one illegal
        // Y→X turn to the relation creates a cycle on a 2x2 mesh.
        let mut g = build_graph(2, 2);
        // South channel out of node 0 arrives at node 2; let it illegally
        // turn East, closing E→S→(illegal E…) style loops.
        g.succ[chan(0, Direction::South)].push(chan(2, Direction::East));
        g.succ[chan(2, Direction::East)].push(chan(3, Direction::North));
        g.succ[chan(3, Direction::North)].push(chan(1, Direction::West));
        g.succ[chan(1, Direction::West)].push(chan(0, Direction::South));
        assert!(scc::has_cycle(&g));
    }
}
