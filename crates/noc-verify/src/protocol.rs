//! Protocol-level (message-class) dependency analysis.
//!
//! The coherence engine's consumption rules create dependencies *between*
//! message classes: a Request or Writeback bounces off a full directory TBE
//! pool, and only an Unblock delivery frees a TBE
//! ([`noc_protocol::CLASS_RESOURCE_DEPS`]). At the network level the unit of
//! buffer isolation is the virtual network, so the analysable object is the
//! digraph over `VNets` with an edge `vnet(gated) → vnet(gating)` for every
//! resource dependency. A cycle (in particular the self-loop that appears
//! when gated and gating classes share a `VNet`) means protocol messages can
//! wedge the network even under deadlock-free routing — exactly the exposure
//! the paper's 6-VNet baseline configuration removes and SEEC resolves
//! without extra `VNets`.

use crate::scc::{has_cycle, AdjGraph};
use noc_protocol::CLASS_RESOURCE_DEPS;
use noc_types::{MessageClass, NetConfig};

/// Verdict of the protocol-level analysis for one configuration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProtocolVerdict {
    /// The configuration carries no resource-gated message classes (synthetic
    /// traffic: fewer classes than the coherence protocol uses).
    NoProtocolTraffic,
    /// Every resource dependency crosses `VNets` acyclically.
    Acyclic {
        /// `VNet` count.
        vnets: u8,
        /// Active `(gated, gating)` dependencies.
        deps: usize,
    },
    /// Some dependency chain loops back into its own `VNet`.
    Cyclic {
        /// The class pairs whose `VNet` mapping participates in a cycle.
        offending: Vec<(MessageClass, MessageClass)>,
    },
}

impl ProtocolVerdict {
    /// True when the protocol layer cannot wedge the network.
    pub fn certified(&self) -> bool {
        !matches!(self, ProtocolVerdict::Cyclic { .. })
    }
}

/// Analyses the `VNet` dependency digraph of `cfg`.
pub fn analyze(cfg: &NetConfig) -> ProtocolVerdict {
    // A dependency is live only when the configuration actually carries both
    // classes (the coherence engine needs all six; synthetic runs use one).
    let live: Vec<(MessageClass, MessageClass)> = CLASS_RESOURCE_DEPS
        .iter()
        .copied()
        .filter(|&(a, b)| a.0 < cfg.classes && b.0 < cfg.classes)
        .collect();
    if live.is_empty() {
        return ProtocolVerdict::NoProtocolTraffic;
    }

    let n = cfg.vnets as usize;
    let mut succ = vec![Vec::new(); n];
    for &(gated, gating) in &live {
        let from = cfg.vnet_of(gated) as usize;
        let to = cfg.vnet_of(gating) as usize;
        if !succ[from].contains(&to) {
            succ[from].push(to);
        }
    }
    let g = AdjGraph { succ };
    if !has_cycle(&g) {
        return ProtocolVerdict::Acyclic {
            vnets: cfg.vnets,
            deps: live.len(),
        };
    }
    // Report every dependency that maps gated and gating into the same VNet
    // or otherwise participates in a loop; with the current two-edge
    // dependency set a cycle is always a self-loop.
    let offending = live
        .into_iter()
        .filter(|&(a, b)| cfg.vnet_of(a) == cfg.vnet_of(b))
        .collect();
    ProtocolVerdict::Cyclic { offending }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_vnets_are_acyclic() {
        let cfg = NetConfig::full_system(4, 6, 2);
        assert_eq!(
            analyze(&cfg),
            ProtocolVerdict::Acyclic { vnets: 6, deps: 2 }
        );
    }

    #[test]
    fn one_vnet_self_loops() {
        let cfg = NetConfig::full_system(4, 1, 2);
        match analyze(&cfg) {
            ProtocolVerdict::Cyclic { offending } => assert_eq!(offending.len(), 2),
            v => panic!("expected cyclic, got {v:?}"),
        }
    }

    #[test]
    fn synthetic_traffic_has_no_protocol_deps() {
        let cfg = NetConfig::synth(8, 4);
        assert_eq!(analyze(&cfg), ProtocolVerdict::NoProtocolTraffic);
    }

    #[test]
    fn two_vnets_split_the_gating_class_out() {
        // class % 2: REQ(0)→0, WB(4)→0, UNBLOCK(5)→1 — still acyclic.
        let cfg = NetConfig::full_system(4, 2, 2);
        assert_eq!(
            analyze(&cfg),
            ProtocolVerdict::Acyclic { vnets: 2, deps: 2 }
        );
    }
}
