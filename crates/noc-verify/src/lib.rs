//! Static deadlock-freedom certification for the SEEC `NoC` simulator.
//!
//! For any mesh size, routing algorithm ([`noc_types::BaseRouting`] uniform
//! or Duato escape-VC composite) and VNet/message-class configuration, this
//! crate builds the extended channel dependency graph (see [`cdg`]), runs
//! Tarjan SCC over it, analyses the protocol-level message-class
//! dependencies (see [`protocol`]), and emits a [`Report`]:
//!
//! * **certified deadlock-free** — the CDG is acyclic (XY, west-first), or
//!   the configuration satisfies Duato's escape condition (acyclic escape
//!   subnetwork that is always requestable and never exited);
//! * **a minimal cyclic witness** — the exact channel cycle, printable as an
//!   ASCII mesh diagram, proving the routing relation alone cannot guarantee
//!   progress (minimal-adaptive/oblivious without escape VCs — the paper's
//!   motivation for SEEC);
//! * plus the protocol verdict: whether resource-gated message classes
//!   (Request/Writeback vs. Unblock) can wedge their shared `VNet`.
//!
//! `noc-experiments` consults [`certify`] before running a configuration
//! whose correctness rests on the routing relation and refuses uncertified
//! ones unless explicitly overridden.
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod cdg;
pub mod degraded;
pub mod matrix;
pub mod protocol;
pub mod recovery;
pub mod scc;
pub mod schedule;
pub mod witness;

pub use cdg::{Cdg, Channel, VcClass};
pub use degraded::{certify_degraded, DegradedReport, DegradedVerdict};
pub use matrix::{cross_check, MatrixRow, ReachVerdict};
pub use protocol::ProtocolVerdict;
pub use recovery::{certify_recovery, RecoveryReport, RecoveryVerdict};
pub use schedule::{certify_schedule, EpochCertification};
pub use witness::Witness;

use noc_sim::routing::west_first;
use noc_types::{Coord, NetConfig, RoutingAlgo};

/// Routing-level verdict for one configuration.
#[derive(Clone, Debug)]
pub enum RoutingVerdict {
    /// The full channel dependency graph is acyclic.
    CertifiedAcyclic {
        /// CDG node count.
        channels: usize,
        /// CDG edge count.
        edges: usize,
    },
    /// The full CDG has cycles among regular VCs, but Duato's condition
    /// holds: the escape subnetwork is acyclic, always requestable, and
    /// never exited.
    CertifiedEscape {
        /// CDG node count (all classes).
        channels: usize,
        /// CDG edge count (all classes).
        edges: usize,
        /// Escape-class node count.
        escape_channels: usize,
    },
    /// No certificate: a concrete cyclic wait exists.
    Deadlockable {
        /// A minimal channel cycle.
        witness: Witness,
        /// CDG node count.
        channels: usize,
        /// CDG edge count.
        edges: usize,
    },
}

impl RoutingVerdict {
    /// True for either certificate variant.
    pub fn certified(&self) -> bool {
        !matches!(self, RoutingVerdict::Deadlockable { .. })
    }
}

/// Combined certification report for one configuration.
#[derive(Clone, Debug)]
pub struct Report {
    /// One-line description of the analysed configuration.
    pub config: String,
    /// Routing-level (channel dependency graph) verdict.
    pub routing: RoutingVerdict,
    /// Protocol-level (message-class / `VNet`) verdict.
    pub protocol: ProtocolVerdict,
}

impl Report {
    /// True when both layers are certified deadlock-free.
    pub fn certified(&self) -> bool {
        self.routing.certified() && self.protocol.certified()
    }

    /// Human-readable multi-line report, including the witness diagram for
    /// uncertified configurations.
    pub fn render(&self) -> String {
        let mut s = format!("config: {}\n", self.config);
        match &self.routing {
            RoutingVerdict::CertifiedAcyclic { channels, edges } => {
                s.push_str(&format!(
                    "routing: CERTIFIED deadlock-free — CDG acyclic \
                     ({channels} channels, {edges} dependencies)\n"
                ));
            }
            RoutingVerdict::CertifiedEscape {
                channels,
                edges,
                escape_channels,
            } => {
                s.push_str(&format!(
                    "routing: CERTIFIED deadlock-free — Duato escape condition \
                     ({channels} channels, {edges} dependencies; acyclic, \
                     always-requestable escape subnetwork of \
                     {escape_channels} channels)\n"
                ));
            }
            RoutingVerdict::Deadlockable {
                witness,
                channels,
                edges,
            } => {
                s.push_str(&format!(
                    "routing: NOT certifiable — minimal cyclic witness of \
                     {} channels (CDG: {channels} channels, {edges} \
                     dependencies)\n",
                    witness.cycle.len()
                ));
                s.push_str(&witness.describe());
                s.push_str(&witness.render_ascii());
            }
        }
        s.push_str(&render_protocol(&self.protocol));
        s.push_str(if self.certified() {
            "verdict: CERTIFIED DEADLOCK-FREE\n"
        } else {
            "verdict: NOT CERTIFIED\n"
        });
        s
    }
}

/// Renders the protocol verdict lines shared by the healthy and degraded
/// reports.
pub(crate) fn render_protocol(p: &ProtocolVerdict) -> String {
    let mut s = String::new();
    match p {
        ProtocolVerdict::NoProtocolTraffic => {
            s.push_str("protocol: no resource-gated message classes\n");
        }
        ProtocolVerdict::Acyclic { vnets, deps } => {
            s.push_str(&format!(
                "protocol: CERTIFIED — {deps} class dependencies map \
                 acyclically onto {vnets} VNets\n"
            ));
        }
        ProtocolVerdict::Cyclic { offending } => {
            s.push_str("protocol: NOT certifiable — gated and gating classes share a VNet:\n");
            for (a, b) in offending {
                s.push_str(&format!(
                    "  consumption of class {} waits on delivery of class {} in the same VNet\n",
                    a.0, b.0
                ));
            }
        }
    }
    s
}

/// View of a [`Cdg`] as a [`scc::Digraph`].
pub(crate) struct CdgGraph<'a>(pub(crate) &'a Cdg);

impl scc::Digraph for CdgGraph<'_> {
    fn len(&self) -> usize {
        self.0.channel_count()
    }
    fn succ(&self, v: usize) -> &[usize] {
        self.0.successors(v)
    }
}

/// Escape-class subgraph of a [`Cdg`] (remapped to dense indices).
pub(crate) fn escape_subgraph(cdg: &Cdg) -> scc::AdjGraph {
    let ids = cdg.escape_channel_ids();
    let remap: std::collections::HashMap<usize, usize> =
        ids.iter().enumerate().map(|(i, &id)| (id, i)).collect();
    let succ = ids
        .iter()
        .map(|&id| {
            cdg.successors(id)
                .iter()
                .filter_map(|s| remap.get(s).copied())
                .collect()
        })
        .collect();
    scc::AdjGraph { succ }
}

/// Duato requestability: from every router toward every destination, the
/// escape routing function must offer at least one on-mesh direction (so a
/// blocked packet can always *request* an escape channel).
fn escape_always_requestable(cfg: &NetConfig) -> bool {
    if cfg.vcs_per_vnet < 2 {
        return false; // escape VC would leave no regular VCs
    }
    for y in 0..cfg.rows {
        for x in 0..cfg.cols {
            let u = Coord::new(x, y);
            for dy in 0..cfg.rows {
                for dx in 0..cfg.cols {
                    let d = Coord::new(dx, dy);
                    if d == u {
                        continue;
                    }
                    let wf = west_first(u, d);
                    if wf.is_empty()
                        || wf
                            .as_slice()
                            .iter()
                            .any(|dir| dir.step(u, cfg.cols, cfg.rows).is_none())
                    {
                        return false;
                    }
                }
            }
        }
    }
    true
}

/// Builds the CDG for `cfg`, runs the cycle analysis and the protocol-level
/// analysis, and produces the combined report.
pub fn certify(cfg: &NetConfig) -> Report {
    let config = describe_config(cfg);
    let cdg = Cdg::build(cfg);
    let g = CdgGraph(&cdg);
    let channels = cdg.channel_count();
    let edges = cdg.edge_count();

    let routing = if !scc::has_cycle(&g) {
        RoutingVerdict::CertifiedAcyclic { channels, edges }
    } else if cfg.routing.has_escape()
        && !cdg.escape_leaks_to_normal()
        && !scc::has_cycle(&escape_subgraph(&cdg))
        && escape_always_requestable(cfg)
    {
        RoutingVerdict::CertifiedEscape {
            channels,
            edges,
            escape_channels: cdg.escape_channel_ids().len(),
        }
    } else {
        let cycle_ids = scc::minimal_cycle(&g).expect("cyclic CDG must yield a minimal cycle");
        RoutingVerdict::Deadlockable {
            witness: Witness {
                cycle: cycle_ids.into_iter().map(|i| cdg.channel(i)).collect(),
                cols: cfg.cols,
                rows: cfg.rows,
            },
            channels,
            edges,
        }
    };

    Report {
        config,
        routing,
        protocol: protocol::analyze(cfg),
    }
}

pub(crate) fn describe_config(cfg: &NetConfig) -> String {
    let routing = match cfg.routing {
        RoutingAlgo::Uniform(b) => format!("{b:?}"),
        RoutingAlgo::EscapeVc { normal } => format!("EscapeVc({normal:?})"),
    };
    format!(
        "{}x{} mesh, routing {}, {} vnets x {} vcs, {} classes",
        cfg.cols, cfg.rows, routing, cfg.vnets, cfg.vcs_per_vnet, cfg.classes
    )
}
