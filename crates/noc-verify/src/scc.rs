//! Cycle detection: iterative Tarjan SCC plus minimal-cycle extraction.

/// A directed graph view: node count plus a successor accessor.
pub trait Digraph {
    /// Number of nodes.
    fn len(&self) -> usize;
    /// Successors of `v`.
    fn succ(&self, v: usize) -> &[usize];
    /// True when the graph has no nodes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Strongly connected components of `g`, each a sorted list of node indices,
/// in reverse topological order of the condensation. Iterative Tarjan — no
/// recursion, so arbitrarily large meshes are fine.
pub fn tarjan_scc(g: &dyn Digraph) -> Vec<Vec<usize>> {
    const UNVISITED: usize = usize::MAX;
    let n = g.len();
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    // Explicit DFS frames: (node, next-successor position).
    let mut frames: Vec<(usize, usize)> = Vec::new();

    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        frames.push((root, 0));
        while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
            if *pos == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            let succs = g.succ(v);
            if *pos < succs.len() {
                let w = succs[*pos];
                *pos += 1;
                if index[w] == UNVISITED {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&mut (parent, _)) = frames.last_mut() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    sccs.push(comp);
                }
            }
        }
    }
    sccs
}

/// True when `g` contains a directed cycle (an SCC of size ≥ 2 or a
/// self-loop).
pub fn has_cycle(g: &dyn Digraph) -> bool {
    tarjan_scc(g).iter().any(|c| is_cyclic_component(g, c))
}

fn is_cyclic_component(g: &dyn Digraph, comp: &[usize]) -> bool {
    comp.len() > 1 || g.succ(comp[0]).contains(&comp[0])
}

/// A shortest directed cycle of `g`, as a node sequence `c0 → c1 → … → c0`
/// (the closing edge back to `c0` is implicit). `None` when acyclic.
///
/// Deterministic: scans SCCs in Tarjan order and starts BFS from each node of
/// the smallest cyclic SCC in ascending index order, keeping the first
/// shortest cycle found.
pub fn minimal_cycle(g: &dyn Digraph) -> Option<Vec<usize>> {
    let cyclic: Vec<Vec<usize>> = tarjan_scc(g)
        .into_iter()
        .filter(|c| is_cyclic_component(g, c))
        .collect();
    let comp = cyclic.iter().min_by_key(|c| c.len())?;
    let members: std::collections::HashSet<usize> = comp.iter().copied().collect();

    let mut best: Option<Vec<usize>> = None;
    for &start in comp {
        if g.succ(start).contains(&start) {
            return Some(vec![start]);
        }
        // BFS within the SCC from `start`; the shortest cycle through
        // `start` closes over an edge (x → start).
        let mut parent: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        let mut queue = std::collections::VecDeque::new();
        parent.insert(start, start);
        queue.push_back(start);
        'bfs: while let Some(v) = queue.pop_front() {
            for &w in g.succ(v) {
                if !members.contains(&w) {
                    continue;
                }
                if w == start {
                    let mut path = vec![v];
                    let mut cur = v;
                    while cur != start {
                        cur = parent[&cur];
                        path.push(cur);
                    }
                    path.reverse();
                    if best.as_ref().is_none_or(|b| path.len() < b.len()) {
                        best = Some(path);
                    }
                    break 'bfs;
                }
                if let std::collections::hash_map::Entry::Vacant(e) = parent.entry(w) {
                    e.insert(v);
                    queue.push_back(w);
                }
            }
        }
        if best.as_ref().is_some_and(|b| b.len() == 2) {
            break; // cannot beat a 2-cycle
        }
    }
    best
}

/// Adjacency-list digraph for tests and the protocol-level analysis.
pub struct AdjGraph {
    /// Successor lists.
    pub succ: Vec<Vec<usize>>,
}

impl Digraph for AdjGraph {
    fn len(&self) -> usize {
        self.succ.len()
    }
    fn succ(&self, v: usize) -> &[usize] {
        &self.succ[v]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(succ: Vec<Vec<usize>>) -> AdjGraph {
        AdjGraph { succ }
    }

    #[test]
    fn dag_has_no_cycle() {
        let d = g(vec![vec![1, 2], vec![2], vec![]]);
        assert!(!has_cycle(&d));
        assert_eq!(minimal_cycle(&d), None);
        assert_eq!(tarjan_scc(&d).len(), 3);
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let d = g(vec![vec![0]]);
        assert!(has_cycle(&d));
        assert_eq!(minimal_cycle(&d), Some(vec![0]));
    }

    #[test]
    fn finds_shortest_cycle_among_larger_scc() {
        // 0→1→2→0 (len 3) and 2→3→2 (len 2) in one SCC.
        let d = g(vec![vec![1], vec![2], vec![0, 3], vec![2]]);
        assert!(has_cycle(&d));
        let cyc = minimal_cycle(&d).unwrap();
        assert_eq!(cyc.len(), 2);
        let set: std::collections::HashSet<_> = cyc.into_iter().collect();
        assert_eq!(set, [2usize, 3].into_iter().collect());
    }

    #[test]
    fn two_component_graph() {
        // Component A acyclic {0,1}; component B cyclic {2,3,4}.
        let d = g(vec![vec![1], vec![], vec![3], vec![4], vec![2]]);
        assert!(has_cycle(&d));
        assert_eq!(minimal_cycle(&d).unwrap().len(), 3);
    }
}
