//! Per-epoch certification of a fault *schedule*: replays the kill/heal
//! timeline of a [`noc_types::FaultSchedule`] in the pure configuration
//! domain and certifies the degraded mesh the network will be running on
//! after each event.
//!
//! The chaos soak harness (noc-experiments) calls [`certify_schedule`] to
//! fill the `recert` column of the engine's epoch trace: for every scheduled
//! event, what would the static certifier say about the topology from that
//! event onward? The replay mirrors the engine's own state machine exactly —
//! a router kill takes its live links down with it, a router heal revives
//! only links that are not *independently* dead and whose far endpoint is
//! alive — but stays entirely in `noc-types` terms: each epoch is rendered
//! as a synthetic static [`noc_types::FaultConfig`] and pushed through
//! [`crate::certify_degraded`].

use crate::degraded::{certify_degraded, DegradedReport, DegradedVerdict};
use noc_types::{Direction, FaultAction, NetConfig, NodeId};

/// The certification of one epoch of a fault schedule.
#[derive(Clone, Debug)]
pub struct EpochCertification {
    /// Cycle the epoch opens.
    pub at: u64,
    /// Canonical rendering of the event that opened it (matches the engine's
    /// `EpochRecord::action` format: `cycle:code:node[:dir]`).
    pub action: String,
    /// Full degraded-mesh certification of the post-event topology.
    pub report: DegradedReport,
}

impl EpochCertification {
    /// Compact verdict tag for trace rows: `acyclic`, `escape`,
    /// `escape-severed`, `deadlockable`, or `unroutable`.
    pub fn short_verdict(&self) -> &'static str {
        short_verdict(&self.report.verdict)
    }
}

/// Compact tag for a [`DegradedVerdict`].
pub fn short_verdict(v: &DegradedVerdict) -> &'static str {
    match v {
        DegradedVerdict::Unroutable { .. } => "unroutable",
        DegradedVerdict::EscapeSevered { .. } => "escape-severed",
        DegradedVerdict::CertifiedAcyclic { .. } => "acyclic",
        DegradedVerdict::CertifiedEscape { .. } => "escape",
        DegradedVerdict::Deadlockable { .. } => "deadlockable",
    }
}

/// Replays `cfg`'s fault schedule and certifies the degraded mesh after
/// every event. Returns one [`EpochCertification`] per event, in timeline
/// order. Errors if the fault configuration (including the schedule) fails
/// validation against the mesh.
///
/// Epochs whose topology cannot run at all report
/// [`DegradedVerdict::Unroutable`] rather than erroring: a schedule is
/// allowed to partition the mesh mid-run (the engine's partial mask and
/// stranded purge handle it), and the harness wants that fact in the trace.
pub fn certify_schedule(cfg: &NetConfig) -> Result<Vec<EpochCertification>, String> {
    cfg.fault.validate(cfg.cols, cfg.rows)?;
    let (cols, rows) = (cfg.cols, cfg.rows);

    // Canonical physical-link id: named from its lower-numbered endpoint.
    let canon = |node: NodeId, d: Direction| -> (NodeId, Direction) {
        match d.step(node.to_coord(cols), cols, rows) {
            Some(p) if p.to_node(cols).0 < node.0 => (p.to_node(cols), d.opposite()),
            _ => (node, d),
        }
    };

    // Independently-dead links and dead routers, tracked exactly like the
    // engine's chaos state: router kills do NOT enter `link_down` (healing
    // the router revives its links), schedule link kills do.
    let mut link_down: Vec<(NodeId, Direction)> = cfg
        .fault
        .dead_links
        .iter()
        .map(|&(n, d)| canon(n, d))
        .collect();
    let mut router_down: Vec<NodeId> = cfg.fault.dead_routers.clone();

    let mut events = cfg.fault.schedule.events.clone();
    events.sort_by_key(|e| e.at);

    let mut out = Vec::with_capacity(events.len());
    for ev in &events {
        let action = match ev.action {
            FaultAction::KillLink(n, d) => {
                let id = canon(n, d);
                if !link_down.contains(&id) {
                    link_down.push(id);
                }
                format!("{}:kl:{}:{}", ev.at, n.0, d.index())
            }
            FaultAction::HealLink(n, d) => {
                let id = canon(n, d);
                link_down.retain(|&l| l != id);
                format!("{}:hl:{}:{}", ev.at, n.0, d.index())
            }
            FaultAction::KillRouter(n) => {
                if !router_down.contains(&n) {
                    router_down.push(n);
                }
                format!("{}:kr:{}", ev.at, n.0)
            }
            FaultAction::HealRouter(n) => {
                router_down.retain(|&r| r != n);
                format!("{}:hr:{}", ev.at, n.0)
            }
        };
        // Synthesize the epoch's topology as a static fault config. Links
        // adjacent to dead routers are implied by the router list (DeadSet
        // resolution expands them), so only independently-dead links are
        // listed — and only once each, thanks to the canonical ids.
        let epoch_fault = noc_types::FaultConfig::default()
            .with_dead_links(link_down.clone())
            .with_dead_routers(router_down.clone());
        let epoch_cfg = cfg.clone().with_fault(epoch_fault);
        out.push(EpochCertification {
            at: ev.at,
            action,
            report: certify_degraded(&epoch_cfg),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_types::{BaseRouting, FaultConfig, FaultSchedule, RoutingAlgo};

    fn base(routing: RoutingAlgo) -> NetConfig {
        NetConfig::synth(4, 4).with_routing(routing)
    }

    #[test]
    fn flap_certifies_each_epoch_and_recovers_the_healthy_certificate() {
        let cfg = base(RoutingAlgo::Uniform(BaseRouting::Xy)).with_fault(
            FaultConfig::default().with_schedule(FaultSchedule::link_flap(
                NodeId(5),
                Direction::East,
                100,
                900,
            )),
        );
        let epochs = certify_schedule(&cfg).unwrap();
        assert_eq!(epochs.len(), 2);
        assert_eq!(epochs[0].at, 100);
        assert!(epochs[0].action.contains(":kl:"));
        // XY with a detour loses acyclicity (the honest downgrade)...
        assert_eq!(epochs[0].short_verdict(), "deadlockable");
        // ...and the heal restores the healthy acyclic certificate exactly.
        assert_eq!(epochs[1].short_verdict(), "acyclic");
        assert!(epochs[1].report.dead_links.is_empty());
    }

    #[test]
    fn router_kill_epochs_expand_links_and_heal_revives_them() {
        let cfg = base(RoutingAlgo::Uniform(BaseRouting::AdaptiveMinimal)).with_fault(
            FaultConfig::default().with_schedule(FaultSchedule::new(vec![
                noc_types::FaultEvent {
                    at: 50,
                    action: FaultAction::KillRouter(NodeId(5)),
                },
                noc_types::FaultEvent {
                    at: 500,
                    action: FaultAction::HealRouter(NodeId(5)),
                },
            ])),
        );
        let epochs = certify_schedule(&cfg).unwrap();
        assert_eq!(epochs.len(), 2);
        assert_eq!(epochs[0].report.dead_routers, vec![NodeId(5)]);
        assert_eq!(epochs[0].report.dead_links.len(), 4);
        assert!(epochs[0].report.verdict.routable());
        assert!(epochs[1].report.dead_routers.is_empty());
        assert!(epochs[1].report.dead_links.is_empty());
    }

    #[test]
    fn partitioning_epochs_report_unroutable_instead_of_erroring() {
        // Cutting both links of the corner node partitions the mesh for the
        // middle epoch; the schedule then heals one of them.
        let cfg = base(RoutingAlgo::Uniform(BaseRouting::AdaptiveMinimal)).with_fault(
            FaultConfig::default().with_schedule(FaultSchedule::new(vec![
                noc_types::FaultEvent {
                    at: 10,
                    action: FaultAction::KillLink(NodeId(0), Direction::East),
                },
                noc_types::FaultEvent {
                    at: 20,
                    action: FaultAction::KillLink(NodeId(0), Direction::South),
                },
                noc_types::FaultEvent {
                    at: 30,
                    action: FaultAction::HealLink(NodeId(0), Direction::East),
                },
            ])),
        );
        let epochs = certify_schedule(&cfg).unwrap();
        assert_eq!(epochs.len(), 3);
        assert!(epochs[0].report.verdict.routable());
        assert_eq!(epochs[1].short_verdict(), "unroutable");
        assert!(epochs[2].report.verdict.routable());
    }

    #[test]
    fn invalid_schedules_are_rejected() {
        // Healing a live link is a state-machine violation.
        let cfg = base(RoutingAlgo::Uniform(BaseRouting::Xy)).with_fault(
            FaultConfig::default().with_schedule(FaultSchedule::new(vec![noc_types::FaultEvent {
                at: 10,
                action: FaultAction::HealLink(NodeId(5), Direction::East),
            }])),
        );
        assert!(certify_schedule(&cfg).is_err());
    }
}
