//! Extended channel-dependency-graph construction.
//!
//! Nodes are *(link, VC class)* channels: a unidirectional mesh link together
//! with the class of virtual channels a packet occupies on it. All VCs of one
//! class at one link are interchangeable under the simulator's allocation
//! policy (any free VC of the class may be granted), so collapsing them to a
//! single node loses nothing: a cyclic wait among the full VC set exists if
//! and only if one exists among the collapsed classes.
//!
//! Edges are the *dest-consistent* dependencies induced by the routing
//! relation: channel `A = (u→v, c)` depends on `B = (v→w, c′)` when there is
//! some destination `d` such that a packet headed for `d` may legally hold
//! `A` and next request `B` (`d ≠ v`, `A` legal for `(u,d)` under class `c`'s
//! routing function, and `c→c′`/`v→w` a legal continuation toward `d`). This
//! is Dally–Seitz/Duato's construction specialised to the simulator's actual
//! routing functions in `noc_sim::routing`, including the escape-VC
//! transition rules of `noc_sim::router::try_alloc`: normal→normal,
//! normal→escape (west-first-legal directions only), escape→escape, and
//! never escape→normal.

use noc_sim::fault::{DeadSet, RouteMask};
use noc_sim::routing::{candidates, west_first, Candidates};
use noc_types::{BaseRouting, Coord, Direction, NetConfig};

/// The VC class a channel carries: which `VNet`, and whether these are the
/// regular (adaptive) VCs or the Duato escape VC.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum VcClass {
    /// Regular VCs of a `VNet`, routed by the configured base algorithm.
    Normal(u8),
    /// The west-first escape VC of a `VNet` (`RoutingAlgo::EscapeVc` only).
    Escape(u8),
}

impl VcClass {
    /// The `VNet` this class belongs to.
    pub fn vnet(self) -> u8 {
        match self {
            VcClass::Normal(v) | VcClass::Escape(v) => v,
        }
    }

    /// True for escape-VC classes.
    pub fn is_escape(self) -> bool {
        matches!(self, VcClass::Escape(_))
    }
}

/// One node of the extended channel dependency graph.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Channel {
    /// Upstream router of the link.
    pub from: Coord,
    /// Link direction (always cardinal).
    pub dir: Direction,
    /// VC class occupied on the link.
    pub class: VcClass,
}

impl Channel {
    /// Downstream router of the link.
    pub fn to(&self, cols: u8, rows: u8) -> Coord {
        self.dir
            .step(self.from, cols, rows)
            .expect("channel links never leave the mesh")
    }
}

impl std::fmt::Display for Channel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (kind, vnet) = match self.class {
            VcClass::Normal(v) => ("normal", v),
            VcClass::Escape(v) => ("escape", v),
        };
        write!(f, "{} -{}-> [vnet {} {}]", self.from, self.dir, vnet, kind)
    }
}

/// The extended channel dependency graph of one network configuration.
#[derive(Clone, Debug)]
pub struct Cdg {
    /// Mesh columns.
    pub cols: u8,
    /// Mesh rows.
    pub rows: u8,
    /// Whether the configuration uses a Duato escape VC.
    pub has_escape: bool,
    channels: Vec<Channel>,
    /// Adjacency lists, indexed like `channels`.
    succ: Vec<Vec<usize>>,
    /// Dense lookup from (node, dir, class-slot) to channel index.
    index: Vec<Option<usize>>,
    vnets: u8,
}

impl Cdg {
    /// Builds the graph for `cfg`. Routing-level only; the protocol-level
    /// message-class dependencies are analysed separately (they couple `VNets`,
    /// not individual channels).
    pub fn build(cfg: &NetConfig) -> Cdg {
        let (cols, rows) = (cfg.cols, cfg.rows);
        let vnets = cfg.vnets;
        let has_escape = cfg.routing.has_escape();
        let normal = cfg.routing.normal();
        let kinds: usize = if has_escape { 2 } else { 1 };
        let slots = cols as usize * rows as usize * 4 * vnets as usize * kinds;

        let mut g = Cdg {
            cols,
            rows,
            has_escape,
            channels: Vec::new(),
            succ: Vec::new(),
            index: vec![None; slots],
            vnets,
        };

        // Enumerate channels: every on-mesh link × vnet × class kind.
        for y in 0..rows {
            for x in 0..cols {
                let u = Coord::new(x, y);
                for dir in Direction::CARDINAL {
                    if dir.step(u, cols, rows).is_none() {
                        continue;
                    }
                    for vnet in 0..vnets {
                        g.insert(Channel {
                            from: u,
                            dir,
                            class: VcClass::Normal(vnet),
                        });
                        if has_escape {
                            g.insert(Channel {
                                from: u,
                                dir,
                                class: VcClass::Escape(vnet),
                            });
                        }
                    }
                }
            }
        }

        // Dest-consistent edges. For each channel A = (u→v, c) and each
        // destination d routable over A with d ≠ v, every continuation
        // channel at v toward d is a dependency.
        let mut seen = vec![false; g.channels.len()];
        for a in 0..g.channels.len() {
            let ch = g.channels[a];
            let u = ch.from;
            let v = ch.to(cols, rows);
            let mut out: Vec<usize> = Vec::new();
            for dy in 0..rows {
                for dx in 0..cols {
                    let d = Coord::new(dx, dy);
                    if d == u || d == v {
                        continue;
                    }
                    let legal_here = match ch.class {
                        VcClass::Normal(_) => candidates(normal, u, d).contains(ch.dir),
                        VcClass::Escape(_) => west_first(u, d).contains(ch.dir),
                    };
                    if !legal_here {
                        continue;
                    }
                    let vnet = ch.class.vnet();
                    match ch.class {
                        VcClass::Normal(_) => {
                            g.push_edges(
                                &mut out,
                                &mut seen,
                                v,
                                candidates(normal, v, d),
                                VcClass::Normal(vnet),
                            );
                            if has_escape {
                                // Escape fallback at the next router.
                                g.push_edges(
                                    &mut out,
                                    &mut seen,
                                    v,
                                    west_first(v, d),
                                    VcClass::Escape(vnet),
                                );
                            }
                        }
                        VcClass::Escape(_) => {
                            // Escape residents stay in escape VCs (Duato).
                            g.push_edges(
                                &mut out,
                                &mut seen,
                                v,
                                west_first(v, d),
                                VcClass::Escape(vnet),
                            );
                        }
                    }
                }
            }
            for &b in &out {
                seen[b] = false;
            }
            g.succ[a] = out;
        }
        g
    }

    /// Builds the CDG of a *degraded* mesh: channels on dead links (or
    /// touching dead routers) do not exist, normal-class legality follows
    /// the masked routing relation the simulator actually uses
    /// ([`RouteMask`] candidates intersected with the base algorithm's,
    /// falling back to the mask alone — mirroring
    /// `noc_sim::router::route_compute`), and escape-class legality follows
    /// the degraded west-first mask `wf` when one survives the faults.
    ///
    /// Dead routers are excluded as sources *and* destinations: nothing is
    /// routed to or from them, so they induce no dependencies.
    pub fn build_degraded(
        cfg: &NetConfig,
        dead: &DeadSet,
        mask: &RouteMask,
        wf: Option<&RouteMask>,
    ) -> Cdg {
        let (cols, rows) = (cfg.cols, cfg.rows);
        let vnets = cfg.vnets;
        let has_escape = cfg.routing.has_escape() && wf.is_some();
        let normal = cfg.routing.normal();
        let kinds: usize = if has_escape { 2 } else { 1 };
        let slots = cols as usize * rows as usize * 4 * vnets as usize * kinds;

        let mut g = Cdg {
            cols,
            rows,
            has_escape,
            channels: Vec::new(),
            succ: Vec::new(),
            index: vec![None; slots],
            vnets,
        };

        let live = |u: Coord, dir: Direction| -> bool {
            let Some(v) = dir.step(u, cols, rows) else {
                return false;
            };
            !dead.link_dead(u.to_node(cols).idx(), dir)
                && !dead.router_dead(u.to_node(cols).idx())
                && !dead.router_dead(v.to_node(cols).idx())
        };

        for y in 0..rows {
            for x in 0..cols {
                let u = Coord::new(x, y);
                for dir in Direction::CARDINAL {
                    if !live(u, dir) {
                        continue;
                    }
                    for vnet in 0..vnets {
                        g.insert(Channel {
                            from: u,
                            dir,
                            class: VcClass::Normal(vnet),
                        });
                        if has_escape {
                            g.insert(Channel {
                                from: u,
                                dir,
                                class: VcClass::Escape(vnet),
                            });
                        }
                    }
                }
            }
        }

        let mut seen = vec![false; g.channels.len()];
        for a in 0..g.channels.len() {
            let ch = g.channels[a];
            let u = ch.from;
            let v = ch.to(cols, rows);
            let mut out: Vec<usize> = Vec::new();
            for dy in 0..rows {
                for dx in 0..cols {
                    let d = Coord::new(dx, dy);
                    if d == u || d == v || dead.router_dead(d.to_node(cols).idx()) {
                        continue;
                    }
                    let legal_here = match ch.class {
                        VcClass::Normal(_) => masked_dirs(normal, mask, u, d).contains(ch.dir),
                        VcClass::Escape(_) => wf
                            .expect("escape channels only exist with a wf mask")
                            .candidates(u, d)
                            .contains(ch.dir),
                    };
                    if !legal_here {
                        continue;
                    }
                    let vnet = ch.class.vnet();
                    match ch.class {
                        VcClass::Normal(_) => {
                            g.push_edges(
                                &mut out,
                                &mut seen,
                                v,
                                masked_dirs(normal, mask, v, d),
                                VcClass::Normal(vnet),
                            );
                            if let Some(wf) = wf {
                                g.push_edges(
                                    &mut out,
                                    &mut seen,
                                    v,
                                    wf.candidates(v, d),
                                    VcClass::Escape(vnet),
                                );
                            }
                        }
                        VcClass::Escape(_) => {
                            g.push_edges(
                                &mut out,
                                &mut seen,
                                v,
                                wf.expect("escape channels only exist with a wf mask")
                                    .candidates(v, d),
                                VcClass::Escape(vnet),
                            );
                        }
                    }
                }
            }
            for &b in &out {
                seen[b] = false;
            }
            g.succ[a] = out;
        }
        g
    }

    fn insert(&mut self, ch: Channel) {
        let slot = self.slot(ch);
        let id = self.channels.len();
        self.index[slot] = Some(id);
        self.channels.push(ch);
        self.succ.push(Vec::new());
    }

    fn slot(&self, ch: Channel) -> usize {
        let node = ch.from.y as usize * self.cols as usize + ch.from.x as usize;
        let (kind, vnet) = match ch.class {
            VcClass::Normal(v) => (0usize, v as usize),
            VcClass::Escape(v) => (1usize, v as usize),
        };
        let kinds = if self.has_escape { 2 } else { 1 };
        ((node * 4 + ch.dir.index()) * self.vnets as usize + vnet) * kinds + kind
    }

    fn push_edges(
        &self,
        out: &mut Vec<usize>,
        seen: &mut [bool],
        at: Coord,
        dirs: Candidates,
        class: VcClass,
    ) {
        for &dir in dirs.as_slice() {
            if dir.step(at, self.cols, self.rows).is_none() {
                continue;
            }
            let id = self.index[self.slot(Channel {
                from: at,
                dir,
                class,
            })]
            .expect("on-mesh continuation channel must exist");
            if !seen[id] {
                seen[id] = true;
                out.push(id);
            }
        }
    }

    /// Channel (node) count.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Dependency (edge) count.
    pub fn edge_count(&self) -> usize {
        self.succ.iter().map(Vec::len).sum()
    }

    /// The channel with index `id`.
    pub fn channel(&self, id: usize) -> Channel {
        self.channels[id]
    }

    /// Successor indices of channel `id`.
    pub fn successors(&self, id: usize) -> &[usize] {
        &self.succ[id]
    }

    /// Indices of all escape-class channels.
    pub fn escape_channel_ids(&self) -> Vec<usize> {
        (0..self.channels.len())
            .filter(|&i| self.channels[i].class.is_escape())
            .collect()
    }

    /// Every channel, for iteration in reports.
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// True if some edge leaves an escape channel for a normal channel —
    /// forbidden by Duato's condition and by construction; checked as a
    /// structural self-test.
    pub fn escape_leaks_to_normal(&self) -> bool {
        (0..self.channels.len()).any(|i| {
            self.channels[i].class.is_escape()
                && self.succ[i]
                    .iter()
                    .any(|&j| !self.channels[j].class.is_escape())
        })
    }
}

/// The candidate set the simulator uses on a degraded mesh: route-mask
/// candidates intersected with the base algorithm's productive set, falling
/// back to the mask alone when the intersection is empty (the detour case).
/// Mirrors `noc_sim::router::route_compute` exactly.
fn masked_dirs(normal: BaseRouting, mask: &RouteMask, u: Coord, d: Coord) -> Candidates {
    let masked = mask.candidates(u, d);
    let both: Candidates = candidates(normal, u, d)
        .as_slice()
        .iter()
        .copied()
        .filter(|dir| masked.contains(*dir))
        .collect();
    if both.is_empty() {
        masked
    } else {
        both
    }
}
