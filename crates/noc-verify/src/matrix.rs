//! The shared certification expectation matrix, plus the cross-check API
//! used by external reachability analyzers (`noc-model`).
//!
//! `--all-configs` (CI's certification gate) and the `model_check`
//! differential harness must agree on *which* configurations the paper
//! cares about and what verdict each must receive; this module is the
//! single source of truth both consume. The [`cross_check`] function
//! encodes the soundness relation between the two analyzers:
//!
//! * the CDG certifier is **sound**: a certified configuration admits no
//!   reachable wedge under *any* arbiter, so an external analyzer that
//!   reaches one has found a bug in one of the two tools;
//! * the CDG certifier is **conservative**: a `Deadlockable` verdict only
//!   proves a cyclic wait *could* close. On the paper's minimal-adaptive
//!   and oblivious configurations the cycle is genuinely closable, so the
//!   bounded model checker must exhibit a concrete reachable wedge — a
//!   `Deadlockable` row with no witness within the bound means either the
//!   bound is too small or one analyzer is wrong. Both cases must fail CI.

use crate::RoutingVerdict;
use noc_types::{BaseRouting, NetConfig, RecoveryConfig, RoutingAlgo};

/// One row of the expectation matrix.
#[derive(Clone, Debug)]
pub struct MatrixRow {
    /// The configuration to certify.
    pub cfg: NetConfig,
    /// Whether [`crate::certify`] (or [`crate::certify_recovery`] for the
    /// recovery matrix) must report it certified.
    pub expect_certified: bool,
    /// Human-readable expectation, printed on mismatch.
    pub why: &'static str,
}

/// The expectation matrix exercised by `noc-verify --all-configs` (and CI):
/// every headline configuration of the paper, with the verdict it must
/// receive.
pub fn all_configs() -> Vec<MatrixRow> {
    let mut out = Vec::new();
    let mut push = |cfg: NetConfig, expect_certified: bool, why: &'static str| {
        out.push(MatrixRow {
            cfg,
            expect_certified,
            why,
        });
    };
    for k in [4u8, 8] {
        for (routing, certified) in [
            (RoutingAlgo::Uniform(BaseRouting::Xy), true),
            (RoutingAlgo::Uniform(BaseRouting::WestFirst), true),
            (RoutingAlgo::Uniform(BaseRouting::ObliviousMinimal), false),
            (RoutingAlgo::Uniform(BaseRouting::AdaptiveMinimal), false),
            (
                RoutingAlgo::EscapeVc {
                    normal: BaseRouting::AdaptiveMinimal,
                },
                true,
            ),
        ] {
            push(
                NetConfig::synth(k, 4).with_routing(routing),
                certified,
                if certified {
                    "must certify"
                } else {
                    "must produce a witness"
                },
            );
        }
        // Full-system: six VNets isolate the protocol's class dependencies…
        push(
            NetConfig::full_system(k, 6, 2).with_routing(RoutingAlgo::Uniform(BaseRouting::Xy)),
            true,
            "six VNets must certify both layers",
        );
        // …a single shared VNet must be flagged at the protocol layer.
        push(
            NetConfig::full_system(k, 1, 2).with_routing(RoutingAlgo::Uniform(BaseRouting::Xy)),
            false,
            "one shared VNet must fail the protocol layer",
        );
    }
    out
}

/// The recovery-channel expectation matrix: armed meshes must certify,
/// degenerate arrangements must be refused.
pub fn all_recovery_configs() -> Vec<MatrixRow> {
    let mut out = Vec::new();
    for k in [4u8, 8] {
        out.push(MatrixRow {
            cfg: NetConfig::synth(k, 4).with_recovery(RecoveryConfig::drain()),
            expect_certified: true,
            why: "armed recovery channel must certify",
        });
    }
    out.push(MatrixRow {
        cfg: NetConfig::synth(8, 4)
            .with_recovery(RecoveryConfig::drain().with_stuck_threshold(1_000_000)),
        expect_certified: false,
        why: "a drain threshold above the watchdog's must be refused",
    });
    out
}

/// Reachability verdict produced by an external exhaustive analyzer (the
/// `noc-model` bounded model checker) for one configuration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReachVerdict {
    /// Exhaustive exploration (within the stated bound) found no state in
    /// which some packet is in the network and no transition is enabled.
    NoReachableWedge,
    /// A concrete reachable wedge exists; the analyzer holds a trace.
    WedgeReachable,
    /// Packets can circulate forever without any ejecting (a reachable
    /// lasso over movement-only transitions).
    LivelockSuspect,
}

/// Cross-checks a CDG routing verdict against an external reachability
/// verdict for the *same* configuration. `Ok` when the pair is consistent;
/// `Err` carries a description of the disagreement — which, per the
/// soundness relation documented on this module, is always a bug in one of
/// the two analyzers (or an under-provisioned exploration bound).
pub fn cross_check(routing: &RoutingVerdict, reach: ReachVerdict) -> Result<(), String> {
    match (routing.certified(), reach) {
        (true, ReachVerdict::NoReachableWedge) | (false, ReachVerdict::WedgeReachable) => Ok(()),
        (true, ReachVerdict::WedgeReachable) => Err(
            "CDG certifier says deadlock-free but the model checker reached a wedge: \
             the certificate is unsound or the abstract model admits an illegal move"
                .into(),
        ),
        (false, ReachVerdict::NoReachableWedge) => Err(
            "CDG certifier produced a cyclic witness but no wedge is reachable within \
             the bound: the witness cycle cannot close (certifier too conservative) or \
             the exploration bound is too small"
                .into(),
        ),
        (_, ReachVerdict::LivelockSuspect) => Err(
            "model checker found a reachable movement lasso: minimal routing cannot \
             cycle, so the abstract transition relation admits an unproductive hop"
                .into(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certify;

    #[test]
    fn matrix_rows_match_their_expectations() {
        for row in all_configs() {
            let report = certify(&row.cfg);
            assert_eq!(
                report.certified(),
                row.expect_certified,
                "{}: {}",
                report.config,
                row.why
            );
        }
    }

    #[test]
    fn cross_check_accepts_agreement_and_rejects_disagreement() {
        let rows = all_configs();
        let certified = rows
            .iter()
            .find(|r| r.expect_certified)
            .map(|r| certify(&r.cfg).routing)
            .expect("matrix has certified rows");
        let deadlockable = rows
            .iter()
            .map(|r| certify(&r.cfg).routing)
            .find(|v| !v.certified())
            .expect("matrix has deadlockable rows");

        assert!(cross_check(&certified, ReachVerdict::NoReachableWedge).is_ok());
        assert!(cross_check(&certified, ReachVerdict::WedgeReachable).is_err());
        assert!(cross_check(&certified, ReachVerdict::LivelockSuspect).is_err());
        assert!(cross_check(&deadlockable, ReachVerdict::WedgeReachable).is_ok());
        assert!(cross_check(&deadlockable, ReachVerdict::NoReachableWedge).is_err());
    }
}
