//! `noc-verify` — static deadlock-freedom certification CLI.
//!
//! ```text
//! noc-verify --mesh 8 --routing escape:adaptive --vnets 1 --vcs 4
//! noc-verify --all-configs          # expectation matrix, used by CI
//! ```
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use noc_types::{
    BaseRouting, Direction, FaultConfig, NetConfig, NodeId, RecoveryConfig, RoutingAlgo,
};
use noc_verify::{certify, certify_degraded, certify_recovery};

const USAGE: &str = "\
noc-verify: static channel-dependency-graph deadlock certifier

USAGE:
    noc-verify [OPTIONS]
    noc-verify --all-configs

OPTIONS:
    --mesh <K | CxR>      mesh size (default 8)
    --routing <ALGO>      xy | west-first | oblivious | adaptive |
                          escape[:<base>]   (default xy)
    --vnets <N>           virtual networks (default 1)
    --vcs <N>             VCs per VNet (default 4)
    --classes <N>         message classes (default = vnets)
    --dead-links <SPEC>   comma-separated dead links, each NODE:DIR with DIR
                          one of N/E/S/W (e.g. 5:E,10:S); switches to
                          degraded-mesh certification
    --dead-routers <LIST> comma-separated dead router ids (e.g. 5,9)
    --random-dead <N>     kill N random links drawn from the fault seed
    --fault-seed <SEED>   fault RNG seed for --random-dead (default 0xFA17)
    --recovery[=<T>]      additionally certify the runtime recovery channel,
                          armed at drain stuck-threshold T (default 512)
    --all-configs         check the expectation matrix over the paper's
                          configurations; exit nonzero on any mismatch
    -h, --help            show this help

Exit status: 0 when the analysed configuration is certified deadlock-free
(or, with --all-configs, every verdict matches its expectation); 1 otherwise.
";

fn parse_routing(s: &str) -> Result<RoutingAlgo, String> {
    let base = |name: &str| -> Result<BaseRouting, String> {
        match name {
            "xy" => Ok(BaseRouting::Xy),
            "west-first" | "wf" => Ok(BaseRouting::WestFirst),
            "oblivious" => Ok(BaseRouting::ObliviousMinimal),
            "adaptive" => Ok(BaseRouting::AdaptiveMinimal),
            other => Err(format!("unknown routing algorithm '{other}'")),
        }
    };
    if let Some(normal) = s.strip_prefix("escape") {
        let normal = normal.strip_prefix(':').unwrap_or("adaptive");
        Ok(RoutingAlgo::EscapeVc {
            normal: base(normal)?,
        })
    } else {
        Ok(RoutingAlgo::Uniform(base(s)?))
    }
}

fn parse_mesh(s: &str) -> Result<(u8, u8), String> {
    let dims: Vec<&str> = s.split(['x', 'X']).collect();
    let parse = |t: &str| {
        t.parse::<u8>()
            .map_err(|_| format!("bad mesh dimension '{t}'"))
            .and_then(|v| {
                if v >= 2 {
                    Ok(v)
                } else {
                    Err(format!("mesh dimension {v} < 2"))
                }
            })
    };
    match dims.as_slice() {
        [k] => parse(k).map(|k| (k, k)),
        [c, r] => Ok((parse(c)?, parse(r)?)),
        _ => Err(format!("bad mesh spec '{s}' (want K or CxR)")),
    }
}

/// Parses a `--dead-links` spec: comma-separated `NODE:DIR` with DIR one of
/// N/E/S/W (case-insensitive).
fn parse_dead_links(s: &str) -> Result<Vec<(NodeId, Direction)>, String> {
    s.split(',')
        .filter(|t| !t.is_empty())
        .map(|t| {
            let (node, dir) = t
                .split_once(':')
                .ok_or_else(|| format!("bad dead-link '{t}' (want NODE:DIR)"))?;
            let node: u16 = node
                .parse()
                .map_err(|_| format!("bad node id '{node}' in dead-link '{t}'"))?;
            let dir = match dir.to_ascii_uppercase().as_str() {
                "N" => Direction::North,
                "E" => Direction::East,
                "S" => Direction::South,
                "W" => Direction::West,
                other => return Err(format!("bad direction '{other}' (want N/E/S/W)")),
            };
            Ok((NodeId(node), dir))
        })
        .collect()
}

fn parse_dead_routers(s: &str) -> Result<Vec<NodeId>, String> {
    s.split(',')
        .filter(|t| !t.is_empty())
        .map(|t| {
            t.parse::<u16>()
                .map(NodeId)
                .map_err(|_| format!("bad router id '{t}'"))
        })
        .collect()
}

struct Args {
    cols: u8,
    rows: u8,
    routing: RoutingAlgo,
    vnets: u8,
    vcs: u8,
    classes: Option<u8>,
    fault: FaultConfig,
    recovery: Option<RecoveryConfig>,
    all_configs: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cols: 8,
        rows: 8,
        routing: RoutingAlgo::Uniform(BaseRouting::Xy),
        vnets: 1,
        vcs: 4,
        classes: None,
        fault: FaultConfig::default(),
        recovery: None,
        all_configs: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--mesh" => {
                let (c, r) = parse_mesh(&value("--mesh")?)?;
                args.cols = c;
                args.rows = r;
            }
            "--routing" => args.routing = parse_routing(&value("--routing")?)?,
            "--vnets" => {
                args.vnets = value("--vnets")?
                    .parse()
                    .map_err(|e| format!("--vnets: {e}"))?;
            }
            "--vcs" => {
                args.vcs = value("--vcs")?.parse().map_err(|e| format!("--vcs: {e}"))?;
            }
            "--classes" => {
                args.classes = Some(
                    value("--classes")?
                        .parse()
                        .map_err(|e| format!("--classes: {e}"))?,
                );
            }
            "--dead-links" => {
                args.fault.dead_links = parse_dead_links(&value("--dead-links")?)?;
            }
            "--dead-routers" => {
                args.fault.dead_routers = parse_dead_routers(&value("--dead-routers")?)?;
            }
            "--random-dead" => {
                args.fault.random_dead_links = value("--random-dead")?
                    .parse()
                    .map_err(|e| format!("--random-dead: {e}"))?;
            }
            "--fault-seed" => {
                args.fault.fault_seed = value("--fault-seed")?
                    .parse()
                    .map_err(|e| format!("--fault-seed: {e}"))?;
            }
            "--recovery" => args.recovery = Some(RecoveryConfig::drain()),
            arg if arg.starts_with("--recovery=") => {
                let t = arg["--recovery=".len()..]
                    .parse()
                    .map_err(|e| format!("--recovery: {e}"))?;
                args.recovery = Some(RecoveryConfig::drain().with_stuck_threshold(t));
            }
            "--all-configs" => args.all_configs = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if args.vnets == 0 || args.vcs == 0 {
        return Err("--vnets and --vcs must be at least 1".into());
    }
    Ok(args)
}

fn config_of(args: &Args) -> NetConfig {
    let mut cfg = if args.rows == args.cols {
        NetConfig::synth(args.cols, args.vcs)
    } else {
        let mut c = NetConfig::synth(args.cols.max(args.rows), args.vcs);
        c.cols = args.cols;
        c.rows = args.rows;
        c
    };
    cfg.vnets = args.vnets;
    cfg.classes = args.classes.unwrap_or(args.vnets);
    cfg.vcs_per_vnet = args.vcs;
    cfg = cfg
        .with_routing(args.routing)
        .with_fault(args.fault.clone());
    if let Some(rec) = &args.recovery {
        cfg = cfg.with_recovery(rec.clone());
    }
    cfg
}

fn run_all_configs() -> i32 {
    let mut mismatches = 0usize;
    let mut total = 0usize;
    let mut check = |config: String, got: bool, expect: bool, why: &str, rendered: String| {
        total += 1;
        let status = if got == expect { "ok " } else { "FAIL" };
        println!(
            "[{status}] {config:<60} expected {:<13} got {}",
            if expect { "certified" } else { "not-certified" },
            if got { "certified" } else { "not-certified" },
        );
        if got != expect {
            mismatches += 1;
            eprintln!("--- expectation: {why} ---");
            eprint!("{rendered}");
        }
    };
    for row in noc_verify::matrix::all_configs() {
        let report = certify(&row.cfg);
        let got = report.certified();
        let rendered = report.render();
        check(report.config, got, row.expect_certified, row.why, rendered);
    }
    for row in noc_verify::matrix::all_recovery_configs() {
        let report = certify_recovery(&row.cfg);
        let got = report.certified();
        let rendered = report.render();
        check(report.config, got, row.expect_certified, row.why, rendered);
    }
    if mismatches == 0 {
        println!("all {total} configurations match their expected verdicts");
        0
    } else {
        eprintln!("{mismatches}/{total} configurations MISMATCHED");
        1
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let code = if args.all_configs {
        run_all_configs()
    } else {
        let cfg = config_of(&args);
        let mut failed = if args.fault.has_permanent() {
            let report = certify_degraded(&cfg);
            print!("{}", report.render());
            !report.certified()
        } else {
            let report = certify(&cfg);
            print!("{}", report.render());
            !report.certified()
        };
        if args.recovery.is_some() {
            let report = certify_recovery(&cfg);
            print!("{}", report.render());
            failed |= !report.certified();
        }
        i32::from(failed)
    };
    std::process::exit(code);
}
