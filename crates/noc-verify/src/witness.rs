//! Cycle witnesses and their ASCII-mesh rendering.

use crate::cdg::Channel;
use noc_types::Direction;

/// A concrete cyclic channel dependency: the exact sequence of (link, VC
/// class) channels, each waiting on the next, the last waiting on the first.
/// This is a certificate of *non*-certifiability: filling each channel with
/// a packet destined so as to request the next channel wedges the network.
#[derive(Clone, Debug)]
pub struct Witness {
    /// The cycle, in dependency order.
    pub cycle: Vec<Channel>,
    /// Mesh columns (for rendering).
    pub cols: u8,
    /// Mesh rows (for rendering).
    pub rows: u8,
}

impl Witness {
    /// One line per channel of the cycle.
    pub fn describe(&self) -> String {
        let mut s = String::new();
        for (i, ch) in self.cycle.iter().enumerate() {
            s.push_str(&format!("  [{i}] {ch}\n"));
        }
        s.push_str("  ... and channel [0] is requested again: cyclic wait.\n");
        s
    }

    /// Draws the mesh with the cycle's links as directed arrows.
    ///
    /// ```text
    /// .     .     .
    ///
    /// +---->+     .
    /// ^     |
    /// |     v
    /// +<----+     .
    /// ```
    pub fn render_ascii(&self) -> String {
        const SX: usize = 6; // horizontal stride
        const SY: usize = 2; // vertical stride
        let w = (self.cols as usize - 1) * SX + 1;
        let h = (self.rows as usize - 1) * SY + 1;
        let mut canvas = vec![vec![' '; w]; h];
        for y in 0..self.rows as usize {
            for x in 0..self.cols as usize {
                canvas[y * SY][x * SX] = '.';
            }
        }
        for ch in &self.cycle {
            let (x, y) = (ch.from.x as usize, ch.from.y as usize);
            canvas[y * SY][x * SX] = '+';
            let to = ch.to(self.cols, self.rows);
            canvas[to.y as usize * SY][to.x as usize * SX] = '+';
            match ch.dir {
                Direction::East => {
                    for i in 1..SX - 1 {
                        canvas[y * SY][x * SX + i] = '-';
                    }
                    canvas[y * SY][x * SX + SX - 1] = '>';
                }
                Direction::West => {
                    canvas[y * SY][x * SX - SX + 1] = '<';
                    for i in 2..SX {
                        canvas[y * SY][x * SX - SX + i] = '-';
                    }
                }
                Direction::South => {
                    canvas[y * SY + 1][x * SX] = 'v';
                }
                Direction::North => {
                    canvas[y * SY - 1][x * SX] = '^';
                }
                Direction::Local => {}
            }
        }
        let mut out = String::new();
        for line in canvas {
            let s: String = line.into_iter().collect();
            out.push_str(s.trim_end());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdg::VcClass;
    use noc_types::Coord;

    #[test]
    fn renders_a_square_cycle() {
        let mk = |x, y, dir| Channel {
            from: Coord::new(x, y),
            dir,
            class: VcClass::Normal(0),
        };
        let w = Witness {
            cycle: vec![
                mk(0, 0, Direction::East),
                mk(1, 0, Direction::South),
                mk(1, 1, Direction::West),
                mk(0, 1, Direction::North),
            ],
            cols: 3,
            rows: 3,
        };
        let art = w.render_ascii();
        assert!(art.contains('>'), "{art}");
        assert!(art.contains('v'), "{art}");
        assert!(art.contains('<'), "{art}");
        assert!(art.contains('^'), "{art}");
        assert_eq!(art.lines().count(), 5);
        assert!(w.describe().contains("[3]"));
    }
}
